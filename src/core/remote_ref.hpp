// RemoteRef: the wire representation of a remote pointer.
//
// A remote pointer is just {machine, object id}.  Because it serializes as
// plain data, remote pointers can themselves be passed to remote methods —
// this is what makes the paper's §4 SetGroup work: the master hands every
// FFT process an array of remote pointers to the whole group, and the
// deep-copy the paper recommends is nothing more than serializing
// vector<remote_ptr<T>> by value.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/message.hpp"
#include "serial/archive.hpp"

namespace oopp {

struct RemoteRef {
  net::MachineId machine = 0;
  net::ObjectId object = 0;  // 0 = null

  [[nodiscard]] bool valid() const { return object != 0; }

  /// "machine/object" — the spelling used in error messages and telemetry
  /// span labels.
  [[nodiscard]] std::string str() const {
    return std::to_string(machine) + "/" + std::to_string(object);
  }

  constexpr bool operator==(const RemoteRef&) const = default;
  constexpr auto operator<=>(const RemoteRef&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, RemoteRef& r) {
  ar(r.machine, r.object);
}

}  // namespace oopp

template <>
struct std::hash<oopp::RemoteRef> {
  std::size_t operator()(const oopp::RemoteRef& r) const noexcept {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(r.machine) << 48) ^ r.object);
  }
};
