// oopp::Uri — the typed symbolic address of a persistent process (§5).
//
// The paper writes addresses like "oopp://data/set/PageDevice/34".  The
// persistence facade (Cluster::persist/activate/lookup) takes a Uri, not
// a raw string: construction *is* validation, so a malformed or empty
// address throws a typed oopp::Error at the API boundary instead of
// silently minting an unreachable registry record.  Uri converts
// implicitly from string literals, so existing `persist(p, "oopp://x")`
// call sites compile unchanged — they just gain the check.
#pragma once

#include <string>
#include <string_view>

#include "rpc/errors.hpp"
#include "serial/archive.hpp"

namespace oopp {

/// A symbolic address failed validation.  Subclass of oopp::Error so
/// `catch (const Error&)` plus code() == kBadFrame classifies it.
class InvalidUri : public Error {
 public:
  explicit InvalidUri(const std::string& what_arg)
      : Error(what_arg, net::CallStatus::kBadFrame) {}
};

class Uri {
 public:
  static constexpr std::string_view kScheme = "oopp://";

  Uri() = default;

  /// Implicit, validating.  Throws InvalidUri unless the address is
  /// "oopp://" followed by one or more /-separated non-empty segments of
  /// [A-Za-z0-9._-] characters.
  Uri(const std::string& s) : str_(validated(s)) {}       // NOLINT(google-explicit-constructor)
  Uri(const char* s) : Uri(std::string(s)) {}             // NOLINT(google-explicit-constructor)

  static Uri parse(const std::string& s) { return Uri(s); }

  /// The full address, scheme included.
  [[nodiscard]] const std::string& str() const { return str_; }
  /// The part after "oopp://".
  [[nodiscard]] std::string_view path() const {
    return std::string_view(str_).substr(kScheme.size());
  }

  [[nodiscard]] bool empty() const { return str_.empty(); }

  bool operator==(const Uri&) const = default;
  auto operator<=>(const Uri&) const = default;

 private:
  static std::string validated(const std::string& s) {
    if (s.empty()) throw InvalidUri("empty symbolic address");
    if (s.size() <= kScheme.size() ||
        std::string_view(s).substr(0, kScheme.size()) != kScheme)
      throw InvalidUri("symbolic address '" + s +
                       "' must start with 'oopp://' and name a path");
    const std::string_view path = std::string_view(s).substr(kScheme.size());
    bool segment_empty = true;
    for (const char c : path) {
      if (c == '/') {
        if (segment_empty)
          throw InvalidUri("symbolic address '" + s +
                           "' has an empty path segment");
        segment_empty = true;
        continue;
      }
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
      if (!ok)
        throw InvalidUri("symbolic address '" + s +
                         "' contains an invalid character '" +
                         std::string(1, c) + "'");
      segment_empty = false;
    }
    if (segment_empty)
      throw InvalidUri("symbolic address '" + s +
                       "' ends with an empty path segment");
    return s;
  }

  std::string str_;

  template <class Ar>
  friend void oopp_serialize(Ar& ar, Uri& u);
};

template <class Ar>
void oopp_serialize(Ar& ar, Uri& u) {
  ar(u.str_);
}

}  // namespace oopp
