// Cluster: the collection of machines a program runs across.
//
// Owns the fabric and one Node per machine.  The thread that constructs
// the Cluster becomes the driver, running "on machine 0" exactly like the
// code in the paper's examples; other threads can enter a machine context
// with use().
//
// The Cluster is also the persistence runtime of §5: persist() checkpoints
// a process under a symbolic address, passivate() additionally terminates
// the live process, and lookup() re-activates it (on its home machine or a
// machine of your choice).  The name service backing the symbolic address
// space is itself a remotable object living on machine 0.
#pragma once

#include <algorithm>
#include <filesystem>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/name_service.hpp"
#include "core/remote_data.hpp"
#include "core/remote_ptr.hpp"
#include "core/uri.hpp"
#include "net/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/fabric_options.hpp"
#include "net/tcp_mesh_fabric.hpp"
#include "rpc/node.hpp"
#include "storage/replica_options.hpp"
#include "util/checked_mutex.hpp"

namespace oopp {

namespace kv {
class KvStore;
}

/// Aggregated cluster metrics (per-node counters + fabric traffic).
struct ClusterStats {
  std::vector<rpc::NodeStats> per_node;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;

  [[nodiscard]] rpc::NodeStats totals() const {
    rpc::NodeStats t;
    for (const auto& n : per_node) {
      t.objects_live += n.objects_live;
      t.requests_served += n.requests_served;
      t.control_requests += n.control_requests;
      t.remote_exceptions += n.remote_exceptions;
      t.objects_spawned += n.objects_spawned;
      t.objects_destroyed += n.objects_destroyed;
      t.pool_threads += n.pool_threads;
      t.pool_tasks_run += n.pool_tasks_run;
      t.dispatch_shards += n.dispatch_shards;
      t.queue_depth_hwm = std::max(t.queue_depth_hwm, n.queue_depth_hwm);
      t.pool_busy += n.pool_busy;
    }
    return t;
  }
};

class Cluster {
 public:
  enum class FabricKind {
    kInProc,  // simulated interconnect with CostModel (default)
    kTcp,     // real loopback sockets
  };

  struct Options {
    std::size_t machines = 4;
    FabricKind fabric = FabricKind::kInProc;
    net::CostModel cost = net::CostModel::zero();
    rpc::Node::Options node{};
    /// The unified transport surface (net/fabric_options.hpp): reactor
    /// on/off, batching, buffers, connect deadline.  Applies to the TCP
    /// fabrics (kTcp and mesh deployments); kInProc ignores it — it has
    /// no sockets.  Replaces the old `batch` field (README migration
    /// table): `opts.batch = b` becomes `opts.transport.batch = b`.
    net::FabricOptions transport{};
    /// Directory for passivated process images.  Empty → a fresh temp
    /// directory owned (and removed) by this Cluster.
    std::filesystem::path state_dir{};
    /// Make the symbolic-address registry itself survive cluster
    /// shutdown: the name service is re-activated from
    /// state_dir/registry.img on startup (records from the previous
    /// incarnation become passive) and checkpointed there on shutdown.
    /// Requires an explicit state_dir.
    bool persistent_registry = false;
    /// The unified durability surface (storage/replica_options.hpp): how
    /// many replicas each persistent page device keeps, the write/read
    /// quorum sizes, and the primary-lease length.  `replicas > 1` also
    /// switches the symbolic-address registry itself from the single
    /// NameService process to a chain-replicated kv::KvStore, so
    /// `oopp://` records survive the death of any one machine.
    storage::ReplicaOptions replica{};
    /// Custom interconnect: when set, overrides `fabric`/`cost`.  Used to
    /// wrap the transport (e.g. net::FaultyFabric for fault injection).
    std::function<std::unique_ptr<net::Fabric>(std::size_t machines)>
        fabric_factory{};
    /// Multi-process deployment: when non-empty, this OS process hosts
    /// only `local_machine`; the other machine ids are separate processes
    /// (oopp_noded) reachable at these endpoints.  Overrides `machines`,
    /// `fabric` and `fabric_factory`.
    std::vector<net::Endpoint> mesh_endpoints{};
    net::MachineId local_machine = 0;
  };

  explicit Cluster(Options opts);
  explicit Cluster(std::size_t machines)
      : Cluster(Options{.machines = machines}) {}
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] rpc::Node& node(net::MachineId m);
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] ClusterStats stats() const;

  /// One JSON document with every telemetry scope's counters and
  /// latency-histogram percentiles (see docs/TELEMETRY.md for the schema).
  [[nodiscard]] std::string metrics_report() const;

  /// Write one trace dump per locally hosted node into `dir` as
  /// trace_node<N>.json; tools/oopp_trace.py merges them into a single
  /// causally ordered timeline.  Returns the number of files written.
  std::size_t dump_trace(const std::filesystem::path& dir) const;

  /// Write this process's lock-order graph (local edges + the cross-node
  /// edges recorded while serving RPCs under OOPP_DIST_LOCK_CHECK) into
  /// `dir` as lockgraph_node<local>.json; tools/oopp_graph.py merges the
  /// per-process dumps and reports distributed deadlock cycles.  One file
  /// per process — the lockcheck graph is process-wide, so a single-
  /// process multi-machine cluster dumps everything in one file.
  /// Returns the number of files written (1).
  std::size_t dump_lockgraph(const std::filesystem::path& dir) const;
  [[nodiscard]] const std::filesystem::path& state_dir() const {
    return state_dir_;
  }

  /// Enter machine m's context on the current thread (RAII).  The
  /// machine must be hosted by this process.
  [[nodiscard]] rpc::Node::ContextGuard use(net::MachineId m) {
    return rpc::Node::ContextGuard(&node(m));
  }

  /// The machine this process hosts (0 except in mesh deployments).
  [[nodiscard]] net::MachineId local_machine() const { return local_; }
  /// True if machine m is hosted by this OS process.
  [[nodiscard]] bool is_local(net::MachineId m) const {
    return m < nodes_.size() && nodes_[m] != nullptr;
  }

  /// Ask a peer process of a mesh deployment to shut down (its
  /// wait_for_shutdown_request() returns).
  void request_shutdown(net::MachineId m);

  /// The paper's `new(machine i) T(args...)`.
  template <class T, class... A>
  remote_ptr<T> make_remote(net::MachineId machine, A&&... args) {
    MaybeContext ctx(this);
    return oopp::make_remote<T>(machine, std::forward<A>(args)...);
  }

  /// The paper's `new(machine i) T[n]` for plain data.
  template <class T>
  remote_data<T> make_remote_array(net::MachineId machine, std::uint64_t n) {
    MaybeContext ctx(this);
    auto p = oopp::make_remote<RemoteVector<T>>(machine, n);
    return remote_data<T>(p, n);
  }

  template <class T>
  remote_data<T> make_remote_array(net::MachineId machine,
                                   std::vector<T> init) {
    MaybeContext ctx(this);
    const std::uint64_t n = init.size();
    auto p = oopp::make_remote<RemoteVector<T>>(machine, std::move(init));
    return remote_data<T>(p, n);
  }

  // -- persistent processes (§5) --------------------------------------------

  /// Checkpoint a live process under a symbolic address.  The process
  /// keeps running; the image on disk reflects its state at the point
  /// where its command queue was drained.  The Uri parameter validates at
  /// the boundary: malformed addresses throw InvalidUri before any
  /// registry state is touched.
  template <class T>
  void persist(const remote_ptr<T>& p, const Uri& uri) {
    MaybeContext ctx(this);
    checkpoint_impl(p.ref(), uri.str(), /*destroy_after=*/false,
                    rpc::class_def<T>::name());
  }

  /// Checkpoint and terminate: the process becomes passive — reachable
  /// only through its symbolic address until lookup()/activate()
  /// re-activates it.
  template <class T>
  void passivate(const remote_ptr<T>& p, const Uri& uri) {
    MaybeContext ctx(this);
    checkpoint_impl(p.ref(), uri.str(), /*destroy_after=*/true,
                    rpc::class_def<T>::name());
  }

  /// Resolve a symbolic address.  A live process is returned as-is; a
  /// passive one is re-activated from its image on `activate_on`
  /// (defaulting to its home machine).  Throws oopp::Error for unknown
  /// addresses and class mismatches.
  template <class T>
  remote_ptr<T> lookup(const Uri& uri,
                       std::optional<net::MachineId> activate_on = {}) {
    MaybeContext ctx(this);
    rpc::ensure_registered<T>();
    return remote_ptr<T>(
        lookup_impl(uri.str(), rpc::class_def<T>::name(), activate_on));
  }

  /// Re-activate a passive process on an explicit machine.  Same contract
  /// as lookup() with a target: a live process is returned where it runs,
  /// a passive one comes back to life on `on`.
  template <class T>
  remote_ptr<T> activate(const Uri& uri, net::MachineId on) {
    return lookup<T>(uri, on);
  }

  /// Move a persistent process to another machine: checkpoint, terminate,
  /// re-activate from the image on `target`.  Previously held remote
  /// pointers dangle; the returned pointer is the process's new identity.
  /// Registered symbolic addresses keep working (the record is updated
  /// when the process was registered).
  template <class T>
  remote_ptr<T> migrate(const remote_ptr<T>& p, net::MachineId target) {
    MaybeContext ctx(this);
    rpc::ensure_registered<T>();
    return remote_ptr<T>(
        migrate_impl(p.ref(), target, rpc::class_def<T>::name()));
  }

  /// Drop a symbolic address and its on-disk image.  Does not touch a live
  /// process.  Returns false if the address was unknown.
  bool forget(const Uri& uri);

  /// All registered symbolic addresses.
  std::vector<std::string> persisted_uris();

  /// The effective durability knobs this cluster was built with.
  [[nodiscard]] const storage::ReplicaOptions& replica_options() const {
    return replica_;
  }

  /// The chain-replicated store backing the symbolic-address registry, or
  /// nullptr when the legacy single-NameService backend is active
  /// (replica.replicas <= 1, single machine, or mesh deployment).  Admin
  /// surface — fault tests use it to kill and heal shard primaries.
  kv::KvStore* registry_store();

  /// Checkpoint the registry to state_dir/registry.img now (also done
  /// automatically on shutdown when Options::persistent_registry is set).
  void save_registry();

  /// Fresh checkpoint of every *live* registered process (their images
  /// catch up to current state), so a subsequent cluster restart with a
  /// persistent registry resumes everything from "now".  Returns the
  /// number of processes checkpointed.
  std::size_t checkpoint_all();

  // -- automatic passivation ("activating and de-activating processes as
  //    needed", §5) ---------------------------------------------------------

  /// Cap the number of *registered* processes live at once.  When an
  /// activation or persist would exceed the cap, the least-recently-used
  /// registered process is passivated automatically (checkpointed and
  /// terminated).  Direct remote pointers to an auto-passivated process
  /// dangle; under a cap, access registered processes through their
  /// symbolic addresses — lookup() re-activates transparently.
  /// 0 (default) = unlimited.
  void set_active_limit(std::size_t limit);

  /// Number of registered processes currently live.
  [[nodiscard]] std::size_t active_registered();

 private:
  struct MaybeContext {
    // Re-entering the current context is a no-op restore, so the guard
    // can be unconditional (and GCC's maybe-uninitialized analysis stays
    // happy, unlike with an optional<ContextGuard>).
    rpc::Node::ContextGuard guard;
    explicit MaybeContext(Cluster* c)
        : guard(rpc::Node::current() != nullptr ? rpc::Node::current()
                                                : &c->node(c->local_)) {}
  };

  // The registry backend is either the paper's single NameService process
  // (legacy) or a chain-replicated kv::KvStore (replica.replicas > 1).
  // reg_* are the only paths the rest of the Cluster uses; they hide the
  // choice and, in kv mode, heal-and-retry once after a shard death.
  struct RegistryBackend;
  RegistryBackend& registry();
  void reg_bind(const std::string& uri, const PersistRecord& rec);
  std::optional<PersistRecord> reg_resolve(const std::string& uri);
  bool reg_unbind(const std::string& uri);
  std::vector<std::string> reg_list();
  /// Probe every shard primary of the replicated registry; promote the
  /// backup of each dead one.  Counted as storage.replica/registry_failovers.
  void heal_registry();
  template <class F>
  auto registry_op(F&& f);  // defined in cluster.cpp (used only there)

  void checkpoint_impl(RemoteRef ref, const std::string& uri,
                       bool destroy_after, const std::string& expected_class);

  /// Passivate the live process behind a registered URI (no LRU upkeep).
  void passivate_registered(const std::string& uri);
  /// Mark a URI live in the LRU and enforce the active limit.
  void note_live(const std::string& uri);
  /// Drop a URI from the LRU (passivated, forgotten, or destroyed).
  void note_gone(const std::string& uri);
  RemoteRef lookup_impl(const std::string& uri,
                        const std::string& expected_class,
                        std::optional<net::MachineId> activate_on);
  RemoteRef migrate_impl(RemoteRef ref, net::MachineId target,
                         const std::string& expected_class);
  [[nodiscard]] std::filesystem::path image_path(const std::string& uri) const;

  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<rpc::Node>> nodes_;  // null = remote process
  net::MachineId local_ = 0;
  std::optional<rpc::Node::ContextGuard> driver_guard_;
  std::filesystem::path state_dir_;
  bool own_state_dir_ = false;
  bool persistent_registry_ = false;
  storage::ReplicaOptions replica_{};
  bool replicated_registry_ = false;

  // Creating the registry backend takes blocking remote calls, which must
  // not run under ns_mu_ (the lock checker enforces this): the first
  // caller flips ns_initializing_ and creates outside the lock while
  // later callers wait on ns_cv_.
  util::CheckedMutex ns_mu_{"core.Cluster.ns"};
  util::CondVar ns_cv_;
  bool ns_initializing_ = false;
  std::unique_ptr<RegistryBackend> registry_;

  // LRU of live registered processes (front = most recently used).
  util::CheckedMutex lru_mu_{"core.Cluster.lru"};
  std::size_t active_limit_ = 0;
  std::list<std::string> lru_;
  std::unordered_map<std::string, std::list<std::string>::iterator> lru_pos_;
};

}  // namespace oopp
