// ProcessGroup<T>: an array of remote processes operated on together.
//
// The paper's §4 uses an array of FFT processes: the master creates one
// per machine, hands every member the whole group (deep-copied remote
// pointers), runs methods on all members, and synchronizes them with a
// compiler-supported barrier (`fft->barrier()`).  ProcessGroup packages
// those idioms:
//
//   call_all  — the sequential loop of §2 (one member at a time);
//   async_all — the compiler-split loop of §4 (all members in flight);
//   barrier() — completes when every member has drained its command queue.
//
// A ProcessGroup serializes as a vector of remote pointers, so passing a
// group to a remote method performs exactly the deep copy the paper calls
// "preferable".
#pragma once

#include <cstddef>
#include <vector>

#include "core/future.hpp"
#include "core/remote_ptr.hpp"

namespace oopp {

template <class T>
class ProcessGroup {
 public:
  ProcessGroup() = default;
  explicit ProcessGroup(std::vector<remote_ptr<T>> members)
      : members_(std::move(members)) {}

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  remote_ptr<T>& operator[](std::size_t i) { return members_[i]; }
  const remote_ptr<T>& operator[](std::size_t i) const { return members_[i]; }
  void push_back(remote_ptr<T> p) { members_.push_back(p); }

  auto begin() { return members_.begin(); }
  auto end() { return members_.end(); }
  auto begin() const { return members_.begin(); }
  auto end() const { return members_.end(); }
  [[nodiscard]] const std::vector<remote_ptr<T>>& members() const {
    return members_;
  }

  /// Sequential semantics (§2): each member's call completes before the
  /// next is issued.  Results are discarded; use collect() to keep them.
  template <auto M, class... A>
  void call_all(const A&... args) const {
    for (const auto& p : members_) p.template call<M>(args...);
  }

  /// Split-loop semantics (§4): issue every send, then it is up to the
  /// caller when to collect.  Wall-clock is the slowest member, not the sum.
  template <auto M, class... A>
  [[nodiscard]] std::vector<Future<rpc::method_result_t<M>>> async_all(
      const A&... args) const {
    std::vector<Future<rpc::method_result_t<M>>> futs;
    futs.reserve(members_.size());
    for (const auto& p : members_) futs.push_back(p.template async<M>(args...));
    return futs;
  }

  /// async_all + gather of all results (non-void methods).
  template <auto M, class... A>
  [[nodiscard]] std::vector<rpc::method_result_t<M>> collect(
      const A&... args) const {
    auto futs = async_all<M>(args...);
    std::vector<rpc::method_result_t<M>> out;
    out.reserve(futs.size());
    for (auto& f : futs) out.push_back(f.get());
    return out;
  }

  /// async_all + wait for void methods.
  template <auto M, class... A>
  void invoke_all(const A&... args) const {
    auto futs = async_all<M>(args...);
    for (auto& f : futs) f.get();
  }

  /// Per-member arguments: fn(i) produces the argument tuple for member i.
  template <auto M, class ArgFn>
  void invoke_all_indexed(ArgFn&& fn) const {
    std::vector<Future<rpc::method_result_t<M>>> futs;
    futs.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      futs.push_back(std::apply(
          [&](const auto&... a) { return members_[i].template async<M>(a...); },
          fn(i)));
    }
    for (auto& f : futs) f.get();
  }

  /// The paper's `fft->barrier()`: completes once every member has drained
  /// all previously issued commands.
  void barrier() const {
    std::vector<Future<void>> futs;
    futs.reserve(members_.size());
    for (const auto& p : members_) futs.push_back(p.async_ping());
    for (auto& f : futs) f.get();
  }

  /// Terminate every member process (in parallel).
  void destroy_all() {
    std::vector<Future<void>> futs;
    futs.reserve(members_.size());
    for (const auto& p : members_) futs.push_back(p.async_destroy());
    for (auto& f : futs) f.get();
    members_.clear();
  }

 private:
  std::vector<remote_ptr<T>> members_;

  template <class Ar, class U>
  friend void oopp_serialize(Ar& ar, ProcessGroup<U>& g);
};

template <class Ar, class T>
void oopp_serialize(Ar& ar, ProcessGroup<T>& g) {
  ar(g.members_);
}

}  // namespace oopp
