// ProcessGroup<T>: an array of remote processes operated on together.
//
// The paper's §4 uses an array of FFT processes: the master creates one
// per machine, hands every member the whole group (deep-copied remote
// pointers), runs methods on all members, and synchronizes them with a
// compiler-supported barrier (`fft->barrier()`).  ProcessGroup packages
// those idioms:
//
//   call<M>   — the sequential loop of §2 (one member at a time);
//   async<M>  — the compiler-split loop of §4 (all members in flight);
//   gather<M> — async + collect every member's result (or just wait,
//               for void methods);
//   barrier() — completes when every member has drained its command queue.
//
// The pre-unification spellings were deprecated in PR 2 and removed in
// PR 4; docs/TELEMETRY.md keeps the migration table.
//
// A ProcessGroup serializes as a vector of remote pointers, so passing a
// group to a remote method performs exactly the deep copy the paper calls
// "preferable".
#pragma once

#include <cstddef>
#include <exception>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "core/expected.hpp"
#include "core/future.hpp"
#include "core/remote_ptr.hpp"

namespace oopp {

template <class T>
class ProcessGroup {
 public:
  ProcessGroup() = default;
  explicit ProcessGroup(std::vector<remote_ptr<T>> members)
      : members_(std::move(members)) {}

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  remote_ptr<T>& operator[](std::size_t i) { return members_[i]; }
  const remote_ptr<T>& operator[](std::size_t i) const { return members_[i]; }
  void push_back(remote_ptr<T> p) { members_.push_back(p); }

  auto begin() { return members_.begin(); }
  auto end() { return members_.end(); }
  auto begin() const { return members_.begin(); }
  auto end() const { return members_.end(); }
  [[nodiscard]] const std::vector<remote_ptr<T>>& members() const {
    return members_;
  }

  /// Sequential semantics (§2): each member's call completes before the
  /// next is issued.  Results are discarded; use gather() to keep them.
  template <auto M, class... A>
  void call(const A&... args) const {
    for (const auto& p : members_) p.template call<M>(args...);
  }

  /// Split-loop semantics (§4): issue every send, then it is up to the
  /// caller when to collect.  Wall-clock is the slowest member, not the sum.
  template <auto M, class... A>
  [[nodiscard]] std::vector<Future<rpc::method_result_t<M>>> async(
      const A&... args) const {
    std::vector<Future<rpc::method_result_t<M>>> futs;
    futs.reserve(members_.size());
    for (const auto& p : members_) futs.push_back(p.template async<M>(args...));
    return futs;
  }

  /// async + receive from every member: returns the vector of results, or
  /// (for void methods) just waits for all members to complete.
  template <auto M, class... A>
  auto gather(const A&... args) const {
    auto futs = async<M>(args...);
    if constexpr (std::is_void_v<rpc::method_result_t<M>>) {
      // gather is all-or-nothing by contract; gather_partial is the
      // bounded, typed spelling.  oopp-lint: allow(future-bare-get)
      for (auto& f : futs) f.get();
    } else {
      std::vector<rpc::method_result_t<M>> out;
      out.reserve(futs.size());
      // oopp-lint: allow(future-bare-get) — see above.
      for (auto& f : futs) out.push_back(f.get());
      return out;
    }
  }

  /// gather with per-member arguments: fn(i) produces member i's argument
  /// tuple.  Results are discarded (the §4 loops it serves are void).
  template <auto M, class ArgFn>
  void gather_indexed(ArgFn&& fn) const {
    std::vector<Future<rpc::method_result_t<M>>> futs;
    futs.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      futs.push_back(std::apply(
          [&](const auto&... a) { return members_[i].template async<M>(a...); },
          fn(i)));
    }
    // gather_indexed_partial is the bounded, typed spelling.
    // oopp-lint: allow(future-bare-get)
    for (auto& f : futs) f.get();
  }

  // -- partial-failure operations (see docs/FAULTS.md) ----------------------
  //
  // gather<M> is all-or-nothing: the first failing member throws and the
  // surviving members' results are lost.  The _partial variants contain
  // each member's failure in an Expected, so one dead member costs one
  // typed error, not the whole operation.  Failures contained include
  // those raised at issue time (e.g. rpc::PeerUnavailable from an open
  // circuit breaker) — position i of the result always describes member i.

  /// gather, degraded gracefully: every member's result or failure.
  template <auto M, class... A>
  [[nodiscard]] std::vector<Expected<rpc::method_result_t<M>>> gather_partial(
      const A&... args) const {
    return collect_partial_impl<rpc::method_result_t<M>>(
        [&](std::size_t i) { return members_[i].template async<M>(args...); });
  }

  /// gather_indexed, degraded gracefully.  Unlike gather_indexed, results
  /// are kept — the caller deciding what to do about a partial failure
  /// usually wants the surviving values too.
  template <auto M, class ArgFn>
  [[nodiscard]] std::vector<Expected<rpc::method_result_t<M>>>
  gather_indexed_partial(ArgFn&& fn) const {
    return collect_partial_impl<rpc::method_result_t<M>>([&](std::size_t i) {
      return std::apply(
          [&](const auto&... a) { return members_[i].template async<M>(a...); },
          fn(i));
    });
  }

  /// barrier, degraded gracefully: waits for every member it can reach and
  /// reports which members failed instead of throwing on the first.
  [[nodiscard]] std::vector<Expected<void>> barrier_partial() const {
    return collect_partial_impl<void>(
        [&](std::size_t i) { return members_[i].async_ping(); });
  }

  /// The paper's `fft->barrier()`: completes once every member has drained
  /// all previously issued commands.
  void barrier() const {
    std::vector<Future<void>> futs;
    futs.reserve(members_.size());
    for (const auto& p : members_) futs.push_back(p.async_ping());
    // barrier_partial is the bounded, typed spelling.
    // oopp-lint: allow(future-bare-get)
    for (auto& f : futs) f.get();
  }

  /// Terminate every member process (in parallel).
  void destroy_all() {
    std::vector<Future<void>> futs;
    futs.reserve(members_.size());
    for (const auto& p : members_) futs.push_back(p.async_destroy());
    // oopp-lint: allow(future-bare-get) — teardown waits for completion.
    for (auto& f : futs) f.get();
    members_.clear();
  }

 private:
  /// Issue one future per member via `issue(i)`, then collect each into an
  /// Expected.  Issue-time throws (breaker fast-fail, dead node) are
  /// contained too, so position i always describes member i.
  template <class R, class IssueFn>
  [[nodiscard]] std::vector<Expected<R>> collect_partial_impl(
      IssueFn&& issue) const {
    struct IssueError {
      std::exception_ptr ex;
      net::CallStatus code = net::CallStatus::kInternal;
    };
    std::vector<std::optional<Future<R>>> futs(members_.size());
    std::vector<IssueError> errs(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      try {
        futs[i].emplace(issue(i));
      } catch (const Error& e) {
        errs[i] = {std::current_exception(), e.code()};
      } catch (...) {
        errs[i] = {std::current_exception(), net::CallStatus::kInternal};
      }
    }
    std::vector<Expected<R>> out;
    out.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (futs[i]) {
        out.push_back(futs[i]->get_expected());
      } else {
        out.push_back(Expected<R>(std::move(errs[i].ex), errs[i].code));
      }
    }
    return out;
  }

  std::vector<remote_ptr<T>> members_;

  template <class Ar, class U>
  friend void oopp_serialize(Ar& ar, ProcessGroup<U>& g);
};

template <class Ar, class T>
void oopp_serialize(Ar& ar, ProcessGroup<T>& g) {
  ar(g.members_);
}

}  // namespace oopp
