// Watchdog: a failure detector, and the library's demonstration of an
// *active* object — a process with its own internal thread that executes
// methods on other objects unprompted.
//
// The paper's processes are reactive (they serve commands), but nothing
// stops a servant from owning a thread: the watchdog probes a set of
// remote objects with pings on a fixed period and records which are alive,
// which are gone (ObjectNotFound — deleted), and which are unreachable.
// Supervision logic (e.g. KvStore::promote_backup) polls status() and
// reacts.
//
// The internal thread needs a machine context to issue pings; it inherits
// the context of the node that constructed the watchdog.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/remote_ptr.hpp"
#include "rpc/binding.hpp"
#include "rpc/errors.hpp"
#include "util/checked_mutex.hpp"

namespace oopp {

enum class WatchState : std::uint8_t {
  kUnknown = 0,  // not probed yet
  kAlive = 1,
  kDead = 2,  // ObjectNotFound: the process was deleted
};

struct WatchReport {
  RemoteRef target;
  WatchState state = WatchState::kUnknown;
  std::uint64_t probes = 0;
  std::uint64_t failures = 0;
};

template <class Ar>
void oopp_serialize(Ar& ar, WatchReport& r) {
  std::uint8_t s = static_cast<std::uint8_t>(r.state);
  ar(r.target, s, r.probes, r.failures);
  r.state = static_cast<WatchState>(s);
}

class Watchdog {
 public:
  /// Probe every watched object each `period_ms` milliseconds.
  explicit Watchdog(std::uint32_t period_ms)
      : period_ms_(period_ms), home_(rpc::Node::current()) {
    OOPP_CHECK(period_ms_ > 0);
    OOPP_CHECK_MSG(home_ != nullptr,
                   "Watchdog must be constructed on a machine");
    // oopp-lint: allow(raw-thread-primitive) — joined in the destructor.
    prober_ = std::thread([this] { probe_loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (prober_.joinable()) prober_.join();
  }

  /// Watch an object (any remotable type; the probe is the built-in ping).
  void watch(RemoteRef target) {
    std::lock_guard lock(mu_);
    reports_.emplace(target, WatchReport{target, WatchState::kUnknown, 0, 0});
  }

  bool unwatch(RemoteRef target) {
    std::lock_guard lock(mu_);
    return reports_.erase(target) > 0;
  }

  [[nodiscard]] std::vector<WatchReport> status() const {
    std::lock_guard lock(mu_);
    std::vector<WatchReport> out;
    out.reserve(reports_.size());
    for (const auto& [_, r] : reports_) out.push_back(r);
    return out;
  }

  [[nodiscard]] std::uint64_t rounds() const {
    return rounds_.load(std::memory_order_relaxed);
  }

 private:
  void probe_loop() {
    // The prober runs inside the servant but issues ordinary remote
    // calls — it needs the hosting node's context.
    rpc::Node::ContextGuard guard(home_);
    std::unique_lock lock(mu_);
    while (!stopping_) {
      cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                   [this] { return stopping_; });
      if (stopping_) break;
      auto targets = reports_;
      lock.unlock();

      // Each probe's outcome for this round only.  `state` is set on a
      // definitive verdict (alive / dead); a transient failure leaves it
      // empty so the live entry keeps whatever state it has.
      struct RoundResult {
        std::optional<WatchState> state;
        bool failed = false;
      };
      std::map<RemoteRef, RoundResult> results;
      for (const auto& [ref, report] : targets) {
        RoundResult res;
        try {
          ping_ref(ref);
          res.state = WatchState::kAlive;
        } catch (const rpc::ObjectNotFound&) {
          res.state = WatchState::kDead;
          res.failed = true;
        } catch (const std::exception&) {
          res.failed = true;  // transient
        }
        results.emplace(ref, res);
      }

      lock.lock();
      // Merge this round's deltas only.  Assigning the whole pre-round
      // snapshot back would resurrect stale counters on a target that was
      // unwatched and re-watched while the probes ran unlocked.
      for (const auto& [ref, res] : results) {
        auto it = reports_.find(ref);
        if (it == reports_.end()) continue;  // unwatched mid-round
        it->second.probes += 1;
        if (res.failed) it->second.failures += 1;
        if (res.state) it->second.state = *res.state;
      }
      rounds_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::uint32_t period_ms_;
  rpc::Node* home_;
  mutable util::CheckedMutex mu_{"core.Watchdog"};
  util::CondVar cv_;
  std::map<RemoteRef, WatchReport> reports_;
  std::atomic<std::uint64_t> rounds_{0};
  bool stopping_ = false;
  std::thread prober_;  // oopp-lint: allow(raw-thread-primitive)
};

}  // namespace oopp

/// AnyObject is a probe-only handle: no constructors, no methods beyond
/// the built-in ping every class serves.
template <>
struct oopp::rpc::class_def<oopp::Watchdog> {
  using W = oopp::Watchdog;
  static std::string name() { return "oopp.Watchdog"; }
  using ctors = ctor_list<ctor<std::uint32_t>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&W::watch>("watch");
    b.template method<&W::unwatch>("unwatch");
    b.template method<&W::status>("status", reentrant);
    b.template method<&W::rounds>("rounds", reentrant);
  }
};
