// Remote plain data (paper §2):
//
//     double* data = new(machine 2) double[1024];
//     data[7] = 3.1415;
//     double x = data[2];
//
// becomes
//
//     auto data = cluster.make_remote_array<double>(2, 1024);
//     data[7] = 3.1415;
//     double x = data[2];
//
// Element access costs one client/server round trip, exactly as the paper
// specifies.  Bulk transfers (slice/assign/to_vector) exist because the E2
// experiment quantifies how expensive the per-element protocol is — the
// framework makes the choice available, the programmer makes the call.
#pragma once

#include <cstdint>
#include <vector>

#include "core/remote_ptr.hpp"
#include "rpc/binding.hpp"
#include "util/assert.hpp"
#include "util/type_name.hpp"

namespace oopp {

/// Servant: a block of n values of T living on some machine.
template <class T>
class RemoteVector {
 public:
  explicit RemoteVector(std::uint64_t n) : v_(n) {}
  explicit RemoteVector(std::vector<T> init) : v_(std::move(init)) {}

  /// Restore from a passivated image (persistence).
  explicit RemoteVector(serial::IArchive& ia) { ia(v_); }
  void oopp_save(serial::OArchive& oa) const { oa(v_); }

  T get(std::uint64_t i) const {
    OOPP_CHECK_MSG(i < v_.size(), "RemoteVector index " << i << " out of "
                                                        << v_.size());
    return v_[i];
  }
  void set(std::uint64_t i, T x) {
    OOPP_CHECK_MSG(i < v_.size(), "RemoteVector index " << i << " out of "
                                                        << v_.size());
    v_[i] = std::move(x);
  }
  std::vector<T> slice(std::uint64_t lo, std::uint64_t n) const {
    OOPP_CHECK(lo + n <= v_.size());
    return std::vector<T>(v_.begin() + lo, v_.begin() + lo + n);
  }
  void assign(std::uint64_t lo, const std::vector<T>& xs) {
    OOPP_CHECK(lo + xs.size() <= v_.size());
    std::copy(xs.begin(), xs.end(), v_.begin() + lo);
  }
  void fill(T x) { std::fill(v_.begin(), v_.end(), x); }
  std::uint64_t size() const { return v_.size(); }

  /// Local reduction — "move the computation to the data" for free.
  T sum() const {
    T acc{};
    for (const auto& x : v_) acc += x;
    return acc;
  }

 private:
  std::vector<T> v_;
};

namespace rpc_defs {}  // anchor for grep: class_defs live next to classes

/// remote_data<T>: client-side handle with array syntax.
template <class T>
class remote_data {
 public:
  remote_data() = default;
  remote_data(remote_ptr<RemoteVector<T>> p, std::uint64_t n)
      : p_(p), n_(n) {}

  /// Proxy giving `data[i] = x` / `T x = data[i]` the paper's semantics:
  /// each use is one remote round trip.
  class reference {
   public:
    reference(remote_ptr<RemoteVector<T>> p, std::uint64_t i)
        : p_(p), i_(i) {}
    operator T() const { return p_.template call<&RemoteVector<T>::get>(i_); }
    reference& operator=(T x) {
      p_.template call<&RemoteVector<T>::set>(i_, std::move(x));
      return *this;
    }

   private:
    remote_ptr<RemoteVector<T>> p_;
    std::uint64_t i_;
  };

  reference operator[](std::uint64_t i) { return reference(p_, i); }
  T operator[](std::uint64_t i) const {
    return p_.template call<&RemoteVector<T>::get>(i);
  }

  // Asynchronous element ops: the §4 split-loop spelling of `data[i]`.
  // A burst of these is what per-peer send coalescing is for — with a
  // batching fabric, each flush is one syscall instead of one per
  // element (see docs/PROTOCOL.md, "Batch frames").
  [[nodiscard]] Future<T> async_get(std::uint64_t i) const {
    return p_.template async<&RemoteVector<T>::get>(i);
  }
  [[nodiscard]] Future<void> async_set(std::uint64_t i, T x) {
    return p_.template async<&RemoteVector<T>::set>(i, std::move(x));
  }

  [[nodiscard]] std::uint64_t size() const { return n_; }
  [[nodiscard]] bool valid() const { return p_.valid(); }
  [[nodiscard]] remote_ptr<RemoteVector<T>> ptr() const { return p_; }

  /// A copy of this handle whose element and bulk accesses use `p`
  /// (forwarded to the underlying remote pointer's with_policy).
  [[nodiscard]] remote_data with_policy(const rpc::CallPolicy& p) const {
    return remote_data(p_.with_policy(p), n_);
  }

  // Bulk transfers.
  [[nodiscard]] std::vector<T> to_vector() const {
    return p_.template call<&RemoteVector<T>::slice>(std::uint64_t{0}, n_);
  }
  [[nodiscard]] std::vector<T> slice(std::uint64_t lo, std::uint64_t n) const {
    return p_.template call<&RemoteVector<T>::slice>(lo, n);
  }
  void assign(std::uint64_t lo, const std::vector<T>& xs) {
    p_.template call<&RemoteVector<T>::assign>(lo, xs);
  }
  void fill(T x) { p_.template call<&RemoteVector<T>::fill>(std::move(x)); }
  [[nodiscard]] T sum() const {
    return p_.template call<&RemoteVector<T>::sum>();
  }

  // Asynchronous bulk variants — the same unified call/async surface the
  // other remote handles expose; pair with Future::get_for for deadlines.
  [[nodiscard]] Future<std::vector<T>> async_slice(std::uint64_t lo,
                                                   std::uint64_t n) const {
    return p_.template async<&RemoteVector<T>::slice>(lo, n);
  }
  [[nodiscard]] Future<void> async_assign(std::uint64_t lo,
                                          const std::vector<T>& xs) {
    return p_.template async<&RemoteVector<T>::assign>(lo, xs);
  }
  [[nodiscard]] Future<void> async_fill(T x) {
    return p_.template async<&RemoteVector<T>::fill>(std::move(x));
  }
  [[nodiscard]] Future<T> async_sum() const {
    return p_.template async<&RemoteVector<T>::sum>();
  }

  /// delete[] — terminate the block's process.
  void destroy() {
    p_.destroy();
    p_ = {};
    n_ = 0;
  }

 private:
  remote_ptr<RemoteVector<T>> p_;
  std::uint64_t n_ = 0;
};

}  // namespace oopp

// Protocol description for RemoteVector<T> — one registration per element
// type, instantiated on first use.
template <class T>
struct oopp::rpc::class_def<oopp::RemoteVector<T>> {
  using V = oopp::RemoteVector<T>;

  static std::string name() {
    return "oopp.vec<" + std::string(oopp::type_name<T>()) + ">";
  }

  using ctors = ctor_list<ctor<std::uint64_t>, ctor<std::vector<T>>>;

  template <class B>
  static void bind(B& b) {
    b.template method<&V::get>("get");
    b.template method<&V::set>("set");
    b.template method<&V::slice>("slice");
    b.template method<&V::assign>("assign");
    b.template method<&V::fill>("fill");
    b.template method<&V::size>("size");
    if constexpr (requires(T a, const T& b) { a += b; })
      b.template method<&V::sum>("sum");
    b.persistent();
  }
};
