// remote_ptr<T>: a typed pointer to an object living on another machine.
//
// This is the paper's central abstraction: `new(machine i) T(...)` yields a
// pointer through which methods execute on the remote process.  C++ cannot
// overload `->` to marshal arbitrary member calls, so the dereference is
// spelled explicitly:
//
//     paper:   PageStore->write(page, addr);
//     here:    PageStore.call<&PageDevice::write>(page, addr);
//
// call<>  — synchronous, the paper's §2 semantics: the instruction and all
//           its communications complete before the next one runs.
// async<> — returns a Future; the §4 "split loop" escape hatch.
//
// Remote pointers serialize by value ({machine, object id}), convert
// implicitly from derived to base (process inheritance, §3), and destroy()
// is the paper's `delete p` — it terminates the remote process after all
// previously issued commands complete.
#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "core/future.hpp"
#include "core/remote_ref.hpp"
#include "rpc/binding.hpp"
#include "rpc/call_policy.hpp"
#include "rpc/node.hpp"
#include "rpc/traits.hpp"
#include "util/assert.hpp"

namespace oopp {

namespace detail {

/// The node whose context the calling thread runs in; hard error if none —
/// remote calls only make sense "on a machine".
inline rpc::Node& context_node() {
  rpc::Node* n = rpc::Node::current();
  OOPP_CHECK_MSG(n != nullptr,
                 "no machine context on this thread; create the Cluster on "
                 "this thread or use Cluster::use(machine)");
  return *n;
}

}  // namespace detail

template <class T>
class remote_ptr {
 public:
  using element_type = T;

  remote_ptr() = default;
  remote_ptr(net::MachineId machine, net::ObjectId object)
      : ref_{machine, object} {}
  explicit remote_ptr(RemoteRef ref) : ref_(ref) {}

  /// Derived-to-base conversion: a remote ArrayPageDevice is a remote
  /// PageDevice (paper §3).
  template <class U>
    requires(std::is_base_of_v<T, U> && !std::is_same_v<T, U>)
  remote_ptr(const remote_ptr<U>& u) : ref_(u.ref()) {}

  [[nodiscard]] bool valid() const { return ref_.valid(); }
  explicit operator bool() const { return valid(); }
  [[nodiscard]] net::MachineId machine() const { return ref_.machine; }
  [[nodiscard]] net::ObjectId id() const { return ref_.object; }
  [[nodiscard]] RemoteRef ref() const { return ref_; }

  /// Pointers compare by identity (which remote object), not by calling
  /// convention — two handles to one object are equal even if only one
  /// carries a retry policy.
  bool operator==(const remote_ptr& o) const { return ref_ == o.ref_; }

  /// A copy of this handle whose calls use `p` instead of the node-level
  /// default policy.  The policy is a property of the handle, not the
  /// object: it does not serialize and does not affect equality.
  [[nodiscard]] remote_ptr with_policy(const rpc::CallPolicy& p) const {
    remote_ptr out(*this);
    out.policy_ = p;
    return out;
  }

  /// The handle's own policy, if with_policy installed one.
  [[nodiscard]] const std::optional<rpc::CallPolicy>& policy() const {
    return policy_;
  }

  /// Synchronous remote method execution.
  template <auto M, class... A>
  rpc::method_result_t<M> call(A&&... args) const {
    using R = rpc::method_result_t<M>;
    Future<R> f =
        async_impl<M>(telemetry::Verb::kCall, std::forward<A>(args)...);
    // call<M> is the blocking spelling; a with_policy() deadline bounds
    // it.  oopp-lint: allow(future-bare-get)
    return f.get();
  }

  /// Asynchronous remote method execution: the "send" half of the split
  /// loop.  The returned Future's get() is the "receive" half.
  template <auto M, class... A>
  Future<rpc::method_result_t<M>> async(A&&... args) const {
    return async_impl<M>(telemetry::Verb::kAsync, std::forward<A>(args)...);
  }

  /// No-op round trip through the object's command queue: completes after
  /// every previously issued command on this object has completed.
  // oopp-lint: allow(future-bare-get) — blocking spelling; see call<M>.
  void ping() const { async_ping().get(); }  // oopp-lint: allow(async-then-immediate-get)

  [[nodiscard]] Future<void> async_ping() const {
    OOPP_CHECK(valid());
    rpc::ensure_registered<T>();
    serial::OArchive oa;
    telemetry::TraceContext issued;
    auto fut = detail::context_node().async_raw(
        ref_.machine, ref_.object, net::method_id(rpc::kPingMethod), oa.take(),
        telemetry::Verb::kBarrier, &issued, policy_ ? &*policy_ : nullptr);
    return Future<void>(std::move(fut), issued);
  }

  /// The paper's `delete p`: terminate the remote process.  Completes
  /// after all previously issued commands on the object have finished.
  // oopp-lint: allow(future-bare-get) — blocking spelling; see call<M>.
  void destroy() const { async_destroy().get(); }  // oopp-lint: allow(async-then-immediate-get)

  [[nodiscard]] Future<void> async_destroy() const {
    OOPP_CHECK(valid());
    serial::OArchive oa;
    oa(static_cast<std::uint64_t>(ref_.object));
    telemetry::TraceContext issued;
    auto fut = detail::context_node().async_raw(
        ref_.machine, net::kNodeObject, net::method_id(rpc::kDestroyMethod),
        oa.take(), telemetry::Verb::kControl, &issued,
        policy_ ? &*policy_ : nullptr);
    return Future<void>(std::move(fut), issued);
  }

 private:
  template <auto M, class... A>
  Future<rpc::method_result_t<M>> async_impl(telemetry::Verb verb,
                                             A&&... args) const {
    static_assert(std::is_base_of_v<rpc::method_class_t<M>, T>,
                  "method does not belong to T or a base of T");
    OOPP_CHECK_MSG(valid(), "call through null remote pointer");
    rpc::ensure_registered<T>();
    const net::MethodId mid = rpc::method_registry<M>::id;
    OOPP_CHECK_MSG(mid != 0,
                   "method not bound in class_def — add it to bind()");
    typename rpc::member_fn_traits<decltype(M)>::args_tuple tup(
        std::forward<A>(args)...);
    serial::OArchive oa;
    oa(tup);
    telemetry::TraceContext issued;
    // to_buffer preserves spliced serial::Bytes arguments as scatter-
    // gather slices: a forwarded payload goes back out without a copy.
    auto fut = detail::context_node().async_raw(
        ref_.machine, ref_.object, mid, net::to_buffer(oa), verb, &issued,
        policy_ ? &*policy_ : nullptr);
    return Future<rpc::method_result_t<M>>(std::move(fut), issued);
  }

  RemoteRef ref_;
  std::optional<rpc::CallPolicy> policy_;
};

template <class Ar, class T>
void oopp_serialize(Ar& ar, remote_ptr<T>& p) {
  // One symmetric body: writing reads r from p; reading overwrites r and
  // stores it back.  The redundant store on the write path is free.  A
  // call policy is part of the local handle, not the wire identity — it
  // is neither sent nor received, but must survive the write-path store.
  RemoteRef r = p.ref();
  ar(r);
  auto policy = p.policy();
  p = remote_ptr<T>(r);
  if (policy) p = p.with_policy(*policy);
}

/// Untyped ping: round trip through the command queue of ANY object,
/// known only by reference.  Every class serves the built-in ping, so no
/// registration is needed.  Throws rpc::ObjectNotFound for dead objects.
inline void ping_ref(RemoteRef ref) {
  OOPP_CHECK_MSG(ref.valid(), "ping of null reference");
  serial::OArchive oa;
  (void)detail::context_node().call_raw(
      ref.machine, ref.object, net::method_id(rpc::kPingMethod), oa.take(),
      telemetry::Verb::kBarrier);
}

/// Construct an object of class T on `machine` — the paper's
/// `new(machine i) T(args...)`.  Usable from the driver thread and from
/// inside servant methods (nested construction).
template <class T, class... A>
remote_ptr<T> make_remote(net::MachineId machine, A&&... args) {
  rpc::ensure_registered<T>();
  using def = rpc::class_def<T>;
  constexpr std::size_t idx =
      rpc::ctor_match<typename def::ctors, A...>::index;
  static_assert(idx != rpc::kNoCtor,
                "no registered constructor matches these arguments");
  using Ctor = typename rpc::ctor_at<typename def::ctors, idx>::type;
  typename Ctor::tuple tup(std::forward<A>(args)...);
  serial::OArchive oa;
  oa(def::name(), static_cast<std::uint32_t>(idx), tup);
  net::Message resp = detail::context_node().call_raw(
      machine, net::kNodeObject, net::method_id(rpc::kSpawnMethod), oa.take(),
      telemetry::Verb::kControl);
  serial::IArchive ia(resp.payload);
  return remote_ptr<T>(machine, ia.read<std::uint64_t>());
}

}  // namespace oopp
