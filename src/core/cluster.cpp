#include "core/cluster.hpp"

#include <atomic>
#include <fstream>
#include <span>
#include <unistd.h>

#include "kv/kv_store.hpp"
#include "net/inproc_fabric.hpp"
#include "net/tcp_fabric.hpp"
#include "rpc/errors.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"
#include "util/checked_mutex.hpp"

namespace oopp {

namespace {

std::filesystem::path fresh_state_dir() {
  static std::atomic<unsigned> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   ("oopp-state-" + std::to_string(::getpid()) + "-" +
                    std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir;
}

std::string sanitize_uri(const std::string& uri) {
  std::string out;
  out.reserve(uri.size());
  for (char c : uri) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    out.push_back(keep ? c : '_');
  }
  // Distinguish URIs that collide after sanitization.
  out += "-" + std::to_string(std::hash<std::string>()(uri));
  return out;
}

std::vector<std::byte> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  OOPP_CHECK_MSG(in.good(), "cannot open state image " << p);
  std::vector<std::byte> bytes(std::filesystem::file_size(p));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  OOPP_CHECK_MSG(in.good(), "short read on state image " << p);
  return bytes;
}

void write_file(const std::filesystem::path& p,
                const std::vector<std::byte>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  OOPP_CHECK_MSG(out.good(), "cannot create state image " << p);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  OOPP_CHECK_MSG(out.good(), "short write on state image " << p);
}

// The replicated registry stores each PersistRecord as the archive bytes
// of the record, keyed by the URI string.
std::string encode_record(const PersistRecord& rec) {
  serial::OArchive oa;
  PersistRecord copy = rec;
  oa(copy);
  const auto bytes = oa.take();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

PersistRecord decode_record(const std::string& value) {
  serial::IArchive ia(
      std::as_bytes(std::span(value.data(), value.size())));
  PersistRecord rec;
  ia(rec);
  return rec;
}

}  // namespace

// The symbolic-address directory behind the reg_* helpers: either the
// paper's single NameService process (ns) or, when Options::replica asks
// for durability, a chain-replicated KvStore (kv) whose shard backups live
// one machine over — never both.
struct Cluster::RegistryBackend {
  remote_ptr<NameService> ns;
  std::optional<kv::KvStore> kv;
};

Cluster::Cluster(Options opts) {
  // lockcheck -> telemetry bridge.  util sits below telemetry in the
  // layering, so the checker reports through a hook; install it once per
  // process here, where both layers are visible.
  static const bool lockcheck_hook = [] {
    util::lockcheck::set_event_hook([](util::lockcheck::Event e) {
      static auto& scope = telemetry::Metrics::scope_for("lockcheck");
      static auto& cross_edges = scope.counter("cross_edges_recorded");
      static auto& hazards = scope.counter("hazards_flagged");
      (e == util::lockcheck::Event::kCrossEdgeRecorded ? cross_edges
                                                       : hazards)
          .add(1);
    });
    return true;
  }();
  (void)lockcheck_hook;

  if (!opts.mesh_endpoints.empty()) {
    // Multi-process deployment: this process hosts one machine of the
    // mesh; everything else is reached over real sockets.
    OOPP_CHECK_MSG(opts.local_machine < opts.mesh_endpoints.size(),
                   "local_machine outside the endpoint table");
    local_ = opts.local_machine;
    fabric_ = std::make_unique<net::TcpMeshFabric>(opts.mesh_endpoints,
                                                   opts.transport);
    nodes_.resize(opts.mesh_endpoints.size());
    nodes_[local_] =
        std::make_unique<rpc::Node>(local_, *fabric_, opts.node);
    nodes_[local_]->start();
  } else {
    OOPP_CHECK_MSG(opts.machines >= 1,
                   "a cluster needs at least one machine");
    if (opts.fabric_factory) {
      fabric_ = opts.fabric_factory(opts.machines);
      OOPP_CHECK_MSG(fabric_ != nullptr, "fabric_factory returned null");
    } else {
      switch (opts.fabric) {
        case FabricKind::kInProc:
          fabric_ =
              std::make_unique<net::InProcFabric>(opts.machines, opts.cost);
          break;
        case FabricKind::kTcp:
          fabric_ = std::make_unique<net::TcpFabric>(opts.machines,
                                                     opts.transport);
          break;
      }
    }
    nodes_.reserve(opts.machines);
    for (std::size_t m = 0; m < opts.machines; ++m) {
      nodes_.push_back(std::make_unique<rpc::Node>(
          static_cast<net::MachineId>(m), *fabric_, opts.node));
    }
    for (auto& n : nodes_) n->start();
  }

  if (opts.state_dir.empty()) {
    OOPP_CHECK_MSG(!opts.persistent_registry,
                   "persistent_registry requires an explicit state_dir");
    state_dir_ = fresh_state_dir();
    own_state_dir_ = true;
  } else {
    state_dir_ = opts.state_dir;
    std::filesystem::create_directories(state_dir_);
  }
  persistent_registry_ = opts.persistent_registry;
  replica_ = opts.replica;
  replica_.validate();
  // The replicated registry needs a second machine for the shard backups;
  // with one machine — or a mesh deployment, where peer processes come and
  // go — it falls back to the single NameService.
  replicated_registry_ = replica_.replicas > 1 && nodes_.size() > 1 &&
                         opts.mesh_endpoints.empty();

  // The constructing thread drives the computation from the local driver
  // machine, like the code in the paper's examples runs on machine 0.
  driver_guard_.emplace(nodes_[local_].get());
}

Cluster::~Cluster() {
  if (persistent_registry_ && registry_) {
    try {
      save_registry();
    } catch (...) {
      // Registry checkpointing is best-effort during teardown.
    }
  }
  driver_guard_.reset();

  // Staged shutdown across all machines: first stop accepting traffic,
  // then unblock every caller (a servant blocked on a nested remote call
  // can only finish once its pending future fails), then drain the pools.
  for (auto& n : nodes_)
    if (n) n->stop_receiving();
  for (auto& n : nodes_)
    if (n) n->fail_pending();
  for (auto& n : nodes_)
    if (n) n->stop_pool();
  fabric_->shutdown();

  if (own_state_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(state_dir_, ec);  // best-effort cleanup
  }
}

ClusterStats Cluster::stats() const {
  ClusterStats s;
  s.per_node.reserve(nodes_.size());
  // Remote machines of a mesh deployment report all-zero here; query them
  // with the kStatsMethod control call if needed.
  for (const auto& n : nodes_)
    s.per_node.push_back(n ? n->stats() : rpc::NodeStats{});
  s.messages_sent = fabric_->messages_sent();
  s.bytes_sent = fabric_->bytes_sent();
  return s;
}

std::string Cluster::metrics_report() const {
  return telemetry::Metrics::instance().json();
}

std::size_t Cluster::dump_trace(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  std::size_t written = 0;
  for (net::MachineId m = 0; m < nodes_.size(); ++m) {
    if (!nodes_[m]) continue;  // hosted by another process
    std::ofstream out(dir / ("trace_node" + std::to_string(m) + ".json"));
    out << nodes_[m]->span_sink().json(m) << '\n';
    if (out.good()) ++written;
  }
  return written;
}

std::size_t Cluster::dump_lockgraph(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir /
                    ("lockgraph_node" + std::to_string(local_) + ".json"));
  out << util::lockcheck::dump_graph_json(local_);
  return out.good() ? 1 : 0;
}

rpc::Node& Cluster::node(net::MachineId m) {
  OOPP_CHECK_MSG(m < nodes_.size(),
                 "machine " << m << " out of range (cluster has "
                            << nodes_.size() << ")");
  OOPP_CHECK_MSG(nodes_[m] != nullptr,
                 "machine " << m << " is hosted by another process");
  return *nodes_[m];
}

void Cluster::request_shutdown(net::MachineId m) {
  MaybeContext ctx(this);
  rpc::Node::current()->call_raw(m, net::kNodeObject,
                                 net::method_id(rpc::kShutdownMethod), {});
}

Cluster::RegistryBackend& Cluster::registry() {
  // Creation takes blocking remote calls, so it must not run under
  // ns_mu_: the first caller becomes the initializer and works unlocked;
  // concurrent callers wait on ns_cv_ for the published backend.
  std::unique_lock lock(ns_mu_);
  ns_cv_.wait(lock, [this] { return !ns_initializing_; });
  if (registry_) return *registry_;
  ns_initializing_ = true;
  lock.unlock();

  auto fresh = std::make_unique<RegistryBackend>();
  try {
    const auto registry_img = state_dir_ / "registry.img";
    const bool have_image =
        persistent_registry_ && std::filesystem::exists(registry_img);
    if (replicated_registry_) {
      const auto machines = nodes_.size();
      kv::KvStore::Config cfg;
      cfg.shards = static_cast<int>(std::min<std::size_t>(4, machines));
      cfg.replicate = true;
      // Primaries round-robin across machines, each backup one machine
      // over, so no single machine loss takes both copies of a shard.
      fresh->kv = kv::KvStore::create(
          cfg,
          [machines](int s) {
            return static_cast<net::MachineId>(
                static_cast<std::size_t>(s) % machines);
          },
          [machines](int s) {
            return static_cast<net::MachineId>(
                (static_cast<std::size_t>(s) + 1) % machines);
          });
      if (have_image) {
        // Records of a previous incarnation refer to processes that died
        // with it — mark them passive *before* they enter the store, so a
        // lookup can never claim a stale live object id (it re-activates
        // from the on-disk image instead).
        const auto state = read_file(registry_img);
        serial::IArchive ia(state);
        std::map<std::string, PersistRecord> records;
        ia(records);
        std::vector<std::pair<std::string, std::string>> pairs;
        pairs.reserve(records.size());
        for (auto& [uri, rec] : records) {
          rec.live_machine = -1;
          rec.object_id = 0;
          pairs.emplace_back(uri, encode_record(rec));
        }
        fresh->kv->multi_put(pairs);
      }
    } else if (have_image) {
      // Re-activate the registry of a previous cluster incarnation.  Its
      // live records refer to processes that died with that cluster, but
      // their checkpoints survive — mark them passive so lookup()
      // re-activates from the images.
      const auto state = read_file(registry_img);
      rpc::ensure_registered<NameService>();
      serial::OArchive req;
      req(rpc::class_def<NameService>::name(), state);
      net::Message resp = rpc::Node::current()->call_raw(
          0, net::kNodeObject, net::method_id(rpc::kRestoreMethod),
          req.take());
      serial::IArchive ia(resp.payload);
      fresh->ns = remote_ptr<NameService>(0, ia.read<std::uint64_t>());
      fresh->ns.call<&NameService::mark_all_passive>();
    } else {
      fresh->ns = oopp::make_remote<NameService>(0);
    }
  } catch (...) {
    {
      std::lock_guard relock(ns_mu_);
      ns_initializing_ = false;
    }
    ns_cv_.notify_all();
    throw;
  }

  lock.lock();
  registry_ = std::move(fresh);
  ns_initializing_ = false;
  lock.unlock();
  ns_cv_.notify_all();
  return *registry_;
}

// Heal-and-retry wrapper for replicated-registry calls: a shard primary
// dying mid-call surfaces as an oopp::Error; promote the backups of every
// dead primary, then retry exactly once (the retry's failure is final).
template <class F>
auto Cluster::registry_op(F&& f) {
  try {
    return f();
  } catch (const Error&) {
    heal_registry();
    return f();
  }
}

void Cluster::heal_registry() {
  auto& reg = registry();
  if (!reg.kv) return;
  static auto& failovers = telemetry::Metrics::scope_for("storage.replica")
                               .counter("registry_failovers");
  for (int s = 0; s < reg.kv->shards(); ++s) {
    try {
      (void)reg.kv->primary(s).call<&kv::KvShard::version>();
    } catch (const Error&) {
      if (!reg.kv->backup(s).valid()) continue;  // nothing left to promote
      reg.kv->promote_backup(s);
      failovers.add(1);
    }
  }
}

void Cluster::reg_bind(const std::string& uri, const PersistRecord& rec) {
  auto& reg = registry();
  if (reg.kv) {
    registry_op([&] { reg.kv->put(uri, encode_record(rec)); });
  } else {
    reg.ns.call<&NameService::bind>(uri, rec);
  }
}

std::optional<PersistRecord> Cluster::reg_resolve(const std::string& uri) {
  auto& reg = registry();
  if (reg.kv) {
    auto value = registry_op([&] { return reg.kv->get(uri); });
    if (!value) return std::nullopt;
    return decode_record(*value);
  }
  return reg.ns.call<&NameService::resolve>(uri);
}

bool Cluster::reg_unbind(const std::string& uri) {
  auto& reg = registry();
  if (reg.kv) return registry_op([&] { return reg.kv->erase(uri); });
  return reg.ns.call<&NameService::unbind>(uri);
}

std::vector<std::string> Cluster::reg_list() {
  auto& reg = registry();
  if (reg.kv) {
    auto pairs = registry_op([&] { return reg.kv->scan(""); });
    std::vector<std::string> uris;
    uris.reserve(pairs.size());
    for (auto& [uri, value] : pairs) uris.push_back(uri);
    return uris;
  }
  return reg.ns.call<&NameService::list>();
}

kv::KvStore* Cluster::registry_store() {
  MaybeContext ctx(this);
  auto& reg = registry();
  return reg.kv ? &*reg.kv : nullptr;
}

void Cluster::save_registry() {
  MaybeContext ctx(this);
  auto& reg = registry();
  if (reg.kv) {
    // Write the same archive format as the NameService image (a map of
    // URI to record), so either backend can restore the other's image.
    std::map<std::string, PersistRecord> records;
    for (auto& [uri, value] : registry_op([&] { return reg.kv->scan(""); }))
      records[uri] = decode_record(value);
    serial::OArchive oa;
    oa(records);
    write_file(state_dir_ / "registry.img", oa.take());
    return;
  }
  serial::OArchive req;
  req(static_cast<std::uint64_t>(reg.ns.id()), std::uint8_t{0});
  net::Message resp = rpc::Node::current()->call_raw(
      reg.ns.machine(), net::kNodeObject,
      net::method_id(rpc::kPassivateMethod), req.take());
  serial::IArchive ia(resp.payload);
  (void)ia.read<std::string>();  // class name
  write_file(state_dir_ / "registry.img", ia.read<std::vector<std::byte>>());
}

std::filesystem::path Cluster::image_path(const std::string& uri) const {
  return state_dir_ / (sanitize_uri(uri) + ".img");
}

void Cluster::checkpoint_impl(RemoteRef ref, const std::string& uri,
                              bool destroy_after,
                              const std::string& expected_class) {
  OOPP_CHECK_MSG(ref.valid(), "persist of null remote pointer");

  serial::OArchive req;
  req(static_cast<std::uint64_t>(ref.object),
      static_cast<std::uint8_t>(destroy_after ? 1 : 0));
  net::Message resp = rpc::Node::current()->call_raw(
      ref.machine, net::kNodeObject, net::method_id(rpc::kPassivateMethod),
      req.take());

  serial::IArchive ia(resp.payload);
  auto class_name = ia.read<std::string>();
  auto state = ia.read<std::vector<std::byte>>();
  if (class_name != expected_class)
    throw Error("persist type mismatch: object is a '" + class_name +
                         "', caller expected '" + expected_class + "'");

  const auto path = image_path(uri);
  write_file(path, state);

  PersistRecord rec;
  rec.class_name = class_name;
  rec.live_machine =
      destroy_after ? -1 : static_cast<std::int32_t>(ref.machine);
  rec.object_id = destroy_after ? 0 : ref.object;
  rec.home_machine = static_cast<std::int32_t>(ref.machine);
  rec.state_file = path.string();
  reg_bind(uri, rec);

  if (destroy_after)
    note_gone(uri);
  else
    note_live(uri);
}

RemoteRef Cluster::lookup_impl(const std::string& uri,
                               const std::string& expected_class,
                               std::optional<net::MachineId> activate_on) {
  auto rec = reg_resolve(uri);
  if (!rec)
    throw Error("unknown symbolic address '" + uri + "'");
  if (rec->class_name != expected_class)
    throw Error("lookup type mismatch at '" + uri + "': record is '" +
                         rec->class_name + "', caller expected '" +
                         expected_class + "'");

  if (rec->live_machine >= 0) {
    note_live(uri);
    return RemoteRef{static_cast<net::MachineId>(rec->live_machine),
                     rec->object_id};
  }

  // Passive: re-activate from the on-disk image.
  const auto target = activate_on.value_or(
      static_cast<net::MachineId>(rec->home_machine));
  OOPP_CHECK_MSG(target < nodes_.size(),
                 "activation target machine " << target << " out of range");
  const auto state = read_file(rec->state_file);

  serial::OArchive req;
  req(rec->class_name, state);
  net::Message resp = rpc::Node::current()->call_raw(
      target, net::kNodeObject, net::method_id(rpc::kRestoreMethod),
      req.take());
  serial::IArchive ia(resp.payload);
  const auto object = ia.read<std::uint64_t>();

  rec->live_machine = static_cast<std::int32_t>(target);
  rec->object_id = object;
  rec->home_machine = static_cast<std::int32_t>(target);
  reg_bind(uri, *rec);

  note_live(uri);
  return RemoteRef{target, object};
}

void Cluster::set_active_limit(std::size_t limit) {
  {
    std::lock_guard lock(lru_mu_);
    active_limit_ = limit;
  }
  // A lowered limit evicts immediately.
  MaybeContext ctx(this);
  note_live(std::string());
}

std::size_t Cluster::active_registered() {
  std::lock_guard lock(lru_mu_);
  return lru_.size();
}

void Cluster::note_live(const std::string& uri) {
  std::vector<std::string> victims;
  {
    std::lock_guard lock(lru_mu_);
    if (!uri.empty()) {
      auto it = lru_pos_.find(uri);
      if (it != lru_pos_.end()) lru_.erase(it->second);
      lru_.push_front(uri);
      lru_pos_[uri] = lru_.begin();
    }
    if (active_limit_ > 0) {
      while (lru_.size() > active_limit_) {
        victims.push_back(lru_.back());
        lru_pos_.erase(lru_.back());
        lru_.pop_back();
      }
    }
  }
  // De-activate the evicted processes outside the LRU lock ("the runtime
  // system is responsible for ... de-activating processes, as needed").
  for (const auto& victim : victims) passivate_registered(victim);
}

void Cluster::note_gone(const std::string& uri) {
  std::lock_guard lock(lru_mu_);
  auto it = lru_pos_.find(uri);
  if (it == lru_pos_.end()) return;
  lru_.erase(it->second);
  lru_pos_.erase(it);
}

void Cluster::passivate_registered(const std::string& uri) {
  auto rec = reg_resolve(uri);
  if (!rec || rec->live_machine < 0) return;  // raced with explicit passivate

  serial::OArchive req;
  req(static_cast<std::uint64_t>(rec->object_id), std::uint8_t{1});
  net::Message resp = rpc::Node::current()->call_raw(
      static_cast<net::MachineId>(rec->live_machine), net::kNodeObject,
      net::method_id(rpc::kPassivateMethod), req.take());
  serial::IArchive ia(resp.payload);
  (void)ia.read<std::string>();
  write_file(image_path(uri), ia.read<std::vector<std::byte>>());

  rec->home_machine = rec->live_machine;
  rec->live_machine = -1;
  rec->object_id = 0;
  rec->state_file = image_path(uri).string();
  reg_bind(uri, *rec);
}

RemoteRef Cluster::migrate_impl(RemoteRef ref, net::MachineId target,
                                const std::string& expected_class) {
  OOPP_CHECK_MSG(ref.valid(), "migrate of null remote pointer");
  OOPP_CHECK_MSG(target < nodes_.size(), "migration target out of range");
  auto* node = rpc::Node::current();

  // Checkpoint + terminate the source process (its queue drains first).
  serial::OArchive req;
  req(static_cast<std::uint64_t>(ref.object), std::uint8_t{1});
  net::Message resp =
      node->call_raw(ref.machine, net::kNodeObject,
                     net::method_id(rpc::kPassivateMethod), req.take());
  serial::IArchive ia(resp.payload);
  auto class_name = ia.read<std::string>();
  auto state = ia.read<std::vector<std::byte>>();
  if (class_name != expected_class)
    throw Error("migrate type mismatch: object is a '" + class_name +
                         "', caller expected '" + expected_class + "'");

  // Re-activate on the target machine.
  serial::OArchive restore;
  restore(class_name, state);
  net::Message born =
      node->call_raw(target, net::kNodeObject,
                     net::method_id(rpc::kRestoreMethod), restore.take());
  serial::IArchive ba(born.payload);
  const RemoteRef fresh{target, ba.read<std::uint64_t>()};

  // If the process was registered, point its record at the new identity.
  for (const auto& uri : reg_list()) {
    auto rec = reg_resolve(uri);
    if (rec && rec->live_machine == static_cast<std::int32_t>(ref.machine) &&
        rec->object_id == ref.object) {
      rec->live_machine = static_cast<std::int32_t>(target);
      rec->home_machine = static_cast<std::int32_t>(target);
      rec->object_id = fresh.object;
      reg_bind(uri, *rec);
    }
  }
  return fresh;
}

std::size_t Cluster::checkpoint_all() {
  MaybeContext ctx(this);
  std::size_t checkpointed = 0;
  for (const auto& uri : reg_list()) {
    auto rec = reg_resolve(uri);
    if (!rec || rec->live_machine < 0) continue;

    serial::OArchive req;
    req(static_cast<std::uint64_t>(rec->object_id), std::uint8_t{0});
    net::Message resp = rpc::Node::current()->call_raw(
        static_cast<net::MachineId>(rec->live_machine), net::kNodeObject,
        net::method_id(rpc::kPassivateMethod), req.take());
    serial::IArchive ia(resp.payload);
    (void)ia.read<std::string>();
    write_file(image_path(uri), ia.read<std::vector<std::byte>>());
    rec->state_file = image_path(uri).string();
    reg_bind(uri, *rec);
    ++checkpointed;
  }
  return checkpointed;
}

bool Cluster::forget(const Uri& uri) {
  MaybeContext ctx(this);
  auto rec = reg_resolve(uri.str());
  if (!rec) return false;
  std::error_code ec;
  std::filesystem::remove(rec->state_file, ec);
  note_gone(uri.str());
  return reg_unbind(uri.str());
}

std::vector<std::string> Cluster::persisted_uris() {
  MaybeContext ctx(this);
  return reg_list();
}

}  // namespace oopp
