// NameService: symbolic addresses for persistent processes (paper §5).
//
// "Processes can be accessed using a symbolic object address", e.g.
// "oopp://data/set/PageDevice/34".  The name service maps such URIs to a
// record saying where the process lives (if active) or where its
// passivated image is stored (if not).  It is itself an ordinary remotable
// — and persistent — object, registered through the same class_def
// mechanism as user classes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rpc/binding.hpp"
#include "serial/archive.hpp"

namespace oopp {

struct PersistRecord {
  std::string class_name;
  /// Machine hosting the live process; -1 when passivated.
  std::int32_t live_machine = -1;
  /// Object id of the live process (meaningful when live_machine >= 0).
  std::uint64_t object_id = 0;
  /// Machine the process last lived on — default activation target.
  std::int32_t home_machine = 0;
  /// Path of the latest passivated image.
  std::string state_file;

  bool operator==(const PersistRecord&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, PersistRecord& r) {
  ar(r.class_name, r.live_machine, r.object_id, r.home_machine, r.state_file);
}

class NameService {
 public:
  NameService() = default;

  explicit NameService(serial::IArchive& ia) { ia(map_); }
  void oopp_save(serial::OArchive& oa) const { oa(map_); }

  // -- canonical record API ---------------------------------------------------
  // bind/resolve/unbind name the directory operations; Cluster's
  // persist()/activate()/lookup() facade is the intended entry point —
  // user code should not need to touch records directly.

  void bind(const std::string& uri, const PersistRecord& rec) {
    map_[uri] = rec;
  }
  std::optional<PersistRecord> resolve(const std::string& uri) const {
    auto it = map_.find(uri);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  bool unbind(const std::string& uri) { return map_.erase(uri) > 0; }

  // -- deprecated forwarders (one release; see README migration table) --------
  [[deprecated("use NameService::bind or the Cluster::persist facade")]]
  void put(const std::string& uri, const PersistRecord& rec) {
    bind(uri, rec);
  }
  [[deprecated("use NameService::resolve or the Cluster::lookup facade")]]
  std::optional<PersistRecord> get(const std::string& uri) const {
    return resolve(uri);
  }
  [[deprecated("use NameService::unbind or Cluster::forget")]]
  bool erase(const std::string& uri) { return unbind(uri); }

  /// Mark every record passive.  Used when a registry image from a
  /// previous cluster incarnation is re-activated: the live processes it
  /// refers to died with that cluster, but their checkpoints survive.
  std::uint64_t mark_all_passive() {
    std::uint64_t changed = 0;
    for (auto& [uri, rec] : map_) {
      if (rec.live_machine >= 0) {
        rec.live_machine = -1;
        rec.object_id = 0;
        ++changed;
      }
    }
    return changed;
  }
  std::vector<std::string> list() const {
    std::vector<std::string> out;
    out.reserve(map_.size());
    for (const auto& [uri, _] : map_) out.push_back(uri);
    return out;
  }
  std::uint64_t size() const { return map_.size(); }

 private:
  std::map<std::string, PersistRecord> map_;
};

}  // namespace oopp

template <>
struct oopp::rpc::class_def<oopp::NameService> {
  static std::string name() { return "oopp.NameService"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    using NS = oopp::NameService;
    b.template method<&NS::bind>("bind");
    b.template method<&NS::resolve>("resolve");
    b.template method<&NS::unbind>("unbind");
    // Wire compatibility for one release: out-of-tree clients may still
    // issue the old method names; the forwarders keep serving them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    b.template method<&NS::put>("put");
    b.template method<&NS::get>("get");
    b.template method<&NS::erase>("erase");
#pragma GCC diagnostic pop
    b.template method<&NS::mark_all_passive>("mark_all_passive");
    b.template method<&NS::list>("list");
    b.template method<&NS::size>("size");
    b.persistent();
  }
};
