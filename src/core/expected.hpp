// Expected<R>: one member's outcome in a partial-failure group operation.
//
// ProcessGroup::gather<M> has all-or-nothing semantics: the first member
// failure throws and the surviving members' results are lost.  The
// partial variants (gather_partial, gather_indexed_partial,
// barrier_partial) instead contain each member's failure in an
// Expected<R>: either the decoded result, or the exception the call
// raised plus its wire-level CallStatus code — so a caller can keep the
// N-1 good answers, classify the bad one, and decide (retry the member,
// drop it from the group, rebuild it elsewhere).
#pragma once

#include <cstddef>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "net/message.hpp"

namespace oopp {

template <class R>
class Expected {
 public:
  /// Success.
  explicit Expected(R value) : value_(std::move(value)) {}

  /// Failure: the exception the call raised and its status code.
  Expected(std::exception_ptr error, net::CallStatus code)
      : error_(std::move(error)), code_(code) {}

  [[nodiscard]] bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  /// The result; rethrows the member's failure if there is none.
  [[nodiscard]] R& value() {
    if (!value_) std::rethrow_exception(error_);
    return *value_;
  }
  [[nodiscard]] const R& value() const {
    if (!value_) std::rethrow_exception(error_);
    return *value_;
  }

  /// The member's failure (null on success).
  [[nodiscard]] std::exception_ptr error() const { return error_; }

  /// Wire-level classification of the failure (kOk on success); spares
  /// callers a rethrow-and-catch just to switch on the kind of failure.
  [[nodiscard]] net::CallStatus error_code() const { return code_; }

 private:
  std::optional<R> value_;
  std::exception_ptr error_;
  net::CallStatus code_ = net::CallStatus::kOk;
};

template <>
class Expected<void> {
 public:
  Expected() = default;  // success
  Expected(std::exception_ptr error, net::CallStatus code)
      : error_(std::move(error)), code_(code) {}

  [[nodiscard]] bool has_value() const { return error_ == nullptr; }
  explicit operator bool() const { return has_value(); }

  /// Rethrows the member's failure, if any.
  void value() const {
    if (error_) std::rethrow_exception(error_);
  }

  [[nodiscard]] std::exception_ptr error() const { return error_; }
  [[nodiscard]] net::CallStatus error_code() const { return code_; }

 private:
  std::exception_ptr error_;
  net::CallStatus code_ = net::CallStatus::kOk;
};

/// Indices of the members that failed — the usual first question asked of
/// a partial result ("who do I need to rebuild?").
template <class R>
[[nodiscard]] std::vector<std::size_t> failed_indices(
    const std::vector<Expected<R>>& results) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < results.size(); ++i)
    if (!results[i].has_value()) out.push_back(i);
  return out;
}

}  // namespace oopp
