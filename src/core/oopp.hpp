// Umbrella header for the OOPP framework: include this to get the whole
// object-oriented parallel programming surface —
//
//   Cluster        the machines your program runs across
//   make_remote    the paper's `new(machine i) T(args...)`
//   remote_ptr<T>  call<>/async<> remote method execution
//   remote_data<T> the paper's `new(machine i) double[n]`
//   ProcessGroup   arrays of processes, split loops, barrier()
//   persist/lookup persistent processes with symbolic addresses
#pragma once

#include "core/cluster.hpp"
#include "core/future.hpp"
#include "core/group.hpp"
#include "core/name_service.hpp"
#include "core/remote_data.hpp"
#include "core/remote_ptr.hpp"
#include "core/remote_ref.hpp"
#include "core/watchdog.hpp"
#include "rpc/binding.hpp"
#include "rpc/errors.hpp"
