// Typed future over a raw response message.
//
// The paper's default semantics is synchronous (§2); futures are the
// runtime primitive behind §4's compiler transformation — a loop of remote
// calls becomes a loop of sends followed by a loop of receives.  async()
// on a remote pointer returns one of these; get() performs the "receive"
// half, decoding the result or re-raising the remote exception.
#pragma once

#include <chrono>
#include <future>
#include <type_traits>

#include "core/expected.hpp"
#include "net/message.hpp"
#include "rpc/binding.hpp"
#include "rpc/node.hpp"
#include "serial/archive.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"

namespace oopp {

template <class R>
class Future {
 public:
  Future() = default;
  explicit Future(std::future<net::Message> f) : f_(std::move(f)) {}
  /// `issued` is the client span the call opened (from Node::async_raw),
  /// so deadline expiry can be recorded against the right trace.
  Future(std::future<net::Message> f, telemetry::TraceContext issued)
      : f_(std::move(f)), issued_(issued) {}

  [[nodiscard]] bool valid() const { return f_.valid(); }
  void wait() {
    rpc::note_blocking_remote_call("Future::wait");
    rpc::BlockingWaitTimer timer;
    f_.wait();
  }

  /// Wait up to `timeout`; true if the response is ready.  A false return
  /// does not cancel anything — the remote method keeps executing and a
  /// later wait/get still works (the paper's semantics has no remote
  /// cancellation: only delete terminates a process).
  template <class Rep, class Period>
  [[nodiscard]] bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    rpc::note_blocking_remote_call("Future::wait_for");
    rpc::BlockingWaitTimer timer;
    return f_.wait_for(timeout) == std::future_status::ready;
  }

  /// get() with a deadline: throws CallTimeout if no response arrives in
  /// time.  The call itself is NOT cancelled.
  template <class Rep, class Period>
  R get_for(std::chrono::duration<Rep, Period> timeout) {
    if (!wait_for(timeout)) {
      record_timeout_span();
      throw rpc::CallTimeout("remote call did not complete within deadline");
    }
    return get();
  }

  /// Block for the response; decode the result.  Throws RemoteError /
  /// ObjectNotFound / ... exactly like the synchronous call would.
  R get() {
    rpc::note_blocking_remote_call("Future::get");
    net::Message resp = [&] {
      rpc::BlockingWaitTimer timer;  // times the wait, not the decode
      return f_.get();
    }();
    rpc::Node::throw_on_error(resp);
    if constexpr (std::is_void_v<R>) {
      return;
    } else {
      // Decode over the response's backing store: serial::Bytes results
      // arrive as views into the frame, not copies.
      const serial::Bytes backing = resp.payload.share();
      serial::IArchive ia(backing.span(), backing.store(), backing.offset());
      return ia.read<R>();
    }
  }

  /// get() with the failure contained instead of thrown: the building
  /// block of ProcessGroup's partial-failure operations.
  Expected<R> get_expected() {
    try {
      if constexpr (std::is_void_v<R>) {
        get();
        return Expected<void>{};
      } else {
        return Expected<R>(get());
      }
    } catch (const Error& e) {
      return Expected<R>(std::current_exception(), e.code());
    } catch (...) {
      return Expected<R>(std::current_exception(), net::CallStatus::kInternal);
    }
  }

 private:
  /// Deadline expiry is an event the response-side tracing never sees (the
  /// client span stays open until the response or abort), so record it as
  /// an instantaneous child of the issuing call's span.
  void record_timeout_span() {
    if (!telemetry::enabled() || !issued_.active()) return;
    telemetry::SpanSink* sink = telemetry::thread_sink();
    if (sink == nullptr) return;
    telemetry::Span s{};
    s.trace_id = issued_.trace_id;
    s.parent_id = issued_.span_id;
    s.span_id = telemetry::next_id();
    s.node = telemetry::thread_node();
    s.kind = telemetry::SpanKind::kClient;
    s.status = static_cast<std::uint8_t>(net::CallStatus::kTimeout);
    s.set_name("rpc.timeout");
    s.start_ns = s.end_ns = now_ns();
    sink->record(s);
  }

  std::future<net::Message> f_;
  telemetry::TraceContext issued_{};
};

}  // namespace oopp
