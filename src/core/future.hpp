// Typed future over a raw response message.
//
// The paper's default semantics is synchronous (§2); futures are the
// runtime primitive behind §4's compiler transformation — a loop of remote
// calls becomes a loop of sends followed by a loop of receives.  async()
// on a remote pointer returns one of these; get() performs the "receive"
// half, decoding the result or re-raising the remote exception.
#pragma once

#include <chrono>
#include <future>
#include <type_traits>

#include "net/message.hpp"
#include "rpc/binding.hpp"
#include "rpc/node.hpp"
#include "serial/archive.hpp"

namespace oopp {

template <class R>
class Future {
 public:
  Future() = default;
  explicit Future(std::future<net::Message> f) : f_(std::move(f)) {}

  [[nodiscard]] bool valid() const { return f_.valid(); }
  void wait() {
    rpc::note_blocking_remote_call("Future::wait");
    f_.wait();
  }

  /// Wait up to `timeout`; true if the response is ready.  A false return
  /// does not cancel anything — the remote method keeps executing and a
  /// later wait/get still works (the paper's semantics has no remote
  /// cancellation: only delete terminates a process).
  template <class Rep, class Period>
  [[nodiscard]] bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    rpc::note_blocking_remote_call("Future::wait_for");
    return f_.wait_for(timeout) == std::future_status::ready;
  }

  /// get() with a deadline: throws CallTimeout if no response arrives in
  /// time.  The call itself is NOT cancelled.
  template <class Rep, class Period>
  R get_for(std::chrono::duration<Rep, Period> timeout) {
    if (!wait_for(timeout))
      throw rpc::CallTimeout("remote call did not complete within deadline");
    return get();
  }

  /// Block for the response; decode the result.  Throws RemoteError /
  /// ObjectNotFound / ... exactly like the synchronous call would.
  R get() {
    rpc::note_blocking_remote_call("Future::get");
    net::Message resp = f_.get();
    rpc::Node::throw_on_error(resp);
    if constexpr (std::is_void_v<R>) {
      return;
    } else {
      serial::IArchive ia(resp.payload);
      return ia.read<R>();
    }
  }

 private:
  std::future<net::Message> f_;
};

}  // namespace oopp
