// Bytes: a ref-counted, immutable byte slice — the serialization-layer
// twin of net::Buffer's internal slices.
//
// A Bytes names `[off, off+len)` of a shared immutable allocation.  It is
// the type a payload keeps while crossing layers without being copied:
//
//   * OArchive::write(const Bytes&) *splices* a large slice into the
//     encoded stream as its own segment instead of memcpy-ing it, so a
//     net::Buffer built from the archive's segments carries the original
//     allocation to the socket (serialize once at the source);
//   * IArchive::read_into(Bytes&) returns a *view* into the request
//     payload's backing store when the archive was constructed over one,
//     so a forwarding hop (a collective member re-sending a segment it
//     just received) never touches the bytes.
//
// The wire format is identical to a length-prefixed byte vector — whether
// a Bytes was spliced or inlined is invisible to the receiver, and a
// receiver may decode a Bytes field into a std::vector<std::byte> or vice
// versa as long as framing matches.
//
// serial must stay the bottom layer (net links against it), which is why
// this type lives here and net::Buffer interops with it, not the other
// way around.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

namespace oopp::serial {

class Bytes {
 public:
  Bytes() = default;

  /// A view of `[off, off+len)` of shared storage.  The store keeps the
  /// bytes alive for as long as any Bytes (or net::Buffer slice) refers
  /// to them.
  Bytes(std::shared_ptr<const std::vector<std::byte>> store, std::size_t off,
        std::size_t len)
      : store_(std::move(store)), off_(off), len_(len) {
    if (store_ == nullptr || off_ + len_ > store_->size())
      store_ = nullptr, off_ = 0, len_ = 0;  // degenerate view → empty
  }

  /// Adopt a whole vector without copying (one move).
  static Bytes adopt(std::vector<std::byte> v) {
    const std::size_t n = v.size();
    if (n == 0) return {};
    return Bytes(std::make_shared<const std::vector<std::byte>>(std::move(v)),
                 0, n);
  }

  /// Copy `s` into a fresh shared allocation — the one sanctioned copy a
  /// payload makes, at its source.
  static Bytes copy(std::span<const std::byte> s) {
    if (s.empty()) return {};
    return adopt(std::vector<std::byte>(s.begin(), s.end()));
  }

  /// Copy a raw scalar range (e.g. a chunk of doubles) into a fresh
  /// shared allocation.
  static Bytes copy_raw(const void* p, std::size_t n) {
    return copy({static_cast<const std::byte*>(p), n});
  }

  /// A sub-view of this slice (refcount bump, no bytes move).
  [[nodiscard]] Bytes subview(std::size_t off, std::size_t len) const {
    if (off + len > len_) return {};
    return Bytes(store_, off_ + off, len);
  }

  [[nodiscard]] std::span<const std::byte> span() const {
    if (store_ == nullptr) return {};
    return {store_->data() + off_, len_};
  }
  [[nodiscard]] const std::byte* data() const {
    return store_ == nullptr ? nullptr : store_->data() + off_;
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }

  /// The backing allocation and this slice's offset into it — what
  /// net::Buffer::view() takes to wrap the slice without copying.
  [[nodiscard]] const std::shared_ptr<const std::vector<std::byte>>& store()
      const {
    return store_;
  }
  [[nodiscard]] std::size_t offset() const { return off_; }

 private:
  std::shared_ptr<const std::vector<std::byte>> store_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

}  // namespace oopp::serial
