// Binary serialization archives.
//
// The paper relegates "assembly and parsing of messages" to the compiler;
// in this library reproduction the archives below play that role.  Every
// RPC argument list, return value, and persisted process image is encoded
// with OArchive and decoded with IArchive.
//
// Encoding: little-endian fixed-width scalars, u64 length prefixes for
// ranges.  User types participate by providing an ADL-visible symmetric
// visitor:
//
//   template <class Ar> void oopp_serialize(Ar& ar, MyType& v) {
//     ar(v.field1, v.field2);
//   }
//
// The same function body serializes (Ar = OArchive) and deserializes
// (Ar = IArchive), so the two directions can never drift apart.
#pragma once

#include <array>
#include <bit>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <set>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace oopp::serial {

static_assert(std::endian::native == std::endian::little,
              "oopp::serial assumes a little-endian host");

/// Thrown when an IArchive runs past the end of its buffer or decodes an
/// impossible value.  At the RPC layer this indicates a corrupt frame.
class serial_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

template <class T>
struct is_complex : std::false_type {};
template <class T>
struct is_complex<std::complex<T>> : std::bool_constant<std::is_arithmetic_v<T>> {};

/// Types encoded as their in-memory bytes (fixed-width, little-endian).
/// std::complex<arithmetic> qualifies: the standard guarantees array-of-two
/// layout, and bulk transfers of complex arrays are the FFT hot path.
template <class T>
concept Scalar = std::is_arithmetic_v<T> || std::is_enum_v<T> ||
                 is_complex<T>::value;

class OArchive;
class IArchive;

template <class T>
concept HasOoppSerialize = requires(OArchive& oa, T& v) {
  oopp_serialize(oa, v);
};

// ---------------------------------------------------------------------------
// OArchive — append-only byte sink.
// ---------------------------------------------------------------------------
class OArchive {
 public:
  OArchive() = default;
  explicit OArchive(std::size_t reserve) { buf_.reserve(reserve); }

  /// Visit any number of values: ar(a, b, c).
  template <class... Ts>
  OArchive& operator()(const Ts&... vs) {
    (write(vs), ...);
    return *this;
  }

  template <Scalar T>
  void write(const T& v) {
    append(&v, sizeof(T));
  }

  void write(const std::string& s) { write_sized(s.data(), s.size()); }
  void write(std::string_view s) { write_sized(s.data(), s.size()); }

  template <class T>
  void write(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    if constexpr (Scalar<T>) {
      append(v.data(), v.size() * sizeof(T));
    } else {
      reserve_elements(v.size(), sizeof(T));
      for (const auto& e : v) write(e);
    }
  }

  template <class T, std::size_t N>
  void write(const std::array<T, N>& v) {
    if constexpr (Scalar<T>) {
      append(v.data(), N * sizeof(T));
    } else {
      for (const auto& e : v) write(e);
    }
  }

  template <class A, class B>
  void write(const std::pair<A, B>& v) {
    write(v.first);
    write(v.second);
  }

  template <class... Ts>
  void write(const std::tuple<Ts...>& v) {
    std::apply([this](const Ts&... es) { (write(es), ...); }, v);
  }

  template <class T>
  void write(const std::optional<T>& v) {
    write(static_cast<std::uint8_t>(v.has_value()));
    if (v) write(*v);
  }

  template <class T, class A>
  void write(const std::deque<T, A>& d) {
    write(static_cast<std::uint64_t>(d.size()));
    reserve_elements(d.size(), sizeof(T));
    for (const auto& e : d) write(e);
  }

  template <class T, class A>
  void write(const std::list<T, A>& l) {
    write(static_cast<std::uint64_t>(l.size()));
    reserve_elements(l.size(), sizeof(T));
    for (const auto& e : l) write(e);
  }

  template <class K, class C, class A>
  void write(const std::set<K, C, A>& s) {
    write(static_cast<std::uint64_t>(s.size()));
    reserve_elements(s.size(), sizeof(K));
    for (const auto& e : s) write(e);
  }

  template <class K, class H, class E, class A>
  void write(const std::unordered_set<K, H, E, A>& s) {
    write(static_cast<std::uint64_t>(s.size()));
    reserve_elements(s.size(), sizeof(K));
    for (const auto& e : s) write(e);
  }

  template <class K, class V, class C, class A>
  void write(const std::map<K, V, C, A>& m) {
    write(static_cast<std::uint64_t>(m.size()));
    reserve_elements(m.size(), sizeof(K) + sizeof(V));
    for (const auto& [k, v] : m) {
      write(k);
      write(v);
    }
  }

  template <class K, class V, class H, class E, class A>
  void write(const std::unordered_map<K, V, H, E, A>& m) {
    write(static_cast<std::uint64_t>(m.size()));
    reserve_elements(m.size(), sizeof(K) + sizeof(V));
    for (const auto& [k, v] : m) {
      write(k);
      write(v);
    }
  }

  template <class T>
    requires HasOoppSerialize<T>
  void write(const T& v) {
    // The symmetric visitor takes T&; serialization does not mutate.
    oopp_serialize(*this, const_cast<T&>(v));
  }

  /// Raw bytes without a length prefix (caller encodes framing itself).
  void write_raw(const void* p, std::size_t n) { append(p, n); }

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  /// Move the encoded bytes out (the sanctioned way to hand a finished
  /// pack to the transport: a net::Buffer adopts the vector so the bytes
  /// travel to the socket without another copy).  Leaves the archive
  /// empty and reusable.
  [[nodiscard]] std::vector<std::byte> take() {
    return std::exchange(buf_, {});
  }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void write_sized(const void* p, std::size_t n) {
    write(static_cast<std::uint64_t>(n));
    append(p, n);
  }
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  /// One up-front grow ahead of an element loop instead of log2(n)
  /// doubling reallocations.  sizeof(T) is exact for scalar elements and
  /// a rough per-element estimate otherwise — under- or overshoot is
  /// harmless, the loop still appends element by element.
  void reserve_elements(std::size_t n, std::size_t per) {
    buf_.reserve(buf_.size() + n * per);
  }
  std::vector<std::byte> buf_;
};

// ---------------------------------------------------------------------------
// IArchive — bounds-checked byte source over a non-owning span.
// ---------------------------------------------------------------------------
class IArchive {
 public:
  explicit IArchive(std::span<const std::byte> data) : data_(data) {}

  template <class... Ts>
  IArchive& operator()(Ts&... vs) {
    (read_into(vs), ...);
    return *this;
  }

  template <class T>
  [[nodiscard]] T read() {
    T v{};
    read_into(v);
    return v;
  }

  template <Scalar T>
  void read_into(T& v) {
    consume(&v, sizeof(T));
  }

  void read_into(std::string& s) {
    const auto n = read_size();
    s.resize(n);
    consume(s.data(), n);
  }

  template <class T>
  void read_into(std::vector<T>& v) {
    const auto n = read_size();
    if constexpr (Scalar<T>) {
      require(n * sizeof(T));
      v.resize(n);
      consume(v.data(), n * sizeof(T));
    } else {
      v.clear();
      v.reserve(n);
      for (std::size_t i = 0; i < n; ++i) v.push_back(read<T>());
    }
  }

  template <class T, std::size_t N>
  void read_into(std::array<T, N>& v) {
    if constexpr (Scalar<T>) {
      consume(v.data(), N * sizeof(T));
    } else {
      for (auto& e : v) read_into(e);
    }
  }

  template <class A, class B>
  void read_into(std::pair<A, B>& v) {
    read_into(v.first);
    read_into(v.second);
  }

  template <class... Ts>
  void read_into(std::tuple<Ts...>& v) {
    std::apply([this](Ts&... es) { (read_into(es), ...); }, v);
  }

  template <class T>
  void read_into(std::optional<T>& v) {
    if (read<std::uint8_t>() != 0)
      v = read<T>();
    else
      v.reset();
  }

  template <class T, class A>
  void read_into(std::deque<T, A>& d) {
    const auto n = read_size();
    d.clear();
    for (std::size_t i = 0; i < n; ++i) d.push_back(read<T>());
  }

  template <class T, class A>
  void read_into(std::list<T, A>& l) {
    const auto n = read_size();
    l.clear();
    for (std::size_t i = 0; i < n; ++i) l.push_back(read<T>());
  }

  template <class K, class C, class A>
  void read_into(std::set<K, C, A>& s) {
    const auto n = read_size();
    s.clear();
    for (std::size_t i = 0; i < n; ++i) s.insert(read<K>());
  }

  template <class K, class H, class E, class A>
  void read_into(std::unordered_set<K, H, E, A>& s) {
    const auto n = read_size();
    s.clear();
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) s.insert(read<K>());
  }

  template <class K, class V, class C, class A>
  void read_into(std::map<K, V, C, A>& m) {
    const auto n = read_size();
    m.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto k = read<K>();
      m.emplace(std::move(k), read<V>());
    }
  }

  template <class K, class V, class H, class E, class A>
  void read_into(std::unordered_map<K, V, H, E, A>& m) {
    const auto n = read_size();
    m.clear();
    m.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto k = read<K>();
      m.emplace(std::move(k), read<V>());
    }
  }

  template <class T>
    requires HasOoppSerialize<T>
  void read_into(T& v) {
    oopp_serialize(*this, v);
  }

  void read_raw(void* p, std::size_t n) { consume(p, n); }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  std::size_t read_size() {
    const auto n = read<std::uint64_t>();
    require(n);  // a length prefix can never exceed the bytes that remain
    return static_cast<std::size_t>(n);
  }
  void require(std::size_t n) const {
    if (n > remaining())
      throw serial_error("IArchive: truncated input (need " +
                         std::to_string(n) + " bytes, have " +
                         std::to_string(remaining()) + ")");
  }
  void consume(void* out, std::size_t n) {
    require(n);
    // n == 0 must skip the memcpy: `out` is null when the destination is
    // an empty container's data(), and memcpy(null, _, 0) is still UB.
    if (n != 0) std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Convenience: serialize a single value to a byte vector.
template <class T>
std::vector<std::byte> to_bytes(const T& v) {
  OArchive oa;
  oa(v);
  return oa.take();
}

/// Convenience: deserialize a single value from bytes.
template <class T>
T from_bytes(std::span<const std::byte> data) {
  IArchive ia(data);
  return ia.read<T>();
}

}  // namespace oopp::serial
