// Binary serialization archives.
//
// The paper relegates "assembly and parsing of messages" to the compiler;
// in this library reproduction the archives below play that role.  Every
// RPC argument list, return value, and persisted process image is encoded
// with OArchive and decoded with IArchive.
//
// Encoding: little-endian fixed-width scalars, u64 length prefixes for
// ranges.  User types participate by providing an ADL-visible symmetric
// visitor:
//
//   template <class Ar> void oopp_serialize(Ar& ar, MyType& v) {
//     ar(v.field1, v.field2);
//   }
//
// The same function body serializes (Ar = OArchive) and deserializes
// (Ar = IArchive), so the two directions can never drift apart.
#pragma once

#include <array>
#include <bit>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <set>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "serial/bytes.hpp"

namespace oopp::serial {

static_assert(std::endian::native == std::endian::little,
              "oopp::serial assumes a little-endian host");

/// Thrown when an IArchive runs past the end of its buffer or decodes an
/// impossible value.  At the RPC layer this indicates a corrupt frame.
class serial_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

template <class T>
struct is_complex : std::false_type {};
template <class T>
struct is_complex<std::complex<T>> : std::bool_constant<std::is_arithmetic_v<T>> {};

/// Types encoded as their in-memory bytes (fixed-width, little-endian).
/// std::complex<arithmetic> qualifies: the standard guarantees array-of-two
/// layout, and bulk transfers of complex arrays are the FFT hot path.
template <class T>
concept Scalar = std::is_arithmetic_v<T> || std::is_enum_v<T> ||
                 is_complex<T>::value;

class OArchive;
class IArchive;

template <class T>
concept HasOoppSerialize = requires(OArchive& oa, T& v) {
  oopp_serialize(oa, v);
};

// ---------------------------------------------------------------------------
// OArchive — append-only byte sink.
// ---------------------------------------------------------------------------
class OArchive {
 public:
  OArchive() = default;
  explicit OArchive(std::size_t reserve) { buf_.reserve(reserve); }

  /// Visit any number of values: ar(a, b, c).
  template <class... Ts>
  OArchive& operator()(const Ts&... vs) {
    (write(vs), ...);
    return *this;
  }

  template <Scalar T>
  void write(const T& v) {
    append(&v, sizeof(T));
  }

  void write(const std::string& s) { write_sized(s.data(), s.size()); }
  void write(std::string_view s) { write_sized(s.data(), s.size()); }

  template <class T>
  void write(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    if constexpr (Scalar<T>) {
      append(v.data(), v.size() * sizeof(T));
    } else {
      reserve_elements(v.size(), sizeof(T));
      for (const auto& e : v) write(e);
    }
  }

  template <class T, std::size_t N>
  void write(const std::array<T, N>& v) {
    if constexpr (Scalar<T>) {
      append(v.data(), N * sizeof(T));
    } else {
      for (const auto& e : v) write(e);
    }
  }

  template <class A, class B>
  void write(const std::pair<A, B>& v) {
    write(v.first);
    write(v.second);
  }

  template <class... Ts>
  void write(const std::tuple<Ts...>& v) {
    std::apply([this](const Ts&... es) { (write(es), ...); }, v);
  }

  template <class T>
  void write(const std::optional<T>& v) {
    write(static_cast<std::uint8_t>(v.has_value()));
    if (v) write(*v);
  }

  template <class T, class A>
  void write(const std::deque<T, A>& d) {
    write(static_cast<std::uint64_t>(d.size()));
    reserve_elements(d.size(), sizeof(T));
    for (const auto& e : d) write(e);
  }

  template <class T, class A>
  void write(const std::list<T, A>& l) {
    write(static_cast<std::uint64_t>(l.size()));
    reserve_elements(l.size(), sizeof(T));
    for (const auto& e : l) write(e);
  }

  template <class K, class C, class A>
  void write(const std::set<K, C, A>& s) {
    write(static_cast<std::uint64_t>(s.size()));
    reserve_elements(s.size(), sizeof(K));
    for (const auto& e : s) write(e);
  }

  template <class K, class H, class E, class A>
  void write(const std::unordered_set<K, H, E, A>& s) {
    write(static_cast<std::uint64_t>(s.size()));
    reserve_elements(s.size(), sizeof(K));
    for (const auto& e : s) write(e);
  }

  template <class K, class V, class C, class A>
  void write(const std::map<K, V, C, A>& m) {
    write(static_cast<std::uint64_t>(m.size()));
    reserve_elements(m.size(), sizeof(K) + sizeof(V));
    for (const auto& [k, v] : m) {
      write(k);
      write(v);
    }
  }

  template <class K, class V, class H, class E, class A>
  void write(const std::unordered_map<K, V, H, E, A>& m) {
    write(static_cast<std::uint64_t>(m.size()));
    reserve_elements(m.size(), sizeof(K) + sizeof(V));
    for (const auto& [k, v] : m) {
      write(k);
      write(v);
    }
  }

  template <class T>
    requires HasOoppSerialize<T>
  void write(const T& v) {
    // The symmetric visitor takes T&; serialization does not mutate.
    oopp_serialize(*this, const_cast<T&>(v));
  }

  /// Length-prefixed byte slice.  Wire format is identical to a
  /// std::vector<std::byte> of the same content; a large slice is
  /// *spliced* into the stream as its own segment — the flat bytes
  /// written so far are sealed off, the slice rides by reference, and
  /// take_segments() hands the chain to net::Buffer with zero copies.
  /// Tiny slices are inlined: a segment descriptor costs more than the
  /// memcpy it saves.
  void write(const Bytes& b) {
    write(static_cast<std::uint64_t>(b.size()));
    if (b.size() >= kSpliceThreshold && b.store() != nullptr) {
      seal();
      sealed_ += b.size();
      segs_.push_back(b);
    } else {
      append(b.data(), b.size());
    }
  }

  /// Raw bytes without a length prefix (caller encodes framing itself).
  void write_raw(const void* p, std::size_t n) { append(p, n); }

  /// Contiguous view of the encoded bytes.  Only valid while no Bytes
  /// slice has been spliced — segment-carrying archives hand off through
  /// take_segments() (or take(), which flattens).
  [[nodiscard]] const std::vector<std::byte>& bytes() const {
    if (!segs_.empty())
      throw serial_error(
          "OArchive::bytes() on a segmented archive; use take_segments()");
    return buf_;
  }
  /// Move the encoded bytes out (the sanctioned way to hand a finished
  /// pack to the transport: a net::Buffer adopts the vector so the bytes
  /// travel to the socket without another copy).  Leaves the archive
  /// empty and reusable.  A segmented archive flattens here — callers on
  /// the zero-copy path use take_segments() instead.
  [[nodiscard]] std::vector<std::byte> take() {
    if (!segs_.empty()) {
      std::vector<std::byte> flat;
      flat.reserve(size());
      for (const Bytes& s : segs_) {
        const auto sp = s.span();
        flat.insert(flat.end(), sp.begin(), sp.end());
      }
      flat.insert(flat.end(), buf_.begin(), buf_.end());
      segs_.clear();
      sealed_ = 0;
      buf_.clear();
      return flat;
    }
    return std::exchange(buf_, {});
  }
  /// True once a Bytes slice has been spliced into the stream.
  [[nodiscard]] bool has_segments() const { return !segs_.empty(); }
  /// Move the segment chain out, in stream order (the trailing flat
  /// bytes are sealed as the last segment).  Each segment is a
  /// ref-counted slice net::Buffer::view can wrap directly.  Leaves the
  /// archive empty and reusable.
  [[nodiscard]] std::vector<Bytes> take_segments() {
    seal();
    sealed_ = 0;
    return std::exchange(segs_, {});
  }
  [[nodiscard]] std::size_t size() const { return sealed_ + buf_.size(); }

  /// Below this, splicing a Bytes costs more (a slice descriptor, an
  /// iovec entry on the wire) than copying it inline.  Public so callers
  /// sizing payloads for the zero-copy path can reason about it.
  static constexpr std::size_t kSpliceThreshold = 256;

 private:
  void write_sized(const void* p, std::size_t n) {
    write(static_cast<std::uint64_t>(n));
    append(p, n);
  }
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  /// One up-front grow ahead of an element loop instead of log2(n)
  /// doubling reallocations.  sizeof(T) is exact for scalar elements and
  /// a rough per-element estimate otherwise — under- or overshoot is
  /// harmless, the loop still appends element by element.
  void reserve_elements(std::size_t n, std::size_t per) {
    buf_.reserve(buf_.size() + n * per);
  }
  /// Close the current flat run into its own segment.
  void seal() {
    if (buf_.empty()) return;
    sealed_ += buf_.size();
    segs_.push_back(Bytes::adopt(std::exchange(buf_, {})));
  }
  std::vector<std::byte> buf_;
  std::vector<Bytes> segs_;   // sealed stream prefix, in order
  std::size_t sealed_ = 0;    // total bytes across segs_
};

// ---------------------------------------------------------------------------
// IArchive — bounds-checked byte source over a non-owning span.
// ---------------------------------------------------------------------------
class IArchive {
 public:
  explicit IArchive(std::span<const std::byte> data) : data_(data) {}

  /// Decode over a span that lives inside a shared allocation (`data`
  /// starts at `base_off` within `*store`).  read_into(Bytes&) then
  /// returns ref-counted *views* into the store instead of copies — the
  /// zero-copy receive half: an RPC layer hands the request payload's
  /// backing store here so servant methods taking Bytes arguments alias
  /// the inbound frame.
  IArchive(std::span<const std::byte> data,
           std::shared_ptr<const std::vector<std::byte>> store,
           std::size_t base_off)
      : data_(data), store_(std::move(store)), base_(base_off) {
    if (store_ != nullptr && base_ + data_.size() > store_->size())
      throw serial_error("IArchive: span extends past its backing store");
  }

  template <class... Ts>
  IArchive& operator()(Ts&... vs) {
    (read_into(vs), ...);
    return *this;
  }

  template <class T>
  [[nodiscard]] T read() {
    T v{};
    read_into(v);
    return v;
  }

  template <Scalar T>
  void read_into(T& v) {
    consume(&v, sizeof(T));
  }

  void read_into(std::string& s) {
    const auto n = read_size();
    s.resize(n);
    consume(s.data(), n);
  }

  template <class T>
  void read_into(std::vector<T>& v) {
    const auto n = read_size();
    if constexpr (Scalar<T>) {
      require(n * sizeof(T));
      v.resize(n);
      consume(v.data(), n * sizeof(T));
    } else {
      v.clear();
      v.reserve(n);
      for (std::size_t i = 0; i < n; ++i) v.push_back(read<T>());
    }
  }

  template <class T, std::size_t N>
  void read_into(std::array<T, N>& v) {
    if constexpr (Scalar<T>) {
      consume(v.data(), N * sizeof(T));
    } else {
      for (auto& e : v) read_into(e);
    }
  }

  template <class A, class B>
  void read_into(std::pair<A, B>& v) {
    read_into(v.first);
    read_into(v.second);
  }

  template <class... Ts>
  void read_into(std::tuple<Ts...>& v) {
    std::apply([this](Ts&... es) { (read_into(es), ...); }, v);
  }

  template <class T>
  void read_into(std::optional<T>& v) {
    if (read<std::uint8_t>() != 0)
      v = read<T>();
    else
      v.reset();
  }

  template <class T, class A>
  void read_into(std::deque<T, A>& d) {
    const auto n = read_size();
    d.clear();
    for (std::size_t i = 0; i < n; ++i) d.push_back(read<T>());
  }

  template <class T, class A>
  void read_into(std::list<T, A>& l) {
    const auto n = read_size();
    l.clear();
    for (std::size_t i = 0; i < n; ++i) l.push_back(read<T>());
  }

  template <class K, class C, class A>
  void read_into(std::set<K, C, A>& s) {
    const auto n = read_size();
    s.clear();
    for (std::size_t i = 0; i < n; ++i) s.insert(read<K>());
  }

  template <class K, class H, class E, class A>
  void read_into(std::unordered_set<K, H, E, A>& s) {
    const auto n = read_size();
    s.clear();
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) s.insert(read<K>());
  }

  template <class K, class V, class C, class A>
  void read_into(std::map<K, V, C, A>& m) {
    const auto n = read_size();
    m.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto k = read<K>();
      m.emplace(std::move(k), read<V>());
    }
  }

  template <class K, class V, class H, class E, class A>
  void read_into(std::unordered_map<K, V, H, E, A>& m) {
    const auto n = read_size();
    m.clear();
    m.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto k = read<K>();
      m.emplace(std::move(k), read<V>());
    }
  }

  template <class T>
    requires HasOoppSerialize<T>
  void read_into(T& v) {
    oopp_serialize(*this, v);
  }

  /// Length-prefixed byte slice (symmetric with OArchive::write(Bytes)).
  /// With a backing store this is a ref-counted view — no copy; without
  /// one the bytes are copied into a fresh allocation.
  void read_into(Bytes& b) {
    const auto n = read_size();
    if (store_ != nullptr)
      b = Bytes(store_, base_ + pos_, n);
    else
      b = Bytes::copy({data_.data() + pos_, n});
    pos_ += n;
  }

  void read_raw(void* p, std::size_t n) { consume(p, n); }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  std::size_t read_size() {
    const auto n = read<std::uint64_t>();
    require(n);  // a length prefix can never exceed the bytes that remain
    return static_cast<std::size_t>(n);
  }
  void require(std::size_t n) const {
    if (n > remaining())
      throw serial_error("IArchive: truncated input (need " +
                         std::to_string(n) + " bytes, have " +
                         std::to_string(remaining()) + ")");
  }
  void consume(void* out, std::size_t n) {
    require(n);
    // n == 0 must skip the memcpy: `out` is null when the destination is
    // an empty container's data(), and memcpy(null, _, 0) is still UB.
    if (n != 0) std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  /// Optional shared backing allocation for zero-copy Bytes views.
  std::shared_ptr<const std::vector<std::byte>> store_;
  std::size_t base_ = 0;  // offset of data_[0] within *store_
};

/// Convenience: serialize a single value to a byte vector.
template <class T>
std::vector<std::byte> to_bytes(const T& v) {
  OArchive oa;
  oa(v);
  return oa.take();
}

/// Convenience: deserialize a single value from bytes.
template <class T>
T from_bytes(std::span<const std::byte> data) {
  IArchive ia(data);
  return ia.read<T>();
}

}  // namespace oopp::serial
