#include "array/domain.hpp"

#include <algorithm>

namespace oopp::array {

Domain::Domain(index_t lo1, index_t hi1, index_t lo2, index_t hi2,
               index_t lo3, index_t hi3)
    : lo_{lo1, lo2, lo3}, hi_{hi1, hi2, hi3} {
  for (int a = 0; a < 3; ++a)
    OOPP_CHECK_MSG(lo_[a] <= hi_[a],
                   "domain axis " << a << " has lo " << lo_[a] << " > hi "
                                  << hi_[a]);
}

bool Domain::contains(const Domain& other) const {
  if (other.empty()) return true;
  for (int a = 0; a < 3; ++a)
    if (other.lo_[a] < lo_[a] || other.hi_[a] > hi_[a]) return false;
  return true;
}

Domain Domain::intersect(const Domain& other) const {
  std::array<index_t, 3> lo{}, hi{};
  for (int a = 0; a < 3; ++a) {
    lo[a] = std::max(lo_[a], other.lo_[a]);
    hi[a] = std::min(hi_[a], other.hi_[a]);
    if (hi[a] < lo[a]) return Domain();  // empty
  }
  return Domain(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2]);
}

}  // namespace oopp::array
