#include "array/page_map.hpp"

namespace oopp::array {

std::shared_ptr<PageMap> PageMapSpec::instantiate(Extents3 page_grid,
                                                  std::int32_t devices) const {
  switch (kind) {
    case PageMapKind::kSingleDevice:
      return std::make_shared<SingleDevicePageMap>(page_grid);
    case PageMapKind::kRoundRobin:
      return std::make_shared<RoundRobinPageMap>(page_grid, devices);
    case PageMapKind::kBlocked:
      return std::make_shared<BlockedPageMap>(page_grid, devices);
  }
  OOPP_CHECK_MSG(false, "unknown PageMapKind");
  return nullptr;
}

index_t PageMapSpec::pages_per_device(Extents3 page_grid,
                                      std::int32_t devices) const {
  switch (kind) {
    case PageMapKind::kSingleDevice:
      return page_grid.volume();
    case PageMapKind::kRoundRobin:
    case PageMapKind::kBlocked:
      return ceil_div(page_grid.volume(), devices);
  }
  OOPP_CHECK_MSG(false, "unknown PageMapKind");
  return 0;
}

const char* PageMapSpec::name() const {
  switch (kind) {
    case PageMapKind::kSingleDevice:
      return "single-device";
    case PageMapKind::kRoundRobin:
      return "round-robin";
    case PageMapKind::kBlocked:
      return "blocked";
  }
  return "?";
}

}  // namespace oopp::array
