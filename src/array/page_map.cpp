#include "array/page_map.hpp"

#include <algorithm>

#include "rpc/errors.hpp"

namespace oopp::array {

void PageMapSpec::validate(Extents3 page_grid, std::int32_t devices) const {
  if (page_grid.volume() <= 0)
    throw Error("PageMapSpec: page grid " + std::to_string(page_grid.n1) +
                    "x" + std::to_string(page_grid.n2) + "x" +
                    std::to_string(page_grid.n3) + " has zero volume",
                net::CallStatus::kInternal);
  if (devices <= 0)
    throw Error("PageMapSpec: layout needs a positive device count, got " +
                    std::to_string(devices),
                net::CallStatus::kInternal);
  switch (kind) {
    case PageMapKind::kSingleDevice:
    case PageMapKind::kRoundRobin:
    case PageMapKind::kBlocked:
      return;
    case PageMapKind::kBlockCyclic:
      if (block <= 0)
        throw Error("PageMapSpec: block-cyclic block length must be "
                    "positive, got " +
                        std::to_string(block),
                    net::CallStatus::kInternal);
      return;
  }
  throw Error("PageMapSpec: unknown PageMapKind " +
                  std::to_string(static_cast<int>(kind)),
              net::CallStatus::kInternal);
}

std::shared_ptr<PageMap> PageMapSpec::instantiate(Extents3 page_grid,
                                                  std::int32_t devices) const {
  validate(page_grid, devices);
  switch (kind) {
    case PageMapKind::kSingleDevice:
      return std::make_shared<SingleDevicePageMap>(page_grid);
    case PageMapKind::kRoundRobin:
      return std::make_shared<RoundRobinPageMap>(page_grid, devices);
    case PageMapKind::kBlocked:
      return std::make_shared<BlockedPageMap>(page_grid, devices);
    case PageMapKind::kBlockCyclic:
      return std::make_shared<BlockCyclicPageMap>(page_grid, devices, block);
  }
  return nullptr;  // unreachable: validate rejected the kind
}

index_t PageMapSpec::pages_per_device(Extents3 page_grid,
                                      std::int32_t devices) const {
  validate(page_grid, devices);
  const index_t pages = page_grid.volume();
  switch (kind) {
    case PageMapKind::kSingleDevice:
      return pages;
    case PageMapKind::kRoundRobin:
    case PageMapKind::kBlocked:
      return ceil_div(pages, devices);
    case PageMapKind::kBlockCyclic:
      return ceil_div(ceil_div(pages, block), devices) *
             static_cast<index_t>(block);
  }
  return 0;  // unreachable: validate rejected the kind
}

index_t PageMapSpec::pages_on_device(Extents3 page_grid, std::int32_t devices,
                                     std::int32_t device) const {
  validate(page_grid, devices);
  if (device < 0 || device >= devices)
    throw Error("PageMapSpec: device " + std::to_string(device) +
                    " out of [0, " + std::to_string(devices) + ")",
                net::CallStatus::kInternal);
  const index_t pages = page_grid.volume();
  switch (kind) {
    case PageMapKind::kSingleDevice:
      return device == 0 ? pages : 0;
    case PageMapKind::kRoundRobin:
      return pages / devices + (device < pages % devices ? 1 : 0);
    case PageMapKind::kBlocked: {
      const index_t chunk = ceil_div(pages, devices);
      const index_t lo = static_cast<index_t>(device) * chunk;
      return std::clamp<index_t>(pages - lo, 0, chunk);
    }
    case PageMapKind::kBlockCyclic: {
      const index_t nblocks = ceil_div(pages, block);
      index_t count = 0;
      for (index_t b = device; b < nblocks; b += devices)
        count += std::min<index_t>(block, pages - b * block);
      return count;
    }
  }
  return 0;  // unreachable: validate rejected the kind
}

const char* PageMapSpec::name() const {
  switch (kind) {
    case PageMapKind::kSingleDevice:
      return "single-device";
    case PageMapKind::kRoundRobin:
      return "round-robin";
    case PageMapKind::kBlocked:
      return "blocked";
    case PageMapKind::kBlockCyclic:
      return "block-cyclic";
  }
  return "?";
}

}  // namespace oopp::array
