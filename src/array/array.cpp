#include "array/array.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>

#include "core/future.hpp"

namespace oopp::array {

using storage::ArrayPage;
using storage::ArrayPageDevice;

namespace {

Extents3 make_grid(const Extents3& n, const Extents3& b) {
  return {ceil_div(n.n1, b.n1), ceil_div(n.n2, b.n2), ceil_div(n.n3, b.n3)};
}

}  // namespace

Array::Array(index_t N1, index_t N2, index_t N3, index_t n1, index_t n2,
             index_t n3, BlockStorage data, PageMapSpec map, IoMode io)
    : n_{N1, N2, N3},
      b_{n1, n2, n3},
      grid_(make_grid(n_, b_)),
      data_(std::move(data)),
      spec_(map),
      map_(map.instantiate(grid_, static_cast<std::int32_t>(data_.size()))),
      io_(io) {
  OOPP_CHECK_MSG(n_.volume() > 0 && b_.volume() > 0,
                 "array and page extents must be positive");
  OOPP_CHECK_MSG(!data_.empty(), "block storage is empty");
}

Array::Array(index_t N1, index_t N2, index_t N3, index_t n1, index_t n2,
             index_t n3, BlockStorage data, std::shared_ptr<PageMap> map,
             IoMode io)
    : n_{N1, N2, N3},
      b_{n1, n2, n3},
      grid_(make_grid(n_, b_)),
      data_(std::move(data)),
      custom_map_(true),
      map_(std::move(map)),
      io_(io) {
  OOPP_CHECK_MSG(n_.volume() > 0 && b_.volume() > 0,
                 "array and page extents must be positive");
  OOPP_CHECK_MSG(!data_.empty(), "block storage is empty");
  OOPP_CHECK_MSG(map_ != nullptr, "null page map");
}

Array::Array(serial::IArchive& ia) {
  std::uint8_t io = 0;
  ia(n_.n1, n_.n2, n_.n3, b_.n1, b_.n2, b_.n3, data_, spec_, io,
     pages_read_, pages_written_);
  io_ = static_cast<IoMode>(io);
  grid_ = make_grid(n_, b_);
  map_ = spec_.instantiate(grid_, static_cast<std::int32_t>(data_.size()));
}

void Array::oopp_save(serial::OArchive& oa) const {
  OOPP_CHECK_MSG(!custom_map_,
                 "an Array with a custom PageMap cannot be serialized; use a "
                 "PageMapSpec layout");
  // data_ is a vector of remote pointers; const_cast is safe because
  // serializing does not mutate.
  auto& self = const_cast<Array&>(*this);
  oa(n_.n1, n_.n2, n_.n3, b_.n1, b_.n2, b_.n3, self.data_, self.spec_,
     static_cast<std::uint8_t>(io_), pages_read_, pages_written_);
}

void Array::rebuild_from_spec() {
  if (data_.empty()) return;  // write path of an empty handle
  grid_ = make_grid(n_, b_);
  map_ = spec_.instantiate(grid_, static_cast<std::int32_t>(data_.size()));
}

Domain Array::page_box(index_t p1, index_t p2, index_t p3) const {
  return Domain(p1 * b_.n1, std::min((p1 + 1) * b_.n1, n_.n1),
                p2 * b_.n2, std::min((p2 + 1) * b_.n2, n_.n2),
                p3 * b_.n3, std::min((p3 + 1) * b_.n3, n_.n3));
}

void Array::validate_domain(const Domain& domain) const {
  OOPP_CHECK_MSG(valid(), "operation on an empty Array handle");
  OOPP_CHECK_MSG(Domain::whole(n_).contains(domain),
                 "domain exceeds array bounds");
}

const remote_ptr<ArrayPageDevice>& Array::device(
    std::int32_t device_id) const {
  OOPP_CHECK_MSG(device_id >= 0 &&
                     static_cast<std::size_t>(device_id) < data_.size(),
                 "page map produced device " << device_id << " out of range");
  return data_[static_cast<std::size_t>(device_id)];
}

const remote_ptr<ArrayPageDevice>& Array::device(
    const PageAddress& addr) const {
  return device(addr.device_id);
}

template <class Fn>
void Array::for_each_page(const Domain& domain, Fn&& fn) const {
  if (domain.empty()) return;
  const index_t p1lo = domain.lo(0) / b_.n1;
  const index_t p1hi = ceil_div(domain.hi(0), b_.n1);
  const index_t p2lo = domain.lo(1) / b_.n2;
  const index_t p2hi = ceil_div(domain.hi(1), b_.n2);
  const index_t p3lo = domain.lo(2) / b_.n3;
  const index_t p3hi = ceil_div(domain.hi(2), b_.n3);
  for (index_t p1 = p1lo; p1 < p1hi; ++p1)
    for (index_t p2 = p2lo; p2 < p2hi; ++p2)
      for (index_t p3 = p3lo; p3 < p3hi; ++p3)
        fn(p1, p2, p3, map_->physical_page_address(p1, p2, p3),
           page_box(p1, p2, p3));
}

namespace {

/// Copy the intersection region from a fetched page into the caller's
/// subarray buffer; contiguous i3 runs move with one memcpy each.
void page_to_buffer(const ArrayPage& page, index_t o1, index_t o2, index_t o3,
                    const Domain& inter, const Domain& domain,
                    std::vector<double>& out) {
  const double* v = page.values();
  const Extents3& pe = page.extents();
  const index_t run = inter.extent(2);
  for (index_t i1 = inter.lo(0); i1 < inter.hi(0); ++i1) {
    for (index_t i2 = inter.lo(1); i2 < inter.hi(1); ++i2) {
      const double* src =
          v + pe.linear(i1 - o1, i2 - o2, inter.lo(2) - o3);
      double* dst = out.data() + domain.local_offset(i1, i2, inter.lo(2));
      std::memcpy(dst, src, static_cast<std::size_t>(run) * sizeof(double));
    }
  }
}

/// Overlay the intersection region of the caller's subarray onto a page.
void buffer_to_page(const std::vector<double>& sub, const Domain& domain,
                    const Domain& inter, index_t o1, index_t o2, index_t o3,
                    ArrayPage& page) {
  double* v = page.values();
  const Extents3& pe = page.extents();
  const index_t run = inter.extent(2);
  for (index_t i1 = inter.lo(0); i1 < inter.hi(0); ++i1) {
    for (index_t i2 = inter.lo(1); i2 < inter.hi(1); ++i2) {
      const double* src =
          sub.data() + domain.local_offset(i1, i2, inter.lo(2));
      double* dst = v + pe.linear(i1 - o1, i2 - o2, inter.lo(2) - o3);
      std::memcpy(dst, src, static_cast<std::size_t>(run) * sizeof(double));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Async slice I/O: the send half groups pages per device and issues ONE
// batched call per device; the receive half (the futures' get()) decodes
// and assembles.  The window between the two is the pipeline's overlap.
// ---------------------------------------------------------------------------

std::vector<double> SliceReadFuture::get() {
  OOPP_CHECK_MSG(valid(), "SliceReadFuture::get() called twice");
  done_ = true;
  std::vector<double> out(static_cast<std::size_t>(domain_.volume()));
  for (auto& b : batches_) {
    const std::vector<ArrayPage> pages = b.fut.get();
    OOPP_CHECK(pages.size() == b.pieces.size());
    for (std::size_t i = 0; i < pages.size(); ++i) {
      const auto& pc = b.pieces[i];
      page_to_buffer(pages[i], pc.o1, pc.o2, pc.o3, pc.inter, domain_, out);
    }
  }
  return out;
}

void SliceWriteFuture::finish(const std::vector<double>& sub) {
  // Finish the read-modify-write of partially covered pages: harvest the
  // batched reads, overlay, and send the batched writes.
  for (auto& r : rmw_) {
    std::vector<ArrayPage> pages = r.fut.get();
    OOPP_CHECK(pages.size() == r.pieces.size());
    for (std::size_t i = 0; i < pages.size(); ++i) {
      const auto& pc = r.pieces[i];
      buffer_to_page(sub, domain_, pc.inter, pc.o1, pc.o2, pc.o3, pages[i]);
    }
    writes_.push_back(r.dev.async<&ArrayPageDevice::write_arrays>(
        std::move(pages), r.indices));
  }
  rmw_.clear();
  for (auto& w : writes_) w.get();
  writes_.clear();
}

void SliceWriteFuture::get() {
  OOPP_CHECK_MSG(valid(), "SliceWriteFuture::get() called twice");
  done_ = true;
  finish(sub_);
  sub_.clear();
}

SliceReadFuture Array::async_read_slice(const Domain& domain) const {
  validate_domain(domain);
  SliceReadFuture op;
  op.domain_ = domain;
  if (domain.empty()) return op;

  struct Build {
    std::vector<std::int32_t> indices;
    std::vector<SliceReadFuture::Piece> pieces;
  };
  std::map<std::int32_t, Build> per_dev;
  for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                            const PageAddress& addr, const Domain& box) {
    const Domain inter = domain.intersect(box);
    if (inter.empty()) return;
    auto& b = per_dev[addr.device_id];
    b.indices.push_back(addr.index);
    b.pieces.push_back({inter, p1 * b_.n1, p2 * b_.n2, p3 * b_.n3});
  });

  op.batches_.reserve(per_dev.size());
  for (auto& [dev_id, b] : per_dev) {
    const auto& dev = device(dev_id);
    pages_read_ += b.indices.size();
    SliceReadFuture::Batch batch;
    batch.fut = dev.async<&ArrayPageDevice::read_arrays>(b.indices);
    batch.pieces = std::move(b.pieces);
    op.batches_.push_back(std::move(batch));
  }
  return op;
}

SliceWriteFuture Array::async_write_slice(std::vector<double> subarray,
                                          const Domain& domain) {
  // The builder borrows the buffer (fully covered pages are copied into
  // their ArrayPages right away); the future keeps it only for the RMW
  // overlay inside get().
  SliceWriteFuture op = build_write_slice(subarray, domain);
  op.sub_ = std::move(subarray);
  return op;
}

SliceWriteFuture Array::build_write_slice(const std::vector<double>& subarray,
                                          const Domain& domain) {
  validate_domain(domain);
  OOPP_CHECK_MSG(
      subarray.size() == static_cast<std::size_t>(domain.volume()),
      "subarray has " << subarray.size() << " elements, domain needs "
                      << domain.volume());
  SliceWriteFuture op;
  op.domain_ = domain;
  if (domain.empty()) return op;

  struct Build {
    std::vector<std::int32_t> full_indices;
    std::vector<ArrayPage> full_pages;
    std::vector<std::int32_t> part_indices;
    std::vector<SliceWriteFuture::Piece> part_pieces;
  };
  std::map<std::int32_t, Build> per_dev;
  for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                            const PageAddress& addr, const Domain& box) {
    const Domain inter = domain.intersect(box);
    if (inter.empty()) return;
    const index_t o1 = p1 * b_.n1, o2 = p2 * b_.n2, o3 = p3 * b_.n3;
    auto& b = per_dev[addr.device_id];
    if (inter == box) {
      // Fully covered: build the page locally, no read needed.
      ArrayPage page(static_cast<int>(b_.n1), static_cast<int>(b_.n2),
                     static_cast<int>(b_.n3));
      buffer_to_page(subarray, domain, inter, o1, o2, o3, page);
      b.full_indices.push_back(addr.index);
      b.full_pages.push_back(std::move(page));
    } else {
      b.part_indices.push_back(addr.index);
      b.part_pieces.push_back({addr.index, inter, o1, o2, o3});
    }
  });

  for (auto& [dev_id, b] : per_dev) {
    const auto& dev = device(dev_id);
    if (!b.full_indices.empty()) {
      pages_written_ += b.full_indices.size();
      op.writes_.push_back(dev.async<&ArrayPageDevice::write_arrays>(
          std::move(b.full_pages), std::move(b.full_indices)));
    }
    if (!b.part_indices.empty()) {
      pages_read_ += b.part_indices.size();
      pages_written_ += b.part_indices.size();
      SliceWriteFuture::RmwBatch r;
      r.dev = dev;
      r.fut = dev.async<&ArrayPageDevice::read_arrays>(b.part_indices);
      r.indices = std::move(b.part_indices);
      r.pieces = std::move(b.part_pieces);
      op.rmw_.push_back(std::move(r));
    }
  }
  return op;
}

std::vector<double> Array::read(const Domain& domain) const {
  validate_domain(domain);
  std::vector<double> out(static_cast<std::size_t>(domain.volume()));
  if (domain.empty()) return out;

  if (io_ == IoMode::kSequential) {
    // Paper §2: each page's whole round trip completes before the next.
    for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                              const PageAddress& addr, const Domain& box) {
      const Domain inter = domain.intersect(box);
      if (inter.empty()) return;
      const ArrayPage page =
          device(addr).call<&ArrayPageDevice::read_array>(addr.index);
      page_to_buffer(page, p1 * b_.n1, p2 * b_.n2, p3 * b_.n3, inter, domain,
                     out);
      ++pages_read_;
    });
    return out;
  }

  // Paper §4 upgraded: one batched send per device, then the receive half.
  auto op = async_read_slice(domain);
  return op.get();
}

void Array::write(const std::vector<double>& subarray, const Domain& domain) {
  validate_domain(domain);
  OOPP_CHECK_MSG(
      subarray.size() == static_cast<std::size_t>(domain.volume()),
      "subarray has " << subarray.size() << " elements, domain needs "
                      << domain.volume());
  if (domain.empty()) return;

  if (io_ == IoMode::kSequential) {
    for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                              const PageAddress& addr, const Domain& box) {
      const Domain inter = domain.intersect(box);
      if (inter.empty()) return;
      const index_t o1 = p1 * b_.n1, o2 = p2 * b_.n2, o3 = p3 * b_.n3;
      const auto& dev = device(addr);
      if (inter == box) {
        ArrayPage page(static_cast<int>(b_.n1), static_cast<int>(b_.n2),
                       static_cast<int>(b_.n3));
        buffer_to_page(subarray, domain, inter, o1, o2, o3, page);
        dev.call<&ArrayPageDevice::write_array>(page, addr.index);
        ++pages_written_;
        return;
      }
      ArrayPage page = dev.call<&ArrayPageDevice::read_array>(addr.index);
      buffer_to_page(subarray, domain, inter, o1, o2, o3, page);
      dev.call<&ArrayPageDevice::write_array>(page, addr.index);
      ++pages_read_;
      ++pages_written_;
    });
    return;
  }

  // Borrow the caller's buffer rather than paying async_write_slice's
  // by-value copy: the receive half completes before returning, so the
  // borrow never outlives the buffer.
  SliceWriteFuture op = build_write_slice(subarray, domain);
  op.done_ = true;
  op.finish(subarray);
}

double Array::sum(const Domain& domain) const {
  validate_domain(domain);
  if (domain.empty()) return 0.0;

  std::vector<Future<double>> partials;
  double acc = 0.0;

  for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                            const PageAddress& addr, const Domain& box) {
    const Domain inter = domain.intersect(box);
    if (inter.empty()) return;
    const index_t o1 = p1 * b_.n1, o2 = p2 * b_.n2, o3 = p3 * b_.n3;
    const auto& dev = device(addr);
    // The partial reduction runs on the device's machine; only the scalar
    // comes back (paper §3: "move the computation to the data").
    if (io_ == IoMode::kSequential) {
      acc += dev.call<&ArrayPageDevice::sum_region>(
          addr.index, inter.lo(0) - o1, inter.hi(0) - o1, inter.lo(1) - o2,
          inter.hi(1) - o2, inter.lo(2) - o3, inter.hi(2) - o3);
      ++pages_read_;
    } else {
      partials.push_back(dev.async<&ArrayPageDevice::sum_region>(
          addr.index, inter.lo(0) - o1, inter.hi(0) - o1, inter.lo(1) - o2,
          inter.hi(1) - o2, inter.lo(2) - o3, inter.hi(2) - o3));
    }
  });

  // Deterministic combination order: page iteration order.
  for (auto& f : partials) {
    acc += f.get();
    ++pages_read_;
  }
  return acc;
}

double Array::sum_all() const { return sum(Domain::whole(n_)); }

double Array::reduce(ReduceOp op, const Domain& domain) const {
  validate_domain(domain);
  OOPP_CHECK_MSG(!domain.empty(), "reduction over an empty domain");

  double acc = 0.0;
  if (op == ReduceOp::kMin) acc = std::numeric_limits<double>::infinity();
  if (op == ReduceOp::kMax) acc = -std::numeric_limits<double>::infinity();
  auto combine = [&](double partial) {
    if (op == ReduceOp::kMin)
      acc = std::min(acc, partial);
    else if (op == ReduceOp::kMax)
      acc = std::max(acc, partial);
    else
      acc += partial;
  };

  std::vector<Future<double>> partials;
  for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                            const PageAddress& addr, const Domain& box) {
    const Domain inter = domain.intersect(box);
    if (inter.empty()) return;
    const index_t o1 = p1 * b_.n1, o2 = p2 * b_.n2, o3 = p3 * b_.n3;
    const auto& dev = device(addr);
    if (io_ == IoMode::kSequential) {
      combine(dev.call<&ArrayPageDevice::reduce_region>(
          op, addr.index, inter.lo(0) - o1, inter.hi(0) - o1,
          inter.lo(1) - o2, inter.hi(1) - o2, inter.lo(2) - o3,
          inter.hi(2) - o3));
      ++pages_read_;
    } else {
      partials.push_back(dev.async<&ArrayPageDevice::reduce_region>(
          op, addr.index, inter.lo(0) - o1, inter.hi(0) - o1,
          inter.lo(1) - o2, inter.hi(1) - o2, inter.lo(2) - o3,
          inter.hi(2) - o3));
    }
  });
  for (auto& f : partials) {
    combine(f.get());
    ++pages_read_;
  }
  return acc;
}

double Array::norm2(const Domain& domain) const {
  return std::sqrt(reduce(ReduceOp::kSumSq, domain));
}

void Array::update(UpdateOp op, double s, const Domain& domain) {
  validate_domain(domain);
  if (domain.empty()) return;
  std::vector<Future<void>> futs;
  for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                            const PageAddress& addr, const Domain& box) {
    const Domain inter = domain.intersect(box);
    if (inter.empty()) return;
    const index_t o1 = p1 * b_.n1, o2 = p2 * b_.n2, o3 = p3 * b_.n3;
    const auto& dev = device(addr);
    if (io_ == IoMode::kSequential) {
      dev.call<&ArrayPageDevice::update_region>(
          op, s, addr.index, inter.lo(0) - o1, inter.hi(0) - o1,
          inter.lo(1) - o2, inter.hi(1) - o2, inter.lo(2) - o3,
          inter.hi(2) - o3);
      ++pages_written_;
    } else {
      futs.push_back(dev.async<&ArrayPageDevice::update_region>(
          op, s, addr.index, inter.lo(0) - o1, inter.hi(0) - o1,
          inter.lo(1) - o2, inter.hi(1) - o2, inter.lo(2) - o3,
          inter.hi(2) - o3));
    }
  });
  for (auto& f : futs) {
    f.get();
    ++pages_written_;
  }
}

double Array::get(index_t i1, index_t i2, index_t i3) const {
  return read(Domain(i1, i1 + 1, i2, i2 + 1, i3, i3 + 1))[0];
}

void Array::set(index_t i1, index_t i2, index_t i3, double v) {
  write({v}, Domain(i1, i1 + 1, i2, i2 + 1, i3, i3 + 1));
}

}  // namespace oopp::array
