#include "array/array.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "core/future.hpp"
#include "telemetry/metrics.hpp"
#include "util/clock.hpp"

namespace oopp::array {

using storage::ArrayPage;
using storage::ArrayPageDevice;

namespace {

Extents3 make_grid(const Extents3& n, const Extents3& b) {
  return {ceil_div(n.n1, b.n1), ceil_div(n.n2, b.n2), ceil_div(n.n3, b.n3)};
}

}  // namespace

Array::Array(index_t N1, index_t N2, index_t N3, index_t n1, index_t n2,
             index_t n3, BlockStorage data, PageMapSpec map, IoMode io)
    : n_{N1, N2, N3},
      b_{n1, n2, n3},
      grid_(make_grid(n_, b_)),
      data_(std::move(data)),
      spec_(map),
      map_(map.instantiate(grid_, static_cast<std::int32_t>(data_.size()))),
      layout_devices_(static_cast<std::int32_t>(data_.size())),
      io_(io) {
  OOPP_CHECK_MSG(n_.volume() > 0 && b_.volume() > 0,
                 "array and page extents must be positive");
  OOPP_CHECK_MSG(!data_.empty(), "block storage is empty");
}

Array::Array(index_t N1, index_t N2, index_t N3, index_t n1, index_t n2,
             index_t n3, BlockStorage data, std::shared_ptr<PageMap> map,
             IoMode io)
    : n_{N1, N2, N3},
      b_{n1, n2, n3},
      grid_(make_grid(n_, b_)),
      data_(std::move(data)),
      custom_map_(true),
      map_(std::move(map)),
      layout_devices_(static_cast<std::int32_t>(data_.size())),
      io_(io) {
  OOPP_CHECK_MSG(n_.volume() > 0 && b_.volume() > 0,
                 "array and page extents must be positive");
  OOPP_CHECK_MSG(!data_.empty(), "block storage is empty");
  OOPP_CHECK_MSG(map_ != nullptr, "null page map");
}

Array::Array(const Array& o) {
  std::unique_lock<util::CheckedMutex> lk(o.mu_);
  OOPP_CHECK_MSG(!o.mig_,
                 "cannot copy an Array during an active redistribution");
  n_ = o.n_;
  b_ = o.b_;
  grid_ = o.grid_;
  data_ = o.data_;
  spec_ = o.spec_;
  custom_map_ = o.custom_map_;
  map_ = o.map_;  // PageMap instances are immutable: sharing is safe
  layout_devices_ = o.layout_devices_;
  slot_base_ = o.slot_base_;
  map_version_ = o.map_version_;
  io_ = o.io_;
  pages_read_.store(o.pages_read_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  pages_written_.store(o.pages_written_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

Array::Array(Array&& o) {
  std::unique_lock<util::CheckedMutex> lk(o.mu_);
  OOPP_CHECK_MSG(!o.mig_,
                 "cannot move an Array during an active redistribution");
  n_ = o.n_;
  b_ = o.b_;
  grid_ = o.grid_;
  data_ = std::move(o.data_);
  spec_ = o.spec_;
  custom_map_ = o.custom_map_;
  map_ = std::move(o.map_);
  layout_devices_ = o.layout_devices_;
  slot_base_ = o.slot_base_;
  map_version_ = o.map_version_;
  io_ = o.io_;
  pages_read_.store(o.pages_read_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  pages_written_.store(o.pages_written_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

Array& Array::operator=(Array&& o) {
  // Assignment (like any) is not thread-safe against concurrent use of
  // either operand; we only guard the invariant that migration state
  // belongs to exactly one object.
  if (this == &o) return *this;
  OOPP_CHECK_MSG(!mig_ && !o.mig_,
                 "cannot assign an Array during an active redistribution");
  n_ = o.n_;
  b_ = o.b_;
  grid_ = o.grid_;
  data_ = std::move(o.data_);
  spec_ = o.spec_;
  custom_map_ = o.custom_map_;
  map_ = std::move(o.map_);
  layout_devices_ = o.layout_devices_;
  slot_base_ = o.slot_base_;
  map_version_ = o.map_version_;
  io_ = o.io_;
  pages_read_.store(o.pages_read_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  pages_written_.store(o.pages_written_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  return *this;
}

Array& Array::operator=(const Array& o) {
  if (this == &o) return *this;
  Array tmp(o);
  *this = std::move(tmp);
  return *this;
}

Array::Array(serial::IArchive& ia) {
  std::uint8_t io = 0;
  std::uint64_t pr = 0, pw = 0;
  ia(n_.n1, n_.n2, n_.n3, b_.n1, b_.n2, b_.n3, data_, spec_, io,
     layout_devices_, slot_base_, map_version_, pr, pw);
  io_ = static_cast<IoMode>(io);
  pages_read_.store(pr, std::memory_order_relaxed);
  pages_written_.store(pw, std::memory_order_relaxed);
  rebuild_from_spec();
}

void Array::oopp_save(serial::OArchive& oa) const {
  std::unique_lock<util::CheckedMutex> lk(mu_);
  // Thrown (not asserted) so a servant hosting this Array fails the one
  // passivation call instead of taking the node down.
  if (custom_map_)
    throw Error(
        "an Array with a custom PageMap cannot be persisted; use a "
        "PageMapSpec layout",
        net::CallStatus::kInternal);
  if (mig_)
    throw Error(
        "an Array cannot be persisted during an active redistribution",
        net::CallStatus::kInternal);
  // data_ is a vector of remote pointers; const_cast is safe because
  // serializing does not mutate.
  auto& self = const_cast<Array&>(*this);
  std::uint64_t pr = pages_read(), pw = pages_written();
  oa(n_.n1, n_.n2, n_.n3, b_.n1, b_.n2, b_.n3, self.data_, self.spec_,
     static_cast<std::uint8_t>(io_), self.layout_devices_, self.slot_base_,
     self.map_version_, pr, pw);
}

void Array::rebuild_from_spec() {
  if (data_.empty()) return;  // write path of an empty handle
  grid_ = make_grid(n_, b_);
  if (layout_devices_ <= 0)
    layout_devices_ = static_cast<std::int32_t>(data_.size());
  map_ = spec_.instantiate(grid_, layout_devices_);
}

Domain Array::page_box(index_t p1, index_t p2, index_t p3) const {
  return Domain(p1 * b_.n1, std::min((p1 + 1) * b_.n1, n_.n1),
                p2 * b_.n2, std::min((p2 + 1) * b_.n2, n_.n2),
                p3 * b_.n3, std::min((p3 + 1) * b_.n3, n_.n3));
}

void Array::validate_domain(const Domain& domain) const {
  OOPP_CHECK_MSG(valid(), "operation on an empty Array handle");
  OOPP_CHECK_MSG(Domain::whole(n_).contains(domain),
                 "domain exceeds array bounds");
}

remote_ptr<ArrayPageDevice> Array::device(std::int32_t device_id) const {
  std::unique_lock<util::CheckedMutex> lk(mu_);
  OOPP_CHECK_MSG(device_id >= 0 &&
                     static_cast<std::size_t>(device_id) < data_.size(),
                 "page map produced device " << device_id << " out of range");
  return data_[static_cast<std::size_t>(device_id)];
}

remote_ptr<ArrayPageDevice> Array::device(const PageAddress& addr) const {
  return device(addr.device_id);
}

// ---------------------------------------------------------------------------
// Resolution: physical slot = map index + the layout's slot-bank base.
// Mid-migration a page resolves through the dual map: target home once
// its bytes moved, source home otherwise.
// ---------------------------------------------------------------------------

PageAddress Array::source_address_locked(index_t p1, index_t p2,
                                         index_t p3) const {
  PageAddress a = map_->physical_page_address(p1, p2, p3);
  a.index += slot_base_;
  return a;
}

PageAddress Array::target_address_locked(index_t p1, index_t p2,
                                         index_t p3) const {
  PageAddress a = mig_->target_map->physical_page_address(p1, p2, p3);
  OOPP_CHECK(a.device_id >= 0 &&
             static_cast<std::size_t>(a.device_id) < mig_->perm.size());
  a.device_id = mig_->perm[static_cast<std::size_t>(a.device_id)];
  a.index += mig_->target_base;
  return a;
}

PageAddress Array::resolve_read_locked(index_t lin, index_t p1, index_t p2,
                                       index_t p3) const {
  if (!mig_ || !mig_->ready) return source_address_locked(p1, p2, p3);
  static auto& dual =
      telemetry::Metrics::scope_for("array.redist").counter("dual_reads");
  dual.add(1);
  ++mig_->dual_reads;
  if (mig_->state[static_cast<std::size_t>(lin)] == kMoved)
    return target_address_locked(p1, p2, p3);
  return source_address_locked(p1, p2, p3);
}

PageAddress Array::page_address(index_t p1, index_t p2, index_t p3) const {
  OOPP_CHECK_MSG(valid(), "operation on an empty Array handle");
  OOPP_CHECK_MSG(grid_.contains(p1, p2, p3), "page coordinates out of range");
  std::unique_lock<util::CheckedMutex> lk(mu_);
  return resolve_read_locked(grid_.linear(p1, p2, p3), p1, p2, p3);
}

template <class Fn>
void Array::for_each_page(const Domain& domain, Fn&& fn) const {
  if (domain.empty()) return;
  const index_t p1lo = domain.lo(0) / b_.n1;
  const index_t p1hi = ceil_div(domain.hi(0), b_.n1);
  const index_t p2lo = domain.lo(1) / b_.n2;
  const index_t p2hi = ceil_div(domain.hi(1), b_.n2);
  const index_t p3lo = domain.lo(2) / b_.n3;
  const index_t p3hi = ceil_div(domain.hi(2), b_.n3);
  struct Visit {
    index_t p1, p2, p3;
    PageAddress addr;
  };
  std::vector<Visit> visits;
  visits.reserve(static_cast<std::size_t>((p1hi - p1lo) * (p2hi - p2lo) *
                                          (p3hi - p3lo)));
  {
    // Resolve every page in one lock hold; fn makes remote calls, so it
    // must run without the lock.
    std::unique_lock<util::CheckedMutex> lk(mu_);
    for (index_t p1 = p1lo; p1 < p1hi; ++p1)
      for (index_t p2 = p2lo; p2 < p2hi; ++p2)
        for (index_t p3 = p3lo; p3 < p3hi; ++p3)
          visits.push_back(
              {p1, p2, p3,
               resolve_read_locked(grid_.linear(p1, p2, p3), p1, p2, p3)});
  }
  for (const auto& v : visits)
    fn(v.p1, v.p2, v.p3, v.addr, page_box(v.p1, v.p2, v.p3));
}

// ---------------------------------------------------------------------------
// Write planning: a write must know, per page, where the current bytes
// live (RMW source) and where the write lands.  Mid-migration the claim
// set over the covered pages is taken all-or-wait under one lock hold.
// ---------------------------------------------------------------------------

std::vector<Array::WriteSlot> Array::plan_writes(const Domain& domain) {
  std::vector<WriteSlot> out;
  if (domain.empty()) return out;
  const index_t p1lo = domain.lo(0) / b_.n1;
  const index_t p1hi = ceil_div(domain.hi(0), b_.n1);
  const index_t p2lo = domain.lo(1) / b_.n2;
  const index_t p2hi = ceil_div(domain.hi(1), b_.n2);
  const index_t p3lo = domain.lo(2) / b_.n3;
  const index_t p3hi = ceil_div(domain.hi(2), b_.n3);

  std::unique_lock<util::CheckedMutex> lk(mu_);
  if (mig_ && mig_->ready) {
    static auto& stall =
        telemetry::Metrics::scope_for("array.redist").counter("stall_ns");
    // All-or-wait: while ANY covered page is mid-flight we hold no claims
    // and wait, so overlapping multi-page writers can never deadlock on
    // each other's partial claims.
    for (;;) {
      index_t busy = -1;
      for (index_t p1 = p1lo; p1 < p1hi && busy < 0; ++p1)
        for (index_t p2 = p2lo; p2 < p2hi && busy < 0; ++p2)
          for (index_t p3 = p3lo; p3 < p3hi && busy < 0; ++p3) {
            const index_t lin = grid_.linear(p1, p2, p3);
            if (mig_->state[static_cast<std::size_t>(lin)] == kMoving)
              busy = lin;
          }
      if (busy < 0) break;
      const std::int64_t t0 = now_ns();
      cv_.wait(lk, [&] {
        return !mig_ || mig_->state[static_cast<std::size_t>(busy)] != kMoving;
      });
      const auto waited = static_cast<std::uint64_t>(now_ns() - t0);
      stall.add(waited);
      if (!mig_) break;
      mig_->stall_ns += waited;
    }
  }
  out.reserve(static_cast<std::size_t>((p1hi - p1lo) * (p2hi - p2lo) *
                                       (p3hi - p3lo)));
  for (index_t p1 = p1lo; p1 < p1hi; ++p1)
    for (index_t p2 = p2lo; p2 < p2hi; ++p2)
      for (index_t p3 = p3lo; p3 < p3hi; ++p3) {
        WriteSlot s;
        s.p1 = p1;
        s.p2 = p2;
        s.p3 = p3;
        s.lin = grid_.linear(p1, p2, p3);
        if (!mig_ || !mig_->ready) {
          s.read_addr = s.write_addr = source_address_locked(p1, p2, p3);
        } else if (mig_->state[static_cast<std::size_t>(s.lin)] == kMoved) {
          s.read_addr = s.write_addr = target_address_locked(p1, p2, p3);
        } else {
          // Claim: the write carries this page to its target home.
          mig_->state[static_cast<std::size_t>(s.lin)] = kMoving;
          s.claimed = true;
          s.read_addr = source_address_locked(p1, p2, p3);
          s.write_addr = target_address_locked(p1, p2, p3);
        }
        out.push_back(s);
      }
  return out;
}

void Array::commit_claims(const std::vector<index_t>& lins) {
  if (lins.empty()) return;
  static auto& migrated =
      telemetry::Metrics::scope_for("array.redist").counter("pages_migrated");
  static auto& writer =
      telemetry::Metrics::scope_for("array.redist").counter("writer_migrated");
  std::uint64_t n = 0;
  {
    std::unique_lock<util::CheckedMutex> lk(mu_);
    if (!mig_) return;
    for (const auto lin : lins) {
      auto& s = mig_->state[static_cast<std::size_t>(lin)];
      if (s != kMoving) continue;
      s = kMoved;
      ++mig_->moved;
      ++mig_->writer_migrated;
      ++n;
    }
    ++mig_->epoch;
  }
  cv_.notify_all();
  migrated.add(n);
  writer.add(n);
}

void Array::release_claims(const std::vector<index_t>& lins) {
  if (lins.empty()) return;
  {
    std::unique_lock<util::CheckedMutex> lk(mu_);
    if (!mig_) return;
    for (const auto lin : lins) {
      auto& s = mig_->state[static_cast<std::size_t>(lin)];
      if (s == kMoving) s = kAtSource;
    }
    ++mig_->epoch;
  }
  cv_.notify_all();
}

namespace {

/// Copy the intersection region from a fetched page into the caller's
/// subarray buffer; contiguous i3 runs move with one memcpy each.
void page_to_buffer(const ArrayPage& page, index_t o1, index_t o2, index_t o3,
                    const Domain& inter, const Domain& domain,
                    std::vector<double>& out) {
  const double* v = page.values();
  const Extents3& pe = page.extents();
  const index_t run = inter.extent(2);
  for (index_t i1 = inter.lo(0); i1 < inter.hi(0); ++i1) {
    for (index_t i2 = inter.lo(1); i2 < inter.hi(1); ++i2) {
      const double* src =
          v + pe.linear(i1 - o1, i2 - o2, inter.lo(2) - o3);
      double* dst = out.data() + domain.local_offset(i1, i2, inter.lo(2));
      std::memcpy(dst, src, static_cast<std::size_t>(run) * sizeof(double));
    }
  }
}

/// Overlay the intersection region of the caller's subarray onto a page.
void buffer_to_page(const std::vector<double>& sub, const Domain& domain,
                    const Domain& inter, index_t o1, index_t o2, index_t o3,
                    ArrayPage& page) {
  double* v = page.values();
  const Extents3& pe = page.extents();
  const index_t run = inter.extent(2);
  for (index_t i1 = inter.lo(0); i1 < inter.hi(0); ++i1) {
    for (index_t i2 = inter.lo(1); i2 < inter.hi(1); ++i2) {
      const double* src =
          sub.data() + domain.local_offset(i1, i2, inter.lo(2));
      double* dst = v + pe.linear(i1 - o1, i2 - o2, inter.lo(2) - o3);
      std::memcpy(dst, src, static_cast<std::size_t>(run) * sizeof(double));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Async slice I/O: the send half groups pages per device and issues ONE
// batched call per device; the receive half (the futures' get()) decodes
// and assembles.  The window between the two is the pipeline's overlap.
// ---------------------------------------------------------------------------

std::vector<double> SliceReadFuture::get() {
  OOPP_CHECK_MSG(valid(), "SliceReadFuture::get() called twice");
  done_ = true;
  std::vector<double> out(static_cast<std::size_t>(domain_.volume()));
  for (auto& b : batches_) {
    const std::vector<ArrayPage> pages = b.fut.get();
    OOPP_CHECK(pages.size() == b.pieces.size());
    for (std::size_t i = 0; i < pages.size(); ++i) {
      const auto& pc = b.pieces[i];
      page_to_buffer(pages[i], pc.o1, pc.o2, pc.o3, pc.inter, domain_, out);
    }
  }
  return out;
}

SliceWriteFuture::SliceWriteFuture(SliceWriteFuture&& o) noexcept
    : writes_(std::move(o.writes_)),
      rmw_(std::move(o.rmw_)),
      sub_(std::move(o.sub_)),
      domain_(o.domain_),
      done_(o.done_),
      owner_(o.owner_),
      claimed_(std::move(o.claimed_)) {
  o.done_ = true;
  o.owner_ = nullptr;
  o.claimed_.clear();
}

SliceWriteFuture& SliceWriteFuture::operator=(SliceWriteFuture&& o) noexcept {
  if (this == &o) return *this;
  if (owner_ && !claimed_.empty()) owner_->release_claims(claimed_);
  writes_ = std::move(o.writes_);
  rmw_ = std::move(o.rmw_);
  sub_ = std::move(o.sub_);
  domain_ = o.domain_;
  done_ = o.done_;
  owner_ = o.owner_;
  claimed_ = std::move(o.claimed_);
  o.done_ = true;
  o.owner_ = nullptr;
  o.claimed_.clear();
  return *this;
}

SliceWriteFuture::~SliceWriteFuture() {
  // An abandoned (or failed) in-flight write hands its claims back: the
  // pages stay at the source and the migrator copies them.  The dropped
  // write was never awaited, so whether it took effect is indeterminate
  // either way.
  if (owner_ && !claimed_.empty()) owner_->release_claims(claimed_);
}

void SliceWriteFuture::finish(const std::vector<double>& sub) {
  // Finish the read-modify-write of partially covered pages: harvest the
  // batched reads, overlay, and send the batched writes (to the write-
  // side device, which differs from the read side mid-migration).
  for (auto& r : rmw_) {
    std::vector<ArrayPage> pages = r.fut.get();
    OOPP_CHECK(pages.size() == r.pieces.size());
    for (std::size_t i = 0; i < pages.size(); ++i) {
      const auto& pc = r.pieces[i];
      buffer_to_page(sub, domain_, pc.inter, pc.o1, pc.o2, pc.o3, pages[i]);
    }
    writes_.push_back(r.write_dev.async<&ArrayPageDevice::write_arrays>(
        std::move(pages), r.indices));
  }
  rmw_.clear();
  for (auto& w : writes_) w.get();
  writes_.clear();
}

void SliceWriteFuture::commit() {
  if (owner_ && !claimed_.empty()) owner_->commit_claims(claimed_);
  claimed_.clear();
  owner_ = nullptr;
}

void SliceWriteFuture::get() {
  OOPP_CHECK_MSG(valid(), "SliceWriteFuture::get() called twice");
  done_ = true;
  finish(sub_);
  sub_.clear();
  // Only after every device acknowledged may the claimed pages flip to
  // moved — a reader resolving "moved" must find the bytes in place.
  commit();
}

SliceReadFuture Array::async_read_slice(const Domain& domain) const {
  validate_domain(domain);
  SliceReadFuture op;
  op.domain_ = domain;
  if (domain.empty()) return op;

  struct Build {
    std::vector<std::int32_t> indices;
    std::vector<SliceReadFuture::Piece> pieces;
  };
  std::map<std::int32_t, Build> per_dev;
  for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                            const PageAddress& addr, const Domain& box) {
    const Domain inter = domain.intersect(box);
    if (inter.empty()) return;
    auto& b = per_dev[addr.device_id];
    b.indices.push_back(addr.index);
    b.pieces.push_back({inter, p1 * b_.n1, p2 * b_.n2, p3 * b_.n3});
  });

  op.batches_.reserve(per_dev.size());
  for (auto& [dev_id, b] : per_dev) {
    const auto dev = device(dev_id);
    pages_read_ += b.indices.size();
    SliceReadFuture::Batch batch;
    batch.fut = dev.async<&ArrayPageDevice::read_arrays>(b.indices);
    batch.pieces = std::move(b.pieces);
    op.batches_.push_back(std::move(batch));
  }
  return op;
}

SliceWriteFuture Array::async_write_slice(std::vector<double> subarray,
                                          const Domain& domain) {
  // The builder borrows the buffer (fully covered pages are copied into
  // their ArrayPages right away); the future keeps it only for the RMW
  // overlay inside get().
  SliceWriteFuture op = build_write_slice(subarray, domain);
  op.sub_ = std::move(subarray);
  return op;
}

SliceWriteFuture Array::build_write_slice(const std::vector<double>& subarray,
                                          const Domain& domain) {
  validate_domain(domain);
  OOPP_CHECK_MSG(
      subarray.size() == static_cast<std::size_t>(domain.volume()),
      "subarray has " << subarray.size() << " elements, domain needs "
                      << domain.volume());
  SliceWriteFuture op;
  op.domain_ = domain;
  if (domain.empty()) return op;

  const std::vector<WriteSlot> slots = plan_writes(domain);
  op.owner_ = this;

  struct Build {
    std::vector<std::int32_t> full_indices;
    std::vector<ArrayPage> full_pages;
    std::vector<std::int32_t> part_read_indices;
    std::vector<std::int32_t> part_write_indices;
    std::vector<SliceWriteFuture::Piece> part_pieces;
  };
  // Keyed on the {read device, write device} pair: mid-migration the RMW
  // read side and the write side of a page may be different devices.
  std::map<std::pair<std::int32_t, std::int32_t>, Build> per_dev;
  for (const auto& sl : slots) {
    const Domain box = page_box(sl.p1, sl.p2, sl.p3);
    const Domain inter = domain.intersect(box);
    if (inter.empty()) continue;
    if (sl.claimed) op.claimed_.push_back(sl.lin);
    const index_t o1 = sl.p1 * b_.n1, o2 = sl.p2 * b_.n2, o3 = sl.p3 * b_.n3;
    auto& b = per_dev[{sl.read_addr.device_id, sl.write_addr.device_id}];
    if (inter == box) {
      // Fully covered: build the page locally, no read needed.
      ArrayPage page(static_cast<int>(b_.n1), static_cast<int>(b_.n2),
                     static_cast<int>(b_.n3));
      buffer_to_page(subarray, domain, inter, o1, o2, o3, page);
      b.full_indices.push_back(sl.write_addr.index);
      b.full_pages.push_back(std::move(page));
    } else {
      b.part_read_indices.push_back(sl.read_addr.index);
      b.part_write_indices.push_back(sl.write_addr.index);
      b.part_pieces.push_back({sl.write_addr.index, inter, o1, o2, o3});
    }
  }

  for (auto& [key, b] : per_dev) {
    const auto wdev = device(key.second);
    if (!b.full_indices.empty()) {
      pages_written_ += b.full_indices.size();
      op.writes_.push_back(wdev.async<&ArrayPageDevice::write_arrays>(
          std::move(b.full_pages), std::move(b.full_indices)));
    }
    if (!b.part_read_indices.empty()) {
      pages_read_ += b.part_read_indices.size();
      pages_written_ += b.part_read_indices.size();
      SliceWriteFuture::RmwBatch r;
      r.dev = device(key.first);
      r.write_dev = wdev;
      r.fut = r.dev.async<&ArrayPageDevice::read_arrays>(b.part_read_indices);
      r.indices = std::move(b.part_write_indices);
      r.pieces = std::move(b.part_pieces);
      op.rmw_.push_back(std::move(r));
    }
  }
  return op;
}

std::vector<double> Array::read(const Domain& domain) const {
  validate_domain(domain);
  std::vector<double> out(static_cast<std::size_t>(domain.volume()));
  if (domain.empty()) return out;

  if (io_ == IoMode::kSequential) {
    // Paper §2: each page's whole round trip completes before the next.
    for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                              const PageAddress& addr, const Domain& box) {
      const Domain inter = domain.intersect(box);
      if (inter.empty()) return;
      const ArrayPage page =
          device(addr).call<&ArrayPageDevice::read_array>(addr.index);
      page_to_buffer(page, p1 * b_.n1, p2 * b_.n2, p3 * b_.n3, inter, domain,
                     out);
      ++pages_read_;
    });
    return out;
  }

  // Paper §4 upgraded: one batched send per device, then the receive half.
  auto op = async_read_slice(domain);
  return op.get();
}

void Array::write(const std::vector<double>& subarray, const Domain& domain) {
  validate_domain(domain);
  OOPP_CHECK_MSG(
      subarray.size() == static_cast<std::size_t>(domain.volume()),
      "subarray has " << subarray.size() << " elements, domain needs "
                      << domain.volume());
  if (domain.empty()) return;

  if (io_ == IoMode::kSequential) {
    const std::vector<WriteSlot> slots = plan_writes(domain);
    std::vector<index_t> claimed;
    for (const auto& sl : slots)
      if (sl.claimed) claimed.push_back(sl.lin);
    try {
      for (const auto& sl : slots) {
        const Domain box = page_box(sl.p1, sl.p2, sl.p3);
        const Domain inter = domain.intersect(box);
        if (inter.empty()) continue;
        const index_t o1 = sl.p1 * b_.n1, o2 = sl.p2 * b_.n2,
                      o3 = sl.p3 * b_.n3;
        const auto wdev = device(sl.write_addr.device_id);
        if (inter == box) {
          ArrayPage page(static_cast<int>(b_.n1), static_cast<int>(b_.n2),
                         static_cast<int>(b_.n3));
          buffer_to_page(subarray, domain, inter, o1, o2, o3, page);
          wdev.call<&ArrayPageDevice::write_array>(page, sl.write_addr.index);
          ++pages_written_;
          continue;
        }
        ArrayPage page = device(sl.read_addr.device_id)
                             .call<&ArrayPageDevice::read_array>(
                                 sl.read_addr.index);
        buffer_to_page(subarray, domain, inter, o1, o2, o3, page);
        wdev.call<&ArrayPageDevice::write_array>(page, sl.write_addr.index);
        ++pages_read_;
        ++pages_written_;
      }
    } catch (...) {
      release_claims(claimed);
      throw;
    }
    commit_claims(claimed);
    return;
  }

  // Borrow the caller's buffer rather than paying async_write_slice's
  // by-value copy: the receive half completes before returning, so the
  // borrow never outlives the buffer.
  SliceWriteFuture op = build_write_slice(subarray, domain);
  op.done_ = true;
  op.finish(subarray);
  op.commit();
}

double Array::sum(const Domain& domain) const {
  validate_domain(domain);
  if (domain.empty()) return 0.0;

  std::vector<Future<double>> partials;
  double acc = 0.0;

  for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                            const PageAddress& addr, const Domain& box) {
    const Domain inter = domain.intersect(box);
    if (inter.empty()) return;
    const index_t o1 = p1 * b_.n1, o2 = p2 * b_.n2, o3 = p3 * b_.n3;
    const auto dev = device(addr);
    // The partial reduction runs on the device's machine; only the scalar
    // comes back (paper §3: "move the computation to the data").
    if (io_ == IoMode::kSequential) {
      acc += dev.call<&ArrayPageDevice::sum_region>(
          addr.index, inter.lo(0) - o1, inter.hi(0) - o1, inter.lo(1) - o2,
          inter.hi(1) - o2, inter.lo(2) - o3, inter.hi(2) - o3);
      ++pages_read_;
    } else {
      partials.push_back(dev.async<&ArrayPageDevice::sum_region>(
          addr.index, inter.lo(0) - o1, inter.hi(0) - o1, inter.lo(1) - o2,
          inter.hi(1) - o2, inter.lo(2) - o3, inter.hi(2) - o3));
    }
  });

  // Deterministic combination order: page iteration order.
  for (auto& f : partials) {
    acc += f.get();
    ++pages_read_;
  }
  return acc;
}

double Array::sum_all() const { return sum(Domain::whole(n_)); }

double Array::reduce(ReduceOp op, const Domain& domain) const {
  validate_domain(domain);
  OOPP_CHECK_MSG(!domain.empty(), "reduction over an empty domain");

  double acc = 0.0;
  if (op == ReduceOp::kMin) acc = std::numeric_limits<double>::infinity();
  if (op == ReduceOp::kMax) acc = -std::numeric_limits<double>::infinity();
  auto combine = [&](double partial) {
    if (op == ReduceOp::kMin)
      acc = std::min(acc, partial);
    else if (op == ReduceOp::kMax)
      acc = std::max(acc, partial);
    else
      acc += partial;
  };

  std::vector<Future<double>> partials;
  for_each_page(domain, [&](index_t p1, index_t p2, index_t p3,
                            const PageAddress& addr, const Domain& box) {
    const Domain inter = domain.intersect(box);
    if (inter.empty()) return;
    const index_t o1 = p1 * b_.n1, o2 = p2 * b_.n2, o3 = p3 * b_.n3;
    const auto dev = device(addr);
    if (io_ == IoMode::kSequential) {
      combine(dev.call<&ArrayPageDevice::reduce_region>(
          op, addr.index, inter.lo(0) - o1, inter.hi(0) - o1,
          inter.lo(1) - o2, inter.hi(1) - o2, inter.lo(2) - o3,
          inter.hi(2) - o3));
      ++pages_read_;
    } else {
      partials.push_back(dev.async<&ArrayPageDevice::reduce_region>(
          op, addr.index, inter.lo(0) - o1, inter.hi(0) - o1,
          inter.lo(1) - o2, inter.hi(1) - o2, inter.lo(2) - o3,
          inter.hi(2) - o3));
    }
  });
  for (auto& f : partials) {
    combine(f.get());
    ++pages_read_;
  }
  return acc;
}

double Array::norm2(const Domain& domain) const {
  return std::sqrt(reduce(ReduceOp::kSumSq, domain));
}

void Array::update(UpdateOp op, double s, const Domain& domain) {
  validate_domain(domain);
  if (domain.empty()) return;

  const std::vector<WriteSlot> slots = plan_writes(domain);
  std::vector<index_t> claimed;
  for (const auto& sl : slots)
    if (sl.claimed) claimed.push_back(sl.lin);
  // In-place updates apply at each page's LIVE home (read_addr): a
  // claimed page is updated at its source slot and released back to the
  // migrator, which copies the updated bytes later; a moved page is
  // updated at its target slot.
  try {
    std::vector<Future<void>> futs;
    for (const auto& sl : slots) {
      const Domain box = page_box(sl.p1, sl.p2, sl.p3);
      const Domain inter = domain.intersect(box);
      if (inter.empty()) continue;
      const index_t o1 = sl.p1 * b_.n1, o2 = sl.p2 * b_.n2,
                    o3 = sl.p3 * b_.n3;
      const auto dev = device(sl.read_addr.device_id);
      if (io_ == IoMode::kSequential) {
        dev.call<&ArrayPageDevice::update_region>(
            op, s, sl.read_addr.index, inter.lo(0) - o1, inter.hi(0) - o1,
            inter.lo(1) - o2, inter.hi(1) - o2, inter.lo(2) - o3,
            inter.hi(2) - o3);
        ++pages_written_;
      } else {
        futs.push_back(dev.async<&ArrayPageDevice::update_region>(
            op, s, sl.read_addr.index, inter.lo(0) - o1, inter.hi(0) - o1,
            inter.lo(1) - o2, inter.hi(1) - o2, inter.lo(2) - o3,
            inter.hi(2) - o3));
      }
    }
    for (auto& f : futs) {
      f.get();
      ++pages_written_;
    }
  } catch (...) {
    release_claims(claimed);
    throw;
  }
  release_claims(claimed);
}

double Array::get(index_t i1, index_t i2, index_t i3) const {
  return read(Domain(i1, i1 + 1, i2, i2 + 1, i3, i3 + 1))[0];
}

void Array::set(index_t i1, index_t i2, index_t i3, double v) {
  write({v}, Domain(i1, i1 + 1, i2, i2 + 1, i3, i3 + 1));
}

// ---------------------------------------------------------------------------
// Online re-layout (docs/REDISTRIBUTION.md).
// ---------------------------------------------------------------------------

std::uint64_t Array::map_version() const {
  std::unique_lock<util::CheckedMutex> lk(mu_);
  return map_version_;
}

std::int32_t Array::device_count() const {
  std::unique_lock<util::CheckedMutex> lk(mu_);
  return static_cast<std::int32_t>(data_.size());
}

bool Array::valid() const {
  std::unique_lock<util::CheckedMutex> lk(mu_);
  return valid_locked();
}

PageMapSpec Array::layout() const {
  std::unique_lock<util::CheckedMutex> lk(mu_);
  return spec_;
}

bool Array::migrating() const {
  std::unique_lock<util::CheckedMutex> lk(mu_);
  return mig_ != nullptr;
}

void Array::attach_device(remote_ptr<storage::ArrayPageDevice> dev) {
  OOPP_CHECK_MSG(valid(), "attach_device on an empty Array handle");
  // Shape compatibility is validated with remote calls BEFORE taking mu_
  // (the lock is never held across a remote call).
  const Extents3 shape{dev.call<&ArrayPageDevice::n1>(),
                       dev.call<&ArrayPageDevice::n2>(),
                       dev.call<&ArrayPageDevice::n3>()};
  if (shape != b_)
    throw Error("attach_device: device page shape {" +
                    std::to_string(shape.n1) + "," + std::to_string(shape.n2) +
                    "," + std::to_string(shape.n3) +
                    "} does not match the array's page shape",
                net::CallStatus::kInternal);
  static auto& attached =
      telemetry::Metrics::scope_for("array.redist").counter(
          "devices_attached");
  {
    std::unique_lock<util::CheckedMutex> lk(mu_);
    if (mig_)
      throw Error(
          "attach_device during an active redistribution is not allowed",
          net::CallStatus::kInternal);
    data_.push_back(std::move(dev));
  }
  attached.add(1);
}

RedistStats Array::detach_device(std::int32_t device_id, RedistOptions opts) {
  PageMapSpec target;
  {
    std::unique_lock<util::CheckedMutex> lk(mu_);
    OOPP_CHECK_MSG(valid_locked(), "detach_device on an empty Array handle");
    if (custom_map_)
      throw Error(
          "detach_device needs a PageMapSpec layout; redistribute to one "
          "first",
          net::CallStatus::kInternal);
    target = spec_;  // re-lay the same policy over the remaining devices
  }
  static auto& detached =
      telemetry::Metrics::scope_for("array.redist").counter(
          "devices_detached");
  RedistStats st = redistribute_impl(target, device_id, opts);
  detached.add(1);
  return st;
}

RedistStats Array::redistribute(PageMapSpec target, RedistOptions opts) {
  return redistribute_impl(target, /*drop=*/-1, opts);
}

RedistStats Array::redistribute_impl(PageMapSpec target, std::int32_t drop,
                                     RedistOptions opts) {
  if (opts.batch_pages <= 0)
    throw Error("redistribute: batch_pages must be positive",
                net::CallStatus::kInternal);
  const std::int64_t t_start = now_ns();
  auto& scope = telemetry::Metrics::scope_for("array.redist");
  static auto& redists_c = scope.counter("redistributions");
  static auto& migrated_c = scope.counter("pages_migrated");
  static auto& stall_c = scope.counter("stall_ns");

  struct Move {
    index_t lin = 0;
    PageAddress src{};  // data_-space device id, bank-resolved slot
    PageAddress dst{};
  };
  std::vector<Move> order;
  std::vector<remote_ptr<ArrayPageDevice>> devs;
  std::vector<std::int32_t> perm;
  std::int32_t tbase = 0;
  index_t total = 0;
  std::uint64_t version = 0;

  {
    std::unique_lock<util::CheckedMutex> lk(mu_);
    OOPP_CHECK_MSG(valid_locked(), "redistribute on an empty Array handle");
    if (mig_)
      throw Error("a redistribution is already in progress on this Array",
                  net::CallStatus::kInternal);
    const auto D = static_cast<std::int32_t>(data_.size());
    if (drop >= 0) {
      if (drop >= D)
        throw Error("detach_device: device " + std::to_string(drop) +
                        " out of range",
                    net::CallStatus::kInternal);
      if (D <= 1)
        throw Error("detach_device: cannot detach the only device",
                    net::CallStatus::kInternal);
      for (std::int32_t i = 0; i < D; ++i)
        if (i != drop) perm.push_back(i);
    } else {
      perm.resize(static_cast<std::size_t>(D));
      std::iota(perm.begin(), perm.end(), 0);
    }
    const auto TD = static_cast<std::int32_t>(perm.size());
    target.validate(grid_, TD);
    auto tmap = target.instantiate(grid_, TD);
    total = grid_.volume();

    // Resolve every source address now (the source map never changes
    // again) and find the occupied bank's upper edge.  The scan also
    // bounds-checks a custom map's output before any slot math.
    order.reserve(static_cast<std::size_t>(total));
    index_t cur_hi = slot_base_;
    for (index_t p1 = 0; p1 < grid_.n1; ++p1)
      for (index_t p2 = 0; p2 < grid_.n2; ++p2)
        for (index_t p3 = 0; p3 < grid_.n3; ++p3) {
          PageAddress src = map_->physical_page_address(p1, p2, p3);
          if (src.device_id < 0 || src.device_id >= D || src.index < 0)
            throw Error("redistribute: page map produced physical address "
                        "{" +
                            std::to_string(src.device_id) + ", " +
                            std::to_string(src.index) + "} out of range",
                        net::CallStatus::kInternal);
          src.index += slot_base_;
          cur_hi = std::max<index_t>(cur_hi, src.index + 1);
          PageAddress dst = tmap->physical_page_address(p1, p2, p3);
          dst.device_id = perm[static_cast<std::size_t>(dst.device_id)];
          order.push_back({grid_.linear(p1, p2, p3), src, dst});
        }

    // Slot-bank placement: while both layouts are live the target bank
    // must not alias any source slot on a shared device.  It goes below
    // the current bank when it fits ([0, smax) vs [slot_base_, cur_hi)),
    // else just past the highest occupied source slot.
    index_t smax = 0;
    for (std::int32_t d = 0; d < TD; ++d)
      smax = std::max(smax, target.pages_on_device(grid_, TD, d));
    tbase = smax <= static_cast<index_t>(slot_base_)
                ? 0
                : static_cast<std::int32_t>(cur_hi);
    for (auto& m : order) m.dst.index += tbase;

    mig_ = std::make_unique<Migration>();
    mig_->target_spec = target;
    mig_->target_map = std::move(tmap);
    mig_->perm = perm;
    mig_->target_base = tbase;
    mig_->state.assign(static_cast<std::size_t>(total), kAtSource);
    version = ++map_version_;
    devs = data_;
  }
  redists_c.add(1);

  // Visit pages in (source device, source slot) order so the batched
  // reads drain each device in contiguous ascending runs (the same seek
  // amortization the out-of-core pipeline relies on).
  std::sort(order.begin(), order.end(), [](const Move& a, const Move& b) {
    return a.src.device_id != b.src.device_id
               ? a.src.device_id < b.src.device_id
               : a.src.index < b.src.index;
  });

  // Provision the target slot banks (grow-only; a no-op when they fit).
  // The dual map stays dormant (mig_->ready == false) until every bank
  // exists: a concurrent writer resolving the target home of a page
  // before this loop finished would land on an unprovisioned slot.
  try {
    for (std::int32_t d = 0; d < static_cast<std::int32_t>(perm.size());
         ++d) {
      const index_t need = target.pages_on_device(
          grid_, static_cast<std::int32_t>(perm.size()), d);
      if (need > 0)
        devs[static_cast<std::size_t>(perm[static_cast<std::size_t>(d)])]
            .call<&storage::PageDevice::ensure_capacity>(
                static_cast<int>(tbase + need));
    }
  } catch (...) {
    // No page moved and no claim exists yet: abort the migration whole.
    {
      std::unique_lock<util::CheckedMutex> lk(mu_);
      mig_.reset();
    }
    cv_.notify_all();
    throw;
  }
  {
    std::unique_lock<util::CheckedMutex> lk(mu_);
    mig_->ready = true;
  }

  RedistStats st;
  for (;;) {
    // Claim the next batch of unmoved pages, all from one source device.
    std::vector<Move> batch;
    bool complete = false;
    {
      std::unique_lock<util::CheckedMutex> lk(mu_);
      for (;;) {
        for (std::size_t i = 0;
             i < order.size() &&
             batch.size() < static_cast<std::size_t>(opts.batch_pages);
             ++i) {
          const Move& m = order[i];
          if (mig_->state[static_cast<std::size_t>(m.lin)] != kAtSource)
            continue;
          if (!batch.empty() &&
              m.src.device_id != batch.front().src.device_id)
            break;
          mig_->state[static_cast<std::size_t>(m.lin)] = kMoving;
          batch.push_back(m);
        }
        if (!batch.empty() || mig_->moved >= total) break;
        // Everything left is claimed by in-flight writers; wait for a
        // claim to resolve (commit or release) and rescan.
        const std::uint64_t e = mig_->epoch;
        cv_.wait(lk,
                 [&] { return mig_->moved >= total || mig_->epoch != e; });
      }
      if (batch.empty()) {
        // All pages are at their target homes: install the new layout.
        st.writer_migrated = mig_->writer_migrated;
        st.dual_reads = mig_->dual_reads;
        st.stall_ns = mig_->stall_ns;
        spec_ = mig_->target_spec;
        custom_map_ = false;
        map_ = mig_->target_map;
        layout_devices_ = static_cast<std::int32_t>(mig_->perm.size());
        slot_base_ = mig_->target_base;
        if (drop >= 0) {
          BlockStorage nd;
          nd.reserve(mig_->perm.size());
          for (const auto j : mig_->perm)
            nd.push_back(data_[static_cast<std::size_t>(j)]);
          data_ = std::move(nd);
        }
        mig_.reset();
        complete = true;
      }
    }
    if (complete) {
      cv_.notify_all();
      break;
    }

    try {
      // Re-layout barrier on both sides of the copy: DSM caches recall
      // dirty bytes into the source slots before we read them and drop
      // cached copies of the target slots before we overwrite them.
      std::vector<std::int32_t> src_idx;
      src_idx.reserve(batch.size());
      for (const auto& m : batch) src_idx.push_back(m.src.index);
      const auto src_dev =
          devs[static_cast<std::size_t>(batch.front().src.device_id)];
      src_dev.call<&ArrayPageDevice::quiesce_pages>(src_idx, version);

      std::map<std::int32_t, std::vector<std::size_t>> by_dst;
      for (std::size_t i = 0; i < batch.size(); ++i)
        by_dst[batch[i].dst.device_id].push_back(i);
      for (auto& [d, pos] : by_dst) {
        std::sort(pos.begin(), pos.end(), [&](std::size_t a, std::size_t b) {
          return batch[a].dst.index < batch[b].dst.index;
        });
        std::vector<std::int32_t> dst_idx;
        dst_idx.reserve(pos.size());
        for (const auto p : pos) dst_idx.push_back(batch[p].dst.index);
        devs[static_cast<std::size_t>(d)]
            .call<&ArrayPageDevice::quiesce_pages>(dst_idx, version);
      }

      std::vector<ArrayPage> pages =
          src_dev.call<&ArrayPageDevice::read_arrays>(src_idx);
      OOPP_CHECK(pages.size() == batch.size());
      for (auto& [d, pos] : by_dst) {
        std::vector<ArrayPage> out;
        std::vector<std::int32_t> dst_idx;
        out.reserve(pos.size());
        dst_idx.reserve(pos.size());
        for (const auto p : pos) {
          out.push_back(std::move(pages[p]));
          dst_idx.push_back(batch[p].dst.index);
        }
        devs[static_cast<std::size_t>(d)]
            .call<&ArrayPageDevice::write_arrays>(std::move(out), dst_idx);
      }
    } catch (...) {
      // Hand the batch back; the migration stays open (reads and writes
      // keep resolving correctly through the dual map) and the caller
      // decides what to do with the device error.
      release_claims([&] {
        std::vector<index_t> lins;
        lins.reserve(batch.size());
        for (const auto& m : batch) lins.push_back(m.lin);
        return lins;
      }());
      throw;
    }

    {
      std::unique_lock<util::CheckedMutex> lk(mu_);
      for (const auto& m : batch)
        mig_->state[static_cast<std::size_t>(m.lin)] = kMoved;
      mig_->moved += static_cast<index_t>(batch.size());
      ++mig_->epoch;
    }
    cv_.notify_all();
    st.pages_migrated += batch.size();
    migrated_c.add(batch.size());
  }

  st.map_version = version;
  st.duration_ns = static_cast<std::uint64_t>(now_ns() - t_start);
  stall_c.add(0);  // materialize the counter even on stall-free runs
  return st;
}

}  // namespace oopp::array
