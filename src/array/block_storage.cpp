#include "array/block_storage.hpp"

#include "core/future.hpp"
#include "util/assert.hpp"

namespace oopp::array {

BlockStorage create_block_storage(
    const BlockStorageConfig& config,
    const std::function<net::MachineId(std::int32_t)>& placement) {
  OOPP_CHECK_MSG(config.devices > 0, "need at least one device");
  OOPP_CHECK_MSG(!config.file_prefix.empty(), "empty backing file prefix");
  BlockStorage out;
  out.reserve(static_cast<std::size_t>(config.devices));
  for (std::int32_t i = 0; i < config.devices; ++i) {
    out.push_back(make_remote<storage::ArrayPageDevice>(
        placement(i), config.file_prefix + ".dev" + std::to_string(i),
        config.pages_per_device, config.n1, config.n2, config.n3,
        config.device_options));
  }
  return out;
}

remote_ptr<storage::ArrayPageDevice> create_block_device(
    const BlockStorageConfig& config, std::int32_t ordinal,
    net::MachineId machine) {
  OOPP_CHECK_MSG(!config.file_prefix.empty(), "empty backing file prefix");
  OOPP_CHECK_MSG(ordinal >= 0, "negative device ordinal");
  return make_remote<storage::ArrayPageDevice>(
      machine, config.file_prefix + ".dev" + std::to_string(ordinal),
      config.pages_per_device, config.n1, config.n2, config.n3,
      config.device_options);
}

void destroy_block_storage(BlockStorage& storage) {
  std::vector<Future<void>> futs;
  futs.reserve(storage.size());
  for (auto& dev : storage) futs.push_back(dev.async_destroy());
  for (auto& f : futs) f.get();
  storage.clear();
}

BlockStorage create_replicated_block_storage(
    const BlockStorageConfig& config, const storage::ReplicaOptions& replica,
    const std::function<net::MachineId(std::int32_t)>& coordinator_placement,
    const std::function<net::MachineId(std::int32_t, std::int32_t)>&
        replica_placement) {
  OOPP_CHECK_MSG(config.devices > 0, "need at least one device");
  OOPP_CHECK_MSG(!config.file_prefix.empty(), "empty backing file prefix");
  replica.validate();
  BlockStorage out;
  out.reserve(static_cast<std::size_t>(config.devices));
  for (std::int32_t i = 0; i < config.devices; ++i) {
    std::vector<remote_ptr<storage::ArrayPageDevice>> copies;
    copies.reserve(static_cast<std::size_t>(replica.replicas));
    for (std::int32_t j = 0; j < replica.replicas; ++j) {
      copies.push_back(make_remote<storage::ArrayPageDevice>(
          replica_placement(i, j),
          config.file_prefix + ".dev" + std::to_string(i) + ".r" +
              std::to_string(j),
          config.pages_per_device, config.n1, config.n2, config.n3,
          config.device_options));
    }
    auto coord = make_remote<storage::ReplicatedPageDevice>(
        coordinator_placement(i), copies, replica);
    // A coordinator *is* an ArrayPageDevice — drop it into the slot.
    out.push_back(
        remote_ptr<storage::ArrayPageDevice>(coord.machine(), coord.id()));
  }
  return out;
}

void destroy_replicated_block_storage(BlockStorage& storage) {
  for (auto& dev : storage) {
    remote_ptr<storage::ReplicatedPageDevice> coord(dev.machine(), dev.id());
    const auto replicas =
        coord.call<&storage::ReplicatedPageDevice::replica_refs>();
    const auto status =
        coord.call<&storage::ReplicatedPageDevice::replica_status>();
    coord.destroy();  // stops the watchdog before its probe targets vanish
    for (std::size_t j = 0; j < replicas.size(); ++j) {
      if (j < status.alive.size() && status.alive[j] == 0) continue;
      try {
        replicas[j].destroy();
      } catch (const Error&) {
        // The replica died between the status snapshot and now.
      }
    }
  }
  storage.clear();
}

}  // namespace oopp::array
