// Array-to-array copies.
//
// When the two arrays share a page shape and the domain is page-aligned,
// the copy is ordered as third-party transfers: each destination device
// pulls its pages straight from the corresponding source device; the
// client issues one tiny command per page and the payload never crosses
// the client's link.  Otherwise the copy falls back to a buffered
// read + write through the client.
#pragma once

#include <cstdint>

#include "array/array.hpp"

namespace oopp::array {

struct CopyStats {
  std::uint64_t pages_direct = 0;      // device → device transfers
  std::uint64_t elements_buffered = 0; // moved through the client
};

/// Copy the contents of src's `domain` into the same coordinates of dst.
/// The arrays must have identical extents and the domain must fit both.
CopyStats copy(const Array& src, Array& dst, const Domain& domain);

/// True if the fast path applies: identical page shapes and a domain that
/// starts and ends on page boundaries (or the array edge).
[[nodiscard]] bool copy_is_page_aligned(const Array& src, const Array& dst,
                                        const Domain& domain);

}  // namespace oopp::array
