// PageMap: maps logical array page coordinates to physical addresses
// {device_id, index} within a BlockStorage (paper §5).
//
// "The PageMap describes the array data layout and is crucial in
// determining the I/O patterns of the computation" — experiment E6
// quantifies exactly that.  Three built-in policies:
//
//   kSingleDevice — everything on device 0: no I/O parallelism (baseline);
//   kRoundRobin   — page k on device k mod D: adjacent pages on different
//                   devices, so bulk reads fan out maximally;
//   kBlocked      — contiguous runs of pages per device: a small domain
//                   touches one device (data locality, no fan-out);
//   kBlockCyclic  — blocks of `block` pages dealt round-robin: locality
//                   within a block, fan-out across blocks (Chapel's
//                   BlockCycDist, the middle ground E6 motivates).
//
// Custom layouts: subclass PageMap and hand Array a shared_ptr; the
// PageMapSpec value type exists so the built-in policies can travel inside
// serialized Array clients.  PageMapSpec::validate rejects degenerate
// configurations (zero-volume grids, devices <= 0, block <= 0) with typed
// oopp::Errors instead of letting the maps divide by zero.
#pragma once

#include <cstdint>
#include <memory>

#include "serial/archive.hpp"
#include "util/ndindex.hpp"

namespace oopp::array {

/// The paper's physical page address.
struct PageAddress {
  std::int32_t device_id = 0;
  std::int32_t index = 0;

  bool operator==(const PageAddress&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, PageAddress& a) {
  ar(a.device_id, a.index);
}

/// Abstract layout policy, as in the paper.  Coordinates are *page*
/// coordinates (p1, p2, p3) in the page grid, not element indices.
class PageMap {
 public:
  virtual ~PageMap() = default;
  [[nodiscard]] virtual PageAddress physical_page_address(
      index_t p1, index_t p2, index_t p3) const = 0;
};

class SingleDevicePageMap final : public PageMap {
 public:
  explicit SingleDevicePageMap(Extents3 page_grid, std::int32_t device = 0)
      : grid_(page_grid), device_(device) {}
  [[nodiscard]] PageAddress physical_page_address(index_t p1, index_t p2,
                                                  index_t p3) const override {
    return {device_, static_cast<std::int32_t>(grid_.linear(p1, p2, p3))};
  }

 private:
  Extents3 grid_;
  std::int32_t device_;
};

class RoundRobinPageMap final : public PageMap {
 public:
  RoundRobinPageMap(Extents3 page_grid, std::int32_t devices)
      : grid_(page_grid), devices_(devices) {
    OOPP_CHECK(devices_ > 0);
  }
  [[nodiscard]] PageAddress physical_page_address(index_t p1, index_t p2,
                                                  index_t p3) const override {
    const index_t lin = grid_.linear(p1, p2, p3);
    return {static_cast<std::int32_t>(lin % devices_),
            static_cast<std::int32_t>(lin / devices_)};
  }

 private:
  Extents3 grid_;
  std::int32_t devices_;
};

class BlockedPageMap final : public PageMap {
 public:
  BlockedPageMap(Extents3 page_grid, std::int32_t devices)
      : grid_(page_grid),
        devices_(devices),
        chunk_(ceil_div(page_grid.volume(), devices)) {
    OOPP_CHECK(devices_ > 0);
  }
  [[nodiscard]] PageAddress physical_page_address(index_t p1, index_t p2,
                                                  index_t p3) const override {
    const index_t lin = grid_.linear(p1, p2, p3);
    return {static_cast<std::int32_t>(lin / chunk_),
            static_cast<std::int32_t>(lin % chunk_)};
  }

 private:
  Extents3 grid_;
  std::int32_t devices_;
  index_t chunk_;
};

/// Blocks of `block` consecutive pages dealt round-robin over the devices:
/// block b lands on device b mod D at block-slot b / D.
class BlockCyclicPageMap final : public PageMap {
 public:
  BlockCyclicPageMap(Extents3 page_grid, std::int32_t devices,
                     std::int32_t block)
      : grid_(page_grid), devices_(devices), block_(block) {
    OOPP_CHECK(devices_ > 0 && block_ > 0);
  }
  [[nodiscard]] PageAddress physical_page_address(index_t p1, index_t p2,
                                                  index_t p3) const override {
    const index_t lin = grid_.linear(p1, p2, p3);
    const index_t blk = lin / block_;
    return {static_cast<std::int32_t>(blk % devices_),
            static_cast<std::int32_t>((blk / devices_) * block_ +
                                      lin % block_)};
  }

 private:
  Extents3 grid_;
  std::int32_t devices_;
  std::int32_t block_;
};

/// Serializable description of a built-in layout; instantiated against the
/// array's page grid at construction time.
enum class PageMapKind : std::uint8_t {
  kSingleDevice = 0,
  kRoundRobin = 1,
  kBlocked = 2,
  kBlockCyclic = 3,
};

struct PageMapSpec {
  PageMapKind kind = PageMapKind::kRoundRobin;
  /// Block length in pages for kBlockCyclic; the other kinds ignore it.
  std::int32_t block = 1;

  /// Throws a typed oopp::Error on degenerate configurations: zero-volume
  /// page grid, devices <= 0, non-positive kBlockCyclic block, or a kind
  /// byte that doesn't name a layout (corrupt wire data).
  void validate(Extents3 page_grid, std::int32_t devices) const;

  /// Validates, then builds the map.
  [[nodiscard]] std::shared_ptr<PageMap> instantiate(
      Extents3 page_grid, std::int32_t devices) const;

  /// Slots each device must provision so every logical page of the grid
  /// has a home under this layout (e.g. single-device needs the whole
  /// grid on device 0).  An upper bound uniform across devices — use
  /// pages_on_device for the exact per-device count.
  [[nodiscard]] index_t pages_per_device(Extents3 page_grid,
                                         std::int32_t devices) const;

  /// Exact number of grid pages this layout homes on `device` — what the
  /// `devices > page count` case gets wrong if sized by pages_per_device
  /// alone (trailing devices hold zero pages).
  [[nodiscard]] index_t pages_on_device(Extents3 page_grid,
                                        std::int32_t devices,
                                        std::int32_t device) const;

  [[nodiscard]] const char* name() const;

  bool operator==(const PageMapSpec&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, PageMapSpec& s) {
  ar(s.kind, s.block);
}

}  // namespace oopp::array
