#include "array/copy.hpp"

#include "core/future.hpp"

namespace oopp::array {

bool copy_is_page_aligned(const Array& src, const Array& dst,
                          const Domain& domain) {
  if (src.page_extents() != dst.page_extents()) return false;
  const Extents3& b = src.page_extents();
  const Extents3& n = src.extents();
  for (int axis = 0; axis < 3; ++axis) {
    const index_t block =
        axis == 0 ? b.n1 : (axis == 1 ? b.n2 : b.n3);
    const index_t extent =
        axis == 0 ? n.n1 : (axis == 1 ? n.n2 : n.n3);
    if (domain.lo(axis) % block != 0) return false;
    if (domain.hi(axis) % block != 0 && domain.hi(axis) != extent)
      return false;
  }
  return true;
}

CopyStats copy(const Array& src, Array& dst, const Domain& domain) {
  OOPP_CHECK_MSG(src.extents() == dst.extents(),
                 "array extents differ; copy requires matching shapes");
  CopyStats stats;
  if (domain.empty()) return stats;

  if (!copy_is_page_aligned(src, dst, domain)) {
    // Buffered path through the client.
    auto buf = src.read(domain);
    stats.elements_buffered = buf.size();
    dst.write(buf, domain);
    return stats;
  }

  // Third-party path: destination devices pull pages from source devices.
  const Extents3& b = src.page_extents();
  const index_t p1lo = domain.lo(0) / b.n1;
  const index_t p1hi = ceil_div(domain.hi(0), b.n1);
  const index_t p2lo = domain.lo(1) / b.n2;
  const index_t p2hi = ceil_div(domain.hi(1), b.n2);
  const index_t p3lo = domain.lo(2) / b.n3;
  const index_t p3hi = ceil_div(domain.hi(2), b.n3);

  std::vector<Future<void>> futs;
  for (index_t p1 = p1lo; p1 < p1hi; ++p1) {
    for (index_t p2 = p2lo; p2 < p2hi; ++p2) {
      for (index_t p3 = p3lo; p3 < p3hi; ++p3) {
        const PageAddress from = src.page_address(p1, p2, p3);
        const PageAddress to = dst.page_address(p1, p2, p3);
        const auto& src_dev = src.storage()[from.device_id];
        const auto& dst_dev = dst.storage()[to.device_id];
        futs.push_back(
            dst_dev.async<&storage::ArrayPageDevice::pull_page>(
                src_dev, from.index, to.index));
        ++stats.pages_direct;
      }
    }
  }
  for (auto& f : futs) f.get();
  return stats;
}

}  // namespace oopp::array
