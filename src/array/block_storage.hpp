// BlockStorage: the collection of ArrayPageDevice processes an Array's
// pages live on (paper §5: `typedef vector<ArrayPageDevice*> BlockStorage`).
//
// Each device should sit on its own spindle/machine; create_block_storage
// spawns one device process per entry, placed by a caller-supplied policy,
// each with its own backing file — the substrate standing in for the
// paper's "hundreds of hard-drives attached to multiple computing nodes".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/remote_ptr.hpp"
#include "storage/array_page_device.hpp"
#include "storage/replicated_page_device.hpp"

namespace oopp::array {

using BlockStorage = std::vector<remote_ptr<storage::ArrayPageDevice>>;

struct BlockStorageConfig {
  std::string file_prefix;      // device i uses "<prefix>.dev<i>"
  std::int32_t devices = 1;     // number of ArrayPageDevice processes
  std::int32_t pages_per_device = 1;
  std::int32_t n1 = 1, n2 = 1, n3 = 1;  // page block shape
  storage::DeviceOptions device_options{};
};

/// Spawn the device processes.  `placement(i)` says which machine hosts
/// device i (e.g. round-robin over the cluster).  Runs in the calling
/// thread's machine context.
BlockStorage create_block_storage(
    const BlockStorageConfig& config,
    const std::function<net::MachineId(std::int32_t)>& placement);

/// Spawn one additional device process compatible with a storage set made
/// from the same config (same page shape and options) — the elastic path:
/// Array::attach_device takes the result.  `ordinal` only names the
/// backing file ("<prefix>.dev<ordinal>"); pick one unused by the set.
remote_ptr<storage::ArrayPageDevice> create_block_device(
    const BlockStorageConfig& config, std::int32_t ordinal,
    net::MachineId machine);

/// Terminate every device process (parallel).
void destroy_block_storage(BlockStorage& storage);

/// Spawn a *replicated* storage set (Cluster::Options::replica durability
/// knobs made concrete): each logical device is a ReplicatedPageDevice
/// coordinator fronting `replica.replicas` plain ArrayPageDevice
/// processes with backing files "<prefix>.dev<i>.r<j>".
/// `coordinator_placement(i)` hosts coordinator i; `replica_placement(i, j)`
/// hosts replica j of device i — spread replicas across machines so one
/// machine loss still leaves a write quorum.  The result is an ordinary
/// BlockStorage: Array slices and the out-of-core FFT run on it unchanged,
/// now surviving replica death mid-pass.
BlockStorage create_replicated_block_storage(
    const BlockStorageConfig& config, const storage::ReplicaOptions& replica,
    const std::function<net::MachineId(std::int32_t)>& coordinator_placement,
    const std::function<net::MachineId(std::int32_t, std::int32_t)>&
        replica_placement);

/// Terminate a replicated storage set: every coordinator *and* the
/// surviving replica processes behind it.  Replicas already dead are
/// skipped (their process is gone; nothing to destroy).
void destroy_replicated_block_storage(BlockStorage& storage);

}  // namespace oopp::array
