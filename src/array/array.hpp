// Array: a (potentially huge) three-dimensional array of doubles stored as
// page blocks across many ArrayPageDevice processes (paper §5).
//
// The array is indexed on [0,N1) x [0,N2) x [0,N3) and broken into
// rectangular blocks of n1 x n2 x n3 doubles, one ArrayPage per block.
// A PageMap maps logical page coordinates to {device, index}; the choice
// of map determines how far reads and writes fan out across devices.
//
// The Array object itself is "a client process for performing computations
// on a small subdomain of the array data" — it is an ordinary class you
// can use locally *and* a remotable class you can deploy as multiple
// coordinating client processes (experiment E7).
//
// IoMode selects between the paper's §2 sequential semantics (one page
// round trip at a time) and the §4 compiler-split loop (all page requests
// in flight at once); E4/E6 measure the difference.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "array/block_storage.hpp"
#include "array/domain.hpp"
#include "array/page_map.hpp"
#include "core/future.hpp"

namespace oopp::array {

enum class IoMode : std::uint8_t {
  kSequential = 0,  // paper §2: each instruction completes before the next
  kParallel = 1,    // paper §4: send-loop then receive-loop
};

/// Handle on an in-flight slice read: one batched read_arrays call per
/// device is already on the wire when this is returned; get() performs
/// the receive half and assembles the row-major subarray.  The overlap
/// window between issue and get() is where the out-of-core pipeline
/// hides its communication.
class SliceReadFuture {
 public:
  SliceReadFuture() = default;
  SliceReadFuture(SliceReadFuture&&) = default;
  SliceReadFuture& operator=(SliceReadFuture&&) = default;

  /// True while the receive half has not been performed yet.
  [[nodiscard]] bool valid() const { return !done_; }

  /// Block for every device batch and assemble the subarray (once).
  [[nodiscard]] std::vector<double> get();

 private:
  friend class Array;
  struct Piece {  // assembly info for one page within a batch
    Domain inter;
    index_t o1 = 0, o2 = 0, o3 = 0;
  };
  struct Batch {  // one batched call to one device
    Future<std::vector<storage::ArrayPage>> fut;
    std::vector<Piece> pieces;
  };
  std::vector<Batch> batches_;
  Domain domain_;
  bool done_ = false;
};

/// Handle on an in-flight slice write.  Fully covered pages are already
/// on the wire (batched write_arrays per device) when this is returned;
/// partially covered pages have their batched reads in flight and are
/// read-modified-written inside get().  get() returns once every device
/// acknowledged — the write-behind half of the pipeline.
class SliceWriteFuture {
 public:
  SliceWriteFuture() = default;
  SliceWriteFuture(SliceWriteFuture&&) = default;
  SliceWriteFuture& operator=(SliceWriteFuture&&) = default;

  [[nodiscard]] bool valid() const { return !done_; }

  /// Block until every page write is acknowledged (once).
  void get();

 private:
  friend class Array;
  /// Receive half against a borrowed subarray buffer; get() runs it
  /// against the owned copy, Array::write against the caller's buffer
  /// (which outlives the call, so no copy is needed).
  void finish(const std::vector<double>& sub);
  struct Piece {
    std::int32_t index = 0;
    Domain inter;
    index_t o1 = 0, o2 = 0, o3 = 0;
  };
  struct RmwBatch {  // partially covered pages of one device
    remote_ptr<storage::ArrayPageDevice> dev;
    Future<std::vector<storage::ArrayPage>> fut;
    std::vector<Piece> pieces;
    std::vector<std::int32_t> indices;
  };
  std::vector<Future<void>> writes_;
  std::vector<RmwBatch> rmw_;
  std::vector<double> sub_;
  Domain domain_;
  bool done_ = false;
};

class Array {
 public:
  /// Empty handle; only meaningful as a deserialization target (an Array
  /// arrives by value as a remote-method argument, the paper's
  /// `transform(sign, Array* a)`).  Using an empty Array throws.
  Array() = default;

  /// Built-in layout policy (serializable — usable for remote clients).
  Array(index_t N1, index_t N2, index_t N3, index_t n1, index_t n2,
        index_t n3, BlockStorage data, PageMapSpec map,
        IoMode io = IoMode::kParallel);

  /// Custom layout policy (local use only; such an Array cannot be
  /// serialized or persisted).
  Array(index_t N1, index_t N2, index_t N3, index_t n1, index_t n2,
        index_t n3, BlockStorage data, std::shared_ptr<PageMap> map,
        IoMode io = IoMode::kParallel);

  /// Restore from a passivated image.
  explicit Array(serial::IArchive& ia);
  void oopp_save(serial::OArchive& oa) const;

  /// Assemble the subarray covered by `domain` (row-major).  The paper's
  /// `read(double* subarray, Domain*)` with the buffer returned by value.
  [[nodiscard]] std::vector<double> read(const Domain& domain) const;

  /// Update the array region covered by `domain` from a row-major buffer
  /// of domain.volume() doubles.  Partially covered pages are
  /// read-modified-written.
  void write(const std::vector<double>& subarray, const Domain& domain);

  /// Asynchronous slice read: issues ONE batched read_arrays call per
  /// device overlapping `domain` (all devices fetch concurrently) and
  /// returns immediately; the future's get() assembles the subarray.
  [[nodiscard]] SliceReadFuture async_read_slice(const Domain& domain) const;

  /// Asynchronous slice write: fully covered pages go out immediately as
  /// one batched write_arrays call per device; partially covered pages
  /// have their read half issued now and complete inside get().
  [[nodiscard]] SliceWriteFuture async_write_slice(std::vector<double> subarray,
                                                   const Domain& domain);

  /// Sum over a domain, computed device-side: each overlapping page
  /// contributes a partial sum produced by its ArrayPageDevice process
  /// ("move the computation to the data"); the Array client combines them.
  [[nodiscard]] double sum(const Domain& domain) const;

  /// Sum of the whole array via a loop over subdomains.
  [[nodiscard]] double sum_all() const;

  using ReduceOp = storage::ArrayPageDevice::Reduce;
  using UpdateOp = storage::ArrayPageDevice::Update;

  /// Generalized device-side reduction over a domain (sum / min / max /
  /// sum of squares); per-page partials are computed by the storage
  /// processes and combined by this client.
  [[nodiscard]] double reduce(ReduceOp op, const Domain& domain) const;

  [[nodiscard]] double min(const Domain& domain) const {
    return reduce(ReduceOp::kMin, domain);
  }
  [[nodiscard]] double max(const Domain& domain) const {
    return reduce(ReduceOp::kMax, domain);
  }
  /// Euclidean norm over a domain (device-side sum of squares).
  [[nodiscard]] double norm2(const Domain& domain) const;

  /// Device-side in-place update over a domain: the touched pages never
  /// cross the network.
  void update(UpdateOp op, double s, const Domain& domain);

  void fill(double v, const Domain& domain) {
    update(UpdateOp::kFill, v, domain);
  }
  void scale(double a, const Domain& domain) {
    update(UpdateOp::kScale, a, domain);
  }
  void shift(double d, const Domain& domain) {
    update(UpdateOp::kShift, d, domain);
  }

  /// Single element access (one page round trip each — expensive, exists
  /// for completeness and tests).
  [[nodiscard]] double get(index_t i1, index_t i2, index_t i3) const;
  void set(index_t i1, index_t i2, index_t i3, double v);

  [[nodiscard]] bool valid() const { return !data_.empty(); }
  [[nodiscard]] const Extents3& extents() const { return n_; }

  /// Physical address of the page with page-grid coordinates (p1,p2,p3).
  [[nodiscard]] PageAddress page_address(index_t p1, index_t p2,
                                         index_t p3) const {
    OOPP_CHECK(valid());
    return map_->physical_page_address(p1, p2, p3);
  }
  [[nodiscard]] const Extents3& page_extents() const { return b_; }
  [[nodiscard]] Extents3 page_grid() const { return grid_; }
  [[nodiscard]] const BlockStorage& storage() const { return data_; }
  [[nodiscard]] IoMode io_mode() const { return io_; }
  void set_io_mode(IoMode io) { io_ = io; }

  /// I/O accounting since construction (pages fetched/stored by this
  /// client).  Exposed remotely for the benches.
  [[nodiscard]] std::uint64_t pages_read() const { return pages_read_; }
  [[nodiscard]] std::uint64_t pages_written() const { return pages_written_; }

 private:
  /// Visit every page overlapping `domain`: fn(p1, p2, p3, addr, page_box)
  /// where page_box is the page's index box clipped to the array bounds.
  template <class Fn>
  void for_each_page(const Domain& domain, Fn&& fn) const;

  [[nodiscard]] Domain page_box(index_t p1, index_t p2, index_t p3) const;
  void validate_domain(const Domain& domain) const;
  [[nodiscard]] const remote_ptr<storage::ArrayPageDevice>& device(
      const PageAddress& addr) const;
  [[nodiscard]] const remote_ptr<storage::ArrayPageDevice>& device(
      std::int32_t device_id) const;

  /// Send half of a slice write against a borrowed buffer: fully covered
  /// pages go out batched per device, RMW reads are issued.  The returned
  /// future's sub_ is left empty — the caller either moves the buffer in
  /// (async_write_slice) or finishes against the borrow (write).
  [[nodiscard]] SliceWriteFuture build_write_slice(
      const std::vector<double>& subarray, const Domain& domain);

  Extents3 n_{};     // array extents N1,N2,N3
  Extents3 b_{};     // page block extents n1,n2,n3
  Extents3 grid_{};  // page grid: ceil(N/n) per axis
  BlockStorage data_;
  PageMapSpec spec_{};
  bool custom_map_ = false;
  std::shared_ptr<PageMap> map_;
  IoMode io_ = IoMode::kParallel;
  mutable std::uint64_t pages_read_ = 0;
  mutable std::uint64_t pages_written_ = 0;

  /// Recompute grid_ and map_ from the serialized fields.
  void rebuild_from_spec();

  template <class Ar>
  friend void oopp_serialize(Ar& ar, Array& a);
};

/// By-value wire format: an Array travels as {extents, page extents,
/// block storage (remote pointers), layout spec, io mode} and rebuilds
/// its page map on arrival.  Custom-PageMap arrays cannot travel.
template <class Ar>
void oopp_serialize(Ar& ar, Array& a) {
  OOPP_CHECK_MSG(!a.custom_map_,
                 "an Array with a custom PageMap cannot be serialized");
  std::uint8_t io = static_cast<std::uint8_t>(a.io_);
  ar(a.n_.n1, a.n_.n2, a.n_.n3, a.b_.n1, a.b_.n2, a.b_.n3, a.data_, a.spec_,
     io);
  a.io_ = static_cast<IoMode>(io);
  a.rebuild_from_spec();  // no-op result on the write path
}

}  // namespace oopp::array

// Remote protocol: Array as a deployable client process (paper §5).
template <>
struct oopp::rpc::class_def<oopp::array::Array> {
  using A = oopp::array::Array;
  static std::string name() { return "oopp.array.Array"; }
  using ctors = ctor_list<
      ctor<oopp::index_t, oopp::index_t, oopp::index_t, oopp::index_t,
           oopp::index_t, oopp::index_t, oopp::array::BlockStorage,
           oopp::array::PageMapSpec>,
      ctor<oopp::index_t, oopp::index_t, oopp::index_t, oopp::index_t,
           oopp::index_t, oopp::index_t, oopp::array::BlockStorage,
           oopp::array::PageMapSpec, oopp::array::IoMode>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&A::read>("read");
    b.template method<&A::write>("write");
    b.template method<&A::sum>("sum");
    b.template method<&A::sum_all>("sum_all");
    b.template method<&A::reduce>("reduce");
    b.template method<&A::norm2>("norm2");
    b.template method<&A::update>("update");
    b.template method<&A::get>("get");
    b.template method<&A::set>("set");
    b.template method<&A::pages_read>("pages_read");
    b.template method<&A::pages_written>("pages_written");
    b.persistent();
  }
};
