// Array: a (potentially huge) three-dimensional array of doubles stored as
// page blocks across many ArrayPageDevice processes (paper §5).
//
// The array is indexed on [0,N1) x [0,N2) x [0,N3) and broken into
// rectangular blocks of n1 x n2 x n3 doubles, one ArrayPage per block.
// A PageMap maps logical page coordinates to {device, index}; the choice
// of map determines how far reads and writes fan out across devices.
//
// The Array object itself is "a client process for performing computations
// on a small subdomain of the array data" — it is an ordinary class you
// can use locally *and* a remotable class you can deploy as multiple
// coordinating client processes (experiment E7).
//
// IoMode selects between the paper's §2 sequential semantics (one page
// round trip at a time) and the §4 compiler-split loop (all page requests
// in flight at once); E4/E6 measure the difference.
//
// The layout is no longer frozen at creation: redistribute() migrates the
// pages to a new PageMapSpec while reads and writes keep being served, and
// attach_device()/detach_device() grow or shrink the device set at
// runtime.  See docs/REDISTRIBUTION.md for the protocol (version-stamped
// map pair, per-page migration states, disjoint slot banks).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "array/block_storage.hpp"
#include "array/domain.hpp"
#include "array/page_map.hpp"
#include "core/future.hpp"
#include "rpc/errors.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::array {

class Array;

enum class IoMode : std::uint8_t {
  kSequential = 0,  // paper §2: each instruction completes before the next
  kParallel = 1,    // paper §4: send-loop then receive-loop
};

/// Tuning knobs for Array::redistribute / detach_device.
struct RedistOptions {
  /// Pages the migrator claims and copies per step: one batched read from
  /// a single source device, then grouped batched writes per target
  /// device.  Larger batches amortize more seeks but hold claims (and so
  /// stall overlapping writers) longer.
  std::int32_t batch_pages = 16;

  bool operator==(const RedistOptions&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, RedistOptions& o) {
  ar(o.batch_pages);
}

/// What one redistribution did (returned by redistribute/detach_device;
/// the same quantities feed the `array.redist` telemetry scope).
struct RedistStats {
  std::uint64_t pages_migrated = 0;   // copied by the migrator
  std::uint64_t writer_migrated = 0;  // carried to the target by writers
  std::uint64_t dual_reads = 0;       // resolutions through the dual map
  std::uint64_t stall_ns = 0;         // writer wait on in-flight pages
  std::uint64_t duration_ns = 0;
  std::uint64_t map_version = 0;      // version the array ended on
};

template <class Ar>
void oopp_serialize(Ar& ar, RedistStats& s) {
  ar(s.pages_migrated, s.writer_migrated, s.dual_reads, s.stall_ns,
     s.duration_ns, s.map_version);
}

/// Handle on an in-flight slice read: one batched read_arrays call per
/// device is already on the wire when this is returned; get() performs
/// the receive half and assembles the row-major subarray.  The overlap
/// window between issue and get() is where the out-of-core pipeline
/// hides its communication.
class SliceReadFuture {
 public:
  SliceReadFuture() = default;
  SliceReadFuture(SliceReadFuture&&) = default;
  SliceReadFuture& operator=(SliceReadFuture&&) = default;

  /// True while the receive half has not been performed yet.
  [[nodiscard]] bool valid() const { return !done_; }

  /// Block for every device batch and assemble the subarray (once).
  [[nodiscard]] std::vector<double> get();

 private:
  friend class Array;
  struct Piece {  // assembly info for one page within a batch
    Domain inter;
    index_t o1 = 0, o2 = 0, o3 = 0;
  };
  struct Batch {  // one batched call to one device
    Future<std::vector<storage::ArrayPage>> fut;
    std::vector<Piece> pieces;
  };
  std::vector<Batch> batches_;
  Domain domain_;
  bool done_ = false;
};

/// Handle on an in-flight slice write.  Fully covered pages are already
/// on the wire (batched write_arrays per device) when this is returned;
/// partially covered pages have their batched reads in flight and are
/// read-modified-written inside get().  get() returns once every device
/// acknowledged — the write-behind half of the pipeline.
///
/// During a redistribution the write lands at each page's target home;
/// the pages this op claimed are marked moved only inside get(), after
/// every ack.  Dropping the future without get() releases the claims back
/// to the migrator (the abandoned write may or may not take effect).
class SliceWriteFuture {
 public:
  SliceWriteFuture() = default;
  SliceWriteFuture(SliceWriteFuture&& o) noexcept;
  SliceWriteFuture& operator=(SliceWriteFuture&& o) noexcept;
  ~SliceWriteFuture();

  [[nodiscard]] bool valid() const { return !done_; }

  /// Block until every page write is acknowledged (once).
  void get();

 private:
  friend class Array;
  /// Receive half against a borrowed subarray buffer; get() runs it
  /// against the owned copy, Array::write against the caller's buffer
  /// (which outlives the call, so no copy is needed).
  void finish(const std::vector<double>& sub);
  /// Mark the claimed pages moved (after finish's acks).
  void commit();
  struct Piece {
    std::int32_t index = 0;  // write-side slot
    Domain inter;
    index_t o1 = 0, o2 = 0, o3 = 0;
  };
  struct RmwBatch {  // partially covered pages sharing a device pair
    remote_ptr<storage::ArrayPageDevice> dev;        // read side
    remote_ptr<storage::ArrayPageDevice> write_dev;  // write side
    Future<std::vector<storage::ArrayPage>> fut;
    std::vector<Piece> pieces;
    std::vector<std::int32_t> indices;  // write-side slots
  };
  std::vector<Future<void>> writes_;
  std::vector<RmwBatch> rmw_;
  std::vector<double> sub_;
  Domain domain_;
  bool done_ = false;
  Array* owner_ = nullptr;       // set only when claims were taken
  std::vector<index_t> claimed_;  // linear pages this op must mark moved
};

class Array {
 public:
  /// Empty handle; only meaningful as a deserialization target (an Array
  /// arrives by value as a remote-method argument, the paper's
  /// `transform(sign, Array* a)`).  Using an empty Array throws.
  Array() = default;

  /// Built-in layout policy (serializable — usable for remote clients).
  Array(index_t N1, index_t N2, index_t N3, index_t n1, index_t n2,
        index_t n3, BlockStorage data, PageMapSpec map,
        IoMode io = IoMode::kParallel);

  /// Custom layout policy (local use only; such an Array cannot be
  /// serialized or persisted).
  Array(index_t N1, index_t N2, index_t N3, index_t n1, index_t n2,
        index_t n3, BlockStorage data, std::shared_ptr<PageMap> map,
        IoMode io = IoMode::kParallel);

  /// Copyable and movable (remote-method arguments travel by value), but
  /// not while a redistribution is in flight — the migration state
  /// machine belongs to exactly one object.
  Array(const Array& o);
  Array& operator=(const Array& o);
  Array(Array&& o);
  Array& operator=(Array&& o);
  ~Array() = default;

  /// Restore from a passivated image.
  explicit Array(serial::IArchive& ia);
  void oopp_save(serial::OArchive& oa) const;

  /// Assemble the subarray covered by `domain` (row-major).  The paper's
  /// `read(double* subarray, Domain*)` with the buffer returned by value.
  [[nodiscard]] std::vector<double> read(const Domain& domain) const;

  /// Update the array region covered by `domain` from a row-major buffer
  /// of domain.volume() doubles.  Partially covered pages are
  /// read-modified-written.
  void write(const std::vector<double>& subarray, const Domain& domain);

  /// Asynchronous slice read: issues ONE batched read_arrays call per
  /// device overlapping `domain` (all devices fetch concurrently) and
  /// returns immediately; the future's get() assembles the subarray.
  [[nodiscard]] SliceReadFuture async_read_slice(const Domain& domain) const;

  /// Asynchronous slice write: fully covered pages go out immediately as
  /// one batched write_arrays call per device; partially covered pages
  /// have their read half issued now and complete inside get().
  [[nodiscard]] SliceWriteFuture async_write_slice(std::vector<double> subarray,
                                                   const Domain& domain);

  /// Sum over a domain, computed device-side: each overlapping page
  /// contributes a partial sum produced by its ArrayPageDevice process
  /// ("move the computation to the data"); the Array client combines them.
  [[nodiscard]] double sum(const Domain& domain) const;

  /// Sum of the whole array via a loop over subdomains.
  [[nodiscard]] double sum_all() const;

  using ReduceOp = storage::ArrayPageDevice::Reduce;
  using UpdateOp = storage::ArrayPageDevice::Update;

  /// Generalized device-side reduction over a domain (sum / min / max /
  /// sum of squares); per-page partials are computed by the storage
  /// processes and combined by this client.
  [[nodiscard]] double reduce(ReduceOp op, const Domain& domain) const;

  [[nodiscard]] double min(const Domain& domain) const {
    return reduce(ReduceOp::kMin, domain);
  }
  [[nodiscard]] double max(const Domain& domain) const {
    return reduce(ReduceOp::kMax, domain);
  }
  /// Euclidean norm over a domain (device-side sum of squares).
  [[nodiscard]] double norm2(const Domain& domain) const;

  /// Device-side in-place update over a domain: the touched pages never
  /// cross the network.
  void update(UpdateOp op, double s, const Domain& domain);

  void fill(double v, const Domain& domain) {
    update(UpdateOp::kFill, v, domain);
  }
  void scale(double a, const Domain& domain) {
    update(UpdateOp::kScale, a, domain);
  }
  void shift(double d, const Domain& domain) {
    update(UpdateOp::kShift, d, domain);
  }

  /// Single element access (one page round trip each — expensive, exists
  /// for completeness and tests).
  [[nodiscard]] double get(index_t i1, index_t i2, index_t i3) const;
  void set(index_t i1, index_t i2, index_t i3, double v);

  // --- online re-layout (docs/REDISTRIBUTION.md) ---------------------------

  /// Migrate every page to the layout `target` describes over the
  /// currently attached devices, while concurrent reads and writes keep
  /// being served with correct bytes.  Blocking: the calling thread IS
  /// the background migrator (run it on its own thread, or as a servant
  /// method, to keep a foreground workload going).  Throws a typed
  /// oopp::Error if a redistribution is already in flight or the spec is
  /// degenerate.
  RedistStats redistribute(PageMapSpec target, RedistOptions opts = {});

  /// Add a device (made with create_block_device or compatible) to the
  /// storage set.  The current layout keeps ignoring it until the next
  /// redistribute() spans it.  Not allowed mid-redistribution.
  void attach_device(remote_ptr<storage::ArrayPageDevice> dev);

  /// Drain every page off device `device_id` (re-laying out the current
  /// spec over the remaining devices) and drop it from the storage set.
  /// Reads and writes keep being served while the device drains.  The
  /// device process itself is not destroyed — the caller owns it.
  RedistStats detach_device(std::int32_t device_id, RedistOptions opts = {});

  /// Layout-change epoch: bumped when a redistribution begins.  Devices
  /// learn it through quiesce_pages; DSM caches must treat a bump as
  /// fatal to cached copies of moved slots.
  [[nodiscard]] std::uint64_t map_version() const;

  /// Devices currently attached (the layout may span fewer until the
  /// next redistribute).
  [[nodiscard]] std::int32_t device_count() const;

  /// The spec of the last completed layout (meaningless for custom maps).
  [[nodiscard]] PageMapSpec layout() const;

  /// True while a redistribution is draining pages.
  [[nodiscard]] bool migrating() const;

  /// Locks mu_: attach/detach/redistribute mutate the device list
  /// concurrently with readers.  Callers already holding mu_ use
  /// valid_locked().
  [[nodiscard]] bool valid() const;
  [[nodiscard]] const Extents3& extents() const { return n_; }

  /// Physical address of the page with page-grid coordinates (p1,p2,p3)
  /// under the *current* resolution: slot-bank offset applied and, mid-
  /// migration, the dual-map rule (target home if the page moved, source
  /// home otherwise).
  [[nodiscard]] PageAddress page_address(index_t p1, index_t p2,
                                         index_t p3) const;
  [[nodiscard]] const Extents3& page_extents() const { return b_; }
  [[nodiscard]] Extents3 page_grid() const { return grid_; }
  [[nodiscard]] const BlockStorage& storage() const { return data_; }
  [[nodiscard]] IoMode io_mode() const { return io_; }
  void set_io_mode(IoMode io) { io_ = io; }

  /// I/O accounting since construction (pages fetched/stored by this
  /// client).  Exposed remotely for the benches.
  [[nodiscard]] std::uint64_t pages_read() const {
    return pages_read_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pages_written() const {
    return pages_written_.load(std::memory_order_relaxed);
  }

 private:
  friend class SliceWriteFuture;

  [[nodiscard]] bool valid_locked() const { return !data_.empty(); }

  /// Per-page migration progress (guarded by mu_).
  enum PageState : std::uint8_t {
    kAtSource = 0,  // bytes live at the source home
    kMoving = 1,    // claimed: a copy or target-bound write is in flight
    kMoved = 2,     // bytes live at the target home
  };

  struct Migration {
    PageMapSpec target_spec{};
    std::shared_ptr<PageMap> target_map;
    std::vector<std::int32_t> perm;  // target map device id -> data_ index
    std::int32_t target_base = 0;    // slot-bank base of the target layout
    /// False until ensure_capacity has provisioned the target slot banks
    /// on every device.  While false the migration only *reserves* the
    /// array (blocks other redistributions, attach, serialization) —
    /// reads and writes still resolve purely through the source map, so
    /// no write can land on an unprovisioned target slot.
    bool ready = false;
    std::vector<std::uint8_t> state;  // PageState per linear page
    index_t moved = 0;
    std::uint64_t epoch = 0;  // bumped whenever claims resolve
    std::uint64_t writer_migrated = 0;
    std::uint64_t dual_reads = 0;
    std::uint64_t stall_ns = 0;
  };

  /// Visit every page overlapping `domain`: fn(p1, p2, p3, addr, page_box)
  /// where addr is the page's RESOLVED physical address (slot bank and
  /// dual-map rule applied) and page_box its index box clipped to the
  /// array bounds.  Resolution happens in one lock hold; fn runs without
  /// the lock (it makes remote calls).
  template <class Fn>
  void for_each_page(const Domain& domain, Fn&& fn) const;

  [[nodiscard]] Domain page_box(index_t p1, index_t p2, index_t p3) const;
  void validate_domain(const Domain& domain) const;

  /// Bounds-checked device lookup — the only way page-map output may
  /// index data_ (a hostile custom map cannot reach UB).  Returns a copy:
  /// attach_device may grow data_ concurrently.
  [[nodiscard]] remote_ptr<storage::ArrayPageDevice> device(
      const PageAddress& addr) const;
  [[nodiscard]] remote_ptr<storage::ArrayPageDevice> device(
      std::int32_t device_id) const;

  // Resolution under mu_.
  [[nodiscard]] PageAddress source_address_locked(index_t p1, index_t p2,
                                                  index_t p3) const;
  [[nodiscard]] PageAddress target_address_locked(index_t p1, index_t p2,
                                                  index_t p3) const;
  [[nodiscard]] PageAddress resolve_read_locked(index_t lin, index_t p1,
                                                index_t p2, index_t p3) const;

  /// One page of a planned write: where the current bytes live (RMW
  /// source) and where the write must land.
  struct WriteSlot {
    index_t p1 = 0, p2 = 0, p3 = 0, lin = 0;
    PageAddress read_addr{};
    PageAddress write_addr{};
    bool claimed = false;
  };

  /// Resolve every page a write to `domain` touches.  Mid-migration the
  /// covered claim set is taken atomically (all-or-wait under one lock
  /// hold), so concurrent multi-page writers can never deadlock on each
  /// other's partial claims.
  [[nodiscard]] std::vector<WriteSlot> plan_writes(const Domain& domain);

  /// Claimed pages' bytes reached their target home: mark them moved.
  void commit_claims(const std::vector<index_t>& lins);
  /// Hand claimed pages back to the migrator (bytes still at the source).
  void release_claims(const std::vector<index_t>& lins);

  RedistStats redistribute_impl(PageMapSpec target, std::int32_t drop,
                                RedistOptions opts);

  /// Send half of a slice write against a borrowed buffer: fully covered
  /// pages go out batched per device, RMW reads are issued.  The returned
  /// future's sub_ is left empty — the caller either moves the buffer in
  /// (async_write_slice) or finishes against the borrow (write).
  [[nodiscard]] SliceWriteFuture build_write_slice(
      const std::vector<double>& subarray, const Domain& domain);

  Extents3 n_{};     // array extents N1,N2,N3
  Extents3 b_{};     // page block extents n1,n2,n3
  Extents3 grid_{};  // page grid: ceil(N/n) per axis
  BlockStorage data_;
  PageMapSpec spec_{};
  bool custom_map_ = false;
  std::shared_ptr<PageMap> map_;
  /// Devices the current map spans — data_.size() until a device is
  /// attached without a redistribute yet covering it.
  std::int32_t layout_devices_ = 0;
  /// Slot-bank base of the current layout: physical slot = map index +
  /// slot_base_.  Banks alternate between the bottom of each device and
  /// just past the previous layout's highest slot, so the in-flight pair
  /// of layouts never aliases (docs/REDISTRIBUTION.md).
  std::int32_t slot_base_ = 0;
  std::uint64_t map_version_ = 0;
  IoMode io_ = IoMode::kParallel;
  // Guards data_/spec_/map_/layout_devices_/slot_base_/map_version_/mig_.
  // Never held across a remote call.
  mutable util::CheckedMutex mu_{"array.Array"};
  mutable util::CondVar cv_;
  std::unique_ptr<Migration> mig_;
  mutable std::atomic<std::uint64_t> pages_read_{0};
  mutable std::atomic<std::uint64_t> pages_written_{0};

  /// Recompute grid_ and map_ from the serialized fields.
  void rebuild_from_spec();

  template <class Ar>
  friend void oopp_serialize(Ar& ar, Array& a);
};

/// By-value wire format: an Array travels as {extents, page extents,
/// block storage (remote pointers), layout spec + bank base + version,
/// io mode} and rebuilds its page map on arrival.  Custom-PageMap arrays
/// cannot travel, and neither can an Array mid-redistribution — both
/// raise typed oopp::Errors (a servant attempting it fails that one call;
/// the node lives on).
template <class Ar>
void oopp_serialize(Ar& ar, Array& a) {
  std::unique_lock<util::CheckedMutex> lk(a.mu_);
  if (a.custom_map_)
    throw Error(
        "an Array with a custom PageMap cannot be serialized; use a "
        "PageMapSpec layout",
        net::CallStatus::kInternal);
  if (a.mig_)
    throw Error("an Array cannot be serialized during an active "
                "redistribution",
                net::CallStatus::kInternal);
  std::uint8_t io = static_cast<std::uint8_t>(a.io_);
  ar(a.n_.n1, a.n_.n2, a.n_.n3, a.b_.n1, a.b_.n2, a.b_.n3, a.data_, a.spec_,
     io, a.layout_devices_, a.slot_base_, a.map_version_);
  a.io_ = static_cast<IoMode>(io);
  a.rebuild_from_spec();  // no-op result on the write path
}

}  // namespace oopp::array

// Remote protocol: Array as a deployable client process (paper §5).  The
// re-layout methods are the control plane: a deployed Array client can be
// told to redistribute or to adopt/drop devices remotely.
template <>
struct oopp::rpc::class_def<oopp::array::Array> {
  using A = oopp::array::Array;
  static std::string name() { return "oopp.array.Array"; }
  using ctors = ctor_list<
      ctor<oopp::index_t, oopp::index_t, oopp::index_t, oopp::index_t,
           oopp::index_t, oopp::index_t, oopp::array::BlockStorage,
           oopp::array::PageMapSpec>,
      ctor<oopp::index_t, oopp::index_t, oopp::index_t, oopp::index_t,
           oopp::index_t, oopp::index_t, oopp::array::BlockStorage,
           oopp::array::PageMapSpec, oopp::array::IoMode>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&A::read>("read");
    b.template method<&A::write>("write");
    b.template method<&A::sum>("sum");
    b.template method<&A::sum_all>("sum_all");
    b.template method<&A::reduce>("reduce");
    b.template method<&A::norm2>("norm2");
    b.template method<&A::update>("update");
    b.template method<&A::get>("get");
    b.template method<&A::set>("set");
    b.template method<&A::redistribute>("redistribute");
    b.template method<&A::attach_device>("attach_device");
    b.template method<&A::detach_device>("detach_device");
    b.template method<&A::map_version>("map_version");
    b.template method<&A::device_count>("device_count");
    b.template method<&A::layout>("layout");
    b.template method<&A::migrating>("migrating");
    b.template method<&A::pages_read>("pages_read");
    b.template method<&A::pages_written>("pages_written");
    b.persistent();
  }
};
