// Domain: a rectangular subdomain of a 3-D index space (paper §5).
//
// The paper's Domain(N11, N12, N21, N22, N31, N32) is interpreted as the
// half-open box [N11, N12) x [N21, N22) x [N31, N32).  Domains describe
// the regions Array::read/write/sum operate on.
#pragma once

#include <array>

#include "serial/archive.hpp"
#include "util/ndindex.hpp"

namespace oopp::array {

class Domain {
 public:
  Domain() = default;

  /// Half-open box; lo <= hi required per axis.
  Domain(index_t lo1, index_t hi1, index_t lo2, index_t hi2, index_t lo3,
         index_t hi3);

  /// The whole box [0, e.n1) x [0, e.n2) x [0, e.n3).
  static Domain whole(const Extents3& e) {
    return Domain(0, e.n1, 0, e.n2, 0, e.n3);
  }

  [[nodiscard]] index_t lo(int axis) const { return lo_[check_axis(axis)]; }
  [[nodiscard]] index_t hi(int axis) const { return hi_[check_axis(axis)]; }
  [[nodiscard]] index_t extent(int axis) const {
    return hi_[check_axis(axis)] - lo_[axis];
  }
  [[nodiscard]] Extents3 extents() const {
    return {extent(0), extent(1), extent(2)};
  }
  [[nodiscard]] index_t volume() const { return extents().volume(); }
  [[nodiscard]] bool empty() const { return volume() == 0; }

  [[nodiscard]] bool contains(index_t i1, index_t i2, index_t i3) const {
    return i1 >= lo_[0] && i1 < hi_[0] && i2 >= lo_[1] && i2 < hi_[1] &&
           i3 >= lo_[2] && i3 < hi_[2];
  }
  [[nodiscard]] bool contains(const Domain& other) const;

  /// Intersection (possibly empty).
  [[nodiscard]] Domain intersect(const Domain& other) const;

  /// Linear offset of a global index within this domain's local (row-major)
  /// layout — where that element lives in the subarray buffer.
  [[nodiscard]] index_t local_offset(index_t i1, index_t i2,
                                     index_t i3) const {
    return extents().linear(i1 - lo_[0], i2 - lo_[1], i3 - lo_[2]);
  }

  bool operator==(const Domain&) const = default;

 private:
  static int check_axis(int axis) {
    OOPP_CHECK_MSG(axis >= 0 && axis < 3, "axis " << axis << " out of range");
    return axis;
  }
  std::array<index_t, 3> lo_{0, 0, 0};
  std::array<index_t, 3> hi_{0, 0, 0};

  template <class Ar>
  friend void oopp_serialize(Ar& ar, Domain& d);
};

template <class Ar>
void oopp_serialize(Ar& ar, Domain& d) {
  ar(d.lo_, d.hi_);
}

}  // namespace oopp::array
