// oopp::telemetry — runtime toggle, trace identifiers and the thread-local
// trace context the whole tracing layer hangs off.
//
// The paper's premise is that every method call is a network round trip;
// this layer makes those round trips observable.  Two cooperating pieces:
//
//  * metrics.hpp — lock-light counters and log2-bucket latency histograms,
//    registered per subsystem ("rpc", "storage", "dsm", ...) and dumpable
//    as JSON via Cluster::metrics_report().
//  * trace.hpp   — distributed spans: a 64-bit {trace id, span id} pair is
//    carried in the net::Message header, propagated automatically through
//    rpc::Node dispatch, and recorded into a per-node ring-buffer sink.
//    tools/oopp_trace.py stitches per-node dumps into one timeline.
//
// Everything is compiled in but runtime-toggled: enabled() is a branch on
// a relaxed atomic, initialized once from the OOPP_TRACE environment
// variable (OOPP_TRACE=1 turns tracing + latency histograms on).  Plain
// counters are always live — one relaxed fetch_add is cheaper than making
// it conditional.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace oopp::telemetry {

/// The RPC verbs instrumented at the unified remote-call surface.  Client
/// round trips are classified by how the caller spelled the operation;
/// page read/write are the storage subsystem's data-plane verbs.
enum class Verb : std::uint8_t {
  kCall = 0,     // remote_ptr::call — synchronous §2 semantics
  kAsync = 1,    // remote_ptr::async — §4 split-loop send
  kBarrier = 2,  // ping / group barrier round trips
  kControl = 3,  // spawn / destroy / passivate / restore / stats
  kPageRead = 4,
  kPageWrite = 5,
};

inline const char* verb_name(Verb v) {
  switch (v) {
    case Verb::kCall: return "call";
    case Verb::kAsync: return "async";
    case Verb::kBarrier: return "barrier";
    case Verb::kControl: return "control";
    case Verb::kPageRead: return "page_read";
    case Verb::kPageWrite: return "page_write";
  }
  return "unknown";
}

namespace detail {
inline std::atomic<int>& enabled_flag() {
  static std::atomic<int> flag{-1};  // -1 = not yet read from environment
  return flag;
}
}  // namespace detail

/// Tracing + histogram toggle.  The disabled hot path is exactly one
/// relaxed atomic load and a compare.
inline bool enabled() {
  int v = detail::enabled_flag().load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("OOPP_TRACE");
    v = (e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0) ? 1 : 0;
    detail::enabled_flag().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

/// Programmatic override (tests, benches).  Wins over the environment.
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

/// Fresh non-zero id.  Seeded with the pid so ids from the separate OS
/// processes of a mesh deployment do not collide in a merged trace.
inline std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{
      (static_cast<std::uint64_t>(::getpid()) << 32) | 1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// The trace position of the current thread: which span any remote call
/// issued right now becomes a child of.  {0, 0} = not inside a trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

namespace detail {
inline TraceContext& thread_context_slot() {
  thread_local TraceContext ctx;
  return ctx;
}
}  // namespace detail

[[nodiscard]] inline TraceContext thread_context() {
  return detail::thread_context_slot();
}

/// RAII: enter a span's context (servant dispatch, local sub-spans).
class ContextScope {
 public:
  explicit ContextScope(TraceContext ctx) : prev_(detail::thread_context_slot()) {
    detail::thread_context_slot() = ctx;
  }
  ~ContextScope() { detail::thread_context_slot() = prev_; }
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace oopp::telemetry
