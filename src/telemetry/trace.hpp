// Distributed call tracing: spans, the per-node ring-buffer sink, and the
// thread-local sink binding that lets servant code record local sub-spans
// without knowing which node it runs on.
//
// Span model (see docs/TELEMETRY.md):
//
//  * A client-side remote call allocates a span id S (child of whatever
//    span the calling thread is inside) and stamps {trace id, S} into the
//    request's Message header.
//  * The serving node executes the method inside a fresh server span S'
//    with parent S, so the servant's own outbound calls become children
//    of S' — causality propagates with zero user code.
//  * Subsystems may record purely local spans (e.g. storage.page_read)
//    under the current context with LocalSpan.
//
// Every node owns one SpanSink: a fixed-capacity ring that keeps the most
// recent spans (old ones are overwritten, never blocking the hot path on
// memory growth).  Cluster::dump_trace() writes one JSON file per node;
// tools/oopp_trace.py merges them into a causally ordered timeline.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/checked_mutex.hpp"
#include "util/clock.hpp"

namespace oopp::telemetry {

enum class SpanKind : std::uint8_t {
  kClient = 0,  // a remote call observed from the calling node
  kServer = 1,  // a method execution observed on the serving node
  kLocal = 2,   // an in-process operation inside some span
};

inline const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kClient: return "client";
    case SpanKind::kServer: return "server";
    case SpanKind::kLocal: return "local";
  }
  return "unknown";
}

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root of its trace
  std::uint32_t node = 0;       // machine id that recorded the span
  SpanKind kind = SpanKind::kLocal;
  std::uint8_t status = 0;  // numeric net::CallStatus / oopp::Error code
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  /// Fixed-size, truncating — recording never allocates.
  char name[48] = {};

  void set_name(const char* s) {
    std::snprintf(name, sizeof(name), "%s", s);
  }
};

/// Fixed-capacity most-recent-spans ring.  record() is a short critical
/// section (one copy into a preallocated slot); snapshot() is for dumps
/// and tests.
class SpanSink {
 public:
  explicit SpanSink(std::size_t capacity = 65536) : capacity_(capacity) {}

  void record(const Span& s) {
    std::lock_guard lock(mu_);
    if (ring_.size() == capacity_) {
      ++dropped_;
      ring_.pop_front();
    }
    ring_.push_back(s);
  }

  [[nodiscard]] std::vector<Span> snapshot() const {
    std::lock_guard lock(mu_);
    return std::vector<Span>(ring_.begin(), ring_.end());
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return ring_.size();
  }

  /// Spans overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard lock(mu_);
    return dropped_;
  }

  void clear() {
    std::lock_guard lock(mu_);
    ring_.clear();
    dropped_ = 0;
  }

  /// One node's dump: {"node":N,"dropped":D,"spans":[...]}.
  [[nodiscard]] std::string json(std::uint32_t node_id) const;

 private:
  std::size_t capacity_;
  mutable util::CheckedMutex mu_{"telemetry.SpanSink"};
  std::deque<Span> ring_;
  std::uint64_t dropped_ = 0;
};

namespace detail {
struct ThreadSink {
  SpanSink* sink = nullptr;
  std::uint32_t node = 0;
};
inline ThreadSink& thread_sink_slot() {
  thread_local ThreadSink ts;
  return ts;
}
}  // namespace detail

[[nodiscard]] inline SpanSink* thread_sink() {
  return detail::thread_sink_slot().sink;
}
[[nodiscard]] inline std::uint32_t thread_node() {
  return detail::thread_sink_slot().node;
}

/// RAII: bind the calling thread to a node's sink (installed by
/// rpc::Node::ContextGuard alongside the machine context).
class SinkScope {
 public:
  SinkScope(SpanSink* sink, std::uint32_t node)
      : prev_(detail::thread_sink_slot()) {
    detail::thread_sink_slot() = {sink, node};
  }
  ~SinkScope() { detail::thread_sink_slot() = prev_; }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  detail::ThreadSink prev_;
};

/// RAII local span: records an in-process operation (a page read, a cache
/// fill) as a child of the current trace context, and makes itself the
/// context so nested work chains correctly.  No-op unless tracing is
/// enabled AND the thread is already inside a trace — local spans only
/// decorate distributed call trees, they never start one.
class LocalSpan {
 public:
  explicit LocalSpan(const char* name) {
    if (!enabled()) return;
    const TraceContext parent = thread_context();
    if (!parent.active() || thread_sink() == nullptr) return;
    active_ = true;
    span_.trace_id = parent.trace_id;
    span_.parent_id = parent.span_id;
    span_.span_id = next_id();
    span_.node = thread_node();
    span_.kind = SpanKind::kLocal;
    span_.set_name(name);
    span_.start_ns = now_ns();
    prev_ = detail::thread_context_slot();
    detail::thread_context_slot() = {span_.trace_id, span_.span_id};
  }

  ~LocalSpan() {
    if (!active_) return;
    detail::thread_context_slot() = prev_;
    span_.end_ns = now_ns();
    if (SpanSink* s = thread_sink()) s->record(span_);
  }

  LocalSpan(const LocalSpan&) = delete;
  LocalSpan& operator=(const LocalSpan&) = delete;

  void set_status(std::uint8_t status) { span_.status = status; }

 private:
  bool active_ = false;
  Span span_{};
  TraceContext prev_{};
};

}  // namespace oopp::telemetry
