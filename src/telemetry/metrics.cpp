#include "telemetry/metrics.hpp"

#include <mutex>

namespace oopp::telemetry {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Ceiling rank so p=1.0 lands on the last populated bucket.
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank || (seen == total && seen >= rank)) {
      return i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (i + 1)) - 1;
    }
  }
  return ~std::uint64_t{0};
}

Counter& MetricScope::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricScope::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricScope::append_json(std::string& out) const {
  std::lock_guard lock(mu_);
  out += '"';
  append_escaped(out, name_);
  out += "\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":" + std::to_string(c->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) +
           ",\"p50_ns\":" + std::to_string(h->percentile(0.50)) +
           ",\"p95_ns\":" + std::to_string(h->percentile(0.95)) +
           ",\"p99_ns\":" + std::to_string(h->percentile(0.99)) + "}";
  }
  out += "}}";
}

void MetricScope::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Metrics& Metrics::instance() {
  static Metrics* m = new Metrics();  // never destroyed: usable at exit
  return *m;
}

MetricScope& Metrics::scope(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = scopes_.find(name);
  if (it == scopes_.end()) {
    it = scopes_
             .emplace(std::string(name),
                      std::make_unique<MetricScope>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::string Metrics::json() const {
  std::string out = "{";
  std::lock_guard lock(mu_);
  bool first = true;
  for (const auto& [name, scope] : scopes_) {
    if (!first) out += ',';
    first = false;
    scope->append_json(out);
  }
  out += '}';
  return out;
}

void Metrics::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, scope] : scopes_) scope->reset();
}

}  // namespace oopp::telemetry
