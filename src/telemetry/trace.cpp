#include "telemetry/trace.hpp"

#include <mutex>

namespace oopp::telemetry {

std::string SpanSink::json(std::uint32_t node_id) const {
  const std::vector<Span> spans = snapshot();
  std::uint64_t dropped_count = dropped();
  std::string out = "{\"node\":" + std::to_string(node_id) +
                    ",\"dropped\":" + std::to_string(dropped_count) +
                    ",\"spans\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"trace_id\":" + std::to_string(s.trace_id) +
           ",\"span_id\":" + std::to_string(s.span_id) +
           ",\"parent_id\":" + std::to_string(s.parent_id) +
           ",\"node\":" + std::to_string(s.node) + ",\"kind\":\"" +
           span_kind_name(s.kind) +
           "\",\"status\":" + std::to_string(s.status) +
           ",\"start_ns\":" + std::to_string(s.start_ns) +
           ",\"end_ns\":" + std::to_string(s.end_ns) + ",\"name\":\"";
    // Span names are method/subsystem identifiers; escape defensively
    // anyway so a hostile name cannot corrupt the document.
    for (const char* p = s.name; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') out.push_back('\\');
      out.push_back(*p);
    }
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace oopp::telemetry
