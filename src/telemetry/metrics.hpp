// Lock-light metrics: counters and log2-bucket latency histograms,
// registered per subsystem and dumped as one JSON document.
//
// Shape: Metrics::instance() holds named scopes ("rpc", "storage", ...);
// a scope holds named counters and histograms.  Lookup takes a mutex, so
// hot paths cache the returned reference once:
//
//     static auto& h = telemetry::Metrics::scope("storage")
//                          .histogram("page_read_ns");
//     h.record(ns);
//
// Counter::add and Histogram::record are single relaxed atomic RMWs —
// safe from any thread, never blocking, cheap enough to leave always on.
// Latency histograms are additionally gated behind telemetry::enabled()
// at their call sites (they sit on RPC hot paths).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "telemetry/telemetry.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Log2-bucket histogram of non-negative values (nanoseconds by
/// convention).  Bucket i covers [2^(i-1), 2^i); values 0 and 1 land in
/// bucket 0.  64 buckets span the full uint64 range, so record() is a
/// bit_width + one relaxed fetch_add — no clamping branch mispredicts.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v) {
    const std::size_t b = v <= 1 ? 0 : static_cast<std::size_t>(
                                           std::bit_width(v) - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound (2^i) of the bucket where the cumulative count crosses
  /// p in [0, 1].  A bucket estimate, not an exact order statistic.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One subsystem's named metrics.  Instruments are created on first use
/// and live for the process lifetime (references stay valid forever).
class MetricScope {
 public:
  explicit MetricScope(std::string name) : name_(std::move(name)) {}

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Append this scope as a JSON object member ("scope": {...}).
  void append_json(std::string& out) const;
  void reset();

 private:
  std::string name_;
  mutable util::CheckedMutex mu_{"telemetry.MetricScope"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-wide registry of subsystem scopes.
class Metrics {
 public:
  static Metrics& instance();

  MetricScope& scope(std::string_view name);

  /// Convenience: Metrics::instance().scope(name).
  static MetricScope& scope_for(std::string_view name) {
    return instance().scope(name);
  }

  /// The whole registry as one JSON document:
  /// {"scope":{"counters":{"n":v},"histograms":{"n":{count,sum,p50_ns,
  /// p95_ns,p99_ns}}}}.
  [[nodiscard]] std::string json() const;

  /// Zero every instrument (tests, bench phases).  Instruments are not
  /// destroyed — cached references stay valid.
  void reset();

 private:
  Metrics() = default;
  mutable util::CheckedMutex mu_{"telemetry.Metrics"};
  std::map<std::string, std::unique_ptr<MetricScope>, std::less<>> scopes_;
};

}  // namespace oopp::telemetry
