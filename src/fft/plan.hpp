// FFT plans: precomputed per-length state (bit-reversal permutation and
// per-stage twiddle tables for powers of two; chirp and convolution
// kernels for Bluestein lengths), plus a process-wide plan cache.
//
// The distributed workers and the out-of-core passes transform the same
// lengths thousands of times; planning once amortizes all trigonometry.
// fft_inplace() uses the cache transparently.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fft/fft.hpp"

namespace oopp::fft {

class Plan1D {
 public:
  /// Plan a transform of length n with the given sign (-1 forward, +1
  /// inverse).  Unnormalized, like fft_inplace.
  Plan1D(index_t n, int sign);

  void execute(std::span<cplx> data) const;

  [[nodiscard]] index_t length() const { return n_; }
  [[nodiscard]] int sign() const { return sign_; }

 private:
  void execute_pow2(std::span<cplx> data) const;
  void execute_bluestein(std::span<cplx> data) const;

  index_t n_;
  int sign_;
  bool pow2_;

  // Power-of-two state.
  std::vector<std::uint32_t> bitrev_;   // permutation
  std::vector<cplx> twiddles_;          // concatenated per-stage tables

  // Bluestein state.
  index_t m_ = 0;                        // padded power-of-two length
  std::vector<cplx> chirp_;              // w_k = exp(sign i pi k^2 / n)
  std::vector<cplx> kernel_fft_;         // FFT of the convolution kernel
  std::shared_ptr<const Plan1D> pad_forward_;
  std::shared_ptr<const Plan1D> pad_inverse_;
};

/// Process-wide cache; returns a shared plan for (n, sign).  Thread-safe.
std::shared_ptr<const Plan1D> plan_for(index_t n, int sign);

/// Entries currently cached (for tests).
std::size_t plan_cache_size();

}  // namespace oopp::fft
