// FFTWorker: the paper's §4 FFT process, and DistributedFFT3D, the master-
// side facade that creates and drives the group.
//
// Algorithm (slab decomposition, the classic distributed 3-D FFT):
//   worker w owns rows i1 in [w*N1/P, (w+1)*N1/P) of the N1 x N2 x N3
//   global array.
//   1. each worker FFTs its planes along axes 2 and 3 (node-local);
//   2. all-to-all transpose: axis 1 <-> axis 2.  Every worker packs one
//      block per peer and executes deposit_block on it — a one-sided
//      remote method (reentrant: it lands while the peer itself is blocked
//      inside transform), exactly the paper's "processes exchange
//      information by executing methods on remote objects";
//   3. each worker FFTs along (global) axis 1, now node-local;
//   4. optionally a second all-to-all restores the natural layout.
//
// Group wiring is the paper's SetGroup: the master hands every worker the
// whole group of remote pointers, deep-copied (§4 calls the deep copy
// "preferable").  The alternative it warns about — keeping a remote
// pointer to the master's array and chasing it on every access — is also
// implemented (GroupDirectory / set_group_directory) so the E5 ablation
// can measure the difference.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "array/array.hpp"
#include "core/group.hpp"
#include "core/remote_ptr.hpp"
#include "fft/fft3d.hpp"
#include "util/checked_mutex.hpp"
#include "util/ndindex.hpp"

namespace oopp::fft {

/// Balanced 1-D block split: rows [begin, end) of n for rank w of p.
struct RowSplit {
  index_t lo = 0, hi = 0;
  [[nodiscard]] index_t count() const { return hi - lo; }
};
[[nodiscard]] RowSplit split_rows(index_t n, int p, int w);

class FFTWorker;

/// The "shallow copy" alternative (§4): a server holding the group's
/// remote pointers; members chase it on every peer access.
class GroupDirectory {
 public:
  explicit GroupDirectory(const ProcessGroup<FFTWorker>& group)
      : members_(group.members()) {}
  remote_ptr<FFTWorker> get(int i) const { return members_.at(i); }
  int size() const { return static_cast<int>(members_.size()); }

 private:
  std::vector<remote_ptr<FFTWorker>> members_;
};

class FFTWorker {
 public:
  explicit FFTWorker(int id) : id_(id) {}

  /// The paper's SetGroup with deep copy: "copies the entire remote array
  /// of remote pointers to a local array of remote pointers".
  void set_group(int n, const ProcessGroup<FFTWorker>& group);

  /// Shallow-copy wiring: remember only a remote pointer to the directory
  /// process; every peer access costs an extra round trip.
  void set_group_directory(int n, remote_ptr<GroupDirectory> dir);

  /// Global array extents; this worker will own its split_rows share of
  /// axis 1.
  void set_extents(index_t N1, index_t N2, index_t N3);

  /// Load this worker's slab: rows_lo()..rows_hi() of axis 1, row-major
  /// (local_rows, N2, N3).
  void load_slab(const std::vector<cplx>& slab);

  [[nodiscard]] std::vector<cplx> get_slab() const;

  /// The paper's §4 `transform(sign, Array* a)` data path: the worker is
  /// itself an Array client and pulls its own slab straight from the
  /// storage processes ("moving the computation to the data").  The
  /// complex field travels as two double Arrays (real and imaginary
  /// parts) with identical extents.
  void load_slab_from(array::Array re, array::Array im);

  /// Push this worker's slab back into the distributed Array.  Requires
  /// natural (non-transposed) layout.
  void store_slab_to(array::Array re, array::Array im);

  /// The distributed transform phase driver (run on every worker by the
  /// master's split loop).  sign = -1 forward / +1 inverse; when
  /// restore_layout is false the result stays axis-transposed and a
  /// second call is invalid until layout is restored.
  void transform(int sign, bool restore_layout);

  /// One-sided block delivery for the transpose.  REENTRANT: executes
  /// while the target is blocked inside transform().
  void deposit_block(int from, std::uint64_t epoch,
                     const std::vector<cplx>& block);

  /// Multiply the local slab by s (inverse-transform normalization).
  void scale_slab(double s);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int group_size() const { return n_; }
  [[nodiscard]] std::int64_t rows_lo() const;
  [[nodiscard]] std::int64_t rows_hi() const;
  [[nodiscard]] bool transposed() const { return transposed_; }

 private:
  remote_ptr<FFTWorker> peer(int v) const;
  void exchange(bool to_transposed);

  int id_ = 0;
  int n_ = 0;  // group size
  ProcessGroup<FFTWorker> group_;          // deep-copied wiring
  remote_ptr<GroupDirectory> directory_;   // shallow wiring (ablation)
  bool use_directory_ = false;

  Extents3 global_{};
  std::vector<cplx> slab_;
  bool loaded_ = false;
  bool transposed_ = false;

  // Transpose staging: blocks deposited by peers, keyed by (epoch, from).
  util::CheckedMutex staging_mu_{"fft.FFTWorker.staging"};
  util::CondVar staging_cv_;
  std::map<std::pair<std::uint64_t, int>, std::vector<cplx>> staging_;
  std::uint64_t epoch_ = 0;
};

/// Master-side facade: spawn the group, wire it, scatter/transform/gather.
class DistributedFFT3D {
 public:
  struct Options {
    bool use_directory = false;  // shallow wiring ablation
    bool restore_layout = true;  // transpose back after the transform
  };

  DistributedFFT3D(Extents3 extents, int workers,
                   const std::function<net::MachineId(int)>& placement)
      : DistributedFFT3D(extents, workers, placement, Options{}) {}
  DistributedFFT3D(Extents3 extents, int workers,
                   const std::function<net::MachineId(int)>& placement,
                   Options options);
  ~DistributedFFT3D();

  DistributedFFT3D(const DistributedFFT3D&) = delete;
  DistributedFFT3D& operator=(const DistributedFFT3D&) = delete;

  /// Split a full row-major array into slabs and load them (split loop).
  void scatter(const std::vector<cplx>& data);

  /// §4's `transform(sign, a)` data path: every worker pulls its own slab
  /// from the distributed Array (re/im parts) in parallel.
  void scatter_from(const array::Array& re, const array::Array& im);

  /// Push the workers' slabs back into the distributed Array.
  void gather_to(const array::Array& re, const array::Array& im);

  /// Run the distributed transform: the paper's
  /// `for (id...) fft[id]->transform(sign, a)` as a split loop.
  void transform(int sign);

  void forward() { transform(-1); }
  /// Inverse transform; divides by the volume when normalize is true so a
  /// forward/inverse round trip is the identity.
  void inverse(bool normalize = true);

  /// Reassemble the full array from the slabs.
  [[nodiscard]] std::vector<cplx> gather() const;

  [[nodiscard]] const ProcessGroup<FFTWorker>& workers() const {
    return group_;
  }
  [[nodiscard]] const Extents3& extents() const { return extents_; }

  /// Terminate the worker (and directory) processes.
  void shutdown();

 private:
  Extents3 extents_{};
  int p_ = 0;
  Options options_{};
  ProcessGroup<FFTWorker> group_;
  remote_ptr<GroupDirectory> directory_;
};

}  // namespace oopp::fft

template <>
struct oopp::rpc::class_def<oopp::fft::FFTWorker> {
  using W = oopp::fft::FFTWorker;
  static std::string name() { return "oopp.fft.Worker"; }
  using ctors = ctor_list<ctor<int>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&W::set_group>("set_group");
    b.template method<&W::set_group_directory>("set_group_directory");
    b.template method<&W::set_extents>("set_extents");
    b.template method<&W::load_slab>("load_slab");
    b.template method<&W::load_slab_from>("load_slab_from");
    b.template method<&W::store_slab_to>("store_slab_to");
    b.template method<&W::get_slab>("get_slab");
    b.template method<&W::transform>("transform");
    b.template method<&W::deposit_block>("deposit_block", reentrant);
    b.template method<&W::scale_slab>("scale_slab");
    b.template method<&W::id>("id");
    b.template method<&W::group_size>("group_size");
    b.template method<&W::rows_lo>("rows_lo");
    b.template method<&W::rows_hi>("rows_hi");
  }
};

template <>
struct oopp::rpc::class_def<oopp::fft::GroupDirectory> {
  using D = oopp::fft::GroupDirectory;
  static std::string name() { return "oopp.fft.GroupDirectory"; }
  using ctors = ctor_list<ctor<oopp::ProcessGroup<oopp::fft::FFTWorker>>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&D::get>("get");
    b.template method<&D::size>("size");
  }
};
