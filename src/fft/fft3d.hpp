// Node-local 3-D FFT: transform along each axis of a row-major
// N1 x N2 x N3 complex array.  This is both the per-slab kernel of the
// distributed transform and the single-machine baseline it is validated
// and benchmarked against.
#pragma once

#include <vector>

#include "fft/fft.hpp"
#include "util/ndindex.hpp"

namespace oopp::fft {

/// In-place 3-D FFT over a row-major array with the given extents.
/// sign = -1 forward, +1 inverse; unnormalized (divide by volume() after a
/// round trip).
void fft3d_inplace(std::vector<cplx>& data, const Extents3& e, int sign);

/// FFT along one axis only (0, 1 or 2) of a row-major 3-D array.
void fft3d_axis(std::vector<cplx>& data, const Extents3& e, int axis,
                int sign);

/// Naive 3-D DFT oracle for small extents.
[[nodiscard]] std::vector<cplx> dft3d_reference(const std::vector<cplx>& data,
                                                const Extents3& e, int sign);

}  // namespace oopp::fft
