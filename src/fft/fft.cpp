#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "fft/plan.hpp"
#include "util/assert.hpp"

namespace oopp::fft {

namespace {

void bit_reverse_permute(std::span<cplx> a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

/// Bluestein's algorithm: an arbitrary-length DFT as a convolution, which
/// is evaluated with power-of-two FFTs.
void bluestein(std::span<cplx> data, int sign) {
  const index_t n = static_cast<index_t>(data.size());
  index_t m = 1;
  while (m < 2 * n - 1) m <<= 1;

  // Chirp: w_k = exp(sign * i * pi * k^2 / n).  k^2 mod 2n avoids the
  // precision loss of huge k^2 arguments.
  std::vector<cplx> w(n);
  for (index_t k = 0; k < n; ++k) {
    const index_t k2 = static_cast<index_t>(
        (static_cast<unsigned long long>(k) * k) % (2ull * n));
    const double angle =
        sign * std::numbers::pi * static_cast<double>(k2) / double(n);
    w[k] = cplx(std::cos(angle), std::sin(angle));
  }

  std::vector<cplx> a(m, cplx{});
  std::vector<cplx> b(m, cplx{});
  for (index_t k = 0; k < n; ++k) a[k] = data[k] * w[k];
  b[0] = std::conj(w[0]);
  for (index_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(w[k]);

  fft_pow2_inplace(a, -1);
  fft_pow2_inplace(b, -1);
  for (index_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2_inplace(a, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (index_t k = 0; k < n; ++k) data[k] = a[k] * w[k] * inv_m;
}

}  // namespace

void fft_pow2_inplace(std::span<cplx> data, int sign) {
  OOPP_CHECK_MSG(sign == -1 || sign == 1, "sign must be -1 or +1");
  const std::size_t n = data.size();
  OOPP_CHECK_MSG(is_pow2(static_cast<index_t>(n)),
                 "fft_pow2_inplace needs a power-of-two length, got " << n);
  if (n == 1) return;

  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = data[i + j];
        const cplx v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fft_inplace(std::span<cplx> data, int sign) {
  OOPP_CHECK_MSG(sign == -1 || sign == 1, "sign must be -1 or +1");
  const auto n = static_cast<index_t>(data.size());
  OOPP_CHECK_MSG(n >= 1, "empty FFT");
  if (n == 1) return;
  // Served from the plan cache: repeated lengths (the common case in the
  // distributed workers and the out-of-core passes) pay the trigonometry
  // once.
  plan_for(n, sign)->execute(data);
}

void fft_inplace_unplanned(std::span<cplx> data, int sign) {
  OOPP_CHECK_MSG(sign == -1 || sign == 1, "sign must be -1 or +1");
  const auto n = static_cast<index_t>(data.size());
  OOPP_CHECK_MSG(n >= 1, "empty FFT");
  if (n == 1) return;
  if (is_pow2(n))
    fft_pow2_inplace(data, sign);
  else
    bluestein(data, sign);
}

void fft_strided(cplx* data, index_t n, index_t stride, int sign) {
  OOPP_CHECK(n >= 1 && stride >= 1);
  if (stride == 1) {
    fft_inplace(std::span<cplx>(data, static_cast<std::size_t>(n)), sign);
    return;
  }
  // Gather, transform, scatter.  A strided in-place butterfly would avoid
  // the copies but loses cache locality; gather/scatter wins in practice.
  std::vector<cplx> tmp(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) tmp[i] = data[i * stride];
  fft_inplace(tmp, sign);
  for (index_t i = 0; i < n; ++i) data[i * stride] = tmp[i];
}

std::vector<cplx> dft_reference(std::span<const cplx> data, int sign) {
  OOPP_CHECK(sign == -1 || sign == 1);
  const auto n = static_cast<index_t>(data.size());
  std::vector<cplx> out(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    cplx acc{};
    for (index_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k) * static_cast<double>(j) /
                           static_cast<double>(n);
      acc += data[j] * cplx(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

void scale(std::span<cplx> data, double s) {
  for (auto& x : data) x *= s;
}

}  // namespace oopp::fft
