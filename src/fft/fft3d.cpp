#include "fft/fft3d.hpp"

#include "util/assert.hpp"

namespace oopp::fft {

void fft3d_axis(std::vector<cplx>& data, const Extents3& e, int axis,
                int sign) {
  OOPP_CHECK(static_cast<index_t>(data.size()) == e.volume());
  switch (axis) {
    case 2:
      // Contiguous rows.
      for (index_t i1 = 0; i1 < e.n1; ++i1)
        for (index_t i2 = 0; i2 < e.n2; ++i2)
          fft_inplace(std::span<cplx>(data.data() + e.linear(i1, i2, 0),
                                      static_cast<std::size_t>(e.n3)),
                      sign);
      return;
    case 1:
      // Stride n3 columns within each i1-plane.
      for (index_t i1 = 0; i1 < e.n1; ++i1)
        for (index_t i3 = 0; i3 < e.n3; ++i3)
          fft_strided(data.data() + e.linear(i1, 0, i3), e.n2, e.n3, sign);
      return;
    case 0:
      // Stride n2*n3 pencils.
      for (index_t i2 = 0; i2 < e.n2; ++i2)
        for (index_t i3 = 0; i3 < e.n3; ++i3)
          fft_strided(data.data() + e.linear(0, i2, i3), e.n1, e.n2 * e.n3,
                      sign);
      return;
    default:
      OOPP_CHECK_MSG(false, "axis " << axis << " out of range");
  }
}

void fft3d_inplace(std::vector<cplx>& data, const Extents3& e, int sign) {
  fft3d_axis(data, e, 2, sign);
  fft3d_axis(data, e, 1, sign);
  fft3d_axis(data, e, 0, sign);
}

std::vector<cplx> dft3d_reference(const std::vector<cplx>& data,
                                  const Extents3& e, int sign) {
  OOPP_CHECK(static_cast<index_t>(data.size()) == e.volume());
  // Apply the 1-D oracle along each axis in turn (the separability the
  // fast transform relies on is itself exercised by comparing to this).
  std::vector<cplx> out = data;
  // axis 2
  for (index_t i1 = 0; i1 < e.n1; ++i1)
    for (index_t i2 = 0; i2 < e.n2; ++i2) {
      std::vector<cplx> row(static_cast<std::size_t>(e.n3));
      for (index_t i3 = 0; i3 < e.n3; ++i3) row[i3] = out[e.linear(i1, i2, i3)];
      auto t = dft_reference(row, sign);
      for (index_t i3 = 0; i3 < e.n3; ++i3) out[e.linear(i1, i2, i3)] = t[i3];
    }
  // axis 1
  for (index_t i1 = 0; i1 < e.n1; ++i1)
    for (index_t i3 = 0; i3 < e.n3; ++i3) {
      std::vector<cplx> col(static_cast<std::size_t>(e.n2));
      for (index_t i2 = 0; i2 < e.n2; ++i2) col[i2] = out[e.linear(i1, i2, i3)];
      auto t = dft_reference(col, sign);
      for (index_t i2 = 0; i2 < e.n2; ++i2) out[e.linear(i1, i2, i3)] = t[i2];
    }
  // axis 0
  for (index_t i2 = 0; i2 < e.n2; ++i2)
    for (index_t i3 = 0; i3 < e.n3; ++i3) {
      std::vector<cplx> pen(static_cast<std::size_t>(e.n1));
      for (index_t i1 = 0; i1 < e.n1; ++i1) pen[i1] = out[e.linear(i1, i2, i3)];
      auto t = dft_reference(pen, sign);
      for (index_t i1 = 0; i1 < e.n1; ++i1) out[e.linear(i1, i2, i3)] = t[i1];
    }
  return out;
}

}  // namespace oopp::fft
