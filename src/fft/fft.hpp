// Serial complex FFT substrate.
//
// The paper's motivating workload (§1, §4) is a Fourier transform on a
// very large 3-D array.  This module provides the node-local building
// blocks: an iterative radix-2 Cooley–Tukey transform for power-of-two
// lengths, Bluestein's chirp-z algorithm for arbitrary lengths, strided
// transforms for the non-contiguous axes of multidimensional arrays, and
// a naive O(n^2) DFT as the correctness reference for tests.
//
// Convention: sign = -1 is the forward transform, sign = +1 the inverse;
// neither is normalized.  forward followed by inverse scales by n — use
// scale() or divide by the element count to get the identity back.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "util/ndindex.hpp"

namespace oopp::fft {

using cplx = std::complex<double>;

[[nodiscard]] constexpr bool is_pow2(index_t n) {
  return n > 0 && (n & (n - 1)) == 0;
}

/// In-place FFT of any length n >= 1 (radix-2 when possible, Bluestein
/// otherwise).  sign must be -1 or +1.  Uses the process-wide plan cache
/// (see fft/plan.hpp) so repeated lengths amortize their setup.
void fft_inplace(std::span<cplx> data, int sign);

/// The same transform computed without the plan cache — the reference
/// the planned path is validated (and benchmarked) against.
void fft_inplace_unplanned(std::span<cplx> data, int sign);

/// In-place radix-2 FFT; data.size() must be a power of two.
void fft_pow2_inplace(std::span<cplx> data, int sign);

/// FFT along a strided axis: transforms the n elements
/// data[0], data[stride], ..., data[(n-1)*stride] in place.
void fft_strided(cplx* data, index_t n, index_t stride, int sign);

/// Naive O(n^2) DFT — the test oracle.
[[nodiscard]] std::vector<cplx> dft_reference(std::span<const cplx> data,
                                              int sign);

/// Multiply every element by s (normalization helper).
void scale(std::span<cplx> data, double s);

}  // namespace oopp::fft
