// Out-of-core 3-D FFT over a disk-backed distributed Array.
//
// This is the paper's §1 motivating problem: "computing a Fourier
// transform on a very large (Petascale) three-dimensional array", stored
// across many page devices, where the whole array never fits in any one
// machine's memory.  The transform runs in two bounded-memory passes over
// the Array (the complex field travels as separate real and imaginary
// Arrays of identical shape):
//
//   pass 1 — slabs along axis 0: read rows [i1, i1+c1), transform axes
//             1 and 2 in memory, write back;
//   pass 2 — slabs along axis 1: read columns [i2, i2+c2), transform
//             axis 0 in memory, write back.
//
// Slab widths are derived from a caller-supplied memory budget; every
// element is read and written exactly twice regardless of the budget —
// the budget only changes how many round trips that takes.  The PageMap
// of the underlying Array decides how far each slab read fans out over
// the devices (experiment E12).
#pragma once

#include <cstddef>

#include "array/array.hpp"
#include "fft/fft.hpp"

namespace oopp::fft {

struct OutOfCoreOptions {
  /// Client-side buffer budget in bytes (both passes stay within it).
  /// The minimum slab (one row / one column) is used if the budget is
  /// smaller than that.
  std::size_t max_bytes = std::size_t{64} << 20;

  /// Overlap communication with computation: while slab k is transformed,
  /// slab k+1 is already being fetched (async prefetch) and slab k-1 is
  /// still being written back (write-behind).  Three slabs are live at
  /// once, so each is sized from a third of max_bytes — the budget holds
  /// either way.  Disable for the paper's strict read→compute→write
  /// sequence (the serial baseline of experiment E12).
  bool pipeline = true;
};

/// Per-pass accounting.  Element counts are complex elements crossing the
/// client (re+im pair = one element), split by direction; stall times are
/// where the pipeline actually blocked — reads that out-ran the prefetch
/// and write-behinds that were still draining.
struct PassStats {
  index_t slabs = 0;
  std::uint64_t elements_read = 0;
  std::uint64_t elements_written = 0;
  std::uint64_t stall_read_ns = 0;   // blocked waiting for slab fetches
  std::uint64_t stall_write_ns = 0;  // blocked draining write-behind

  [[nodiscard]] std::uint64_t bytes_read() const {
    return elements_read * sizeof(cplx);
  }
  [[nodiscard]] std::uint64_t bytes_written() const {
    return elements_written * sizeof(cplx);
  }
};

struct OutOfCoreStats {
  PassStats pass1;
  PassStats pass2;

  [[nodiscard]] std::uint64_t elements_moved() const {
    return pass1.elements_read + pass1.elements_written +
           pass2.elements_read + pass2.elements_written;
  }
  [[nodiscard]] std::uint64_t stall_ns() const {
    return pass1.stall_read_ns + pass1.stall_write_ns + pass2.stall_read_ns +
           pass2.stall_write_ns;
  }
};

/// Transform the complex field (re, im) in place on its storage.
/// sign = -1 forward / +1 inverse, unnormalized (use scale via
/// Array::scale for 1/N normalization).  Returns pass statistics.
OutOfCoreStats fft3d_out_of_core(array::Array& re, array::Array& im,
                                 int sign, OutOfCoreOptions options = {});

}  // namespace oopp::fft
