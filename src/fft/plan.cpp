#include "fft/plan.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

#include "util/assert.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::fft {

Plan1D::Plan1D(index_t n, int sign) : n_(n), sign_(sign), pow2_(is_pow2(n)) {
  OOPP_CHECK_MSG(n >= 1, "empty plan");
  OOPP_CHECK_MSG(sign == -1 || sign == 1, "sign must be -1 or +1");
  if (n == 1) return;

  if (pow2_) {
    // Bit-reversal permutation.
    bitrev_.resize(static_cast<std::size_t>(n));
    std::uint32_t j = 0;
    bitrev_[0] = 0;
    for (index_t i = 1; i < n; ++i) {
      std::uint32_t bit = static_cast<std::uint32_t>(n) >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[static_cast<std::size_t>(i)] = j;
    }
    // Per-stage twiddles: for each len = 2,4,...,n store w^0..w^(len/2-1).
    for (index_t len = 2; len <= n; len <<= 1) {
      const double angle =
          sign * 2.0 * std::numbers::pi / static_cast<double>(len);
      for (index_t k = 0; k < len / 2; ++k) {
        const double a = angle * static_cast<double>(k);
        twiddles_.emplace_back(std::cos(a), std::sin(a));
      }
    }
    return;
  }

  // Bluestein: pad length, chirp, and the FFT of the convolution kernel.
  m_ = 1;
  while (m_ < 2 * n - 1) m_ <<= 1;
  chirp_.resize(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    const index_t k2 = static_cast<index_t>(
        (static_cast<unsigned long long>(k) * k) % (2ull * n));
    const double a =
        sign * std::numbers::pi * static_cast<double>(k2) / double(n);
    chirp_[static_cast<std::size_t>(k)] = cplx(std::cos(a), std::sin(a));
  }
  pad_forward_ = plan_for(m_, -1);
  pad_inverse_ = plan_for(m_, +1);

  std::vector<cplx> b(static_cast<std::size_t>(m_), cplx{});
  b[0] = std::conj(chirp_[0]);
  for (index_t k = 1; k < n; ++k)
    b[static_cast<std::size_t>(k)] = b[static_cast<std::size_t>(m_ - k)] =
        std::conj(chirp_[static_cast<std::size_t>(k)]);
  pad_forward_->execute(b);
  kernel_fft_ = std::move(b);
}

void Plan1D::execute(std::span<cplx> data) const {
  OOPP_CHECK_MSG(static_cast<index_t>(data.size()) == n_,
                 "plan length mismatch");
  if (n_ == 1) return;
  if (pow2_)
    execute_pow2(data);
  else
    execute_bluestein(data);
}

void Plan1D::execute_pow2(std::span<cplx> data) const {
  const auto n = static_cast<std::size_t>(n_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  const cplx* stage = twiddles_.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + half] * stage[k];
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
    stage += half;
  }
}

void Plan1D::execute_bluestein(std::span<cplx> data) const {
  std::vector<cplx> a(static_cast<std::size_t>(m_), cplx{});
  for (index_t k = 0; k < n_; ++k)
    a[static_cast<std::size_t>(k)] =
        data[static_cast<std::size_t>(k)] * chirp_[static_cast<std::size_t>(k)];
  pad_forward_->execute(a);
  for (index_t k = 0; k < m_; ++k)
    a[static_cast<std::size_t>(k)] *= kernel_fft_[static_cast<std::size_t>(k)];
  pad_inverse_->execute(a);
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (index_t k = 0; k < n_; ++k)
    data[static_cast<std::size_t>(k)] =
        a[static_cast<std::size_t>(k)] * chirp_[static_cast<std::size_t>(k)] *
        inv_m;
}

namespace {
util::CheckedMutex g_plans_mu{"fft.plan_cache"};
std::map<std::pair<index_t, int>, std::shared_ptr<const Plan1D>> g_plans;
}  // namespace

std::shared_ptr<const Plan1D> plan_for(index_t n, int sign) {
  {
    std::lock_guard lock(g_plans_mu);
    auto it = g_plans.find({n, sign});
    if (it != g_plans.end()) return it->second;
  }
  // Build outside the lock (Bluestein plans recurse into plan_for).
  auto fresh = std::make_shared<const Plan1D>(n, sign);
  std::lock_guard lock(g_plans_mu);
  auto [it, inserted] = g_plans.emplace(std::pair{n, sign}, std::move(fresh));
  return it->second;  // the winner of a race, either way
}

std::size_t plan_cache_size() {
  std::lock_guard lock(g_plans_mu);
  return g_plans.size();
}

}  // namespace oopp::fft
