#include "fft/out_of_core.hpp"

#include <algorithm>

#include "fft/fft3d.hpp"
#include "util/assert.hpp"

namespace oopp::fft {

namespace {

/// Rows per slab so that rows * row_elems complex doubles fit the budget.
index_t slab_rows(std::size_t max_bytes, index_t row_elems, index_t total) {
  const std::size_t per_row =
      static_cast<std::size_t>(row_elems) * sizeof(cplx);
  index_t rows = per_row == 0
                     ? total
                     : static_cast<index_t>(max_bytes / per_row);
  return std::clamp<index_t>(rows, 1, total);
}

std::vector<cplx> fuse(const std::vector<double>& re,
                       const std::vector<double>& im) {
  OOPP_CHECK(re.size() == im.size());
  std::vector<cplx> out(re.size());
  for (std::size_t i = 0; i < re.size(); ++i) out[i] = cplx(re[i], im[i]);
  return out;
}

void split(const std::vector<cplx>& buf, std::vector<double>& re,
           std::vector<double>& im) {
  re.resize(buf.size());
  im.resize(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    re[i] = buf[i].real();
    im[i] = buf[i].imag();
  }
}

}  // namespace

OutOfCoreStats fft3d_out_of_core(array::Array& re, array::Array& im,
                                 int sign, OutOfCoreOptions options) {
  OOPP_CHECK_MSG(re.extents() == im.extents(),
                 "real and imaginary arrays must have identical extents");
  const Extents3 n = re.extents();
  OutOfCoreStats stats;
  std::vector<double> re_buf, im_buf;

  // -- pass 1: axis-0 slabs, transform axes 1 and 2 -------------------------
  const index_t c1 = slab_rows(options.max_bytes, n.n2 * n.n3, n.n1);
  for (index_t i1 = 0; i1 < n.n1; i1 += c1) {
    const index_t hi = std::min(i1 + c1, n.n1);
    const array::Domain slab(i1, hi, 0, n.n2, 0, n.n3);
    auto buf = fuse(re.read(slab), im.read(slab));
    const Extents3 local{hi - i1, n.n2, n.n3};
    fft3d_axis(buf, local, 2, sign);
    fft3d_axis(buf, local, 1, sign);
    split(buf, re_buf, im_buf);
    re.write(re_buf, slab);
    im.write(im_buf, slab);
    ++stats.pass1_slabs;
    stats.elements_moved += 2 * buf.size();
  }

  // -- pass 2: axis-1 slabs, transform axis 0 --------------------------------
  const index_t c2 = slab_rows(options.max_bytes, n.n1 * n.n3, n.n2);
  for (index_t i2 = 0; i2 < n.n2; i2 += c2) {
    const index_t hi = std::min(i2 + c2, n.n2);
    const array::Domain slab(0, n.n1, i2, hi, 0, n.n3);
    auto buf = fuse(re.read(slab), im.read(slab));
    const Extents3 local{n.n1, hi - i2, n.n3};
    fft3d_axis(buf, local, 0, sign);
    split(buf, re_buf, im_buf);
    re.write(re_buf, slab);
    im.write(im_buf, slab);
    ++stats.pass2_slabs;
    stats.elements_moved += 2 * buf.size();
  }

  return stats;
}

}  // namespace oopp::fft
