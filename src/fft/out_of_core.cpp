#include "fft/out_of_core.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "fft/fft3d.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace oopp::fft {

namespace {

/// Rows per slab so that rows * row_elems complex doubles fit the budget.
index_t slab_rows(std::size_t max_bytes, index_t row_elems, index_t total) {
  const std::size_t per_row =
      static_cast<std::size_t>(row_elems) * sizeof(cplx);
  index_t rows = per_row == 0
                     ? total
                     : static_cast<index_t>(max_bytes / per_row);
  return std::clamp<index_t>(rows, 1, total);
}

std::vector<cplx> fuse(const std::vector<double>& re,
                       const std::vector<double>& im) {
  OOPP_CHECK(re.size() == im.size());
  std::vector<cplx> out(re.size());
  for (std::size_t i = 0; i < re.size(); ++i) out[i] = cplx(re[i], im[i]);
  return out;
}

void split(const std::vector<cplx>& buf, std::vector<double>& re,
           std::vector<double>& im) {
  re.resize(buf.size());
  im.resize(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    re[i] = buf[i].real();
    im[i] = buf[i].imag();
  }
}

struct Slab {
  array::Domain dom;
  Extents3 local;
};

/// Build the slab decomposition of one pass: `rows` rows along `axis`
/// per slab, full extent on the other two axes.
std::vector<Slab> make_slabs(const Extents3& n, int axis, index_t rows) {
  const index_t total = axis == 0 ? n.n1 : n.n2;
  std::vector<Slab> slabs;
  for (index_t lo = 0; lo < total; lo += rows) {
    const index_t hi = std::min(lo + rows, total);
    if (axis == 0)
      slabs.push_back({array::Domain(lo, hi, 0, n.n2, 0, n.n3),
                       Extents3{hi - lo, n.n2, n.n3}});
    else
      slabs.push_back({array::Domain(0, n.n1, lo, hi, 0, n.n3),
                       Extents3{n.n1, hi - lo, n.n3}});
  }
  return slabs;
}

/// One pass, strict paper order: read slab, transform, write back, next.
template <class Transform>
void run_pass_serial(array::Array& re, array::Array& im,
                     const std::vector<Slab>& slabs, Transform&& transform,
                     PassStats& stats) {
  std::vector<double> re_buf, im_buf;
  for (const Slab& s : slabs) {
    auto buf = fuse(re.read(s.dom), im.read(s.dom));
    transform(buf, s.local);
    split(buf, re_buf, im_buf);
    re.write(re_buf, s.dom);
    im.write(im_buf, s.dom);
    ++stats.slabs;
    stats.elements_read += buf.size();
    stats.elements_written += buf.size();
  }
}

/// One pass, double-buffered: prefetch slab k+1 while transforming slab k
/// while slab k-1 drains back to the devices.  At most one read and one
/// write slab are in flight beside the compute slab, so three slabs are
/// live at once (the caller sizes them from a third of the budget).
template <class Transform>
void run_pass_pipelined(array::Array& re, array::Array& im,
                        const std::vector<Slab>& slabs, Transform&& transform,
                        PassStats& stats) {
  using ReadPair = std::pair<array::SliceReadFuture, array::SliceReadFuture>;
  using WritePair =
      std::pair<array::SliceWriteFuture, array::SliceWriteFuture>;

  auto& scope = telemetry::Metrics::scope_for("fft.pipeline");
  static auto& stall_read_h = scope.histogram("stall_read_ns");
  static auto& stall_write_h = scope.histogram("stall_write_ns");
  static auto& slabs_ctr = scope.counter("slabs");

  std::optional<ReadPair> cur_read;
  std::optional<WritePair> prev_write;
  if (!slabs.empty())
    cur_read.emplace(re.async_read_slice(slabs[0].dom),
                     im.async_read_slice(slabs[0].dom));

  for (std::size_t k = 0; k < slabs.size(); ++k) {
    const Slab& s = slabs[k];
    // Prefetch slab k+1 before touching slab k's bytes.
    std::optional<ReadPair> next_read;
    if (k + 1 < slabs.size())
      next_read.emplace(re.async_read_slice(slabs[k + 1].dom),
                        im.async_read_slice(slabs[k + 1].dom));

    // Receive half of slab k: time blocked here is the read stall — zero
    // when the prefetch fully hid the fetch behind slab k-1's compute.
    std::int64_t t0 = now_ns();
    std::vector<double> re_in = cur_read->first.get();
    std::vector<double> im_in = cur_read->second.get();
    const std::uint64_t rstall = static_cast<std::uint64_t>(now_ns() - t0);
    stats.stall_read_ns += rstall;
    stall_read_h.record(rstall);

    auto buf = fuse(re_in, im_in);
    transform(buf, s.local);
    std::vector<double> re_out, im_out;
    split(buf, re_out, im_out);

    // Bound the write-behind: slab k-1 must be on disk before slab k's
    // write is issued (also keeps RMW boundary pages race-free — at most
    // one write slab in flight).
    t0 = now_ns();
    if (prev_write) {
      prev_write->first.get();
      prev_write->second.get();
    }
    const std::uint64_t wstall = static_cast<std::uint64_t>(now_ns() - t0);
    stats.stall_write_ns += wstall;
    stall_write_h.record(wstall);

    prev_write.emplace(re.async_write_slice(std::move(re_out), s.dom),
                       im.async_write_slice(std::move(im_out), s.dom));
    cur_read = std::move(next_read);

    ++stats.slabs;
    slabs_ctr.add(1);
    stats.elements_read += buf.size();
    stats.elements_written += buf.size();
  }

  if (prev_write) {
    const std::int64_t t0 = now_ns();
    prev_write->first.get();
    prev_write->second.get();
    const std::uint64_t wstall = static_cast<std::uint64_t>(now_ns() - t0);
    stats.stall_write_ns += wstall;
    stall_write_h.record(wstall);
  }
}

}  // namespace

OutOfCoreStats fft3d_out_of_core(array::Array& re, array::Array& im,
                                 int sign, OutOfCoreOptions options) {
  OOPP_CHECK_MSG(re.extents() == im.extents(),
                 "real and imaginary arrays must have identical extents");
  telemetry::LocalSpan span("fft.out_of_core");
  const Extents3 n = re.extents();
  OutOfCoreStats stats;

  // Three slabs live at once in the pipeline (prefetch / compute /
  // write-behind), so each gets a third of the budget.
  const std::size_t budget =
      options.pipeline ? options.max_bytes / 3 : options.max_bytes;

  // -- pass 1: axis-0 slabs, transform axes 1 and 2 -------------------------
  const auto pass1 =
      make_slabs(n, 0, slab_rows(budget, n.n2 * n.n3, n.n1));
  auto transform1 = [sign](std::vector<cplx>& buf, const Extents3& local) {
    fft3d_axis(buf, local, 2, sign);
    fft3d_axis(buf, local, 1, sign);
  };
  if (options.pipeline)
    run_pass_pipelined(re, im, pass1, transform1, stats.pass1);
  else
    run_pass_serial(re, im, pass1, transform1, stats.pass1);

  // -- pass 2: axis-1 slabs, transform axis 0 --------------------------------
  const auto pass2 =
      make_slabs(n, 1, slab_rows(budget, n.n1 * n.n3, n.n2));
  auto transform2 = [sign](std::vector<cplx>& buf, const Extents3& local) {
    fft3d_axis(buf, local, 0, sign);
  };
  if (options.pipeline)
    run_pass_pipelined(re, im, pass2, transform2, stats.pass2);
  else
    run_pass_serial(re, im, pass2, transform2, stats.pass2);

  return stats;
}

}  // namespace oopp::fft
