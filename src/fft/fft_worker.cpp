#include "fft/fft_worker.hpp"

#include "core/future.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"

namespace oopp::fft {

RowSplit split_rows(index_t n, int p, int w) {
  OOPP_CHECK(p > 0 && w >= 0 && w < p);
  return {n * w / p, n * (w + 1) / p};
}

// ---------------------------------------------------------------------------
// FFTWorker
// ---------------------------------------------------------------------------

void FFTWorker::set_group(int n, const ProcessGroup<FFTWorker>& group) {
  OOPP_CHECK_MSG(static_cast<int>(group.size()) == n,
                 "group size mismatch: " << group.size() << " vs " << n);
  n_ = n;
  group_ = group;  // the §4 deep copy: a local array of remote pointers
  use_directory_ = false;
}

void FFTWorker::set_group_directory(int n, remote_ptr<GroupDirectory> dir) {
  OOPP_CHECK(dir.valid());
  n_ = n;
  directory_ = dir;
  use_directory_ = true;
}

void FFTWorker::set_extents(index_t N1, index_t N2, index_t N3) {
  OOPP_CHECK(N1 >= 1 && N2 >= 1 && N3 >= 1);
  global_ = {N1, N2, N3};
  loaded_ = false;
  transposed_ = false;
}

std::int64_t FFTWorker::rows_lo() const {
  OOPP_CHECK_MSG(n_ > 0, "group not set");
  return split_rows(global_.n1, n_, id_).lo;
}

std::int64_t FFTWorker::rows_hi() const {
  OOPP_CHECK_MSG(n_ > 0, "group not set");
  return split_rows(global_.n1, n_, id_).hi;
}

void FFTWorker::load_slab(const std::vector<cplx>& slab) {
  OOPP_CHECK_MSG(global_.volume() > 0, "set_extents before load_slab");
  const auto rows = split_rows(global_.n1, n_, id_);
  const auto expected = rows.count() * global_.n2 * global_.n3;
  OOPP_CHECK_MSG(static_cast<index_t>(slab.size()) == expected,
                 "slab has " << slab.size() << " elements, expected "
                             << expected);
  slab_ = slab;
  loaded_ = true;
  transposed_ = false;
}

std::vector<cplx> FFTWorker::get_slab() const {
  OOPP_CHECK_MSG(loaded_, "no slab loaded");
  return slab_;
}

void FFTWorker::load_slab_from(array::Array re, array::Array im) {
  OOPP_CHECK_MSG(global_.volume() > 0, "set_extents before load_slab_from");
  OOPP_CHECK_MSG(re.extents() == global_ && im.extents() == global_,
                 "array extents do not match the transform extents");
  const auto rows = split_rows(global_.n1, n_, id_);
  slab_.assign(
      static_cast<std::size_t>(rows.count() * global_.n2 * global_.n3),
      cplx{});
  if (rows.count() > 0) {
    const array::Domain mine(rows.lo, rows.hi, 0, global_.n2, 0, global_.n3);
    // The worker acts as an Array client: both reads fan out over the
    // storage devices in parallel (IoMode of the arrays).
    const auto re_buf = re.read(mine);
    const auto im_buf = im.read(mine);
    for (std::size_t i = 0; i < slab_.size(); ++i)
      slab_[i] = cplx(re_buf[i], im_buf[i]);
  }
  loaded_ = true;
  transposed_ = false;
}

void FFTWorker::store_slab_to(array::Array re, array::Array im) {
  OOPP_CHECK_MSG(loaded_, "no slab loaded");
  OOPP_CHECK_MSG(!transposed_,
                 "slab is axis-transposed; restore layout before storing");
  OOPP_CHECK_MSG(re.extents() == global_ && im.extents() == global_,
                 "array extents do not match the transform extents");
  const auto rows = split_rows(global_.n1, n_, id_);
  if (rows.count() == 0) return;
  const array::Domain mine(rows.lo, rows.hi, 0, global_.n2, 0, global_.n3);
  std::vector<double> re_buf(slab_.size());
  std::vector<double> im_buf(slab_.size());
  for (std::size_t i = 0; i < slab_.size(); ++i) {
    re_buf[i] = slab_[i].real();
    im_buf[i] = slab_[i].imag();
  }
  re.write(re_buf, mine);
  im.write(im_buf, mine);
}

void FFTWorker::scale_slab(double s) {
  scale(slab_, s);
}

remote_ptr<FFTWorker> FFTWorker::peer(int v) const {
  if (!use_directory_) return group_[v];
  // Shallow wiring: chase the remote directory — one extra round trip per
  // access, the §4 anti-pattern the deep copy avoids.
  return directory_.call<&GroupDirectory::get>(v);
}

void FFTWorker::deposit_block(int from, std::uint64_t epoch,
                              const std::vector<cplx>& block) {
  {
    std::lock_guard lock(staging_mu_);
    staging_[{epoch, from}] = block;
  }
  staging_cv_.notify_all();
}

void FFTWorker::exchange(bool to_transposed) {
  const std::uint64_t epoch = ++epoch_;
  const index_t N1 = global_.n1, N2 = global_.n2, N3 = global_.n3;
  const RowSplit me1 = split_rows(N1, n_, id_);
  const RowSplit me2 = split_rows(N2, n_, id_);

  // -- pack & send one block per peer (split loop: all sends in flight) ----
  std::vector<Future<void>> sends;
  sends.reserve(static_cast<std::size_t>(n_));
  for (int v = 0; v < n_; ++v) {
    const RowSplit v1 = split_rows(N1, n_, v);
    const RowSplit v2 = split_rows(N2, n_, v);
    std::vector<cplx> block;

    if (to_transposed) {
      // Natural slab (me1.count, N2, N3) → block (me1.count, v2.count, N3).
      const Extents3 local{me1.count(), N2, N3};
      block.resize(static_cast<std::size_t>(me1.count() * v2.count() * N3));
      std::size_t o = 0;
      for (index_t i1 = 0; i1 < me1.count(); ++i1)
        for (index_t i2 = v2.lo; i2 < v2.hi; ++i2) {
          const cplx* src = slab_.data() + local.linear(i1, i2, 0);
          std::copy(src, src + N3, block.begin() + o);
          o += static_cast<std::size_t>(N3);
        }
    } else {
      // Transposed slab (me2.count, N1, N3) → block (me2.count, v1.count, N3).
      const Extents3 local{me2.count(), N1, N3};
      block.resize(static_cast<std::size_t>(me2.count() * v1.count() * N3));
      std::size_t o = 0;
      for (index_t i2 = 0; i2 < me2.count(); ++i2)
        for (index_t i1 = v1.lo; i1 < v1.hi; ++i1) {
          const cplx* src = slab_.data() + local.linear(i2, i1, 0);
          std::copy(src, src + N3, block.begin() + o);
          o += static_cast<std::size_t>(N3);
        }
    }

    if (v == id_) {
      deposit_block(id_, epoch, block);  // own contribution, no network
    } else {
      sends.push_back(
          peer(v).async<&FFTWorker::deposit_block>(id_, epoch, block));
    }
  }
  for (auto& f : sends) f.get();

  // -- wait for all peers' blocks ------------------------------------------
  std::vector<std::vector<cplx>> blocks(static_cast<std::size_t>(n_));
  {
    std::unique_lock lock(staging_mu_);
    staging_cv_.wait(lock, [&] {
      for (int u = 0; u < n_; ++u)
        if (!staging_.contains({epoch, u})) return false;
      return true;
    });
    for (int u = 0; u < n_; ++u) {
      auto it = staging_.find({epoch, u});
      blocks[u] = std::move(it->second);
      staging_.erase(it);
    }
  }

  // -- unpack into the new layout ------------------------------------------
  if (to_transposed) {
    // New slab (me2.count, N1, N3); block from u is (u1.count, me2.count, N3).
    const Extents3 next{me2.count(), N1, N3};
    std::vector<cplx> out(static_cast<std::size_t>(next.volume()));
    for (int u = 0; u < n_; ++u) {
      const RowSplit u1 = split_rows(N1, n_, u);
      const auto& block = blocks[u];
      std::size_t o = 0;
      for (index_t i1 = u1.lo; i1 < u1.hi; ++i1)
        for (index_t i2 = 0; i2 < me2.count(); ++i2) {
          std::copy(block.begin() + o, block.begin() + o + N3,
                    out.begin() + next.linear(i2, i1, 0));
          o += static_cast<std::size_t>(N3);
        }
    }
    slab_ = std::move(out);
    transposed_ = true;
  } else {
    // New slab (me1.count, N2, N3); block from u is (u2.count, me1.count, N3).
    const Extents3 next{me1.count(), N2, N3};
    std::vector<cplx> out(static_cast<std::size_t>(next.volume()));
    for (int u = 0; u < n_; ++u) {
      const RowSplit u2 = split_rows(N2, n_, u);
      const auto& block = blocks[u];
      std::size_t o = 0;
      for (index_t i2 = u2.lo; i2 < u2.hi; ++i2)
        for (index_t i1 = 0; i1 < me1.count(); ++i1) {
          std::copy(block.begin() + o, block.begin() + o + N3,
                    out.begin() + next.linear(i1, i2, 0));
          o += static_cast<std::size_t>(N3);
        }
    }
    slab_ = std::move(out);
    transposed_ = false;
  }
}

void FFTWorker::transform(int sign, bool restore_layout) {
  static auto& transforms =
      telemetry::Metrics::scope_for("fft").counter("transforms");
  transforms.add(1);
  OOPP_CHECK_MSG(loaded_, "no slab loaded");
  OOPP_CHECK_MSG(!transposed_,
                 "slab is axis-transposed; restore layout before another "
                 "transform");
  OOPP_CHECK_MSG(n_ > 0, "group not set");
  const index_t N1 = global_.n1, N2 = global_.n2, N3 = global_.n3;
  const RowSplit me1 = split_rows(N1, n_, id_);
  const RowSplit me2 = split_rows(N2, n_, id_);

  // Phase 1: node-local FFT along axes 2 and 3 of every owned plane.
  if (me1.count() > 0) {
    const Extents3 local{me1.count(), N2, N3};
    fft3d_axis(slab_, local, 2, sign);
    fft3d_axis(slab_, local, 1, sign);
  }

  // Phase 2: all-to-all transpose (axis 1 <-> axis 2).
  exchange(/*to_transposed=*/true);

  // Phase 3: FFT along global axis 1, now node-local as the middle axis of
  // the (me2.count, N1, N3) slab.
  if (me2.count() > 0) {
    const Extents3 local{me2.count(), N1, N3};
    fft3d_axis(slab_, local, 1, sign);
  }

  // Phase 4: restore natural layout.
  if (restore_layout) exchange(/*to_transposed=*/false);
}

// ---------------------------------------------------------------------------
// DistributedFFT3D
// ---------------------------------------------------------------------------

DistributedFFT3D::DistributedFFT3D(
    Extents3 extents, int workers,
    const std::function<net::MachineId(int)>& placement, Options options)
    : extents_(extents), p_(workers), options_(options) {
  OOPP_CHECK(workers >= 1);
  // The paper's master loop: create N processes, then tell each about the
  // group.
  for (int w = 0; w < p_; ++w)
    group_.push_back(make_remote<FFTWorker>(placement(w), w));

  if (options_.use_directory) {
    directory_ = make_remote<GroupDirectory>(placement(0), group_);
    group_.gather_indexed<&FFTWorker::set_group_directory>(
        [&](std::size_t) { return std::make_tuple(p_, directory_); });
  } else {
    group_.gather_indexed<&FFTWorker::set_group>(
        [&](std::size_t) { return std::make_tuple(p_, std::cref(group_)); });
  }
  group_.gather<&FFTWorker::set_extents>(extents_.n1, extents_.n2,
                                             extents_.n3);
}

DistributedFFT3D::~DistributedFFT3D() {
  try {
    shutdown();
  } catch (...) {
    // Cluster may already be gone; worker teardown is best-effort here.
  }
}

void DistributedFFT3D::shutdown() {
  if (!group_.empty()) group_.destroy_all();
  if (directory_.valid()) {
    directory_.destroy();
    directory_ = {};
  }
}

void DistributedFFT3D::scatter(const std::vector<cplx>& data) {
  OOPP_CHECK_MSG(static_cast<index_t>(data.size()) == extents_.volume(),
                 "data size does not match extents");
  const index_t plane = extents_.n2 * extents_.n3;
  std::vector<Future<void>> futs;
  futs.reserve(static_cast<std::size_t>(p_));
  for (int w = 0; w < p_; ++w) {
    const RowSplit rows = split_rows(extents_.n1, p_, w);
    std::vector<cplx> slab(data.begin() + rows.lo * plane,
                           data.begin() + rows.hi * plane);
    futs.push_back(group_[w].async<&FFTWorker::load_slab>(slab));
  }
  for (auto& f : futs) f.get();
}

void DistributedFFT3D::scatter_from(const array::Array& re,
                                    const array::Array& im) {
  OOPP_CHECK_MSG(re.extents() == extents_ && im.extents() == extents_,
                 "array extents do not match the transform extents");
  group_.gather<&FFTWorker::load_slab_from>(re, im);
}

void DistributedFFT3D::gather_to(const array::Array& re,
                                 const array::Array& im) {
  OOPP_CHECK_MSG(re.extents() == extents_ && im.extents() == extents_,
                 "array extents do not match the transform extents");
  // When every worker's slab starts on a page boundary, each page is
  // written by exactly one worker and the stores may run in parallel.
  // Otherwise two workers read-modify-write the same edge page and would
  // lose updates — serialize the stores (the PageMap/decomposition
  // interplay §5 warns about).
  bool page_aligned = true;
  for (int w = 1; w < p_; ++w) {
    if (split_rows(extents_.n1, p_, w).lo % re.page_extents().n1 != 0) {
      page_aligned = false;
      break;
    }
  }
  if (page_aligned) {
    group_.gather<&FFTWorker::store_slab_to>(re, im);
  } else {
    group_.call<&FFTWorker::store_slab_to>(re, im);
  }
}

void DistributedFFT3D::transform(int sign) {
  group_.gather<&FFTWorker::transform>(sign, options_.restore_layout);
}

void DistributedFFT3D::inverse(bool normalize) {
  transform(+1);
  if (normalize)
    group_.gather<&FFTWorker::scale_slab>(
        1.0 / static_cast<double>(extents_.volume()));
}

std::vector<cplx> DistributedFFT3D::gather() const {
  const index_t plane = extents_.n2 * extents_.n3;
  std::vector<cplx> out(static_cast<std::size_t>(extents_.volume()));
  auto futs = group_.async<&FFTWorker::get_slab>();
  for (int w = 0; w < p_; ++w) {
    const RowSplit rows = split_rows(extents_.n1, p_, w);
    auto slab = futs[w].get();
    OOPP_CHECK(static_cast<index_t>(slab.size()) == rows.count() * plane);
    std::copy(slab.begin(), slab.end(), out.begin() + rows.lo * plane);
  }
  return out;
}

}  // namespace oopp::fft
