// Bandwidth-optimal collectives and distributed BLAS kernels.
//
// collectives.hpp builds the MPI-style collectives as nested remote method
// executions: correct, but every algorithm moves the *whole* vector along
// every tree edge, so a B-byte allreduce costs ~2·log2(N)·B bytes on the
// critical path.  This module adds the bandwidth-optimal forms the HPC
// literature settled on, expressed in the same object style:
//
//   ring      — reduce-scatter + allgather around a ring: 2·(N-1) messages
//               per member but only ~2·B·(N-1)/N bytes through any NIC —
//               asymptotically optimal for large payloads.
//   halving   — recursive halving (reduce-scatter) + recursive doubling
//               (allgather): log2(N) rounds, ~2·B bytes per member; the
//               large-payload winner when N is a power of two.
//   two-pass  — the classic binomial reduce-then-broadcast, kept for tiny
//               payloads (latency-bound) but now *segmented*: the payload
//               is chunked so hop k+1's send overlaps hop k's receive.
//
// Selection between them is by payload size x member count under a
// net::CostModel (CostHints below); Algo::kAuto picks the argmin.
//
// Payloads travel as ref-counted serial::Bytes slices end-to-end: a member
// serializes a chunk once (Bytes::copy_raw at the source), every
// forwarding hop re-sends the *received* slice (a view into the inbound
// frame — no copy), and the OArchive splices it straight into the outgoing
// scatter-gather buffer.
//
// On top of the member protocol sits coll::Communicator: a Peer process
// colocated with each ArrayPageDevice of an Array's BlockStorage, running
// BLAS-1/2 kernels *on the machine that owns the pages* (paper §3: move
// the computation to the data) and combining partials through the tree
// reductions above instead of gathering data to the master.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "array/array.hpp"
#include "coll/collectives.hpp"
#include "core/group.hpp"
#include "core/remote_ptr.hpp"
#include "net/cost_model.hpp"
#include "rpc/binding.hpp"
#include "serial/bytes.hpp"
#include "storage/array_page_device.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::coll {

// ---------------------------------------------------------------------------
// Cost model hooks
// ---------------------------------------------------------------------------

/// The two numbers algorithm selection needs from a net::CostModel: the
/// per-message cost (alpha) and the per-byte cost (beta), both in
/// nanoseconds.  Computed once on the master and shipped to every member
/// in the wiring, so all members select the same algorithm.
struct CostHints {
  double alpha_ns = 0.0;
  double byte_ns = 0.0;

  static CostHints from(const net::CostModel& m) {
    CostHints h;
    h.alpha_ns = static_cast<double>(m.latency_ns + m.per_message_ns +
                                     m.egress_per_message_ns +
                                     m.ingress_per_message_ns);
    auto per_byte = [](double bytes_per_us) {
      return bytes_per_us > 0.0 ? 1e3 / bytes_per_us : 0.0;
    };
    // The slowest stage a byte passes through bounds throughput.
    h.byte_ns = per_byte(m.bytes_per_us);
    if (per_byte(m.egress_bytes_per_us) > h.byte_ns)
      h.byte_ns = per_byte(m.egress_bytes_per_us);
    if (per_byte(m.ingress_bytes_per_us) > h.byte_ns)
      h.byte_ns = per_byte(m.ingress_bytes_per_us);
    return h;
  }
};

template <class Ar>
void oopp_serialize(Ar& ar, CostHints& h) {
  ar(h.alpha_ns, h.byte_ns);
}

enum class Algo : std::uint8_t {
  kAuto = 0,
  kTwoPass = 1,  // segmented binomial reduce + broadcast
  kRing = 2,     // ring reduce-scatter + allgather
  kHalving = 3,  // recursive halving + doubling (power-of-two members)
};

[[nodiscard]] inline bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

[[nodiscard]] inline int ceil_log2(int n) {
  int l = 0;
  while ((1 << l) < n) ++l;
  return l;
}

/// Pick the allreduce algorithm for a `bytes`-byte payload over `n`
/// members.  Leading-order critical-path estimates (a = alpha, b = per
/// byte, B = bytes, L = ceil(log2 n)):
///
///   two-pass:  2·L·a + 2·L·B·b      every tree edge carries the vector
///   ring:      2·(n-1)·a + 2·B·b·(n-1)/n
///   halving:   2·L·a + 2·B·b·(1-1/n)   (power-of-two n only)
///
/// Small payloads are latency-bound: the log-round algorithms win, and on
/// a power of two halving edges out two-pass at every size (same rounds,
/// fewer bytes).  Large payloads are bandwidth-bound: ring/halving win
/// because each NIC moves ~2·B total instead of 2·L·B.
[[nodiscard]] inline Algo choose_allreduce(std::size_t bytes, int n,
                                           const CostHints& h) {
  if (n <= 2) return Algo::kTwoPass;  // ring == tree at n=2; fewest messages
  const double a = h.alpha_ns;
  const double b = h.byte_ns;
  const double B = static_cast<double>(bytes);
  const double L = static_cast<double>(ceil_log2(n));
  const double N = static_cast<double>(n);
  const double est_two = 2.0 * L * a + 2.0 * L * B * b;
  const double est_ring = 2.0 * (N - 1.0) * a + 2.0 * B * b * (N - 1.0) / N;
  Algo best = Algo::kTwoPass;
  double best_est = est_two;
  if (est_ring < best_est) {
    best = Algo::kRing;
    best_est = est_ring;
  }
  if (is_pow2(n)) {
    const double est_half = 2.0 * L * a + 2.0 * B * b * (1.0 - 1.0 / N);
    if (est_half < best_est) best = Algo::kHalving;
  }
  return best;
}

/// Segment count for the pipelined two-pass tree: enough segments that
/// per-hop transmission overlaps, but never so many that the per-message
/// alpha dominates.  Balance point: segment transmit time ~ 8x alpha.
[[nodiscard]] inline std::uint32_t choose_segments(std::size_t bytes,
                                                   const CostHints& h) {
  const double a = h.alpha_ns > 1.0 ? h.alpha_ns : 1.0;
  const double s = static_cast<double>(bytes) * h.byte_ns / (8.0 * a);
  if (s <= 1.0) return 1;
  if (s >= 16.0) return 16;
  return static_cast<std::uint32_t>(s);
}

// ---------------------------------------------------------------------------
// Binomial tree shape (root fixed at member 0)
// ---------------------------------------------------------------------------

/// Where member `rel` sits in the binomial tree over [0, n): its parent
/// (-1 for the root) and its children, largest subtree first.  Same
/// recursive-halving schedule as CollWorker: the owner of [lo, lo+span)
/// hands [lo+half, lo+span) to the member at lo+half.
struct TreeShape {
  std::int32_t parent = -1;
  std::vector<std::int32_t> children;
};

[[nodiscard]] inline TreeShape tree_shape(std::int64_t rel, std::int64_t n) {
  TreeShape t;
  std::int64_t lo = 0;
  std::int64_t span = n;
  while (span > 1) {
    const std::int64_t half = span / 2 + (span % 2);  // lower half keeps extra
    const std::int64_t child = lo + half;
    if (rel >= child) {  // rel lives in the upper subtree
      if (rel == child) t.parent = static_cast<std::int32_t>(lo);
      lo = child;
      span = span - half;
    } else {  // rel lives in the lower subtree
      if (rel == lo) t.children.push_back(static_cast<std::int32_t>(child));
      span = half;
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Slab: the pages of one Array that live on one device
// ---------------------------------------------------------------------------

/// The portion of an Array owned by one member's colocated device: which
/// page slots to read/write (one batched call), how many elements the
/// slab logically holds (the tail page is zero-padded past `elems`), and
/// the page block shape.
struct Slab {
  remote_ptr<storage::ArrayPageDevice> dev;
  std::vector<std::int32_t> pages;
  std::int64_t elems = 0;
  std::int32_t n1 = 1, n2 = 1, n3 = 1;
};

template <class Ar>
void oopp_serialize(Ar& ar, Slab& s) {
  ar(s.dev, s.pages, s.elems, s.n1, s.n2, s.n3);
}

// ---------------------------------------------------------------------------
// Peer: the member process
// ---------------------------------------------------------------------------

class Peer;

/// Everything a member needs to participate, distributed down the
/// binomial tree in one pass (N-1 messages total, none of them from the
/// master after the first — the O(N^2)-bytes-from-one-NIC flat wiring
/// was the setup bottleneck make_group had).
struct Wiring {
  std::int32_t n = 0;
  ProcessGroup<Peer> group;
  CostHints hints;
};

template <class Ar>
void oopp_serialize(Ar& ar, Wiring& w) {
  ar(w.n, w.group, w.hints);
}

/// A collective group member, colocated with one storage device when
/// created by Communicator::over.  Unlike CollWorker (whose tree
/// collectives nest synchronous calls), Peer members run *drivers*
/// concurrently (SPMD style): every member executes the same reentrant
/// driver method for one epoch, exchanging segments through put_seg.
///
/// Message-loss safety: segments are staged by (epoch, channel, segment,
/// sender) and *overwrite* on duplicate delivery, so a retried put_seg
/// (dedup miss after an eviction) is idempotent; finished epochs are
/// remembered in a bounded window so a straggler retry of a completed
/// collective is dropped instead of leaking a staging entry.
class Peer {
 public:
  explicit Peer(std::int32_t id) : id_(id) {}

  // Segment channels (disambiguate concurrent phases within one epoch).
  static constexpr std::uint32_t kChanRs = 0;   // reduce-scatter steps
  static constexpr std::uint32_t kChanAg = 1;   // allgather steps
  static constexpr std::uint32_t kChanRed = 2;  // tree reduce (up)
  static constexpr std::uint32_t kChanBc = 3;   // tree broadcast (down)

  /// Install membership and forward it down this member's binomial
  /// subtree [rel, rel+span).  Called once on member 0 with (0, n).
  void wire(std::int64_t rel, std::int64_t span, const Wiring& w) {
    OOPP_CHECK(w.n > 0 && static_cast<std::int64_t>(w.group.size()) == w.n);
    OOPP_CHECK(rel == id_);
    n_ = w.n;
    group_ = w.group;
    hints_ = w.hints;
    std::vector<Future<void>> kids;
    std::int64_t s = span;
    while (s > 1) {
      const std::int64_t half = s / 2 + (s % 2);
      const std::int64_t child = rel + half;
      kids.push_back(group_[static_cast<std::size_t>(child)]
                         .template async<&Peer::wire>(child, s - half, w));
      s = half;
    }
    // Wiring completes as a whole or not at all (same contract as
    // tree_bcast).  oopp-lint: allow(future-bare-get)
    for (auto& f : kids) f.get();
  }

  void set_data(const std::vector<double>& v) { data_ = v; }
  [[nodiscard]] std::vector<double> data() const { return data_; }
  [[nodiscard]] std::int32_t id() const { return id_; }
  [[nodiscard]] std::int32_t size() const { return n_; }

  // -- segment staging ------------------------------------------------------

  /// Deposit one in-flight segment.  Reentrant: it must land while this
  /// member's own driver is blocked in take_seg.  The payload is a view
  /// into the inbound frame (IArchive::read_into over the shared backing
  /// store), so staging it keeps the frame alive instead of copying it.
  void put_seg(std::uint64_t epoch, std::uint32_t chan, std::uint32_t seg,
               std::int32_t from, serial::Bytes payload) {
    std::unique_lock<util::CheckedMutex> lk(mu_);
    if (done_set_.count(epoch) != 0) return;  // straggler retry, already done
    staging_[Key{epoch, chan, seg, from}] = std::move(payload);
    cv_.notify_all();
  }

  // -- allreduce drivers ----------------------------------------------------

  /// SPMD allreduce over every member's data() (all must be the same
  /// length).  Every member calls this with the same fresh epoch; all
  /// return once their own vector holds the combined result.  Returns
  /// the algorithm actually run (identical on every member: selection is
  /// a pure function of size, membership and the shared hints).
  Algo allreduce(std::uint64_t epoch, ReduceKind kind, Algo algo) {
    VecGuard guard(*this);
    check_wired();
    const std::size_t bytes = data_.size() * sizeof(double);
    Algo chosen =
        algo == Algo::kAuto ? choose_allreduce(bytes, n_, hints_) : algo;
    if (chosen == Algo::kHalving && !is_pow2(n_)) chosen = Algo::kRing;
    switch (chosen) {
      case Algo::kRing:
        counter_ring().add();
        ring_allreduce(epoch, kind);
        break;
      case Algo::kHalving:
        counter_halving().add();
        halving_allreduce(epoch, kind);
        break;
      default:
        chosen = Algo::kTwoPass;
        counter_twopass().add();
        {
          const std::uint32_t nsegs = choose_segments(bytes, hints_);
          counter_segments().add(nsegs);
          reduce_tree(epoch, kind, nsegs);
          bcast_tree(epoch, nsegs);
        }
        break;
    }
    gc_epoch(epoch);
    return chosen;
  }

  /// SPMD allreduce of one double through the binomial tree — the
  /// reduction primitive under every BLAS kernel.  8-byte payloads ride
  /// inline (below the splice threshold); the root's result is broadcast
  /// bit-identical, so every member returns the exact same double.
  double allreduce_scalar(std::uint64_t epoch, ReduceKind kind, double v) {
    check_wired();
    const TreeShape t = tree_shape(id_, n_);
    double acc = v;
    std::vector<Future<void>> sent;
    for (std::int32_t c : t.children) {
      const serial::Bytes got = take_seg(epoch, kChanRed, 0, c);
      OOPP_CHECK(got.size() == sizeof(double));
      double x = 0.0;
      std::memcpy(&x, got.data(), sizeof(double));
      acc = combine_one(kind, acc, x);
    }
    serial::Bytes res;
    if (t.parent >= 0) {
      sent.push_back(send_bytes(epoch, kChanRed, 0, t.parent,
                                serial::Bytes::copy_raw(&acc, sizeof(double))));
      res = take_seg(epoch, kChanBc, 0, t.parent);
      OOPP_CHECK(res.size() == sizeof(double));
      std::memcpy(&acc, res.data(), sizeof(double));
    } else {
      res = serial::Bytes::copy_raw(&acc, sizeof(double));
    }
    for (std::int32_t c : t.children)
      sent.push_back(send_bytes(epoch, kChanBc, 0, c, res));
    join(sent);
    gc_epoch(epoch);
    return acc;
  }

  /// Segmented pipelined broadcast of member 0's data() to every member.
  void bcast_vec(std::uint64_t epoch, std::int64_t len, std::uint32_t nsegs) {
    VecGuard guard(*this);
    check_wired();
    if (id_ == 0) {
      OOPP_CHECK(static_cast<std::int64_t>(data_.size()) == len);
    } else {
      data_.assign(static_cast<std::size_t>(len), 0.0);
    }
    counter_segments().add(nsegs);
    bcast_tree(epoch, nsegs);
    gc_epoch(epoch);
  }

  /// Segmented pipelined reduce: the combined vector lands in member 0's
  /// data().  MPI semantics — non-root vectors are left unspecified
  /// (interior tree members combine their children's segments in place;
  /// leaves are untouched).
  void reduce_vec(std::uint64_t epoch, ReduceKind kind, std::uint32_t nsegs) {
    VecGuard guard(*this);
    check_wired();
    counter_segments().add(nsegs);
    reduce_tree(epoch, kind, nsegs);
    gc_epoch(epoch);
  }

  // -- BLAS kernels (compute at the data) -----------------------------------

  /// dot(x, y) restricted to this member's slabs, combined across members
  /// through the scalar tree — only 8 bytes per member cross the network
  /// after the device-local multiply-adds.
  double dot_slab(std::uint64_t epoch, const Slab& x, const Slab& y) {
    const std::vector<double> xs = read_slab(x);
    const std::vector<double> ys = read_slab(y);
    OOPP_CHECK_MSG(xs.size() == ys.size(), "dot: slab lengths differ");
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) acc += xs[i] * ys[i];
    return allreduce_scalar(epoch, ReduceKind::kSum, acc);
  }

  /// ||x||^2 partial on this member's slab, summed across members.
  double norm2sq_slab(std::uint64_t epoch, const Slab& x) {
    const std::vector<double> xs = read_slab(x);
    double acc = 0.0;
    for (const double v : xs) acc += v * v;
    return allreduce_scalar(epoch, ReduceKind::kSum, acc);
  }

  /// y += a·x on this member's slabs.  Pure local I/O — no communication.
  void axpy_slab(double a, const Slab& x, const Slab& y) {
    const std::vector<double> xs = read_slab(x);
    std::vector<double> ys = read_slab(y);
    OOPP_CHECK_MSG(xs.size() == ys.size(), "axpy: slab lengths differ");
    for (std::size_t i = 0; i < ys.size(); ++i) ys[i] += a * xs[i];
    write_slab(y, ys);
  }

  /// x *= a via the device's in-place update kernel: the pages never
  /// leave the device process at all.
  void scale_slab(double a, const Slab& x) {
    std::vector<Future<void>> futs;
    futs.reserve(x.pages.size());
    for (const std::int32_t p : x.pages) {
      futs.push_back(
          x.dev.template async<&storage::ArrayPageDevice::update_region>(
              storage::ArrayPageDevice::Update::kScale, a, p, index_t{0},
              index_t{x.n1}, index_t{0}, index_t{x.n2}, index_t{0},
              index_t{x.n3}));
    }
    join(futs);
  }

  /// y = A·x for this member's row slab of A.  x is allgathered around
  /// the ring (each member's x slab makes exactly one trip, forwarded
  /// zero-copy), then the dense row-block multiply runs locally and the
  /// result rows are written back to the colocated device.  offsets[i]
  /// is member i's first global x element; offsets[n] = ncols.
  ///
  /// With reuse_a the matrix slab is fetched from the device once and
  /// kept resident in the Peer for subsequent calls — iterative solvers
  /// multiply by the same operator every iteration, and re-marshaling
  /// the slab dominates the kernel otherwise.  The caller vouches that
  /// the matrix pages are unchanged; drop_cache() forgets the copy.
  void matvec_slab(std::uint64_t epoch, const Slab& a, const Slab& x,
                   const Slab& y, const std::vector<std::int64_t>& offsets,
                   bool reuse_a) {
    check_wired();
    OOPP_CHECK(static_cast<std::int32_t>(offsets.size()) == n_ + 1);
    const std::vector<double> xloc = read_slab(x);
    const std::int64_t ncols = offsets[static_cast<std::size_t>(n_)];
    OOPP_CHECK(offsets[static_cast<std::size_t>(id_) + 1] -
                   offsets[static_cast<std::size_t>(id_)] ==
               static_cast<std::int64_t>(xloc.size()));
    std::vector<double> xfull(static_cast<std::size_t>(ncols), 0.0);
    if (!xloc.empty())
      std::memcpy(xfull.data() + offsets[static_cast<std::size_t>(id_)],
                  xloc.data(), xloc.size() * sizeof(double));
    // Ring allgather of the variable-length x slabs.
    const std::int32_t right = (id_ + 1) % n_;
    const std::int32_t left = (id_ + n_ - 1) % n_;
    std::vector<Future<void>> sent;
    serial::Bytes carry;
    for (std::int32_t s = 0; s < n_ - 1; ++s) {
      if (s == 0)
        carry = serial::Bytes::copy_raw(xloc.data(),
                                        xloc.size() * sizeof(double));
      sent.push_back(send_bytes(epoch, kChanAg,
                                static_cast<std::uint32_t>(s), right, carry));
      const std::int32_t origin = (id_ - s - 1 + 2 * n_) % n_;
      carry = take_seg(epoch, kChanAg, static_cast<std::uint32_t>(s), left);
      const std::int64_t cnt = offsets[static_cast<std::size_t>(origin) + 1] -
                               offsets[static_cast<std::size_t>(origin)];
      OOPP_CHECK(carry.size() ==
                 static_cast<std::size_t>(cnt) * sizeof(double));
      if (cnt > 0)
        std::memcpy(xfull.data() + offsets[static_cast<std::size_t>(origin)],
                    carry.data(), static_cast<std::size_t>(cnt) *
                                      sizeof(double));
    }
    std::shared_ptr<const std::vector<double>> cached;
    std::vector<double> fresh;
    if (reuse_a)
      cached = cached_matrix(a);
    else
      fresh = read_slab(a);
    const std::vector<double>& av = reuse_a ? *cached : fresh;
    OOPP_CHECK_MSG(a.n2 == ncols, "matvec: A page width != x length");
    const std::int64_t rows =
        ncols > 0 ? static_cast<std::int64_t>(av.size()) / ncols : 0;
    OOPP_CHECK(y.elems == rows);
    std::vector<double> yv(static_cast<std::size_t>(rows), 0.0);
    for (std::int64_t r = 0; r < rows; ++r) {
      double acc = 0.0;
      const double* row = av.data() + r * ncols;
      for (std::int64_t k = 0; k < ncols; ++k)
        acc += row[k] * xfull[static_cast<std::size_t>(k)];
      yv[static_cast<std::size_t>(r)] = acc;
    }
    write_slab(y, yv);
    join(sent);
    gc_epoch(epoch);
  }

  /// Forget the resident matrix slab (call after rewriting the matrix
  /// through the Array when matvec reuse is in play).
  void drop_cache() {
    std::lock_guard lock(mu_);
    a_cache_.reset();
  }

 private:
  /// Identity of a cached matrix slab: the owning device actor plus the
  /// exact page run and block shape.
  struct SlabKey {
    net::MachineId machine{};
    net::ObjectId object{};
    std::vector<std::int32_t> pages;
    std::int32_t n1 = 0, n2 = 0, n3 = 0;
    bool operator==(const SlabKey&) const = default;
  };

  [[nodiscard]] static SlabKey key_of(const Slab& s) {
    return SlabKey{s.dev.machine(), s.dev.id(), s.pages, s.n1, s.n2, s.n3};
  }

  /// One-entry matrix cache (a solver iterates one operator).  The
  /// staging mutex only guards the lookup/install — the device fetch on
  /// a miss runs unlocked, because read_slab blocks on a remote call.
  /// Returns a shared reference so a concurrent drop_cache() can't pull
  /// the buffer out from under an in-flight multiply.
  [[nodiscard]] std::shared_ptr<const std::vector<double>> cached_matrix(
      const Slab& a) {
    const SlabKey k = key_of(a);
    {
      std::lock_guard lock(mu_);
      if (a_cache_ && a_cache_->first == k) {
        counter_matvec_reuse().add();
        return a_cache_->second;
      }
    }
    auto fetched =
        std::make_shared<const std::vector<double>>(read_slab(a));
    std::lock_guard lock(mu_);
    a_cache_.emplace(k, fetched);
    return fetched;
  }
  using Key = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t,
                         std::int32_t>;

  /// Vector drivers own data_ exclusively for their epoch; two at once on
  /// one member is a driver bug (concurrent *scalar* collectives are
  /// fine — they never touch data_).  An atomic flag instead of a mutex:
  /// the driver blocks on remote calls, which a held lock may not span.
  struct VecGuard {
    explicit VecGuard(Peer& p) : p_(p) {
      OOPP_CHECK_MSG(!p.vec_busy_.exchange(true),
                     "concurrent vector collectives on one member");
    }
    ~VecGuard() { p_.vec_busy_.store(false); }
    VecGuard(const VecGuard&) = delete;
    VecGuard& operator=(const VecGuard&) = delete;
    Peer& p_;
  };

  void check_wired() const {
    OOPP_CHECK_MSG(n_ > 0, "wire the group before collectives");
  }

  // -- telemetry (cached refs: lookup takes a lock) -------------------------
  static telemetry::Counter& counter_bytes() {
    static auto& c = telemetry::Metrics::scope_for("coll").counter(
        "bytes_moved");
    return c;
  }
  static telemetry::Counter& counter_hops() {
    static auto& c = telemetry::Metrics::scope_for("coll").counter("hops");
    return c;
  }
  static telemetry::Counter& counter_segments() {
    static auto& c = telemetry::Metrics::scope_for("coll").counter("segments");
    return c;
  }
  static telemetry::Counter& counter_ring() {
    static auto& c =
        telemetry::Metrics::scope_for("coll").counter("allreduce_ring");
    return c;
  }
  static telemetry::Counter& counter_halving() {
    static auto& c =
        telemetry::Metrics::scope_for("coll").counter("allreduce_halving");
    return c;
  }
  static telemetry::Counter& counter_twopass() {
    static auto& c =
        telemetry::Metrics::scope_for("coll").counter("allreduce_twopass");
    return c;
  }
  static telemetry::Counter& counter_matvec_reuse() {
    static auto& c =
        telemetry::Metrics::scope_for("coll").counter("matvec_reuse_hits");
    return c;
  }

  // -- segment transport ----------------------------------------------------

  /// Send a slice to `to`.  Forwarding a received Bytes here is the
  /// zero-copy hop: the slice splices into the outgoing frame by
  /// reference.
  Future<void> send_bytes(std::uint64_t epoch, std::uint32_t chan,
                          std::uint32_t seg, std::int32_t to,
                          serial::Bytes b) const {
    counter_bytes().add(b.size());
    counter_hops().add();
    return group_[static_cast<std::size_t>(to)].template async<&Peer::put_seg>(
        epoch, chan, seg, id_, std::move(b));
  }

  /// Send data_[lo, hi) — the one sanctioned copy, at the source.
  Future<void> send_span(std::uint64_t epoch, std::uint32_t chan,
                         std::uint32_t seg, std::int32_t to, std::int64_t lo,
                         std::int64_t hi) const {
    return send_bytes(epoch, chan, seg, to,
                      serial::Bytes::copy_raw(
                          data_.data() + lo,
                          static_cast<std::size_t>(hi - lo) * sizeof(double)));
  }

  /// Block until the matching segment arrives, then claim it.
  serial::Bytes take_seg(std::uint64_t epoch, std::uint32_t chan,
                         std::uint32_t seg, std::int32_t from) {
    const Key k{epoch, chan, seg, from};
    std::unique_lock<util::CheckedMutex> lk(mu_);
    cv_.wait(lk, [&] { return staging_.count(k) != 0; });
    auto it = staging_.find(k);
    serial::Bytes b = std::move(it->second);
    staging_.erase(it);
    return b;
  }

  /// The collective is done on this member: drop any residual segments
  /// (stale retries re-staged mid-run) and remember the epoch so later
  /// stragglers are dropped on arrival.  Window-bounded — staging state
  /// cannot grow without bound under sustained faults.
  void gc_epoch(std::uint64_t epoch) {
    static constexpr std::size_t kDoneWindow = 128;
    std::unique_lock<util::CheckedMutex> lk(mu_);
    staging_.erase(
        staging_.lower_bound(
            Key{epoch, 0, 0, std::numeric_limits<std::int32_t>::min()}),
        staging_.lower_bound(
            Key{epoch + 1, 0, 0, std::numeric_limits<std::int32_t>::min()}));
    if (done_set_.insert(epoch).second) {
      done_fifo_.push_back(epoch);
      while (done_fifo_.size() > kDoneWindow) {
        done_set_.erase(done_fifo_.front());
        done_fifo_.pop_front();
      }
    }
  }

  /// Collect the send futures off the critical path: put_seg never
  /// blocks, so these only confirm delivery.
  static void join(std::vector<Future<void>>& futs) {
    // Collective completion is all-or-nothing; the caller bounds the
    // whole operation.  oopp-lint: allow(future-bare-get)
    for (auto& f : futs) f.get();
  }

  // -- span arithmetic ------------------------------------------------------

  void combine_span(ReduceKind kind, std::int64_t lo, std::int64_t hi,
                    const serial::Bytes& got) {
    OOPP_CHECK(got.size() ==
               static_cast<std::size_t>(hi - lo) * sizeof(double));
    const std::byte* src = got.data();
    for (std::int64_t i = lo; i < hi; ++i) {
      double v = 0.0;  // segment slices are not 8-byte aligned in the frame
      std::memcpy(&v, src + static_cast<std::size_t>(i - lo) * sizeof(double),
                  sizeof(double));
      data_[static_cast<std::size_t>(i)] =
          combine_one(kind, data_[static_cast<std::size_t>(i)], v);
    }
  }

  void copy_span(std::int64_t lo, std::int64_t hi, const serial::Bytes& got) {
    OOPP_CHECK(got.size() ==
               static_cast<std::size_t>(hi - lo) * sizeof(double));
    if (hi > lo)
      std::memcpy(data_.data() + lo, got.data(),
                  static_cast<std::size_t>(hi - lo) * sizeof(double));
  }

  // -- algorithm bodies -----------------------------------------------------

  /// Ring allreduce.  Chunk c covers [c·L/n, (c+1)·L/n).  Reduce-scatter:
  /// at step s member i sends chunk (i-s) right and combines chunk
  /// (i-s-1) from the left, so after n-1 steps member i holds the fully
  /// reduced chunk (i+1).  Allgather: the first send is the member's own
  /// reduced chunk (one copy at the source); every later send forwards
  /// the slice received the step before — zero-copy through n-2 hops.
  void ring_allreduce(std::uint64_t epoch, ReduceKind kind) {
    const std::int64_t L = static_cast<std::int64_t>(data_.size());
    const std::int32_t right = (id_ + 1) % n_;
    const std::int32_t left = (id_ + n_ - 1) % n_;
    auto chunk_lo = [&](std::int32_t c) { return std::int64_t{c} * L / n_; };
    auto wrap = [&](std::int32_t c) { return (c % n_ + n_) % n_; };
    std::vector<Future<void>> sent;
    for (std::int32_t s = 0; s < n_ - 1; ++s) {
      const std::int32_t csend = wrap(id_ - s);
      const std::int32_t crecv = wrap(id_ - s - 1);
      sent.push_back(send_span(epoch, kChanRs, static_cast<std::uint32_t>(s),
                               right, chunk_lo(csend), chunk_lo(csend + 1)));
      const serial::Bytes got =
          take_seg(epoch, kChanRs, static_cast<std::uint32_t>(s), left);
      combine_span(kind, chunk_lo(crecv), chunk_lo(crecv + 1), got);
    }
    serial::Bytes carry;
    for (std::int32_t s = 0; s < n_ - 1; ++s) {
      const std::int32_t csend = wrap(id_ + 1 - s);
      if (s == 0) {
        sent.push_back(send_span(epoch, kChanAg, 0, right, chunk_lo(csend),
                                 chunk_lo(csend + 1)));
      } else {
        sent.push_back(send_bytes(epoch, kChanAg,
                                  static_cast<std::uint32_t>(s), right,
                                  carry));
      }
      const std::int32_t crecv = wrap(id_ - s);
      carry = take_seg(epoch, kChanAg, static_cast<std::uint32_t>(s), left);
      copy_span(chunk_lo(crecv), chunk_lo(crecv + 1), carry);
    }
    join(sent);
  }

  /// Recursive halving (reduce-scatter) + recursive doubling (allgather);
  /// n must be a power of two.  Partners at round r differ in bit n/2^r+1;
  /// both hold the same [lo, hi) range, split it at the same midpoint,
  /// and exchange halves — log2(n) rounds, each halving the payload.
  void halving_allreduce(std::uint64_t epoch, ReduceKind kind) {
    struct Round {
      std::int32_t partner;
      std::int64_t keep_lo, keep_hi, send_lo, send_hi;
    };
    std::int64_t lo = 0;
    std::int64_t hi = static_cast<std::int64_t>(data_.size());
    std::vector<Round> rounds;
    std::vector<Future<void>> sent;
    std::uint32_t r = 0;
    for (std::int32_t d = n_ / 2; d >= 1; d /= 2, ++r) {
      const std::int32_t partner = id_ ^ d;
      const std::int64_t mid = lo + (hi - lo) / 2;
      Round rd{partner, 0, 0, 0, 0};
      if ((id_ & d) == 0) {
        rd.keep_lo = lo, rd.keep_hi = mid, rd.send_lo = mid, rd.send_hi = hi;
      } else {
        rd.keep_lo = mid, rd.keep_hi = hi, rd.send_lo = lo, rd.send_hi = mid;
      }
      sent.push_back(
          send_span(epoch, kChanRs, r, partner, rd.send_lo, rd.send_hi));
      const serial::Bytes got = take_seg(epoch, kChanRs, r, partner);
      combine_span(kind, rd.keep_lo, rd.keep_hi, got);
      rounds.push_back(rd);
      lo = rd.keep_lo;
      hi = rd.keep_hi;
    }
    for (std::int32_t i = static_cast<std::int32_t>(rounds.size()) - 1; i >= 0;
         --i) {
      const Round& rd = rounds[static_cast<std::size_t>(i)];
      sent.push_back(send_span(epoch, kChanAg,
                               static_cast<std::uint32_t>(i), rd.partner, lo,
                               hi));
      const serial::Bytes got =
          take_seg(epoch, kChanAg, static_cast<std::uint32_t>(i), rd.partner);
      copy_span(rd.send_lo, rd.send_hi, got);
      lo = rd.keep_lo < rd.send_lo ? rd.keep_lo : rd.send_lo;
      hi = rd.keep_hi > rd.send_hi ? rd.keep_hi : rd.send_hi;
    }
    join(sent);
  }

  [[nodiscard]] std::int64_t seg_lo(std::uint32_t g,
                                    std::uint32_t nsegs) const {
    return static_cast<std::int64_t>(data_.size()) * g / nsegs;
  }

  /// Segmented binomial reduce toward member 0.  Segment g is combined
  /// from the children and forwarded to the parent as soon as it is
  /// complete, so hop k+1's send of segment g overlaps hop k's receive
  /// of segment g+1 — the pipeline that hides the per-hop serialization.
  void reduce_tree(std::uint64_t epoch, ReduceKind kind, std::uint32_t nsegs) {
    const TreeShape t = tree_shape(id_, n_);
    std::vector<Future<void>> sent;
    for (std::uint32_t g = 0; g < nsegs; ++g) {
      const std::int64_t lo = seg_lo(g, nsegs);
      const std::int64_t hi = seg_lo(g + 1, nsegs);
      for (const std::int32_t c : t.children) {
        const serial::Bytes got = take_seg(epoch, kChanRed, g, c);
        combine_span(kind, lo, hi, got);
      }
      if (t.parent >= 0)
        sent.push_back(send_span(epoch, kChanRed, g, t.parent, lo, hi));
    }
    join(sent);
  }

  /// Segmented binomial broadcast from member 0.  A non-root copies the
  /// received segment into its vector and forwards the *same* slice to
  /// every child — one serialization at the root, refcount bumps all the
  /// way down.
  void bcast_tree(std::uint64_t epoch, std::uint32_t nsegs) {
    const TreeShape t = tree_shape(id_, n_);
    std::vector<Future<void>> sent;
    for (std::uint32_t g = 0; g < nsegs; ++g) {
      const std::int64_t lo = seg_lo(g, nsegs);
      const std::int64_t hi = seg_lo(g + 1, nsegs);
      serial::Bytes seg;
      if (t.parent >= 0) {
        seg = take_seg(epoch, kChanBc, g, t.parent);
        copy_span(lo, hi, seg);
      } else {
        seg = serial::Bytes::copy_raw(
            data_.data() + lo,
            static_cast<std::size_t>(hi - lo) * sizeof(double));
      }
      for (const std::int32_t c : t.children)
        sent.push_back(send_bytes(epoch, kChanBc, g, c, seg));
    }
    join(sent);
  }

  // -- slab I/O -------------------------------------------------------------

  /// One batched read of the slab's pages, flattened and clipped to the
  /// logical element count (the tail page's zero padding is dropped).
  [[nodiscard]] std::vector<double> read_slab(const Slab& s) const {
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(s.elems));
    if (!s.pages.empty()) {
      auto pages =
          s.dev.template call<&storage::ArrayPageDevice::read_arrays>(s.pages);
      for (const auto& p : pages) {
        const double* v = p.values();
        out.insert(out.end(), v, v + p.elements());
      }
    }
    OOPP_CHECK(static_cast<std::int64_t>(out.size()) >= s.elems);
    out.resize(static_cast<std::size_t>(s.elems));
    return out;
  }

  /// One batched write of the slab's pages (tail zero-padded).
  void write_slab(const Slab& s, const std::vector<double>& v) const {
    OOPP_CHECK(static_cast<std::int64_t>(v.size()) == s.elems);
    if (s.pages.empty()) return;
    const std::int64_t per = std::int64_t{s.n1} * s.n2 * s.n3;
    std::vector<storage::ArrayPage> pages;
    pages.reserve(s.pages.size());
    for (std::size_t i = 0; i < s.pages.size(); ++i) {
      storage::ArrayPage p(s.n1, s.n2, s.n3);
      const std::int64_t off = static_cast<std::int64_t>(i) * per;
      const std::int64_t cnt = std::min(per, s.elems - off);
      OOPP_CHECK(cnt > 0);
      std::memcpy(p.values(), v.data() + off,
                  static_cast<std::size_t>(cnt) * sizeof(double));
      pages.push_back(std::move(p));
    }
    s.dev.template call<&storage::ArrayPageDevice::write_arrays>(pages,
                                                                 s.pages);
  }

  std::int32_t id_ = 0;
  std::int32_t n_ = 0;
  ProcessGroup<Peer> group_;
  CostHints hints_{};
  std::vector<double> data_;
  std::atomic<bool> vec_busy_{false};

  util::CheckedMutex mu_{"coll.Peer.staging"};
  util::CondVar cv_;
  std::optional<
      std::pair<SlabKey, std::shared_ptr<const std::vector<double>>>>
      a_cache_;  // guarded by mu_
  std::map<Key, serial::Bytes> staging_;
  std::unordered_set<std::uint64_t> done_set_;
  std::deque<std::uint64_t> done_fifo_;
};

}  // namespace oopp::coll

template <>
struct oopp::rpc::class_def<oopp::coll::Peer> {
  using P = oopp::coll::Peer;
  static std::string name() { return "oopp.coll.Peer"; }
  using ctors = ctor_list<ctor<std::int32_t>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&P::wire>("wire");
    b.template method<&P::set_data>("set_data");
    b.template method<&P::data>("data");
    b.template method<&P::id>("id");
    b.template method<&P::size>("size");
    // Everything below must run while the member's own driver is blocked
    // in take_seg — reentrant, off the per-object FIFO.
    b.template method<&P::put_seg>("put_seg", reentrant);
    b.template method<&P::allreduce>("allreduce", reentrant);
    b.template method<&P::allreduce_scalar>("allreduce_scalar", reentrant);
    b.template method<&P::bcast_vec>("bcast_vec", reentrant);
    b.template method<&P::reduce_vec>("reduce_vec", reentrant);
    b.template method<&P::dot_slab>("dot_slab", reentrant);
    b.template method<&P::norm2sq_slab>("norm2sq_slab", reentrant);
    b.template method<&P::axpy_slab>("axpy_slab", reentrant);
    b.template method<&P::scale_slab>("scale_slab", reentrant);
    b.template method<&P::matvec_slab>("matvec_slab", reentrant);
    b.template method<&P::drop_cache>("drop_cache", reentrant);
  }
};

namespace oopp::coll {

// ---------------------------------------------------------------------------
// Communicator: the master-side handle
// ---------------------------------------------------------------------------

/// Options for Communicator construction.  Namespace-scope (not nested)
/// so the `= {}` default arguments below are usable inside the class
/// definition.
struct CommunicatorOptions {
  net::CostModel cost{};
};

/// A wired group of Peers with BLAS operations over Arrays whose pages
/// the members' machines own.  Every operation drives all members
/// concurrently (SPMD) and returns when the whole collective completes;
/// partials combine member-to-member through the trees above — the
/// master never sees the vectors.
class Communicator {
 public:
  using Options = CommunicatorOptions;

  Communicator() = default;

  /// One Peer per storage device, *colocated with it* (same machine), so
  /// every slab kernel reads and writes its pages over the zero-cost
  /// loopback path.  Wired through the binomial tree: one message from
  /// the master, N-1 forwarded inside the group.
  static Communicator over(const array::BlockStorage& devices,
                           const Options& opts = {}) {
    std::vector<net::MachineId> machines;
    machines.reserve(devices.size());
    for (const auto& d : devices) machines.push_back(d.machine());
    return on_machines(machines, opts);
  }

  /// Members on explicit machines (benches and tests without storage).
  static Communicator on_machines(const std::vector<net::MachineId>& machines,
                                  const Options& opts = {}) {
    const auto n = static_cast<std::int32_t>(machines.size());
    OOPP_CHECK_MSG(n > 0, "Communicator needs at least one member");
    Communicator c;
    c.hints_ = CostHints::from(opts.cost);
    for (std::int32_t i = 0; i < n; ++i)
      c.peers_.push_back(
          make_remote<Peer>(machines[static_cast<std::size_t>(i)], i));
    Wiring w{n, c.peers_, c.hints_};
    c.peers_[0].template call<&Peer::wire>(0, n, w);
    return c;
  }

  [[nodiscard]] std::size_t size() const { return peers_.size(); }
  [[nodiscard]] const ProcessGroup<Peer>& members() const { return peers_; }

  // -- BLAS over Arrays -----------------------------------------------------

  /// dot(x, y): device-local multiply-adds, one scalar tree allreduce.
  double dot(const array::Array& x, const array::Array& y) {
    const Partition px = vector_slabs(x);
    const Partition py = vector_slabs(y);
    const std::uint64_t e = next_epoch();
    std::vector<Future<double>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(peers_[i].template async<&Peer::dot_slab>(
          e, px.slabs[i], py.slabs[i]));
    return join_same(futs);
  }

  /// ||x||: device-local sums of squares, one scalar tree allreduce.
  double norm2(const array::Array& x) {
    const Partition px = vector_slabs(x);
    const std::uint64_t e = next_epoch();
    std::vector<Future<double>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(
          peers_[i].template async<&Peer::norm2sq_slab>(e, px.slabs[i]));
    return std::sqrt(join_same(futs));
  }

  /// y += a·x — embarrassingly parallel, no reduction at all.
  void axpy(double a, const array::Array& x, const array::Array& y) {
    const Partition px = vector_slabs(x);
    const Partition py = vector_slabs(y);
    std::vector<Future<void>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(peers_[i].template async<&Peer::axpy_slab>(
          a, px.slabs[i], py.slabs[i]));
    join(futs);
  }

  /// x *= a via the devices' in-place update kernels.
  void scale(double a, const array::Array& x) {
    const Partition px = vector_slabs(x);
    std::vector<Future<void>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(
          peers_[i].template async<&Peer::scale_slab>(a, px.slabs[i]));
    join(futs);
  }

  /// y = A·x.  A is (R, C, 1) with row-slab pages (rb, C, 1); x is
  /// (C, 1, 1); y is (R, 1, 1) partitioned like A's rows.
  ///
  /// reuse_matrix keeps each member's A slab resident in its Peer across
  /// calls — the win for iterative solvers, which multiply by the same
  /// operator every iteration.  Pass it only while A's pages are not
  /// being rewritten; after rewriting A, call drop_matrix_cache().
  void matvec(const array::Array& a, const array::Array& x,
              const array::Array& y, bool reuse_matrix = false) {
    const Partition pa = matrix_slabs(a);
    const Partition px = vector_slabs(x);
    const Partition py = vector_slabs(y);
    OOPP_CHECK_MSG(a.extents().n2 == x.extents().n1,
                   "matvec: A columns != x length");
    OOPP_CHECK_MSG(a.extents().n1 == y.extents().n1,
                   "matvec: A rows != y length");
    const std::uint64_t e = next_epoch();
    std::vector<Future<void>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(peers_[i].template async<&Peer::matvec_slab>(
          e, pa.slabs[i], px.slabs[i], py.slabs[i], px.offsets,
          reuse_matrix));
    join(futs);
  }

  /// Forget every member's resident matrix slab (see matvec reuse).
  void drop_matrix_cache() {
    std::vector<Future<void>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(peers_[i].template async<&Peer::drop_cache>());
    join(futs);
  }

  // -- member-resident vector collectives (benches, tests) ------------------

  void set_member_data(const std::vector<std::vector<double>>& chunks) {
    OOPP_CHECK(chunks.size() == peers_.size());
    std::vector<Future<void>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(
          peers_[i].template async<&Peer::set_data>(chunks[i]));
    join(futs);
  }

  [[nodiscard]] std::vector<std::vector<double>> member_data() const {
    std::vector<Future<std::vector<double>>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(peers_[i].template async<&Peer::data>());
    std::vector<std::vector<double>> out;
    out.reserve(futs.size());
    // oopp-lint: allow(future-bare-get) — see join().
    for (auto& f : futs) out.push_back(f.get());
    return out;
  }

  /// Drive one allreduce across every member's resident vector; returns
  /// the algorithm that ran.
  Algo allreduce_members(ReduceKind kind, Algo algo = Algo::kAuto) {
    const std::uint64_t e = next_epoch();
    std::vector<Future<Algo>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(
          peers_[i].template async<&Peer::allreduce>(e, kind, algo));
    return join_same(futs);
  }

  /// Segmented broadcast of member 0's resident vector to every member.
  void bcast_members(std::int64_t len) {
    const std::uint64_t e = next_epoch();
    const std::uint32_t nsegs =
        choose_segments(static_cast<std::size_t>(len) * sizeof(double),
                        hints_);
    std::vector<Future<void>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(
          peers_[i].template async<&Peer::bcast_vec>(e, len, nsegs));
    join(futs);
  }

  /// Segmented reduce of every member's resident vector into member 0's
  /// (non-root vectors unspecified afterwards, as in MPI_Reduce).
  void reduce_members(ReduceKind kind, std::int64_t len) {
    const std::uint64_t e = next_epoch();
    const std::uint32_t nsegs =
        choose_segments(static_cast<std::size_t>(len) * sizeof(double),
                        hints_);
    std::vector<Future<void>> futs;
    futs.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i)
      futs.push_back(
          peers_[i].template async<&Peer::reduce_vec>(e, kind, nsegs));
    join(futs);
  }

  void destroy() { peers_.destroy_all(); }

 private:
  struct Partition {
    std::vector<Slab> slabs;
    std::vector<std::int64_t> offsets;  // member i's first global element
  };

  std::uint64_t next_epoch() { return epoch_->fetch_add(1) + 1; }

  static void join(std::vector<Future<void>>& futs) {
    // An operation completes as a whole; a failed member fails the
    // whole collective.  oopp-lint: allow(future-bare-get)
    for (auto& f : futs) f.get();
  }

  /// Every member returns the same value (the root's result travels to
  /// every member bit-identical); still wait for all of them.
  template <class R>
  static R join_same(std::vector<Future<R>>& futs) {
    R out{};
    // oopp-lint: allow(future-bare-get) — see join().
    for (std::size_t i = 0; i < futs.size(); ++i) {
      R v = futs[i].get();
      if (i == 0) out = v;
    }
    return out;
  }

  /// Group the pages of a (N, 1, 1) vector Array by owning device.  Each
  /// member must own a contiguous run of pages (the blocked layout) so
  /// its slab is a contiguous global element range.
  [[nodiscard]] Partition vector_slabs(const array::Array& v) const {
    const auto& ext = v.extents();
    OOPP_CHECK_MSG(ext.n2 == 1 && ext.n3 == 1,
                   "Communicator vectors are (N, 1, 1) arrays");
    return slabs_of(v, /*row_elems=*/1);
  }

  /// Group the row-slab pages of a (R, C, 1) matrix Array whose page
  /// blocks are (rb, C, 1).
  [[nodiscard]] Partition matrix_slabs(const array::Array& m) const {
    const auto& ext = m.extents();
    const auto& b = m.page_extents();
    OOPP_CHECK_MSG(ext.n3 == 1 && b.n3 == 1,
                   "Communicator matrices are (R, C, 1) arrays");
    OOPP_CHECK_MSG(b.n2 == ext.n2,
                   "matrix pages must span full rows: blocks (rb, C, 1)");
    return slabs_of(m, ext.n2);
  }

  /// Shared grouping walk over the first page axis.  `row_elems` is the
  /// number of elements per unit of the first axis (1 for vectors, C for
  /// row-slab matrices).
  [[nodiscard]] Partition slabs_of(const array::Array& v,
                                   index_t row_elems) const {
    const auto n = static_cast<std::int32_t>(peers_.size());
    OOPP_CHECK_MSG(
        static_cast<std::int32_t>(v.storage().size()) == n,
        "Array device count must equal the Communicator member count");
    const auto& ext = v.extents();
    const auto& b = v.page_extents();
    const auto grid = v.page_grid();
    Partition part;
    part.slabs.resize(static_cast<std::size_t>(n));
    part.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    std::vector<std::int64_t> first(static_cast<std::size_t>(n), -1);
    for (index_t p = 0; p < grid.n1; ++p) {
      const auto addr = v.page_address(p, 0, 0);
      OOPP_CHECK(addr.device_id >= 0 && addr.device_id < n);
      Slab& s = part.slabs[static_cast<std::size_t>(addr.device_id)];
      if (s.pages.empty())
        first[static_cast<std::size_t>(addr.device_id)] = p;
      else
        OOPP_CHECK_MSG(first[static_cast<std::size_t>(addr.device_id)] +
                               static_cast<std::int64_t>(s.pages.size()) ==
                           p,
                       "Communicator requires the blocked layout: each "
                       "member's pages must be one contiguous run");
      s.pages.push_back(addr.index);
    }
    std::int64_t covered = 0;
    for (std::int32_t i = 0; i < n; ++i) {
      Slab& s = part.slabs[static_cast<std::size_t>(i)];
      s.dev = v.storage()[static_cast<std::size_t>(i)];
      s.n1 = static_cast<std::int32_t>(b.n1);
      s.n2 = static_cast<std::int32_t>(b.n2);
      s.n3 = static_cast<std::int32_t>(b.n3);
      part.offsets[static_cast<std::size_t>(i)] = covered;
      if (s.pages.empty()) continue;
      const std::int64_t f = first[static_cast<std::size_t>(i)];
      const std::int64_t lo = f * b.n1;
      const std::int64_t hi =
          std::min<std::int64_t>(
              ext.n1, (f + static_cast<std::int64_t>(s.pages.size())) * b.n1);
      s.elems = (hi - lo) * row_elems;
      OOPP_CHECK_MSG(lo * row_elems == covered,
                     "Communicator requires member element ranges in member "
                     "order (blocked layout)");
      covered += s.elems;
    }
    part.offsets[static_cast<std::size_t>(n)] = covered;
    OOPP_CHECK(covered == ext.volume());
    return part;
  }

  ProcessGroup<Peer> peers_;
  CostHints hints_{};
  std::shared_ptr<std::atomic<std::uint64_t>> epoch_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

}  // namespace oopp::coll
