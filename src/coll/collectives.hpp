// Collective operations over process groups.
//
// The paper's conclusion claims the framework has the expressive power of
// the established models; this module makes that concrete by building the
// MPI-style collectives — broadcast, reduce, all-reduce, gather, scatter —
// purely out of objects executing methods on each other.
//
// Every collective exists in two forms:
//
//   flat — the master drives all N members directly (a §4 split loop).
//          One machine injects all the traffic, so with a finite-egress
//          NIC the cost grows ~N.
//   tree — members forward along a recursive-halving binomial tree, so
//          injection load spreads across machines and the critical path
//          is ~log2(N) rounds.  Each parent's call returns only after its
//          subtree completes, so the root's call completing IS the
//          collective's completion — no separate barrier needed.
//
// Experiment E11 measures the crossover.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/group.hpp"
#include "core/remote_ptr.hpp"
#include "rpc/binding.hpp"
#include "util/assert.hpp"
#include "util/type_name.hpp"

namespace oopp::coll {

enum class ReduceKind : std::uint8_t {
  kSum = 0,
  kProd = 1,
  kMin = 2,
  kMax = 3,
};

template <class T>
T combine_one(ReduceKind k, T a, T b) {
  switch (k) {
    case ReduceKind::kSum:
      return a + b;
    case ReduceKind::kProd:
      return a * b;
    case ReduceKind::kMin:
      return b < a ? b : a;
    case ReduceKind::kMax:
      return a < b ? b : a;
  }
  OOPP_CHECK_MSG(false, "unknown ReduceKind");
  return a;
}

template <class T>
void combine_into(ReduceKind k, std::vector<T>& acc,
                  const std::vector<T>& other) {
  OOPP_CHECK_MSG(acc.size() == other.size(),
                 "reduction buffers differ in length");
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i] = combine_one(k, acc[i], other[i]);
}

/// A group member participating in collectives.  Applications either use
/// it directly as a data holder or embed one per machine as a side-car.
///
/// Tree protocol: ranks are *relative* to the root (rel = (id - root + n)
/// mod n).  A node owning the relative range [rel, rel + span) halves the
/// range, hands the upper half to the member at rel + span/2, and recurses
/// on the lower half — the classic binomial schedule, expressed as nested
/// remote method executions.
template <class T>
class CollWorker {
 public:
  explicit CollWorker(int id) : id_(id) {}

  void set_group(int n, const ProcessGroup<CollWorker>& group) {
    OOPP_CHECK(static_cast<int>(group.size()) == n);
    n_ = n;
    group_ = group;
  }

  /// Tree-distributed wiring: install the membership and forward it down
  /// the binomial subtree [rel, rel+span).  make_group calls this once on
  /// member 0 with (0, n); the group then fans out member-to-member, so
  /// the master's NIC injects one group copy instead of N (the flat
  /// wiring's O(N^2) bytes from one egress port — measured in E11).
  void wire_group(std::int64_t rel, std::int64_t span, int n,
                  const ProcessGroup<CollWorker>& group) {
    set_group(n, group);
    std::vector<Future<void>> kids;
    std::int64_t s = span;
    while (s > 1) {
      const std::int64_t half = s / 2 + (s % 2);
      const std::int64_t child_rel = rel + half;
      kids.push_back(group_[static_cast<std::size_t>(child_rel)]
                         .template async<&CollWorker::wire_group>(
                             child_rel, s - half, n, group));
      s = half;
    }
    // Wiring completes as a whole or not at all.
    // oopp-lint: allow(future-bare-get)
    for (auto& f : kids) f.get();
  }

  void set_data(const std::vector<T>& v) { data_ = v; }
  std::vector<T> data() const { return data_; }
  int id() const { return id_; }

  // -- tree broadcast -------------------------------------------------------

  /// Deliver `value` to every member of the relative range [rel, rel+span).
  /// Called on the range's first member; returns when the whole subtree
  /// has the value.
  void tree_bcast(int root, std::int64_t rel, std::int64_t span,
                  const std::vector<T>& value) {
    check_wired();
    data_ = value;
    std::vector<Future<void>> kids;
    std::int64_t s = span;
    while (s > 1) {
      const std::int64_t half = s / 2 + (s % 2);  // lower half keeps extra
      const std::int64_t child_rel = rel + half;
      if (child_rel < rel + s) {
        kids.push_back(peer(child_rel, root)
                           .template async<&CollWorker::tree_bcast>(
                               root, child_rel, s - half, value));
      }
      s = half;
    }
    // Collective completion is all-or-nothing; the caller bounds the
    // whole operation.  oopp-lint: allow(future-bare-get)
    for (auto& f : kids) f.get();
  }

  // -- tree reduce ----------------------------------------------------------

  /// Combine the data of the relative range [rel, rel+span); returns the
  /// combined vector to the caller (ultimately the root's caller).
  std::vector<T> tree_reduce(int root, std::int64_t rel, std::int64_t span,
                             ReduceKind kind) const {
    check_wired();
    std::vector<Future<std::vector<T>>> kids;
    std::int64_t s = span;
    while (s > 1) {
      const std::int64_t half = s / 2 + (s % 2);
      const std::int64_t child_rel = rel + half;
      if (child_rel < rel + s) {
        kids.push_back(peer(child_rel, root)
                           .template async<&CollWorker::tree_reduce>(
                               root, child_rel, s - half, kind));
      }
      s = half;
    }
    std::vector<T> acc = data_;
    // oopp-lint: allow(future-bare-get) — see tree_bcast.
    for (auto& f : kids) combine_into(kind, acc, f.get());
    return acc;
  }

  // -- tree gather ----------------------------------------------------------

  /// Collect (absolute id, data) pairs for the subtree.
  std::vector<std::pair<std::int32_t, std::vector<T>>> tree_gather(
      int root, std::int64_t rel, std::int64_t span) const {
    check_wired();
    std::vector<Future<std::vector<std::pair<std::int32_t, std::vector<T>>>>>
        kids;
    std::int64_t s = span;
    while (s > 1) {
      const std::int64_t half = s / 2 + (s % 2);
      const std::int64_t child_rel = rel + half;
      if (child_rel < rel + s) {
        kids.push_back(peer(child_rel, root)
                           .template async<&CollWorker::tree_gather>(
                               root, child_rel, s - half));
      }
      s = half;
    }
    std::vector<std::pair<std::int32_t, std::vector<T>>> out;
    out.emplace_back(id_, data_);
    for (auto& f : kids) {
      auto part = f.get();  // oopp-lint: allow(future-bare-get) — see tree_bcast.
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  // -- tree scatter -----------------------------------------------------------

  /// Distribute chunks[i] to the member with relative rank rel + i, for
  /// the subtree rooted here.  chunks.size() == span.
  void tree_scatter(int root, std::int64_t rel,
                    const std::vector<std::vector<T>>& chunks) {
    check_wired();
    OOPP_CHECK(!chunks.empty());
    std::vector<Future<void>> kids;
    std::int64_t s = static_cast<std::int64_t>(chunks.size());
    while (s > 1) {
      const std::int64_t half = s / 2 + (s % 2);
      const std::int64_t child_rel = rel + half;
      if (child_rel < rel + s) {
        // Slice the child's subtree range straight out of the argument:
        // a working copy of the whole chunk vector at every hop would
        // duplicate the entire subtree payload in memory before any of
        // it is forwarded.
        std::vector<std::vector<T>> upper(chunks.begin() + half,
                                          chunks.begin() + s);
        kids.push_back(peer(child_rel, root)
                           .template async<&CollWorker::tree_scatter>(
                               root, child_rel, upper));
      }
      s = half;
    }
    data_ = chunks[0];
    // oopp-lint: allow(future-bare-get) — see tree_bcast.
    for (auto& f : kids) f.get();
  }

 private:
  void check_wired() const {
    OOPP_CHECK_MSG(n_ > 0, "set_group before collectives");
  }
  remote_ptr<CollWorker> peer(std::int64_t rel, int root) const {
    return group_[static_cast<std::size_t>((rel + root) % n_)];
  }

  int id_ = 0;
  int n_ = 0;
  ProcessGroup<CollWorker> group_;
  std::vector<T> data_;
};

// ---------------------------------------------------------------------------
// Master-side drivers
// ---------------------------------------------------------------------------

enum class Topology : std::uint8_t { kFlat = 0, kTree = 1 };

/// Create and wire a collective group, one member per placement(i).
///
/// Wiring topology defaults to the tree: member 0 receives the group
/// once and the membership fans out member-to-member along the binomial
/// schedule — the master injects O(N) bytes instead of the flat path's
/// O(N^2) (N serialized group copies through one egress port, which
/// dominated setup time at N=64; the flat path survives as kFlat for the
/// E11 setup measurement).
template <class T>
ProcessGroup<CollWorker<T>> make_group(
    int n, const std::function<net::MachineId(int)>& placement,
    Topology wiring = Topology::kTree) {
  ProcessGroup<CollWorker<T>> group;
  for (int i = 0; i < n; ++i)
    group.push_back(make_remote<CollWorker<T>>(placement(i), i));
  if (wiring == Topology::kTree) {
    group[0].template call<&CollWorker<T>::wire_group>(0, n, n, group);
  } else {
    for (int i = 0; i < n; ++i)
      group[i].template call<&CollWorker<T>::set_group>(n, group);
  }
  return group;
}

template <class T>
void broadcast(const ProcessGroup<CollWorker<T>>& group, int root,
               const std::vector<T>& value, Topology topo) {
  const auto n = static_cast<std::int64_t>(group.size());
  OOPP_CHECK(root >= 0 && root < n);
  if (topo == Topology::kFlat) {
    group.template gather<&CollWorker<T>::set_data>(value);
  } else {
    group[root].template call<&CollWorker<T>::tree_bcast>(root, 0, n, value);
  }
}

template <class T>
std::vector<T> reduce(const ProcessGroup<CollWorker<T>>& group, int root,
                      ReduceKind kind, Topology topo) {
  const auto n = static_cast<std::int64_t>(group.size());
  OOPP_CHECK(root >= 0 && root < n);
  if (topo == Topology::kFlat) {
    auto parts = group.template gather<&CollWorker<T>::data>();
    std::vector<T> acc = parts[root];
    for (std::int64_t i = 0; i < n; ++i) {
      if (i == root) continue;
      combine_into(kind, acc, parts[i]);
    }
    return acc;
  }
  return group[root].template call<&CollWorker<T>::tree_reduce>(root, 0, n,
                                                                kind);
}

template <class T>
std::vector<T> all_reduce(const ProcessGroup<CollWorker<T>>& group,
                          ReduceKind kind, Topology topo) {
  auto total = reduce(group, 0, kind, topo);
  broadcast(group, 0, total, topo);
  return total;
}

/// Root collects every member's data, ordered by member id.
template <class T>
std::vector<std::vector<T>> gather(const ProcessGroup<CollWorker<T>>& group,
                                   int root, Topology topo) {
  const auto n = static_cast<std::int64_t>(group.size());
  OOPP_CHECK(root >= 0 && root < n);
  std::vector<std::vector<T>> out(static_cast<std::size_t>(n));
  if (topo == Topology::kFlat) {
    auto parts = group.template gather<&CollWorker<T>::data>();
    for (std::int64_t i = 0; i < n; ++i) out[i] = std::move(parts[i]);
    return out;
  }
  auto pairs =
      group[root].template call<&CollWorker<T>::tree_gather>(root, 0, n);
  OOPP_CHECK(static_cast<std::int64_t>(pairs.size()) == n);
  for (auto& [id, data] : pairs) out[static_cast<std::size_t>(id)] =
                                     std::move(data);
  return out;
}

/// chunks[i] lands in member i's data.
template <class T>
void scatter(const ProcessGroup<CollWorker<T>>& group, int root,
             const std::vector<std::vector<T>>& chunks, Topology topo) {
  const auto n = static_cast<std::int64_t>(group.size());
  OOPP_CHECK(root >= 0 && root < n);
  OOPP_CHECK(static_cast<std::int64_t>(chunks.size()) == n);
  if (topo == Topology::kFlat) {
    std::vector<Future<void>> futs;
    for (std::int64_t i = 0; i < n; ++i)
      futs.push_back(group[i].template async<&CollWorker<T>::set_data>(
          chunks[static_cast<std::size_t>(i)]));
    // oopp-lint: allow(future-bare-get) — see tree_bcast.
    for (auto& f : futs) f.get();
    return;
  }
  // Rotate chunks into relative order for the tree.
  std::vector<std::vector<T>> rel(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    rel[static_cast<std::size_t>(i)] =
        chunks[static_cast<std::size_t>((i + root) % n)];
  group[root].template call<&CollWorker<T>::tree_scatter>(root, 0, rel);
}

}  // namespace oopp::coll

template <class T>
struct oopp::rpc::class_def<oopp::coll::CollWorker<T>> {
  using W = oopp::coll::CollWorker<T>;
  static std::string name() {
    return "oopp.coll.Worker<" + std::string(oopp::type_name<T>()) + ">";
  }
  using ctors = ctor_list<ctor<int>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&W::set_group>("set_group");
    b.template method<&W::wire_group>("wire_group");
    b.template method<&W::set_data>("set_data");
    b.template method<&W::data>("data");
    b.template method<&W::id>("id");
    b.template method<&W::tree_bcast>("tree_bcast");
    b.template method<&W::tree_reduce>("tree_reduce");
    b.template method<&W::tree_gather>("tree_gather");
    b.template method<&W::tree_scatter>("tree_scatter");
  }
};
