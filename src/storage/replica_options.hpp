// ReplicaOptions: the one durability knob surface (ROADMAP item 1).
//
// Folds every replication parameter — copy count, write/read quorums and
// the primary lease — into a single options struct carried on
// Cluster::Options, the same pattern net::FabricOptions and
// rpc::DispatchOptions established for the transport and dispatch layers.
// storage::ReplicatedPageDevice consumes it directly; the Cluster uses
// `replicas > 1` as the switch that also backs the symbolic-address
// registry with a replicated kv::KvStore.
#pragma once

#include <cstdint>

#include "rpc/errors.hpp"
#include "serial/archive.hpp"

namespace oopp::storage {

struct ReplicaOptions {
  /// Copies of each page (1 = no replication, the seed behavior).
  std::int32_t replicas = 1;
  /// Replica acks required before a write is acknowledged.
  /// 0 = majority (replicas / 2 + 1).
  std::int32_t write_quorum = 0;
  /// Replicas consulted per read.  1 = leased-primary fast path with
  /// version-stamped fallback; >1 = every read cross-checks stamps across
  /// that many replicas.
  std::int32_t read_quorum = 1;
  /// Primary lease duration per page range; also the Watchdog probe
  /// period driving proactive failover.
  std::uint32_t lease_ms = 200;

  [[nodiscard]] std::int32_t effective_write_quorum() const {
    return write_quorum > 0 ? write_quorum : replicas / 2 + 1;
  }

  /// Throws oopp::Error (kBadFrame) on a self-contradictory config —
  /// validation happens at the API boundary, not deep in a write path.
  void validate() const {
    if (replicas < 1)
      throw Error("ReplicaOptions: replicas must be >= 1",
                  net::CallStatus::kBadFrame);
    if (write_quorum < 0 || write_quorum > replicas)
      throw Error("ReplicaOptions: write_quorum outside [0, replicas]",
                  net::CallStatus::kBadFrame);
    if (read_quorum < 1 || read_quorum > replicas)
      throw Error("ReplicaOptions: read_quorum outside [1, replicas]",
                  net::CallStatus::kBadFrame);
    if (lease_ms == 0)
      throw Error("ReplicaOptions: lease_ms must be positive",
                  net::CallStatus::kBadFrame);
  }

  bool operator==(const ReplicaOptions&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, ReplicaOptions& o) {
  ar(o.replicas, o.write_quorum, o.read_quorum, o.lease_ms);
}

}  // namespace oopp::storage
