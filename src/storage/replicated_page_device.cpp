#include "storage/replicated_page_device.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "core/future.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace oopp::storage {

namespace {

telemetry::MetricScope& replica_scope() {
  return telemetry::Metrics::scope_for("storage.replica");
}

void record_stall(std::int64_t t0) {
  static auto& h = replica_scope().histogram("stall_ns");
  h.record(static_cast<std::uint64_t>(now_ns() - t0));
}

const remote_ptr<ArrayPageDevice>& checked_front(
    const std::vector<remote_ptr<ArrayPageDevice>>& replicas) {
  OOPP_CHECK_MSG(!replicas.empty(),
                 "ReplicatedPageDevice needs at least one replica");
  return replicas.front();
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / persistence
// ---------------------------------------------------------------------------

ReplicatedPageDevice::ReplicatedPageDevice(
    std::vector<remote_ptr<ArrayPageDevice>> replicas, ReplicaOptions options)
    : ArrayPageDevice(
          NoBackingTag{},
          checked_front(replicas).call<&PageDevice::number_of_pages>(),
          replicas.front().call<&ArrayPageDevice::n1>(),
          replicas.front().call<&ArrayPageDevice::n2>(),
          replicas.front().call<&ArrayPageDevice::n3>(), DeviceOptions{}),
      replicas_(std::move(replicas)),
      opts_(options) {
  opts_.replicas = static_cast<std::int32_t>(replicas_.size());
  opts_.validate();
  for (const auto& r : replicas_) {
    OOPP_CHECK_MSG(r.valid(), "null replica handle");
    OOPP_CHECK_MSG(r.call<&PageDevice::page_size>() == page_size(),
                   "replica page size mismatch");
    OOPP_CHECK_MSG(r.call<&PageDevice::number_of_pages>() == number_of_pages(),
                   "replica slot count mismatch");
  }
  const auto pages = static_cast<std::size_t>(number_of_pages());
  range_pages_ = std::max(
      1, number_of_pages() / static_cast<std::int32_t>(replicas_.size()));
  alive_.assign(replicas_.size(), true);
  versions_.assign(pages, 0);
  leases_.resize(static_cast<std::size_t>(range_of(number_of_pages() - 1)) + 1);
  start_watchdog();
}

ReplicatedPageDevice::Restored ReplicatedPageDevice::read_image(
    serial::IArchive& ia) {
  Restored r;
  ia(r.replicas, r.opts, r.npages, r.n1, r.n2, r.n3, r.versions);
  return r;
}

ReplicatedPageDevice::ReplicatedPageDevice(serial::IArchive& ia)
    : ReplicatedPageDevice(read_image(ia)) {}

ReplicatedPageDevice::ReplicatedPageDevice(Restored r)
    : ArrayPageDevice(NoBackingTag{}, r.npages, r.n1, r.n2, r.n3,
                      DeviceOptions{}),
      replicas_(std::move(r.replicas)),
      opts_(r.opts) {
  range_pages_ = std::max(
      1, number_of_pages() / static_cast<std::int32_t>(replicas_.size()));
  alive_.assign(replicas_.size(), true);
  versions_ = std::move(r.versions);
  versions_.resize(static_cast<std::size_t>(number_of_pages()), 0);
  leases_.resize(static_cast<std::size_t>(range_of(number_of_pages() - 1)) + 1);
  start_watchdog();
}

void ReplicatedPageDevice::oopp_save(serial::OArchive& oa) const {
  std::vector<std::uint64_t> versions;
  {
    std::lock_guard lock(mu_);
    versions = versions_;
  }
  std::vector<remote_ptr<ArrayPageDevice>> replicas = replicas_;
  ReplicaOptions opts = opts_;
  oa(replicas, opts, number_of_pages(), n1(), n2(), n3(), versions);
}

void ReplicatedPageDevice::start_watchdog() {
  // One probe round per lease period: a dead replica loses its leases at
  // most one lease after dying even if no read ever touches it.
  dog_ = std::make_unique<Watchdog>(opts_.lease_ms);
  for (const auto& r : replicas_) dog_->watch(r.ref());
}

// ---------------------------------------------------------------------------
// Liveness / leases
// ---------------------------------------------------------------------------

void ReplicatedPageDevice::poll_watchdog() const {
  if (!dog_) return;
  for (const auto& report : dog_->status()) {
    if (report.state != WatchState::kDead) continue;
    for (std::size_t i = 0; i < replicas_.size(); ++i)
      if (replicas_[i].ref() == report.target) {
        mark_dead(static_cast<std::int32_t>(i));
        break;
      }
  }
}

void ReplicatedPageDevice::mark_dead(std::int32_t replica) const {
  std::lock_guard lock(mu_);
  mark_dead_locked(replica);
}

void ReplicatedPageDevice::mark_dead_locked(std::int32_t replica) const {
  const auto r = static_cast<std::size_t>(replica);
  if (!alive_[r]) return;
  alive_[r] = false;
  static auto& lost = replica_scope().counter("replicas_lost");
  lost.add(1);
  // Every range this replica held a lease for fails over: the lease is
  // voided, and the next reader elects a surviving primary.
  static auto& failovers = replica_scope().counter("failovers");
  for (auto& lease : leases_) {
    if (lease.primary != replica) continue;
    lease.primary = -1;
    lease.expires_ns = 0;
    failovers.add(1);
  }
}

std::int32_t ReplicatedPageDevice::primary_for(std::int32_t range) const {
  const auto k = static_cast<std::int32_t>(replicas_.size());
  const std::int64_t now = now_ns();
  std::lock_guard lock(mu_);
  auto& lease = leases_[static_cast<std::size_t>(range)];
  if (lease.primary >= 0 && alive_[static_cast<std::size_t>(lease.primary)]) {
    if (now < lease.expires_ns) return lease.primary;
    // Same primary, fresh lease.
    lease.expires_ns =
        now + static_cast<std::int64_t>(opts_.lease_ms) * 1'000'000;
    static auto& renewals = replica_scope().counter("lease_renewals");
    renewals.add(1);
    return lease.primary;
  }
  // Elect: start at the range's home replica (spreads read load across
  // the set) and take the first survivor.
  for (std::int32_t step = 0; step < k; ++step) {
    const std::int32_t cand = (range + step) % k;
    if (!alive_[static_cast<std::size_t>(cand)]) continue;
    lease.primary = cand;
    lease.expires_ns =
        now + static_cast<std::int64_t>(opts_.lease_ms) * 1'000'000;
    return cand;
  }
  return -1;  // no survivors; callers escalate to kUnavailable
}

std::vector<std::int32_t> ReplicatedPageDevice::alive_snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < alive_.size(); ++i)
    if (alive_[i]) out.push_back(static_cast<std::int32_t>(i));
  return out;
}

std::int32_t ReplicatedPageDevice::alive_replicas() const {
  return static_cast<std::int32_t>(alive_snapshot().size());
}

ReplicaStatus ReplicatedPageDevice::replica_status() const {
  poll_watchdog();
  std::lock_guard lock(mu_);
  ReplicaStatus s;
  s.alive.reserve(alive_.size());
  for (const bool a : alive_) s.alive.push_back(a ? 1 : 0);
  s.range_primary.reserve(leases_.size());
  for (const auto& lease : leases_) s.range_primary.push_back(lease.primary);
  s.range_pages = range_pages_;
  return s;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

void ReplicatedPageDevice::write_pages(std::vector<Page> pages,
                                       std::vector<std::int32_t> indices) {
  OOPP_CHECK_MSG(pages.size() == indices.size(),
                 "write_pages: " << pages.size() << " pages for "
                                 << indices.size() << " indices");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    check_index(indices[i]);
    OOPP_CHECK_MSG(pages[i].size() == static_cast<std::size_t>(page_size()),
                   "page size " << pages[i].size() << " != device page size "
                                << page_size());
  }
  telemetry::LocalSpan span("storage.replica.write");
  poll_watchdog();

  // Stamp each page one past its acknowledged version.  The coordinator's
  // command queue serializes mutations, so the next version is free.
  std::vector<std::uint64_t> stamps(indices.size());
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < indices.size(); ++i)
      stamps[i] = versions_[static_cast<std::size_t>(indices[i])] + 1;
  }

  const auto targets = alive_snapshot();
  std::vector<std::pair<std::int32_t, Future<void>>> in_flight;
  in_flight.reserve(targets.size());
  for (const auto r : targets)
    in_flight.emplace_back(
        r, replicas_[static_cast<std::size_t>(r)]
               .async<&PageDevice::write_pages_stamped>(pages, indices,
                                                        stamps));
  std::int32_t acks = 0;
  const std::int64_t t0 = now_ns();
  bool stalled = false;
  for (auto& [r, fut] : in_flight) {
    try {
      fut.get();
      ++acks;
    } catch (const Error&) {
      // A replica that missed an acknowledged write may never serve
      // again — dead is sticky.
      mark_dead(r);
      stalled = true;
    }
  }
  if (acks < opts_.effective_write_quorum())
    throw Error("replicated write lost its quorum: " + std::to_string(acks) +
                    " of " + std::to_string(replicas_.size()) +
                    " replicas acknowledged, quorum is " +
                    std::to_string(opts_.effective_write_quorum()),
                net::CallStatus::kUnavailable);
  if (stalled) record_stall(t0);

  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      auto& v = versions_[static_cast<std::size_t>(indices[i])];
      v = std::max(v, stamps[i]);
    }
  }
  static auto& writes = replica_scope().counter("replica_writes");
  writes.add(indices.size() * static_cast<std::uint64_t>(acks));
  operations_.fetch_add(indices.size(), std::memory_order_relaxed);
}

void ReplicatedPageDevice::write(const Page& p, int page_index) {
  std::vector<Page> pages;
  pages.push_back(p);
  ReplicatedPageDevice::write_pages(std::move(pages), {page_index});
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

void ReplicatedPageDevice::quorum_read(
    const std::vector<std::int32_t>& indices,
    const std::vector<std::size_t>& positions,
    const std::vector<std::uint64_t>& expected, std::vector<Page>& out) const {
  std::vector<std::int32_t> need;
  need.reserve(positions.size());
  for (const auto pos : positions) need.push_back(indices[pos]);

  const auto targets = alive_snapshot();
  std::vector<std::pair<std::int32_t, Future<StampedPages>>> in_flight;
  in_flight.reserve(targets.size());
  for (const auto r : targets)
    in_flight.emplace_back(r, replicas_[static_cast<std::size_t>(r)]
                                  .async<&PageDevice::read_pages_stamped>(need));
  std::vector<StampedPages> answers;
  for (auto& [r, fut] : in_flight) {
    try {
      answers.push_back(fut.get());
    } catch (const Error&) {
      mark_dead(r);
    }
  }
  if (static_cast<std::int32_t>(answers.size()) < opts_.read_quorum)
    throw Error("quorum read failed: " + std::to_string(answers.size()) +
                    " replicas answered, read quorum is " +
                    std::to_string(opts_.read_quorum),
                net::CallStatus::kUnavailable);

  static auto& quorum_reads = replica_scope().counter("quorum_reads");
  quorum_reads.add(1);

  // Version-stamped resolution: the freshest copy wins; anything older
  // than the acknowledged version means every up-to-date replica is gone.
  for (std::size_t j = 0; j < positions.size(); ++j) {
    std::uint64_t best = 0;
    const Page* page = nullptr;
    for (const auto& a : answers) {
      if (a.stamps[j] >= best) {
        best = a.stamps[j];
        page = &a.pages[j];
      }
    }
    if (page == nullptr || best < expected[positions[j]])
      throw Error("replicated page " + std::to_string(need[j]) +
                      " lost: freshest surviving stamp " +
                      std::to_string(best) + " < acknowledged version " +
                      std::to_string(expected[positions[j]]),
                  net::CallStatus::kUnavailable);
    out[positions[j]] = *page;
  }
}

std::vector<Page> ReplicatedPageDevice::read_pages(
    std::vector<std::int32_t> indices) const {
  for (const auto idx : indices) check_index(idx);
  telemetry::LocalSpan span("storage.replica.read");
  poll_watchdog();

  // The acknowledged versions this read must observe (snapshot once; a
  // concurrent write may push replicas *ahead*, which `>=` tolerates).
  std::vector<std::uint64_t> expected(indices.size());
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < indices.size(); ++i)
      expected[i] = versions_[static_cast<std::size_t>(indices[i])];
  }

  std::vector<Page> out(indices.size());
  std::vector<std::size_t> pending;  // positions not yet served
  pending.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) pending.push_back(i);

  if (opts_.read_quorum == 1) {
    // Leased-primary fast path: group positions by the primary of their
    // page range, one batched stamped read per primary.  Positions whose
    // range has no electable primary go straight to quorum resolution.
    std::map<std::int32_t, std::vector<std::size_t>> by_primary;
    std::vector<std::size_t> leftover;
    for (const auto pos : pending) {
      const auto p = primary_for(range_of(indices[pos]));
      if (p >= 0)
        by_primary[p].push_back(pos);
      else
        leftover.push_back(pos);
    }
    for (auto& [r, positions] : by_primary) {
      std::vector<std::int32_t> need;
      need.reserve(positions.size());
      for (const auto pos : positions) need.push_back(indices[pos]);
      const std::int64_t t0 = now_ns();
      try {
        auto sp = replicas_[static_cast<std::size_t>(r)]
                      .call<&PageDevice::read_pages_stamped>(need);
        for (std::size_t j = 0; j < positions.size(); ++j) {
          if (sp.stamps[j] >= expected[positions[j]])
            out[positions[j]] = std::move(sp.pages[j]);
          else
            leftover.push_back(positions[j]);  // stale → quorum resolves
        }
      } catch (const Error&) {
        mark_dead(r);
        record_stall(t0);
        leftover.insert(leftover.end(), positions.begin(), positions.end());
      }
    }
    pending = std::move(leftover);
  }

  if (!pending.empty()) quorum_read(indices, pending, expected, out);

  operations_.fetch_add(indices.size(), std::memory_order_relaxed);
  return out;
}

Page ReplicatedPageDevice::read(int page_index) const {
  return ReplicatedPageDevice::read_pages({page_index}).front();
}

// ---------------------------------------------------------------------------
// Compute-at-data with failover
// ---------------------------------------------------------------------------

double ReplicatedPageDevice::sum(int page_address) const {
  check_index(page_address);
  poll_watchdog();
  const std::int64_t t0 = now_ns();
  for (std::size_t attempt = 0; attempt <= replicas_.size(); ++attempt) {
    const auto r = primary_for(range_of(page_address));
    if (r < 0) break;
    try {
      const double s = replicas_[static_cast<std::size_t>(r)]
                           .call<&ArrayPageDevice::sum>(page_address);
      if (attempt > 0) record_stall(t0);
      return s;
    } catch (const Error&) {
      mark_dead(r);
    }
  }
  throw Error("replicated sum: no surviving replica",
              net::CallStatus::kUnavailable);
}

double ReplicatedPageDevice::reduce_region(Reduce op, int page_address,
                                           index_t lo1, index_t hi1,
                                           index_t lo2, index_t hi2,
                                           index_t lo3, index_t hi3) const {
  check_index(page_address);
  poll_watchdog();
  const std::int64_t t0 = now_ns();
  for (std::size_t attempt = 0; attempt <= replicas_.size(); ++attempt) {
    const auto r = primary_for(range_of(page_address));
    if (r < 0) break;
    try {
      const double v =
          replicas_[static_cast<std::size_t>(r)]
              .call<&ArrayPageDevice::reduce_region>(op, page_address, lo1,
                                                     hi1, lo2, hi2, lo3, hi3);
      if (attempt > 0) record_stall(t0);
      return v;
    } catch (const Error&) {
      mark_dead(r);
    }
  }
  throw Error("replicated reduce_region: no surviving replica",
              net::CallStatus::kUnavailable);
}

// ---------------------------------------------------------------------------
// Capacity / re-layout
// ---------------------------------------------------------------------------

void ReplicatedPageDevice::grow_state_locked(std::size_t pages) {
  versions_.resize(pages, 0);
  const auto ranges =
      static_cast<std::size_t>((pages - 1) / static_cast<std::size_t>(
                                                 range_pages_)) +
      1;
  if (ranges > leases_.size()) leases_.resize(ranges);
}

void ReplicatedPageDevice::ensure_capacity(int pages) {
  OOPP_CHECK_MSG(pages > 0, "ensure_capacity needs a positive page count");
  if (pages <= number_of_pages()) return;
  poll_watchdog();
  const auto targets = alive_snapshot();
  std::vector<std::pair<std::int32_t, Future<void>>> in_flight;
  for (const auto r : targets)
    in_flight.emplace_back(r, replicas_[static_cast<std::size_t>(r)]
                                  .async<&PageDevice::ensure_capacity>(pages));
  std::int32_t acks = 0;
  for (auto& [r, fut] : in_flight) {
    try {
      fut.get();
      ++acks;
    } catch (const Error&) {
      mark_dead(r);
    }
  }
  if (acks < opts_.effective_write_quorum())
    throw Error("ensure_capacity lost its replica quorum",
                net::CallStatus::kUnavailable);
  std::lock_guard lock(mu_);
  grow_state_locked(static_cast<std::size_t>(pages));
  number_of_pages_.store(pages, std::memory_order_release);
}

void ReplicatedPageDevice::quiesce_pages(std::vector<std::int32_t> indices,
                                         std::uint64_t map_version) {
  for (const auto idx : indices) check_index(idx);
  const auto targets = alive_snapshot();
  std::vector<std::pair<std::int32_t, Future<void>>> in_flight;
  for (const auto r : targets)
    in_flight.emplace_back(
        r, replicas_[static_cast<std::size_t>(r)]
               .async<&ArrayPageDevice::quiesce_pages>(indices, map_version));
  for (auto& [r, fut] : in_flight) {
    try {
      fut.get();
    } catch (const Error&) {
      mark_dead(r);
    }
  }
}

}  // namespace oopp::storage
