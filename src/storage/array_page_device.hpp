// ArrayPageDevice: a PageDevice storing three-dimensional array blocks of
// N1 x N2 x N3 doubles (paper §3).
//
// The derived process serves the base protocol (write/read of raw pages)
// plus structure-aware methods — most importantly sum(page_address), the
// paper's example of "moving the computation to the data": the reduction
// runs on the machine holding the page and only the scalar result crosses
// the network.
//
// The remote_ptr constructor is the paper's §5 example — a new process
// created from a pointer to an existing process.  It adopts the existing
// device's backing file (both processes co-exist over the same storage);
// the caller may subsequently delete the original.
#pragma once

#include "core/remote_ptr.hpp"
#include "storage/array_page.hpp"
#include "storage/page_device.hpp"

namespace oopp::storage {

class ArrayPageDevice : public PageDevice {
 public:
  ArrayPageDevice(std::string filename, int number_of_pages, int n1, int n2,
                  int n3);
  ArrayPageDevice(std::string filename, int number_of_pages, int n1, int n2,
                  int n3, DeviceOptions options);

  /// Adopt the storage of an existing (possibly remote) PageDevice whose
  /// page size equals n1 * n2 * n3 * sizeof(double).
  ArrayPageDevice(remote_ptr<PageDevice> existing, int n1, int n2, int n3);

  /// Restore from a passivated image.
  explicit ArrayPageDevice(serial::IArchive& ia);
  void oopp_save(serial::OArchive& oa) const;

  /// Structure-aware page I/O.
  [[nodiscard]] ArrayPage read_array(int page_index) const;
  void write_array(const ArrayPage& p, int page_index);

  /// Batched structure-aware I/O: one remote call per device moves a
  /// whole slab's worth of blocks (rides the per-peer frame batching of
  /// the wire and amortizes simulated seeks over contiguous runs).
  [[nodiscard]] std::vector<ArrayPage> read_arrays(
      std::vector<std::int32_t> indices) const;
  void write_arrays(std::vector<ArrayPage> pages,
                    std::vector<std::int32_t> indices);

  /// "Move the computation to the data": sum of all elements of the page
  /// at the given address, computed device-side (paper §3).  Virtual so a
  /// ReplicatedPageDevice can keep the compute at the data by shipping
  /// the reduction to its leased primary replica instead of pulling the
  /// page to the coordinator.
  [[nodiscard]] virtual double sum(int page_address) const;

  /// Device-side partial reduction over an index range within a page —
  /// used by Array::sum for pages only partially covered by a domain.
  [[nodiscard]] double sum_region(int page_address, index_t lo1, index_t hi1,
                                  index_t lo2, index_t hi2, index_t lo3,
                                  index_t hi3) const;

  /// Generalized device-side reduction kernel ("move the computation to
  /// the data", §3, beyond sum).
  enum class Reduce : std::uint8_t {
    kSum = 0,
    kMin = 1,
    kMax = 2,
    kSumSq = 3,  // sum of squares (for norms)
  };
  [[nodiscard]] virtual double reduce_region(Reduce op, int page_address,
                                             index_t lo1, index_t hi1,
                                             index_t lo2, index_t hi2,
                                             index_t lo3, index_t hi3) const;

  /// Third-party transfer: fetch a page directly from another (possibly
  /// remote) device and store it locally.  The client that orders the
  /// copy sends one tiny command; the page bytes travel device → device
  /// and never pass through the client ("move the data movement to the
  /// data", the §3 idea applied to transfers).
  void pull_page(remote_ptr<ArrayPageDevice> source, int source_index,
                 int dst_index);

  /// Device-side in-place update kernel: the page never leaves the
  /// device's machine.
  enum class Update : std::uint8_t {
    kFill = 0,   // x = s
    kScale = 1,  // x *= s
    kShift = 2,  // x += s
  };
  void update_region(Update op, double s, int page_address, index_t lo1,
                     index_t hi1, index_t lo2, index_t hi2, index_t lo3,
                     index_t hi3);

  /// Re-layout barrier: an Array migrator announces it is about to move
  /// the raw bytes of these slots under map version `map_version`.  A
  /// plain device has no cached state to reconcile, so this is a no-op;
  /// CoherentDevice overrides it to recall dirty owners and invalidate
  /// subscribers so no DSM cache serves bytes across the version bump.
  virtual void quiesce_pages(std::vector<std::int32_t> indices,
                             std::uint64_t map_version);

  [[nodiscard]] int n1() const { return static_cast<int>(extents_.n1); }
  [[nodiscard]] int n2() const { return static_cast<int>(extents_.n2); }
  [[nodiscard]] int n3() const { return static_cast<int>(extents_.n3); }
  [[nodiscard]] const Extents3& extents() const { return extents_; }

 protected:
  /// Fileless construction for coordinator devices (see
  /// PageDevice::NoBackingTag).
  ArrayPageDevice(NoBackingTag, int number_of_pages, int n1, int n2, int n3,
                  DeviceOptions options);

 private:
  Extents3 extents_{};
};

}  // namespace oopp::storage

// Protocol: inherit PageDevice's description, add the structure-aware
// methods — the paper's "no new syntax is needed" (§3).
template <>
struct oopp::rpc::class_def<oopp::storage::ArrayPageDevice> {
  using D = oopp::storage::ArrayPageDevice;
  using Base = oopp::storage::PageDevice;
  static std::string name() { return "oopp.storage.ArrayPageDevice"; }
  using ctors = ctor_list<
      ctor<std::string, int, int, int, int>,
      ctor<std::string, int, int, int, int, oopp::storage::DeviceOptions>,
      ctor<oopp::remote_ptr<Base>, int, int, int>>;
  template <class B>
  static void bind(B& b) {
    class_def<Base>::bind(b);  // process inheritance
    b.template method<&D::read_array>("read_array");
    b.template method<&D::write_array>("write_array");
    b.template method<&D::read_arrays>("read_arrays");
    b.template method<&D::write_arrays>("write_arrays");
    b.template method<&D::sum>("sum");
    b.template method<&D::sum_region>("sum_region");
    b.template method<&D::reduce_region>("reduce_region");
    b.template method<&D::update_region>("update_region");
    b.template method<&D::quiesce_pages>("quiesce_pages");
    b.template method<&D::pull_page>("pull_page");
    b.template method<&D::n1>("n1");
    b.template method<&D::n2>("n2");
    b.template method<&D::n3>("n3");
  }
};
