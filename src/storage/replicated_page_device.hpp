// ReplicatedPageDevice: k-replica page storage behind the ordinary
// PageDevice protocol (ROADMAP item 1 — "data survives faults").
//
// The coordinator is itself an ArrayPageDevice process with no backing
// file; every virtual I/O method fans out to k plain replica devices:
//
//   * writes go to every live replica with a per-page version stamp and
//     are acknowledged once `write_quorum` replicas confirm (the remote
//     calls ride PR 3's attempt-stamped dedup and PR 4's batching, so a
//     retried replicated write is applied exactly once per replica);
//   * reads take a leased-primary fast path — one replica holds a
//     time-bounded lease per contiguous page range — and every returned
//     page's stamp is checked against the coordinator's authoritative
//     version; a stale or dead primary triggers failover: the range is
//     re-leased to a surviving replica and the read completes as a
//     version-stamped quorum read (max stamp wins, at least `read_quorum`
//     replicas must answer);
//   * replica death is detected reactively (a failed call) and
//     proactively (a Watchdog probing each replica on the lease period);
//     dead is sticky — a replica that missed one acknowledged write can
//     never serve a stale page again.
//
// Because the coordinator *is* an ArrayPageDevice, a
// remote_ptr<ReplicatedPageDevice> drops into any BlockStorage slot:
// Array slices, the out-of-core FFT, DSM caches and online
// redistribution all get replicated durability without source changes.
//
// Telemetry scope "storage.replica": quorum_reads, replica_writes,
// failovers, lease_renewals, replicas_lost + stall_ns histogram (time a
// caller waited on a failover).  docs/REPLICATION.md walks the protocol.
#pragma once

#include <memory>
#include <vector>

#include "core/remote_ptr.hpp"
#include "core/watchdog.hpp"
#include "storage/array_page_device.hpp"
#include "storage/replica_options.hpp"

namespace oopp::storage {

/// Snapshot of the coordinator's replica set for tests and admin tools.
struct ReplicaStatus {
  std::vector<std::uint8_t> alive;          // per replica: 1 = serving
  std::vector<std::int32_t> range_primary;  // per range: replica index or -1
  std::int32_t range_pages = 0;             // pages per lease range
};

template <class Ar>
void oopp_serialize(Ar& ar, ReplicaStatus& s) {
  ar(s.alive, s.range_primary, s.range_pages);
}

class ReplicatedPageDevice : public ArrayPageDevice {
 public:
  /// All replicas must share one page shape and slot count; `options`
  /// quorums are validated against the actual replica count.
  ReplicatedPageDevice(std::vector<remote_ptr<ArrayPageDevice>> replicas,
                       ReplicaOptions options);

  /// Restore from a passivated image.  Replica liveness is re-learned:
  /// everyone starts presumed alive, and the stamp checks guarantee a
  /// replica that went stale in the meantime cannot serve a read.
  explicit ReplicatedPageDevice(serial::IArchive& ia);
  void oopp_save(serial::OArchive& oa) const;

  // -- replicated I/O (overrides of the virtual device protocol) -------------
  void write(const Page& p, int page_index) override;
  [[nodiscard]] Page read(int page_index) const override;
  [[nodiscard]] std::vector<Page> read_pages(
      std::vector<std::int32_t> indices) const override;
  void write_pages(std::vector<Page> pages,
                   std::vector<std::int32_t> indices) override;
  void ensure_capacity(int pages) override;

  /// Compute-at-data reductions are shipped to the leased primary of the
  /// page's range (with failover), so replication keeps the paper's §3
  /// "move the computation to the data" property.
  [[nodiscard]] double sum(int page_address) const override;
  [[nodiscard]] double reduce_region(Reduce op, int page_address, index_t lo1,
                                     index_t hi1, index_t lo2, index_t hi2,
                                     index_t lo3, index_t hi3) const override;

  void quiesce_pages(std::vector<std::int32_t> indices,
                     std::uint64_t map_version) override;

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] ReplicaStatus replica_status() const;
  [[nodiscard]] std::vector<remote_ptr<ArrayPageDevice>> replica_refs() const {
    return replicas_;
  }
  [[nodiscard]] std::int32_t replica_count() const {
    return static_cast<std::int32_t>(replicas_.size());
  }
  [[nodiscard]] std::int32_t alive_replicas() const;

 private:
  struct Lease {
    std::int32_t primary = -1;
    std::int64_t expires_ns = 0;
  };
  struct Restored {
    std::vector<remote_ptr<ArrayPageDevice>> replicas;
    ReplicaOptions opts;
    std::int32_t npages = 0;
    std::int32_t n1 = 1, n2 = 1, n3 = 1;
    std::vector<std::uint64_t> versions;
  };
  explicit ReplicatedPageDevice(Restored r);
  static Restored read_image(serial::IArchive& ia);

  void start_watchdog();
  /// Fold the Watchdog's verdicts into alive_ (proactive failover).
  void poll_watchdog() const;
  [[nodiscard]] std::int32_t range_of(int page_index) const {
    return page_index / range_pages_;
  }
  /// Elect / renew the leased primary of a range.  Pure local state — no
  /// remote calls; the stamp checks validate the choice on the next read.
  [[nodiscard]] std::int32_t primary_for(std::int32_t range) const;
  void mark_dead(std::int32_t replica) const;
  void mark_dead_locked(std::int32_t replica) const;
  [[nodiscard]] std::vector<std::int32_t> alive_snapshot() const;
  void grow_state_locked(std::size_t pages);

  /// Version-stamped quorum read of `indices[pos]` for every pos in
  /// `positions`, writing into `out[pos]`.  Throws kUnavailable when
  /// fewer than read_quorum replicas answer or the freshest stamp is
  /// older than the acknowledged version.
  void quorum_read(const std::vector<std::int32_t>& indices,
                   const std::vector<std::size_t>& positions,
                   const std::vector<std::uint64_t>& expected,
                   std::vector<Page>& out) const;

  std::vector<remote_ptr<ArrayPageDevice>> replicas_;  // immutable set
  ReplicaOptions opts_;
  std::int32_t range_pages_ = 1;
  std::unique_ptr<Watchdog> dog_;

  mutable util::CheckedMutex mu_{"storage.ReplicatedPageDevice"};
  mutable std::vector<bool> alive_;                 // sticky false
  mutable std::vector<std::uint64_t> versions_;     // acked version per page
  mutable std::vector<Lease> leases_;               // per range
};

}  // namespace oopp::storage

// Protocol: process inheritance from ArrayPageDevice — a coordinator
// answers the full device protocol — plus replica introspection.
template <>
struct oopp::rpc::class_def<oopp::storage::ReplicatedPageDevice> {
  using D = oopp::storage::ReplicatedPageDevice;
  using Base = oopp::storage::ArrayPageDevice;
  static std::string name() { return "oopp.storage.ReplicatedPageDevice"; }
  using ctors = ctor_list<ctor<std::vector<oopp::remote_ptr<Base>>,
                               oopp::storage::ReplicaOptions>>;
  template <class B>
  static void bind(B& b) {
    class_def<Base>::bind(b);  // full device protocol, replicated
    b.template method<&D::replica_status>("replica_status");
    b.template method<&D::replica_refs>("replica_refs");
    b.template method<&D::replica_count>("replica_count");
    b.template method<&D::alive_replicas>("alive_replicas");
    b.persistent();
  }
};
