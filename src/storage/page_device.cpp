#include "storage/page_device.hpp"

#include <chrono>
#include <thread>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace oopp::storage {

PageDevice::PageDevice(std::string filename, int number_of_pages,
                       int page_size)
    : PageDevice(std::move(filename), number_of_pages, page_size,
                 DeviceOptions{}) {}

PageDevice::PageDevice(std::string filename, int number_of_pages,
                       int page_size, DeviceOptions options)
    : PageDevice(std::move(filename), number_of_pages, page_size, options,
                 /*truncate=*/true) {}

PageDevice::PageDevice(std::string filename, int number_of_pages,
                       int page_size, DeviceOptions options, bool truncate)
    : filename_(std::move(filename)),
      number_of_pages_(number_of_pages),
      page_size_(page_size),
      options_(options) {
  OOPP_CHECK_MSG(number_of_pages > 0 && page_size_ > 0,
                 "PageDevice needs positive page count and size");
  open_or_create(truncate);
}

PageDevice::PageDevice(NoBackingTag, int number_of_pages, int page_size,
                       DeviceOptions options)
    : number_of_pages_(number_of_pages),
      page_size_(page_size),
      options_(options) {
  OOPP_CHECK_MSG(number_of_pages > 0 && page_size_ > 0,
                 "PageDevice needs positive page count and size");
  // No file: every I/O method must be overridden by the derived class.
}

PageDevice::PageDevice(serial::IArchive& ia) {
  std::uint64_t ops = 0;
  int pages = 0;
  ia(filename_, pages, page_size_, options_, ops, stamps_);
  number_of_pages_.store(pages, std::memory_order_relaxed);
  operations_.store(ops, std::memory_order_relaxed);
  // The backing file holds the pages; re-open without truncating.
  open_or_create(/*truncate=*/false);
}

void PageDevice::oopp_save(serial::OArchive& oa) const {
  // Push buffered writes to the file so the image + file pair is
  // consistent at the checkpoint.
  if (f_) std::fflush(f_);
  std::vector<std::uint64_t> stamps;
  {
    std::lock_guard lock(io_mu_);
    stamps = stamps_;
  }
  oa(filename_, number_of_pages(), page_size_, options_, operations(),
     stamps);
}

PageDevice::~PageDevice() {
  if (f_) std::fclose(f_);
}

void PageDevice::open_or_create(bool truncate) {
  const auto expected =
      static_cast<long>(number_of_pages()) * static_cast<long>(page_size_);
  if (!truncate) {
    f_ = std::fopen(filename_.c_str(), "r+b");
    OOPP_CHECK_MSG(f_ != nullptr,
                   "PageDevice: backing file '" << filename_ << "' missing");
    return;
  }
  f_ = std::fopen(filename_.c_str(), "w+b");
  OOPP_CHECK_MSG(f_ != nullptr,
                 "PageDevice: cannot create '" << filename_ << "'");
  // Pre-size the file: NumberOfPages * PageSize bytes, as in the paper.
  OOPP_CHECK(std::fseek(f_, expected - 1, SEEK_SET) == 0);
  const unsigned char zero = 0;
  OOPP_CHECK(std::fwrite(&zero, 1, 1, f_) == 1);
  OOPP_CHECK(std::fflush(f_) == 0);
}

void PageDevice::check_index(int page_index) const {
  const int pages = number_of_pages();
  OOPP_CHECK_MSG(page_index >= 0 && page_index < pages,
                 "page index " << page_index << " out of [0, " << pages
                               << ")");
}

void PageDevice::ensure_capacity(int pages) {
  OOPP_CHECK_MSG(pages > 0, "ensure_capacity needs a positive page count");
  if (pages <= number_of_pages()) return;
  static auto& grows =
      telemetry::Metrics::scope_for("storage").counter("capacity_grows");
  grows.add(1);
  std::lock_guard lock(io_mu_);
  if (pages <= number_of_pages()) return;
  // Extend and zero-fill the backing file to the new size, the same
  // pre-sizing trick the constructor uses; existing slots are untouched,
  // so concurrent reentrant reads of old indices stay valid.
  const auto bytes = static_cast<long>(pages) * static_cast<long>(page_size_);
  OOPP_CHECK(std::fseek(f_, bytes - 1, SEEK_SET) == 0);
  const unsigned char zero = 0;
  OOPP_CHECK(std::fwrite(&zero, 1, 1, f_) == 1);
  OOPP_CHECK(std::fflush(f_) == 0);
  number_of_pages_.store(pages, std::memory_order_release);
}

void PageDevice::simulate_service_time() const {
  if (options_.service_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(options_.service_us));
}

void PageDevice::write(const Page& p, int page_index) {
  check_index(page_index);
  OOPP_CHECK_MSG(p.size() == static_cast<std::size_t>(page_size_),
                 "page size " << p.size() << " != device page size "
                              << page_size_);
  // Local span + latency histogram: page I/O is the storage data plane's
  // unit of work, and nesting it under the serving span is what makes the
  // "client → sum → page reads" chain visible in merged traces.
  telemetry::LocalSpan span("storage.page_write");
  static auto& page_writes =
      telemetry::Metrics::scope_for("storage").counter("page_writes");
  page_writes.add(1);
  const std::int64_t t0 = telemetry::enabled() ? now_ns() : 0;
  simulate_service_time();
  const auto offset =
      static_cast<long>(page_index) * static_cast<long>(page_size_);
  {
    std::lock_guard lock(io_mu_);
    OOPP_CHECK(std::fseek(f_, offset, SEEK_SET) == 0);
    OOPP_CHECK(std::fwrite(p.data(), 1, p.size(), f_) == p.size());
    // Push through stdio so a co-existing process over the same backing
    // file (paper §5's adopting constructor) observes the write.
    OOPP_CHECK(std::fflush(f_) == 0);
  }
  operations_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    static auto& h =
        telemetry::Metrics::scope_for("storage").histogram("page_write_ns");
    h.record(static_cast<std::uint64_t>(now_ns() - t0));
  }
}

Page PageDevice::read(int page_index) const {
  check_index(page_index);
  telemetry::LocalSpan span("storage.page_read");
  static auto& page_reads =
      telemetry::Metrics::scope_for("storage").counter("page_reads");
  page_reads.add(1);
  const std::int64_t t0 = telemetry::enabled() ? now_ns() : 0;
  simulate_service_time();
  Page p(static_cast<std::size_t>(page_size_));
  const auto offset =
      static_cast<long>(page_index) * static_cast<long>(page_size_);
  {
    std::lock_guard lock(io_mu_);
    OOPP_CHECK(std::fseek(f_, offset, SEEK_SET) == 0);
    OOPP_CHECK(std::fread(p.data(), 1, p.size(), f_) == p.size());
  }
  operations_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    static auto& h =
        telemetry::Metrics::scope_for("storage").histogram("page_read_ns");
    h.record(static_cast<std::uint64_t>(now_ns() - t0));
  }
  return p;
}

namespace {

/// Contiguous ascending runs in an index list — each run costs one
/// simulated seek in the batched paths.
int count_runs(const std::vector<std::int32_t>& indices) {
  int runs = 0;
  for (std::size_t i = 0; i < indices.size(); ++i)
    if (i == 0 || indices[i] != indices[i - 1] + 1) ++runs;
  return runs;
}

}  // namespace

std::vector<Page> PageDevice::read_pages(
    std::vector<std::int32_t> indices) const {
  telemetry::LocalSpan span("storage.read_pages");
  auto& scope = telemetry::Metrics::scope_for("storage.batch_io");
  static auto& batch_reads = scope.counter("batch_reads");
  static auto& pages_read = scope.counter("pages_read");
  static auto& batch_pages_h = scope.histogram("batch_pages");
  batch_reads.add(1);
  pages_read.add(indices.size());
  batch_pages_h.record(indices.size());

  for (const auto idx : indices) check_index(idx);
  for (int r = count_runs(indices); r > 0; --r) simulate_service_time();

  std::vector<Page> out;
  out.reserve(indices.size());
  {
    std::lock_guard lock(io_mu_);
    for (const auto idx : indices) {
      Page p(static_cast<std::size_t>(page_size_));
      const auto offset =
          static_cast<long>(idx) * static_cast<long>(page_size_);
      OOPP_CHECK(std::fseek(f_, offset, SEEK_SET) == 0);
      OOPP_CHECK(std::fread(p.data(), 1, p.size(), f_) == p.size());
      out.push_back(std::move(p));
    }
  }
  operations_.fetch_add(indices.size(), std::memory_order_relaxed);
  return out;
}

void PageDevice::write_pages(std::vector<Page> pages,
                             std::vector<std::int32_t> indices) {
  OOPP_CHECK_MSG(pages.size() == indices.size(),
                 "write_pages: " << pages.size() << " pages for "
                                 << indices.size() << " indices");
  telemetry::LocalSpan span("storage.write_pages");
  auto& scope = telemetry::Metrics::scope_for("storage.batch_io");
  static auto& batch_writes = scope.counter("batch_writes");
  static auto& pages_written = scope.counter("pages_written");
  static auto& batch_pages_h = scope.histogram("batch_pages");
  batch_writes.add(1);
  pages_written.add(indices.size());
  batch_pages_h.record(indices.size());

  for (std::size_t i = 0; i < indices.size(); ++i) {
    check_index(indices[i]);
    OOPP_CHECK_MSG(pages[i].size() == static_cast<std::size_t>(page_size_),
                   "page size " << pages[i].size() << " != device page size "
                                << page_size_);
  }
  for (int r = count_runs(indices); r > 0; --r) simulate_service_time();

  {
    std::lock_guard lock(io_mu_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto offset =
          static_cast<long>(indices[i]) * static_cast<long>(page_size_);
      OOPP_CHECK(std::fseek(f_, offset, SEEK_SET) == 0);
      OOPP_CHECK(std::fwrite(pages[i].data(), 1, pages[i].size(), f_) ==
                 pages[i].size());
    }
    OOPP_CHECK(std::fflush(f_) == 0);
  }
  operations_.fetch_add(indices.size(), std::memory_order_relaxed);
}

void PageDevice::write_pages_stamped(std::vector<Page> pages,
                                     std::vector<std::int32_t> indices,
                                     std::vector<std::uint64_t> stamps) {
  OOPP_CHECK_MSG(stamps.size() == indices.size(),
                 "write_pages_stamped: " << stamps.size() << " stamps for "
                                         << indices.size() << " indices");
  // Virtual dispatch: on a plain device this is the batched file write;
  // on a coordinator the data fans out to its replica set.
  const std::vector<std::int32_t> idx = indices;
  write_pages(std::move(pages), std::move(indices));
  std::lock_guard lock(io_mu_);
  if (stamps_.size() < static_cast<std::size_t>(number_of_pages()))
    stamps_.resize(static_cast<std::size_t>(number_of_pages()), 0);
  for (std::size_t i = 0; i < idx.size(); ++i)
    stamps_[static_cast<std::size_t>(idx[i])] = stamps[i];
}

StampedPages PageDevice::read_pages_stamped(
    std::vector<std::int32_t> indices) const {
  StampedPages out;
  out.stamps = page_stamps(indices);
  out.pages = read_pages(std::move(indices));
  return out;
}

std::vector<std::uint64_t> PageDevice::page_stamps(
    std::vector<std::int32_t> indices) const {
  for (const auto idx : indices) check_index(idx);
  std::vector<std::uint64_t> out;
  out.reserve(indices.size());
  std::lock_guard lock(io_mu_);
  for (const auto idx : indices) {
    const auto i = static_cast<std::size_t>(idx);
    out.push_back(i < stamps_.size() ? stamps_[i] : 0);
  }
  return out;
}

}  // namespace oopp::storage
