// ArrayPage: a Page holding an N1 x N2 x N3 block of doubles (paper §3).
//
// Derived from Page exactly as in the paper, adding structure-aware
// operations (element access by 3-D index, sum).  This is the class the
// paper uses to introduce process inheritance.
#pragma once

#include <cstring>

#include "storage/page.hpp"
#include "util/ndindex.hpp"

namespace oopp::storage {

class ArrayPage : public Page {
 public:
  ArrayPage() = default;

  /// Zero-filled block.
  ArrayPage(int n1, int n2, int n3)
      : Page(static_cast<std::size_t>(n1) * n2 * n3 * sizeof(double)),
        extents_{n1, n2, n3} {}

  /// Copy of an existing buffer — the paper's ArrayPage(N1,N2,N3, double*).
  ArrayPage(int n1, int n2, int n3, const double* values)
      : ArrayPage(n1, n2, n3) {
    std::memcpy(data_.data(), values, data_.size());
  }

  [[nodiscard]] const Extents3& extents() const { return extents_; }
  [[nodiscard]] index_t elements() const { return extents_.volume(); }

  [[nodiscard]] const double* values() const {
    return reinterpret_cast<const double*>(data_.data());
  }
  [[nodiscard]] double* values() {
    return reinterpret_cast<double*>(data_.data());
  }

  [[nodiscard]] double at(index_t i1, index_t i2, index_t i3) const {
    OOPP_CHECK(extents_.contains(i1, i2, i3));
    return values()[extents_.linear(i1, i2, i3)];
  }
  void set(index_t i1, index_t i2, index_t i3, double v) {
    OOPP_CHECK(extents_.contains(i1, i2, i3));
    values()[extents_.linear(i1, i2, i3)] = v;
  }

  /// The paper's example of a method using the array structure.
  [[nodiscard]] double sum() const {
    double acc = 0.0;
    const double* v = values();
    const index_t n = elements();
    for (index_t i = 0; i < n; ++i) acc += v[i];
    return acc;
  }

  bool operator==(const ArrayPage&) const = default;

 private:
  Extents3 extents_{};

  template <class Ar>
  friend void oopp_serialize(Ar& ar, ArrayPage& p);
};

template <class Ar>
void oopp_serialize(Ar& ar, ArrayPage& p) {
  ar(static_cast<Page&>(p), p.extents_.n1, p.extents_.n2, p.extents_.n3);
}

}  // namespace oopp::storage
