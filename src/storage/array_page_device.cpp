#include "storage/array_page_device.hpp"

#include <algorithm>
#include <limits>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace oopp::storage {

namespace {
int block_bytes(int n1, int n2, int n3) {
  return static_cast<int>(static_cast<std::size_t>(n1) * n2 * n3 *
                          sizeof(double));
}
}  // namespace

ArrayPageDevice::ArrayPageDevice(std::string filename, int number_of_pages,
                                 int n1, int n2, int n3)
    : ArrayPageDevice(std::move(filename), number_of_pages, n1, n2, n3,
                      DeviceOptions{}) {}

ArrayPageDevice::ArrayPageDevice(std::string filename, int number_of_pages,
                                 int n1, int n2, int n3,
                                 DeviceOptions options)
    : PageDevice(std::move(filename), number_of_pages,
                 block_bytes(n1, n2, n3), options),
      extents_{n1, n2, n3} {}

ArrayPageDevice::ArrayPageDevice(remote_ptr<PageDevice> existing, int n1,
                                 int n2, int n3)
    : PageDevice(existing.call<&PageDevice::backing_file>(),
                 existing.call<&PageDevice::number_of_pages>(),
                 existing.call<&PageDevice::page_size>(), DeviceOptions{},
                 /*truncate=*/false),
      extents_{n1, n2, n3} {
  OOPP_CHECK_MSG(page_size_ == block_bytes(n1, n2, n3),
                 "existing device page size "
                     << page_size_ << " != " << n1 << "x" << n2 << "x" << n3
                     << " doubles");
}

ArrayPageDevice::ArrayPageDevice(NoBackingTag tag, int number_of_pages,
                                 int n1, int n2, int n3,
                                 DeviceOptions options)
    : PageDevice(tag, number_of_pages, block_bytes(n1, n2, n3), options),
      extents_{n1, n2, n3} {}

ArrayPageDevice::ArrayPageDevice(serial::IArchive& ia) : PageDevice(ia) {
  ia(extents_.n1, extents_.n2, extents_.n3);
}

void ArrayPageDevice::oopp_save(serial::OArchive& oa) const {
  PageDevice::oopp_save(oa);
  oa(extents_.n1, extents_.n2, extents_.n3);
}

ArrayPage ArrayPageDevice::read_array(int page_index) const {
  const Page raw = read(page_index);
  ArrayPage p(static_cast<int>(extents_.n1), static_cast<int>(extents_.n2),
              static_cast<int>(extents_.n3),
              reinterpret_cast<const double*>(raw.data()));
  return p;
}

void ArrayPageDevice::write_array(const ArrayPage& p, int page_index) {
  OOPP_CHECK_MSG(p.extents() == extents_,
                 "array page extents do not match device block shape");
  write(p, page_index);
}

std::vector<ArrayPage> ArrayPageDevice::read_arrays(
    std::vector<std::int32_t> indices) const {
  std::vector<Page> raw = read_pages(std::move(indices));
  std::vector<ArrayPage> out;
  out.reserve(raw.size());
  for (const auto& p : raw)
    out.emplace_back(static_cast<int>(extents_.n1),
                     static_cast<int>(extents_.n2),
                     static_cast<int>(extents_.n3),
                     reinterpret_cast<const double*>(p.data()));
  return out;
}

void ArrayPageDevice::write_arrays(std::vector<ArrayPage> pages,
                                   std::vector<std::int32_t> indices) {
  std::vector<Page> raw;
  raw.reserve(pages.size());
  for (auto& p : pages) {
    OOPP_CHECK_MSG(p.extents() == extents_,
                   "array page extents do not match device block shape");
    raw.push_back(std::move(p));  // slices to the Page base: same bytes
  }
  write_pages(std::move(raw), std::move(indices));
}

void ArrayPageDevice::quiesce_pages(std::vector<std::int32_t> indices,
                                    std::uint64_t map_version) {
  // No cache layer here: just validate the slots exist.  The override in
  // dsm::CoherentDevice does the real recall/invalidate work.
  (void)map_version;
  for (const auto idx : indices) check_index(idx);
}

void ArrayPageDevice::pull_page(remote_ptr<ArrayPageDevice> source,
                                int source_index, int dst_index) {
  OOPP_CHECK(source.valid());
  // Nested remote read on the peer device; the bytes land here directly.
  // read_unordered is reentrant on the peer, so mutual pulls between two
  // devices cannot deadlock on each other's command queues.
  const Page page = source.call<&PageDevice::read_unordered>(source_index);
  write(page, dst_index);
}

double ArrayPageDevice::sum(int page_address) const {
  return read_array(page_address).sum();
}

double ArrayPageDevice::sum_region(int page_address, index_t lo1, index_t hi1,
                                   index_t lo2, index_t hi2, index_t lo3,
                                   index_t hi3) const {
  return reduce_region(Reduce::kSum, page_address, lo1, hi1, lo2, hi2, lo3,
                       hi3);
}

double ArrayPageDevice::reduce_region(Reduce op, int page_address,
                                      index_t lo1, index_t hi1, index_t lo2,
                                      index_t hi2, index_t lo3,
                                      index_t hi3) const {
  telemetry::LocalSpan span("storage.reduce_region");
  static auto& reductions =
      telemetry::Metrics::scope_for("storage").counter("reductions");
  reductions.add(1);
  const ArrayPage p = read_array(page_address);
  OOPP_CHECK(lo1 >= 0 && hi1 <= extents_.n1 && lo2 >= 0 &&
             hi2 <= extents_.n2 && lo3 >= 0 && hi3 <= extents_.n3);
  OOPP_CHECK_MSG(lo1 < hi1 && lo2 < hi2 && lo3 < hi3,
                 "empty region has no reduction value");
  double acc;
  switch (op) {
    case Reduce::kSum:
    case Reduce::kSumSq:
      acc = 0.0;
      break;
    case Reduce::kMin:
      acc = std::numeric_limits<double>::infinity();
      break;
    case Reduce::kMax:
      acc = -std::numeric_limits<double>::infinity();
      break;
    default:
      OOPP_CHECK_MSG(false, "unknown reduction op");
      return 0.0;
  }
  for (index_t i1 = lo1; i1 < hi1; ++i1) {
    for (index_t i2 = lo2; i2 < hi2; ++i2) {
      for (index_t i3 = lo3; i3 < hi3; ++i3) {
        const double x = p.at(i1, i2, i3);
        switch (op) {
          case Reduce::kSum:
            acc += x;
            break;
          case Reduce::kSumSq:
            acc += x * x;
            break;
          case Reduce::kMin:
            acc = std::min(acc, x);
            break;
          case Reduce::kMax:
            acc = std::max(acc, x);
            break;
        }
      }
    }
  }
  return acc;
}

void ArrayPageDevice::update_region(Update op, double s, int page_address,
                                    index_t lo1, index_t hi1, index_t lo2,
                                    index_t hi2, index_t lo3, index_t hi3) {
  ArrayPage p = read_array(page_address);
  OOPP_CHECK(lo1 >= 0 && hi1 <= extents_.n1 && lo2 >= 0 &&
             hi2 <= extents_.n2 && lo3 >= 0 && hi3 <= extents_.n3);
  for (index_t i1 = lo1; i1 < hi1; ++i1) {
    for (index_t i2 = lo2; i2 < hi2; ++i2) {
      for (index_t i3 = lo3; i3 < hi3; ++i3) {
        double& x = p.values()[p.extents().linear(i1, i2, i3)];
        switch (op) {
          case Update::kFill:
            x = s;
            break;
          case Update::kScale:
            x *= s;
            break;
          case Update::kShift:
            x += s;
            break;
          default:
            OOPP_CHECK_MSG(false, "unknown update op");
        }
      }
    }
  }
  write(p, page_address);
}

}  // namespace oopp::storage
