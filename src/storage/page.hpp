// Page: a block of unstructured data (paper §2).
//
// In the paper a Page holds `n` bytes behind an `unsigned char*`.  Here it
// is a value type — pages are the unit of data that moves between client
// and device processes, so they serialize and copy by value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serial/archive.hpp"
#include "util/assert.hpp"

namespace oopp::storage {

class Page {
 public:
  Page() = default;

  /// n zero bytes.
  explicit Page(std::size_t n) : data_(n) {}

  /// Copy of an existing buffer — the paper's Page(int n, unsigned char*).
  Page(std::size_t n, const unsigned char* data)
      : data_(data, data + n) {}

  explicit Page(std::vector<std::uint8_t> bytes) : data_(std::move(bytes)) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] const std::uint8_t* data() const { return data_.data(); }
  [[nodiscard]] std::uint8_t* data() { return data_.data(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return data_;
  }

  std::uint8_t& operator[](std::size_t i) {
    OOPP_CHECK(i < data_.size());
    return data_[i];
  }
  std::uint8_t operator[](std::size_t i) const {
    OOPP_CHECK(i < data_.size());
    return data_[i];
  }

  bool operator==(const Page&) const = default;

 protected:
  std::vector<std::uint8_t> data_;

  template <class Ar>
  friend void oopp_serialize(Ar& ar, Page& p);
};

template <class Ar>
void oopp_serialize(Ar& ar, Page& p) {
  ar(p.data_);
}

}  // namespace oopp::storage
