// PageDevice: a file-backed block store for fixed-size pages (paper §2).
//
// The device keeps NumberOfPages slots of PageSize bytes in one file;
// write() copies a page to offset PageIndex * PageSize, read() brings it
// back.  Spawned remotely, a PageDevice is exactly the paper's first
// process example: a server on machine i accepting read/write commands.
//
// DeviceOptions.service_us simulates the seek/transfer time of a dedicated
// spindle, which is what makes "assign each device to a different hard
// drive and the split loop does disk I/O in parallel" (§4) observable on a
// single development machine.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "rpc/binding.hpp"
#include "serial/archive.hpp"
#include "storage/page.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::storage {

struct DeviceOptions {
  /// Simulated per-operation device service time, microseconds.
  std::uint32_t service_us = 0;

  bool operator==(const DeviceOptions&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, DeviceOptions& o) {
  ar(o.service_us);
}

/// Pages paired with their version stamps — the wire unit of the replica
/// protocol (ReplicatedPageDevice): a coordinator compares returned stamps
/// against its authoritative per-page versions to decide whether a replica
/// is up to date.
struct StampedPages {
  std::vector<Page> pages;
  std::vector<std::uint64_t> stamps;
};

template <class Ar>
void oopp_serialize(Ar& ar, StampedPages& s) {
  ar(s.pages, s.stamps);
}

class PageDevice {
 public:
  /// Creates (or truncates) `filename` with NumberOfPages * PageSize bytes.
  PageDevice(std::string filename, int number_of_pages, int page_size);
  PageDevice(std::string filename, int number_of_pages, int page_size,
             DeviceOptions options);

  /// Restore from a passivated image: re-opens the backing file, which
  /// holds the data, so only the metadata travels through the image.
  explicit PageDevice(serial::IArchive& ia);

  virtual ~PageDevice();

  PageDevice(const PageDevice&) = delete;
  PageDevice& operator=(const PageDevice&) = delete;

  /// Store a page at the given address.  The page must be exactly
  /// page_size() bytes and the address within range.  Virtual: a
  /// ReplicatedPageDevice re-routes every I/O method to its replica set,
  /// so anything reaching the device through the base protocol (Array
  /// slices, DSM caches, pull_page) transparently gets replicated I/O.
  virtual void write(const Page& p, int page_index);

  /// Fetch the page stored at the given address.
  [[nodiscard]] virtual Page read(int page_index) const;

  /// Batched multi-page read: one remote call moves a whole slab's worth
  /// of pages off this device.  Returns pages in the order of `indices`.
  /// The simulated seek (`service_us`) is charged once per contiguous
  /// ascending run of indices — batching sequential I/O amortizes seeks,
  /// which is exactly why the async pipeline issues batches.
  [[nodiscard]] virtual std::vector<Page> read_pages(
      std::vector<std::int32_t> indices) const;

  /// Batched multi-page write; pages[i] is stored at indices[i].  Same
  /// contiguous-run service-time model as read_pages.
  virtual void write_pages(std::vector<Page> pages,
                           std::vector<std::int32_t> indices);

  /// Replica protocol: batched write that also records a version stamp
  /// per page.  Routed through the virtual write_pages, so the data path
  /// (and its batching/seek model) is identical to an unstamped write.
  void write_pages_stamped(std::vector<Page> pages,
                           std::vector<std::int32_t> indices,
                           std::vector<std::uint64_t> stamps);

  /// Replica protocol: batched read returning each page with the stamp of
  /// the last stamped write that touched it (0 = never stamped).
  [[nodiscard]] StampedPages read_pages_stamped(
      std::vector<std::int32_t> indices) const;

  /// Stamps only — the cheap probe quorum resolution uses to find the
  /// most up-to-date replica without moving page bytes.
  [[nodiscard]] std::vector<std::uint64_t> page_stamps(
      std::vector<std::int32_t> indices) const;

  /// Same as read() but served *outside* the process's command queue
  /// (bound reentrant).  Exists for third-party transfers: device A's
  /// pull_page blocks inside its own queued method while device B serves
  /// this read concurrently, so two devices pulling from each other
  /// cannot deadlock.  Page-level atomicity is preserved (each page op
  /// holds the file lock), but ordering against queued writes is not —
  /// callers must quiesce mutations before ordering a copy.
  [[nodiscard]] Page read_unordered(int page_index) const {
    return read(page_index);
  }

  /// Grow the device to at least `pages` slots (never shrinks); the
  /// backing file is extended, existing pages keep their bytes.  Online
  /// redistribution provisions target slot banks with this before
  /// migrating pages onto the device.
  virtual void ensure_capacity(int pages);

  [[nodiscard]] int number_of_pages() const {
    return number_of_pages_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int page_size() const { return page_size_; }
  [[nodiscard]] const std::string& filename() const { return filename_; }

  /// By-value accessor for the remote protocol (remote methods return by
  /// value; references cannot cross machines).
  [[nodiscard]] std::string backing_file() const { return filename_; }

  /// Total read/write operations served (for tests and benches).
  [[nodiscard]] std::uint64_t operations() const {
    return operations_.load(std::memory_order_relaxed);
  }

  void oopp_save(serial::OArchive& oa) const;

 protected:
  /// For derived devices that adopt an existing backing file instead of
  /// creating a fresh one (paper §5: a new process constructed from a
  /// pointer to an existing process).
  PageDevice(std::string filename, int number_of_pages, int page_size,
             DeviceOptions options, bool truncate);

  /// For derived devices that own no backing file of their own — a
  /// ReplicatedPageDevice coordinator stores nothing locally; every I/O
  /// method is overridden to fan out to replicas, so the base file paths
  /// are unreachable (f_ stays null).
  struct NoBackingTag {};
  PageDevice(NoBackingTag, int number_of_pages, int page_size,
             DeviceOptions options);

  void check_index(int page_index) const;
  void simulate_service_time() const;

  std::string filename_;
  // Atomic: reentrant reads bounds-check concurrently with a queued
  // ensure_capacity extending the device.
  std::atomic<int> number_of_pages_{0};
  int page_size_ = 0;
  DeviceOptions options_{};
  // Atomic: reentrant reads (read_unordered) bump it concurrently.
  mutable std::atomic<std::uint64_t> operations_{0};

 private:
  void open_or_create(bool truncate);
  std::FILE* f_ = nullptr;
  /// Makes each page operation atomic at the FILE* level so reentrant
  /// reads may run concurrently with queued operations.
  mutable util::CheckedMutex io_mu_{"storage.PageDevice.io"};
  /// Per-page version stamps of the replica protocol (0 = unstamped),
  /// guarded by io_mu_; persisted with the image so a re-activated
  /// replica keeps its place in quorum resolution.
  std::vector<std::uint64_t> stamps_;
};

}  // namespace oopp::storage

// Remote protocol (the paper's class description, §2).
template <>
struct oopp::rpc::class_def<oopp::storage::PageDevice> {
  using D = oopp::storage::PageDevice;
  static std::string name() { return "oopp.storage.PageDevice"; }
  using ctors = ctor_list<
      ctor<std::string, int, int>,
      ctor<std::string, int, int, oopp::storage::DeviceOptions>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&D::write>("write");
    b.template method<&D::read>("read");
    b.template method<&D::read_pages>("read_pages");
    b.template method<&D::write_pages>("write_pages");
    b.template method<&D::write_pages_stamped>("write_pages_stamped");
    b.template method<&D::read_pages_stamped>("read_pages_stamped");
    b.template method<&D::page_stamps>("page_stamps");
    b.template method<&D::read_unordered>("read_unordered", reentrant);
    b.template method<&D::ensure_capacity>("ensure_capacity");
    b.template method<&D::number_of_pages>("number_of_pages");
    b.template method<&D::page_size>("page_size");
    b.template method<&D::backing_file>("backing_file");
    b.template method<&D::operations>("operations");
    b.persistent();
  }
};
