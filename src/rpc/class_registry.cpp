#include "rpc/class_registry.hpp"

#include <mutex>

namespace oopp::rpc {

ClassRegistry& ClassRegistry::instance() {
  static ClassRegistry reg;
  return reg;
}

const ClassInfo* ClassRegistry::find(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = classes_.find(std::string(name));
  return it == classes_.end() ? nullptr : it->second.get();
}

std::pair<ClassInfo*, bool> ClassRegistry::add(std::string name) {
  std::unique_lock lock(mu_);
  auto it = classes_.find(name);
  if (it != classes_.end()) return {it->second.get(), false};
  auto info = std::make_unique<ClassInfo>();
  info->name = name;
  // oopp-lint: allow(lock-across-future-get) unique_ptr::get, not a future
  auto* raw = info.get();
  classes_.emplace(std::move(name), std::move(info));
  return {raw, true};
}

std::size_t ClassRegistry::size() const {
  std::shared_lock lock(mu_);
  return classes_.size();
}

}  // namespace oopp::rpc
