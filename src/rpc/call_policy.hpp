// CallPolicy: per-call fault-tolerance knobs for remote calls.
//
// The paper's semantics (§2) says every remote instruction *completes* —
// on a lossy interconnect that promise needs a recovery layer, not just
// typed failure detection.  A CallPolicy tells rpc::Node how hard to try:
// how long to wait for each attempt, how many attempts to make, how to
// space them (exponential backoff with jitter), and when to give up
// entirely (overall deadline).
//
// Retried requests are stamped with a monotonically increasing attempt
// number; the serving node deduplicates on (src, seq) so a retried
// non-reentrant method is executed at most once — the cached response is
// replayed instead (see docs/FAULTS.md for the full guarantee).
//
// The default-constructed policy means "no retry": exactly the pre-policy
// behaviour (send once, wait forever).  Node::set_default_policy installs
// a node-wide default; remote_ptr<T>::with_policy overrides it per handle.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace oopp::rpc {

struct CallPolicy {
  /// Total sends of the request, including the first (1 = never retry).
  std::uint32_t max_attempts = 1;

  /// How long to wait for each attempt's response before declaring the
  /// attempt lost and scheduling a retry (or giving up).  0 = wait
  /// forever, which makes the policy inert regardless of max_attempts.
  std::chrono::milliseconds attempt_timeout{0};

  /// Overall budget across all attempts and backoff waits.  Once it is
  /// spent the call fails with rpc::CallTimeout even if attempts remain.
  /// 0 = unbounded (bounded only by max_attempts * attempt_timeout).
  std::chrono::milliseconds deadline{0};

  /// Backoff before retry k (k = 1 for the first retry):
  ///   min(backoff_max, backoff_initial * multiplier^(k-1))
  /// scaled by a uniform random factor in [1 - jitter, 1 + jitter] so a
  /// herd of peers retrying a congested machine does not stay in phase.
  std::chrono::milliseconds backoff_initial{2};
  std::chrono::milliseconds backoff_max{250};
  double backoff_multiplier = 2.0;
  double jitter = 0.2;

  /// Also retry responses that arrived as kBadFrame (payload corrupted in
  /// flight).  Safe under the server-side dedup cache: a corrupted
  /// *request* was never executed, a corrupted *response* is replayed
  /// from the cache without re-executing.
  bool retry_bad_frame = true;

  [[nodiscard]] bool retryable() const {
    return max_attempts > 1 && attempt_timeout.count() > 0;
  }

  /// Backoff duration before retry number `retry` (1-based), before
  /// jitter.  Saturates at backoff_max.
  [[nodiscard]] std::chrono::milliseconds backoff_for(
      std::uint32_t retry) const {
    double ms = static_cast<double>(backoff_initial.count());
    for (std::uint32_t i = 1; i < retry; ++i) {
      ms *= backoff_multiplier;
      if (ms >= static_cast<double>(backoff_max.count())) break;
    }
    ms = std::min(ms, static_cast<double>(backoff_max.count()));
    return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
  }
};

/// A policy that retries hard enough to ride out a few percent of
/// request/response loss without the caller noticing.  Tune, don't
/// worship: attempt_timeout must exceed the honest round-trip time.
inline CallPolicy resilient_policy(
    std::chrono::milliseconds attempt_timeout = std::chrono::milliseconds(100),
    std::uint32_t max_attempts = 8) {
  CallPolicy p;
  p.max_attempts = max_attempts;
  p.attempt_timeout = attempt_timeout;
  p.backoff_initial = std::chrono::milliseconds(1);
  p.backoff_max = std::chrono::milliseconds(50);
  return p;
}

}  // namespace oopp::rpc
