// Class binding: how a C++ class becomes a remotable "process".
//
// The paper assumes a compiler that generates the client/server protocol
// "from the class description".  Without a compiler, the class description
// is given once, declaratively, by specializing oopp::rpc::class_def:
//
//   template <>
//   struct oopp::rpc::class_def<PageDevice> {
//     static std::string name() { return "oopp.PageDevice"; }
//     using ctors = ctor_list<ctor<std::string, int, int>>;
//     template <class Binder>
//     static void bind(Binder& b) {
//       b.template method<&PageDevice::write>("write");
//       b.template method<&PageDevice::read>("read");
//     }
//   };
//
// Inheritance (paper §3) falls out naturally: a derived class's bind()
// calls the base's bind() with its own binder, so the derived process
// serves the base methods with zero new syntax:
//
//   static void bind(Binder& b) {
//     class_def<PageDevice>::bind(b);     // inherit the protocol
//     b.template method<&ArrayPageDevice::sum>("sum");
//   }
//
// Registration happens lazily on first use (ensure_registered<T>()), or
// eagerly via register_class<T>() at startup.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

#include "net/message.hpp"
#include "rpc/class_info.hpp"
#include "rpc/class_registry.hpp"
#include "rpc/traits.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"
#include "util/checked_mutex.hpp"
#include "util/clock.hpp"

namespace oopp::rpc {

/// Concurrency-correctness hook: every client-side wait for a remote
/// response (Node::call_raw, Future::get/wait) funnels through here.  In
/// OOPP_LOCK_CHECK builds it fails the process if the calling thread
/// holds any CheckedMutex — a lock held across a network round trip
/// deadlocks the moment the remote side (or the code serving its reply)
/// needs that lock.  `where` names the call site for the report.
inline void note_blocking_remote_call(const char* where) {
  static auto& waits =
      telemetry::Metrics::scope_for("rpc").counter("blocking_waits");
  waits.add(1);
  util::lockcheck::on_blocking_call(where);
}

/// Companion to note_blocking_remote_call: times the wait itself and
/// records it in the rpc scope's blocking_wait_ns histogram, so hazard
/// reports can be ranked by observed stall time.  Construct right before
/// blocking; the destructor records.  Gated on telemetry::enabled() like
/// the other latency histograms.
class BlockingWaitTimer {
 public:
  BlockingWaitTimer() : start_(telemetry::enabled() ? now_ns() : 0) {}
  ~BlockingWaitTimer() {
    if (start_ == 0) return;
    static auto& hist =
        telemetry::Metrics::scope_for("rpc").histogram("blocking_wait_ns");
    hist.record(static_cast<std::uint64_t>(now_ns() - start_));
  }
  BlockingWaitTimer(const BlockingWaitTimer&) = delete;
  BlockingWaitTimer& operator=(const BlockingWaitTimer&) = delete;

 private:
  std::int64_t start_;
};

/// Specialize for every remotable class (see file comment).
template <class T>
struct class_def;

/// One constructor overload; parameter types as declared.
template <class... Args>
struct ctor {
  using tuple = std::tuple<std::decay_t<Args>...>;
};

/// The set of constructor overloads a class exposes remotely.
template <class... Cs>
struct ctor_list {
  static constexpr std::size_t size = sizeof...(Cs);
  using as_tuple = std::tuple<Cs...>;
};

inline constexpr std::size_t kNoCtor = static_cast<std::size_t>(-1);

/// First registered constructor whose argument tuple is constructible from
/// the given call arguments — compile-time overload resolution.
template <class List, class... CallArgs>
struct ctor_match;

template <class... Cs, class... CallArgs>
struct ctor_match<ctor_list<Cs...>, CallArgs...> {
  static constexpr std::size_t index = [] {
    constexpr std::array<bool, sizeof...(Cs)> ok = {
        std::is_constructible_v<typename Cs::tuple, CallArgs...>...};
    for (std::size_t i = 0; i < ok.size(); ++i)
      if (ok[i]) return i;
    return kNoCtor;
  }();

  static_assert(sizeof...(Cs) > 0, "class_def registers no constructors");
};

template <class List, std::size_t I>
struct ctor_at;

template <class... Cs, std::size_t I>
struct ctor_at<ctor_list<Cs...>, I> {
  using type = std::tuple_element_t<I, std::tuple<Cs...>>;
};

/// Client-side record of each bound method's wire id.  Populated during
/// registration; both sides run the same registration code, which is how
/// the ids agree (the "compiled-in protocol").
template <auto M>
struct method_registry {
  static inline net::MethodId id = 0;
};

/// Every class automatically serves this no-op method through its command
/// queue; the group barrier of §4 is built on it.
inline constexpr std::string_view kPingMethod = "oopp.ping";

namespace detail {

template <class T, auto M>
MethodFn make_invoker() {
  return [](void* instance, serial::IArchive& ia, serial::OArchive& oa) {
    using tr = member_fn_traits<decltype(M)>;
    static_assert(!std::is_reference_v<typename tr::result>,
                  "remote methods must return by value (or void)");
    typename tr::args_tuple args;
    ia(args);
    T& obj = *static_cast<T*>(instance);
    if constexpr (std::is_void_v<typename tr::result>) {
      std::apply([&](auto&&... a) { (obj.*M)(std::move(a)...); },
                 std::move(args));
    } else {
      auto result = std::apply(
          [&](auto&&... a) { return (obj.*M)(std::move(a)...); },
          std::move(args));
      oa(result);
    }
  };
}

template <class T, class Ctor>
struct ctor_factory;

template <class T, class... Args>
struct ctor_factory<T, ctor<Args...>> {
  static CtorInfo make() {
    return CtorInfo{[](serial::IArchive& ia) -> std::unique_ptr<ServantBase> {
      std::tuple<std::decay_t<Args>...> args;
      ia(args);
      auto obj = std::apply(
          [](auto&&... a) {
            return std::make_unique<T>(std::move(a)...);
          },
          std::move(args));
      return std::make_unique<Servant<T>>(std::move(obj));
    }};
  }
};

template <class T, class List>
struct ctor_registrar;

template <class T, class... Cs>
struct ctor_registrar<T, ctor_list<Cs...>> {
  static void add_all(ClassInfo& info) {
    (info.ctors.push_back(ctor_factory<T, Cs>::make()), ...);
  }
};

}  // namespace detail

/// Marker passed to Binder::method for methods that bypass the command
/// queue (one-sided operations invoked while the target object is itself
/// blocked inside a method).
struct reentrant_t {
  explicit reentrant_t() = default;
};
inline constexpr reentrant_t reentrant{};

template <class T>
class Binder {
 public:
  explicit Binder(ClassInfo& info) : info_(info) {}

  /// Bind a method under a wire name.  The member pointer may belong to a
  /// base class — that is how process inheritance works.
  template <auto M>
  Binder& method(std::string_view name) {
    return add_method<M>(name, /*reentrant=*/false);
  }

  template <auto M>
  Binder& method(std::string_view name, reentrant_t) {
    return add_method<M>(name, /*reentrant=*/true);
  }

  /// Opt into persistence (§5).  Requires:
  ///   void oopp_save(serial::OArchive&) const;   // capture state
  ///   T(serial::IArchive&);                      // rebuild from state
  Binder& persistent() {
    info_.save = [](void* instance, serial::OArchive& oa) {
      static_cast<const T*>(instance)->oopp_save(oa);
    };
    info_.restore =
        [](serial::IArchive& ia) -> std::unique_ptr<ServantBase> {
      return std::make_unique<Servant<T>>(std::make_unique<T>(ia));
    };
    return *this;
  }

 private:
  template <auto M>
  Binder& add_method(std::string_view name, bool is_reentrant) {
    using tr = member_fn_traits<decltype(M)>;
    static_assert(std::is_base_of_v<typename tr::clazz, T>,
                  "method does not belong to this class or a base of it");
    const net::MethodId id = net::method_id(name);
    auto [it, inserted] = info_.methods.emplace(
        id, MethodInfo{std::string(name), detail::make_invoker<T, M>(),
                       is_reentrant});
    OOPP_CHECK_MSG(inserted, "duplicate method name '"
                                 << name << "' on class " << info_.name);
    method_registry<M>::id = id;
    return *this;
  }

  ClassInfo& info_;
};

/// Register class T's description into the process-wide registry exactly
/// once.  Safe to call from any thread, any number of times.
template <class T>
const ClassInfo& ensure_registered() {
  static const ClassInfo* info = [] {
    auto [ci, created] = ClassRegistry::instance().add(class_def<T>::name());
    OOPP_CHECK_MSG(created || *ci->cpp_type == typeid(T),
                   "wire name '" << ci->name
                                 << "' is already registered by a different "
                                    "C++ class");
    if (created) {
      ci->cpp_type = &typeid(T);
      detail::ctor_registrar<T, typename class_def<T>::ctors>::add_all(*ci);
      Binder<T> binder(*ci);
      class_def<T>::bind(binder);
      // Built-in barrier ping.
      ci->methods.emplace(
          net::method_id(kPingMethod),
          MethodInfo{std::string(kPingMethod),
                     [](void*, serial::IArchive&, serial::OArchive&) {},
                     /*reentrant=*/false});
    }
    return ci;
  }();
  return *info;
}

/// Eager registration for program startup (all processes of a real
/// deployment must call this for every remotable class).
template <class T>
void register_class() {
  ensure_registered<T>();
}

}  // namespace oopp::rpc
