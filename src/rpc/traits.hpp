// Compile-time reflection over member function pointers.
//
// This is the piece the paper assigns to its (hypothetical) compiler: from
// a class description, derive the marshaling code for each method.  Here a
// method's signature is recovered from its member pointer; arguments are
// encoded as a tuple of decayed parameter types, so a call site may pass
// anything convertible to the declared parameters — the same conversions
// an ordinary local call would perform.
#pragma once

#include <tuple>
#include <type_traits>

namespace oopp::rpc {

template <class F>
struct member_fn_traits;

template <class R, class C, class... Args>
struct member_fn_traits<R (C::*)(Args...)> {
  using result = R;
  using clazz = C;
  using args_tuple = std::tuple<std::decay_t<Args>...>;
  static constexpr bool is_const = false;
};

template <class R, class C, class... Args>
struct member_fn_traits<R (C::*)(Args...) const> {
  using result = R;
  using clazz = C;
  using args_tuple = std::tuple<std::decay_t<Args>...>;
  static constexpr bool is_const = true;
};

template <auto M>
using method_result_t = typename member_fn_traits<decltype(M)>::result;

template <auto M>
using method_class_t = typename member_fn_traits<decltype(M)>::clazz;

template <auto M>
using method_args_tuple_t = typename member_fn_traits<decltype(M)>::args_tuple;

}  // namespace oopp::rpc
