// Exception types for the RPC layer.
//
// The framework's contract (paper §2): a remote method behaves like a
// local call — including failure.  A servant exception is caught on the
// hosting machine, serialized into the response, and re-thrown at the call
// site as RemoteError.  Protocol-level failures (dangling remote pointer,
// unknown method, corrupt frame) get their own types so callers can
// distinguish application errors from framework misuse.
#pragma once

#include <stdexcept>
#include <string>

#include "net/message.hpp"

namespace oopp::rpc {

class rpc_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The servant method threw.  Carries the machine it ran on, the original
/// exception's type name and its what() string.
class RemoteError : public rpc_error {
 public:
  RemoteError(net::MachineId machine, std::string type, std::string what_arg)
      : rpc_error("remote exception on machine " + std::to_string(machine) +
                  " [" + type + "]: " + what_arg),
        machine_(machine),
        type_(std::move(type)),
        original_what_(std::move(what_arg)) {}

  [[nodiscard]] net::MachineId machine() const { return machine_; }
  [[nodiscard]] const std::string& original_type() const { return type_; }
  [[nodiscard]] const std::string& original_what() const {
    return original_what_;
  }

 private:
  net::MachineId machine_;
  std::string type_;
  std::string original_what_;
};

/// The remote pointer does not name a live object (never existed, or its
/// process was already terminated by delete).
class ObjectNotFound : public rpc_error {
 public:
  ObjectNotFound(net::MachineId machine, net::ObjectId object)
      : rpc_error("no object " + std::to_string(object) + " on machine " +
                  std::to_string(machine)),
        machine_(machine),
        object_(object) {}

  [[nodiscard]] net::MachineId machine() const { return machine_; }
  [[nodiscard]] net::ObjectId object() const { return object_; }

 private:
  net::MachineId machine_;
  net::ObjectId object_;
};

/// The object exists but has no method with the requested id (protocol
/// drift: the class description used by the client names a method the
/// server never bound).
class MethodNotFound : public rpc_error {
 public:
  using rpc_error::rpc_error;
};

/// Argument or result bytes failed to decode.
class BadFrame : public rpc_error {
 public:
  using rpc_error::rpc_error;
};

/// The node is shutting down; outstanding calls cannot complete.
class CallAborted : public rpc_error {
 public:
  using rpc_error::rpc_error;
};

/// A deadline given to Future::get_for expired before the response
/// arrived.  The remote method keeps executing; only delete cancels.
class CallTimeout : public rpc_error {
 public:
  using rpc_error::rpc_error;
};

/// A class name arrived in a spawn/restore request that the local registry
/// does not know.
class UnknownClass : public rpc_error {
 public:
  using rpc_error::rpc_error;
};

}  // namespace oopp::rpc
