// The unified oopp::Error hierarchy.
//
// The framework's contract (paper §2): a remote method behaves like a
// local call — including failure.  A servant exception is caught on the
// hosting machine, serialized into the response, and re-thrown at the call
// site as RemoteError.  Protocol-level failures (dangling remote pointer,
// unknown method, corrupt frame, abandoned or timed-out call) get their
// own subclasses so callers can distinguish application errors from
// framework misuse.
//
// Every Error carries a numeric net::CallStatus code — the same byte the
// Message status field and telemetry spans use — so `catch (const
// oopp::Error& e)` plus `e.code()` classifies any remote-call failure
// without RTTI chains.
#pragma once

#include <stdexcept>
#include <string>

#include "net/message.hpp"

namespace oopp {

/// Root of every framework-raised exception.  code() is the wire-level
/// status byte (net::CallStatus) the failure maps onto.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg,
                 net::CallStatus code = net::CallStatus::kInternal)
      : std::runtime_error(what_arg), code_(code) {}

  [[nodiscard]] net::CallStatus code() const { return code_; }
  [[nodiscard]] const char* code_name() const {
    return net::call_status_name(code_);
  }

 private:
  net::CallStatus code_;
};

namespace rpc {

/// The servant method threw.  Carries the machine it ran on, the original
/// exception's type name and its what() string.
class RemoteError : public Error {
 public:
  RemoteError(net::MachineId machine, std::string type, std::string what_arg)
      : Error("remote exception on machine " + std::to_string(machine) + " [" +
                  type + "]: " + what_arg,
              net::CallStatus::kRemoteException),
        machine_(machine),
        type_(std::move(type)),
        original_what_(std::move(what_arg)) {}

  [[nodiscard]] net::MachineId machine() const { return machine_; }
  [[nodiscard]] const std::string& original_type() const { return type_; }
  [[nodiscard]] const std::string& original_what() const {
    return original_what_;
  }

 private:
  net::MachineId machine_;
  std::string type_;
  std::string original_what_;
};

/// The remote pointer does not name a live object (never existed, or its
/// process was already terminated by delete).
class ObjectNotFound : public Error {
 public:
  ObjectNotFound(net::MachineId machine, net::ObjectId object)
      : Error("no object " + std::to_string(object) + " on machine " +
                  std::to_string(machine),
              net::CallStatus::kObjectNotFound),
        machine_(machine),
        object_(object) {}

  [[nodiscard]] net::MachineId machine() const { return machine_; }
  [[nodiscard]] net::ObjectId object() const { return object_; }

 private:
  net::MachineId machine_;
  net::ObjectId object_;
};

/// The object exists but has no method with the requested id (protocol
/// drift: the class description used by the client names a method the
/// server never bound).
class MethodNotFound : public Error {
 public:
  explicit MethodNotFound(const std::string& what_arg)
      : Error(what_arg, net::CallStatus::kMethodNotFound) {}
};

/// Argument or result bytes failed to decode.
class BadFrame : public Error {
 public:
  explicit BadFrame(const std::string& what_arg)
      : Error(what_arg, net::CallStatus::kBadFrame) {}
};

/// The node is shutting down; outstanding calls cannot complete.
class CallAborted : public Error {
 public:
  explicit CallAborted(const std::string& what_arg)
      : Error(what_arg, net::CallStatus::kAborted) {}
};

/// A deadline given to Future::get_for expired before the response
/// arrived.  The remote method keeps executing; only delete cancels.
class CallTimeout : public Error {
 public:
  explicit CallTimeout(const std::string& what_arg)
      : Error(what_arg, net::CallStatus::kTimeout) {}
};

/// The per-peer circuit breaker is open: recent calls to this machine
/// failed repeatedly, so new calls fail fast without touching the network
/// until the cooldown elapses and a half-open probe succeeds.  The
/// fastest possible failure — nothing was sent.
class PeerUnavailable : public Error {
 public:
  PeerUnavailable(net::MachineId machine, const std::string& why)
      : Error("machine " + std::to_string(machine) + " unavailable: " + why,
              net::CallStatus::kUnavailable),
        machine_(machine) {}

  [[nodiscard]] net::MachineId machine() const { return machine_; }

 private:
  net::MachineId machine_;
};

/// A class name arrived in a spawn/restore request that the local registry
/// does not know.
class UnknownClass : public Error {
 public:
  explicit UnknownClass(const std::string& what_arg)
      : Error(what_arg, net::CallStatus::kUnknownClass) {}
};

}  // namespace rpc
}  // namespace oopp
