// Node: one simulated machine's RPC endpoint.
//
// Serving side — a receiver thread drains the node's Inbox.  Requests are
// dispatched through the target object's FIFO command queue onto an elastic
// thread pool (so servants can make nested blocking remote calls, as the
// paper's FFT group does).  Responses complete the matching pending call.
//
// Client side — call_raw/async_raw implement the synchronous semantics of
// §2 ("each instruction, and all communications associated with it, is
// completed before the following instruction") and the split-loop
// parallelism of §4 (issue the sends, then collect).
//
// Control plane — requests addressed to kNodeObject create objects
// (remote operator new), destroy them (remote delete), and
// passivate/restore them for the persistent processes of §5.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string_view>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "net/fabric.hpp"
#include "net/inbox.hpp"
#include "net/message.hpp"
#include "rpc/class_registry.hpp"
#include "rpc/errors.hpp"
#include "rpc/object_table.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/checked_mutex.hpp"
#include "util/thread_pool.hpp"

namespace oopp::rpc {

// Control-plane method names (object id kNodeObject).
inline constexpr std::string_view kSpawnMethod = "oopp.node.spawn";
inline constexpr std::string_view kDestroyMethod = "oopp.node.destroy";
inline constexpr std::string_view kPassivateMethod = "oopp.node.passivate";
inline constexpr std::string_view kRestoreMethod = "oopp.node.restore";
inline constexpr std::string_view kStatsMethod = "oopp.node.stats";
inline constexpr std::string_view kShutdownMethod = "oopp.node.shutdown";

/// Per-node operation counters, readable locally via Node::stats() and
/// remotely via the kStatsMethod control call.
struct NodeStats {
  std::uint64_t objects_live = 0;
  std::uint64_t requests_served = 0;    // object method invocations
  std::uint64_t control_requests = 0;   // spawn/destroy/passivate/...
  std::uint64_t remote_exceptions = 0;  // servant methods that threw
  std::uint64_t objects_spawned = 0;
  std::uint64_t objects_destroyed = 0;
  std::uint64_t pool_threads = 0;
  std::uint64_t pool_tasks_run = 0;
};

template <class Ar>
void oopp_serialize(Ar& ar, NodeStats& s) {
  ar(s.objects_live, s.requests_served, s.control_requests,
     s.remote_exceptions, s.objects_spawned, s.objects_destroyed,
     s.pool_threads, s.pool_tasks_run);
}

/// One record per served object-method invocation, delivered to the trace
/// hook (if installed).  `method` points into the class's MethodInfo and
/// stays valid for the program's lifetime.
struct CallTrace {
  net::MachineId caller = 0;
  net::ObjectId object = 0;
  std::string_view class_name;
  std::string_view method;
  net::CallStatus status = net::CallStatus::kOk;
  std::int64_t duration_ns = 0;
  std::size_t request_bytes = 0;
  std::size_t response_bytes = 0;
};

class Node {
 public:
  struct Options {
    std::size_t min_threads = 2;
    std::size_t max_threads = 512;
    /// Stamp every outgoing payload with a checksum and verify inbound
    /// ones.  A corrupted request is answered with kBadFrame; a corrupted
    /// response surfaces as rpc::BadFrame at the call site.  Costs one
    /// pass over each payload; intended for untrusted fabrics.
    bool checksums = false;
  };

  using TraceFn = std::function<void(const CallTrace&)>;

  Node(net::MachineId id, net::Fabric& fabric) : Node(id, fabric, Options{}) {}
  Node(net::MachineId id, net::Fabric& fabric, Options opts);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Attach to the fabric and start the receiver thread.
  void start();

  /// Full local shutdown (receiver, pending calls, pool).  For clusters,
  /// prefer the staged stop_* sequence orchestrated across all nodes.
  void stop();

  // Staged shutdown (see Cluster::~Cluster for the ordering rationale).
  void stop_receiving();
  void fail_pending();
  void stop_pool();

  [[nodiscard]] net::MachineId id() const { return id_; }
  [[nodiscard]] NodeStats stats() const;

  /// Install a hook observing every object-method invocation this node
  /// serves.  Install before traffic starts; the hook runs on dispatch
  /// threads and must be thread-safe.
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Block until some client sends the kShutdownMethod control request —
  /// how a standalone node process (oopp_noded) learns it is done.
  void wait_for_shutdown_request();
  [[nodiscard]] net::Inbox& inbox() { return inbox_; }
  [[nodiscard]] ObjectTable& objects() { return objects_; }
  [[nodiscard]] ElasticPool& pool() { return pool_; }
  [[nodiscard]] net::Fabric& fabric() { return fabric_; }

  /// This node's span ring (tracing); dumped by Cluster::dump_trace().
  [[nodiscard]] telemetry::SpanSink& span_sink() { return span_sink_; }

  // -- client side ----------------------------------------------------------

  /// Fire a request and return a future for the raw response message.
  /// `verb` classifies the round trip for per-verb metrics and span names.
  /// When tracing is on, a client span is opened (child of the calling
  /// thread's trace context) and completed when the response arrives; if
  /// `issued` is non-null it receives that span's context so callers (e.g.
  /// Future::get_for) can attribute later events to this call.
  std::future<net::Message> async_raw(
      net::MachineId dst, net::ObjectId object, net::MethodId method,
      std::vector<std::byte> payload,
      telemetry::Verb verb = telemetry::Verb::kCall,
      telemetry::TraceContext* issued = nullptr);

  /// Synchronous round trip; throws the decoded error on failure status.
  net::Message call_raw(net::MachineId dst, net::ObjectId object,
                        net::MethodId method, std::vector<std::byte> payload,
                        telemetry::Verb verb = telemetry::Verb::kCall);

  /// Decode a response's status, throwing the corresponding typed
  /// exception for non-kOk.  Exposed for typed futures.
  static void throw_on_error(const net::Message& response);

  /// The node whose context the calling thread runs in: the driver node
  /// for threads that entered via Cluster, the hosting node for servant
  /// code.  Null if the thread has no context.
  static Node* current();

  /// RAII context setter.  Also binds the thread to the node's span sink
  /// so LocalSpans recorded by servant/subsystem code land in the right
  /// node's trace dump.
  class ContextGuard {
   public:
    explicit ContextGuard(Node* n)
        : prev_(tls_current_),
          sink_(n != nullptr ? &n->span_sink_ : telemetry::thread_sink(),
                n != nullptr ? n->id_ : telemetry::thread_node()) {
      tls_current_ = n;
    }
    ~ContextGuard() { tls_current_ = prev_; }
    ContextGuard(const ContextGuard&) = delete;
    ContextGuard& operator=(const ContextGuard&) = delete;

   private:
    Node* prev_;
    telemetry::SinkScope sink_;
  };

 private:
  friend class ContextGuard;

  void receive_loop();
  void on_request(net::Message req);
  void on_response(net::Message resp);

  /// Run one request against a live entry and send the response.
  void execute(const std::shared_ptr<ObjectTable::Entry>& entry,
               const MethodInfo* mi, const net::Message& req);

  /// Append to an entry's FIFO command queue, kicking a drain task if idle.
  void enqueue_command(std::shared_ptr<ObjectTable::Entry> entry,
                       std::function<void()> cmd);

  void handle_control(const net::Message& req);

  void respond_ok(const net::Message& req, std::vector<std::byte> payload);
  void respond_error(const net::Message& req, net::CallStatus status,
                     std::vector<std::byte> payload);

  static thread_local Node* tls_current_;

  /// Returns true if the inbound message passes verification (or
  /// checksumming is off / the message is unstamped).
  [[nodiscard]] bool payload_intact(const net::Message& m) const;

  net::MachineId id_;
  Options opts_;
  net::Fabric& fabric_;
  net::Inbox inbox_;
  ElasticPool pool_;
  ObjectTable objects_;
  std::thread receiver_;  // oopp-lint: allow(raw-thread-primitive)
  bool started_ = false;

  /// One in-flight client call: the promise the response completes, plus
  /// the open client span (recorded into span_sink_ when the call
  /// resolves — response, abort, whichever happens).
  struct PendingCall {
    std::shared_ptr<std::promise<net::Message>> prom;
    telemetry::Verb verb = telemetry::Verb::kCall;
    bool traced = false;
    telemetry::Span span{};
  };

  util::CheckedMutex pending_mu_{"rpc.Node.pending"};
  std::unordered_map<net::SeqNum, PendingCall> pending_;
  std::atomic<net::SeqNum> next_seq_{1};
  bool aborting_ = false;

  telemetry::SpanSink span_sink_;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> control_requests_{0};
  std::atomic<std::uint64_t> remote_exceptions_{0};
  std::atomic<std::uint64_t> objects_spawned_{0};
  std::atomic<std::uint64_t> objects_destroyed_{0};
  TraceFn trace_;

  util::CheckedMutex shutdown_mu_{"rpc.Node.shutdown"};
  util::CondVar shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace oopp::rpc
