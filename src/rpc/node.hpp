// Node: one simulated machine's RPC endpoint.
//
// Serving side — a receiver thread drains the node's Inbox.  Requests are
// dispatched through the target object's FIFO command queue onto an elastic
// thread pool (so servants can make nested blocking remote calls, as the
// paper's FFT group does).  Responses complete the matching pending call.
//
// Client side — call_raw/async_raw implement the synchronous semantics of
// §2 ("each instruction, and all communications associated with it, is
// completed before the following instruction") and the split-loop
// parallelism of §4 (issue the sends, then collect).
//
// Control plane — requests addressed to kNodeObject create objects
// (remote operator new), destroy them (remote delete), and
// passivate/restore them for the persistent processes of §5.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string_view>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "net/fabric.hpp"
#include "net/inbox.hpp"
#include "net/message.hpp"
#include "rpc/call_policy.hpp"
#include "rpc/class_registry.hpp"
#include "rpc/errors.hpp"
#include "rpc/object_table.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/checked_mutex.hpp"
#include "util/clock.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace oopp::rpc {

// Control-plane method names (object id kNodeObject).
inline constexpr std::string_view kSpawnMethod = "oopp.node.spawn";
inline constexpr std::string_view kDestroyMethod = "oopp.node.destroy";
inline constexpr std::string_view kPassivateMethod = "oopp.node.passivate";
inline constexpr std::string_view kRestoreMethod = "oopp.node.restore";
inline constexpr std::string_view kStatsMethod = "oopp.node.stats";
inline constexpr std::string_view kShutdownMethod = "oopp.node.shutdown";

/// Per-node operation counters, readable locally via Node::stats() and
/// remotely via the kStatsMethod control call.
struct NodeStats {
  std::uint64_t objects_live = 0;
  std::uint64_t requests_served = 0;    // object method invocations
  std::uint64_t control_requests = 0;   // spawn/destroy/passivate/...
  std::uint64_t remote_exceptions = 0;  // servant methods that threw
  std::uint64_t objects_spawned = 0;
  std::uint64_t objects_destroyed = 0;
  std::uint64_t pool_threads = 0;
  std::uint64_t pool_tasks_run = 0;
  std::uint64_t dispatch_shards = 0;   // configured shard count
  std::uint64_t queue_depth_hwm = 0;   // object-queue depth high water
  std::uint64_t pool_busy = 0;         // workers inside a task right now
};

template <class Ar>
void oopp_serialize(Ar& ar, NodeStats& s) {
  ar(s.objects_live, s.requests_served, s.control_requests,
     s.remote_exceptions, s.objects_spawned, s.objects_destroyed,
     s.pool_threads, s.pool_tasks_run, s.dispatch_shards, s.queue_depth_hwm,
     s.pool_busy);
}

/// How a node turns decoded requests into servant executions: the N:M
/// dispatch surface (docs/DISPATCH.md).  The receiver thread routes each
/// request to its target object's shard; shards drain on the elastic
/// worker pool, preserving per-object FIFO order while distinct objects
/// proceed in parallel.
struct DispatchOptions {
  /// Worker pool floor.  The pool still grows elastically up to
  /// max_workers — servants may make nested blocking remote calls, and a
  /// fixed pool could deadlock (see util/thread_pool.hpp).
  std::size_t workers = 2;
  std::size_t max_workers = 512;
  /// Object-table / routing shards (rounded up to a power of two).  One
  /// shard serializes routing per object subset; more shards let the
  /// table and queues scale with object count.
  std::size_t shards = 8;
  /// Per-object command-queue bound.  0 = unbounded.  When a queue is
  /// full, further non-reentrant invocations are refused with
  /// kUnavailable (rpc::PeerUnavailable at the caller) instead of
  /// growing memory without limit; control-plane commands bypass the
  /// bound.
  std::size_t queue_bound = 0;
};

/// One record per served object-method invocation, delivered to the trace
/// hook (if installed).  `method` points into the class's MethodInfo and
/// stays valid for the program's lifetime.
struct CallTrace {
  net::MachineId caller = 0;
  net::ObjectId object = 0;
  std::string_view class_name;
  std::string_view method;
  net::CallStatus status = net::CallStatus::kOk;
  std::int64_t duration_ns = 0;
  std::size_t request_bytes = 0;
  std::size_t response_bytes = 0;
};

/// Circuit-breaker state for one peer machine, as seen by this node's
/// client side (see docs/FAULTS.md for the state machine).
enum class BreakerState : std::uint8_t {
  kClosed = 0,    // healthy: calls flow
  kOpen = 1,      // failing: calls fail fast with rpc::PeerUnavailable
  kHalfOpen = 2,  // cooldown over: one probe call is in flight
};

inline const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

/// Snapshot of one peer's health tracker (Node::peer_health).
struct PeerHealth {
  BreakerState state = BreakerState::kClosed;
  std::uint32_t consecutive_failures = 0;
};

class Node {
 public:
  struct Options {
    /// Worker pool, sharding, and queue-bound knobs (docs/DISPATCH.md);
    /// replaces the old min_threads/max_threads pair.
    DispatchOptions dispatch{};
    /// Stamp every outgoing payload with a checksum and verify inbound
    /// ones.  A corrupted request is answered with kBadFrame; a corrupted
    /// response surfaces as rpc::BadFrame at the call site.  Costs one
    /// pass over each payload; intended for untrusted fabrics.
    bool checksums = false;
    /// Fault tolerance applied when a call carries no explicit policy.
    /// The default default is inert (one attempt, wait forever) — the
    /// pre-policy behaviour.  Also settable at runtime via
    /// set_default_policy().
    CallPolicy default_policy{};
    /// Server-side at-most-once window: how many responses to retryable
    /// (attempt-stamped) calls are kept for replay.  Must cover the
    /// maximum number of such calls a single peer can have outstanding
    /// or recently completed; beyond it, a very late retry may re-execute.
    std::size_t dedup_cache_entries = 4096;
    /// Circuit breaker: this many consecutive retry-layer failures to one
    /// peer open its breaker (calls fail fast with rpc::PeerUnavailable
    /// until breaker_cooldown passes and a half-open probe succeeds).
    /// 0 disables the breaker entirely.
    std::uint32_t breaker_threshold = 0;
    std::chrono::milliseconds breaker_cooldown{250};
  };

  using TraceFn = std::function<void(const CallTrace&)>;

  Node(net::MachineId id, net::Fabric& fabric) : Node(id, fabric, Options{}) {}
  Node(net::MachineId id, net::Fabric& fabric, Options opts);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Attach to the fabric and start the receiver thread.
  void start();

  /// Full local shutdown (receiver, pending calls, pool).  For clusters,
  /// prefer the staged stop_* sequence orchestrated across all nodes.
  void stop();

  // Staged shutdown (see Cluster::~Cluster for the ordering rationale).
  void stop_receiving();
  void fail_pending();
  void stop_pool();

  [[nodiscard]] net::MachineId id() const { return id_; }
  [[nodiscard]] NodeStats stats() const;

  /// Install a hook observing every object-method invocation this node
  /// serves.  Install before traffic starts; the hook runs on dispatch
  /// threads and must be thread-safe.
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Block until some client sends the kShutdownMethod control request —
  /// how a standalone node process (oopp_noded) learns it is done.
  void wait_for_shutdown_request();
  [[nodiscard]] net::Inbox& inbox() { return inbox_; }
  [[nodiscard]] ObjectTable& objects() { return objects_; }
  [[nodiscard]] ElasticPool& pool() { return pool_; }
  [[nodiscard]] net::Fabric& fabric() { return fabric_; }

  /// This node's span ring (tracing); dumped by Cluster::dump_trace().
  [[nodiscard]] telemetry::SpanSink& span_sink() { return span_sink_; }

  // -- fault tolerance ------------------------------------------------------

  /// Policy applied to calls that carry no explicit one.  Thread-safe;
  /// takes effect for calls issued after it returns.
  void set_default_policy(const CallPolicy& p);
  [[nodiscard]] CallPolicy default_policy() const;

  /// This node's view of a peer's circuit breaker.  A peer never called
  /// (or with the breaker disabled) reads as closed/0.
  [[nodiscard]] PeerHealth peer_health(net::MachineId peer) const;

  // -- client side ----------------------------------------------------------

  /// Fire a request and return a future for the raw response message.
  /// `verb` classifies the round trip for per-verb metrics and span names.
  /// When tracing is on, a client span is opened (child of the calling
  /// thread's trace context) and completed when the response arrives; if
  /// `issued` is non-null it receives that span's context so callers (e.g.
  /// Future::get_for) can attribute later events to this call.
  ///
  /// `policy` null means "use the node default".  A retryable policy
  /// stamps the request with an attempt number, arms the retry driver
  /// (lost attempts are re-sent with backoff + jitter; the server
  /// deduplicates so non-reentrant methods never run twice), and fails
  /// the future with rpc::CallTimeout once attempts or the deadline are
  /// exhausted.  Throws rpc::PeerUnavailable immediately when the peer's
  /// circuit breaker is open.
  std::future<net::Message> async_raw(
      net::MachineId dst, net::ObjectId object, net::MethodId method,
      net::Buffer payload,
      telemetry::Verb verb = telemetry::Verb::kCall,
      telemetry::TraceContext* issued = nullptr,
      const CallPolicy* policy = nullptr);

  /// Synchronous round trip; throws the decoded error on failure status.
  net::Message call_raw(net::MachineId dst, net::ObjectId object,
                        net::MethodId method, net::Buffer payload,
                        telemetry::Verb verb = telemetry::Verb::kCall,
                        const CallPolicy* policy = nullptr);

  /// Decode a response's status, throwing the corresponding typed
  /// exception for non-kOk.  Exposed for typed futures.
  static void throw_on_error(const net::Message& response);

  /// The node whose context the calling thread runs in: the driver node
  /// for threads that entered via Cluster, the hosting node for servant
  /// code.  Null if the thread has no context.
  static Node* current();

  /// RAII context setter.  Also binds the thread to the node's span sink
  /// so LocalSpans recorded by servant/subsystem code land in the right
  /// node's trace dump.
  class ContextGuard {
   public:
    explicit ContextGuard(Node* n)
        : prev_(tls_current_),
          sink_(n != nullptr ? &n->span_sink_ : telemetry::thread_sink(),
                n != nullptr ? n->id_ : telemetry::thread_node()) {
      tls_current_ = n;
    }
    ~ContextGuard() { tls_current_ = prev_; }
    ContextGuard(const ContextGuard&) = delete;
    ContextGuard& operator=(const ContextGuard&) = delete;

   private:
    Node* prev_;
    telemetry::SinkScope sink_;
  };

 private:
  friend class ContextGuard;

  void receive_loop();
  /// Append a decoded request to its target shard's FIFO and kick a
  /// drain task if that shard is idle (runs on the receiver thread).
  void route_request(net::Message req);
  /// Pop-and-dispatch one shard's queued requests until empty (runs on a
  /// pool worker; never blocks on servant work — see on_request).
  void drain_shard(std::size_t shard);
  void on_request(net::Message req);
  void on_response(net::Message resp);

  // -- fault-tolerance internals (see docs/FAULTS.md) -----------------------

  /// One retryable logical call being driven by retry_loop().
  struct RetryEntry {
    net::MachineId dst = 0;
    net::ObjectId object = 0;
    net::MethodId method = 0;
    net::Buffer payload;  // retained for resends (slice refs, not a copy)
    CallPolicy policy;
    std::uint32_t attempts_sent = 1;
    /// false: waiting on attempt `attempts_sent`'s response until `due`;
    /// true: attempt declared lost, resending when `due` passes.
    bool in_backoff = false;
    time_point due{};
    time_point overall_deadline = time_point::max();
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    /// Issuer's held-lock classes, captured once at issue time so resends
    /// carry the same distributed-lockcheck piggyback as the first send.
    net::LockSet held;
  };

  void retry_loop();
  void stop_retry();
  /// Complete a pending call exceptionally (retry exhaustion, breaker).
  void fail_call(net::SeqNum seq, net::CallStatus status,
                 std::exception_ptr ex);
  /// Breaker admission; throws rpc::PeerUnavailable when open.
  void admit_call(net::MachineId dst);
  void record_peer_success(net::MachineId peer);
  void record_peer_failure(net::MachineId peer);
  /// Backoff for retry number `retry` with jitter applied.
  std::chrono::nanoseconds jittered_backoff(const CallPolicy& p,
                                            std::uint32_t retry);

  /// Server side: returns true when the request was fully handled by the
  /// at-most-once layer (cached response replayed, or duplicate of an
  /// in-flight execution dropped) and must not be dispatched.
  bool dedup_intercept(const net::Message& req);
  /// Record a completed response for future replay (attempt-stamped
  /// requests only; kBadFrame is never cached — see respond_error).
  void dedup_store(const net::Message& req, const net::Message& response);

  /// Run one request against a live entry and send the response.
  void execute(const std::shared_ptr<ObjectTable::Entry>& entry,
               const MethodInfo* mi, const net::Message& req);

  /// Append to an entry's FIFO command queue, kicking a drain task if
  /// idle.  With `bounded`, refuses (returns false) when the queue sits
  /// at Options::dispatch.queue_bound; control-plane commands pass
  /// bounded = false so destroy/passivate always land.
  bool enqueue_command(std::shared_ptr<ObjectTable::Entry> entry,
                       std::function<void()> cmd, bool bounded);

  void handle_control(const net::Message& req);

  void respond_ok(const net::Message& req, net::Buffer payload);
  void respond_error(const net::Message& req, net::CallStatus status,
                     net::Buffer payload);

  static thread_local Node* tls_current_;

  /// Returns true if the inbound message passes verification (or
  /// checksumming is off / the message is unstamped).
  [[nodiscard]] bool payload_intact(const net::Message& m) const;

  net::MachineId id_;
  Options opts_;
  net::Fabric& fabric_;
  net::Inbox inbox_;
  ElasticPool pool_;
  ObjectTable objects_;
  std::thread receiver_;  // oopp-lint: allow(raw-thread-primitive)
  bool started_ = false;

  /// One routing shard of the N:M dispatch: requests for objects with
  /// shard_of(id) == index queue here in arrival order; a single drain
  /// task per shard feeds them to on_request, so routing itself is FIFO
  /// per shard (and therefore per object).
  struct DispatchShard {
    util::CheckedMutex mu{"rpc.Node.dispatch_shard"};
    std::deque<net::Message> q;
    bool draining = false;
  };
  std::vector<std::unique_ptr<DispatchShard>> dispatch_shards_;
  std::atomic<std::uint64_t> queue_depth_hwm_{0};

  /// One in-flight client call: the promise the response completes, plus
  /// the open client span (recorded into span_sink_ when the call
  /// resolves — response, abort, whichever happens).
  struct PendingCall {
    std::shared_ptr<std::promise<net::Message>> prom;
    telemetry::Verb verb = telemetry::Verb::kCall;
    bool traced = false;
    telemetry::Span span{};
  };

  util::CheckedMutex pending_mu_{"rpc.Node.pending"};
  std::unordered_map<net::SeqNum, PendingCall> pending_;
  std::atomic<net::SeqNum> next_seq_{1};
  bool aborting_ = false;

  /// Retry driver state.  retry_mu_ is never held across a fabric send or
  /// while taking pending_mu_/peers_mu_ (no nested locking anywhere in
  /// the fault-tolerance layer).
  util::CheckedMutex retry_mu_{"rpc.Node.retry"};
  util::CondVar retry_cv_;
  std::map<net::SeqNum, RetryEntry> retries_;
  bool retry_stop_ = false;
  std::thread retry_thread_;  // oopp-lint: allow(raw-thread-primitive)
  Xoshiro256 retry_rng_{0x0fa17e5};  // jitter only; seed is irrelevant

  /// Server-side at-most-once cache: (caller, seq) -> response, for
  /// attempt-stamped requests.  FIFO-bounded by opts_.dedup_cache_entries.
  struct DedupEntry {
    bool completed = false;
    net::Message response;
  };
  using DedupKey = std::pair<net::MachineId, net::SeqNum>;
  util::CheckedMutex dedup_mu_{"rpc.Node.dedup"};
  std::map<DedupKey, DedupEntry> dedup_;
  std::deque<DedupKey> dedup_fifo_;

  /// Per-peer health / circuit breaker (client side).
  struct Peer {
    BreakerState state = BreakerState::kClosed;
    std::uint32_t consecutive_failures = 0;
    time_point open_until{};
    bool probe_inflight = false;
  };
  mutable util::CheckedMutex peers_mu_{"rpc.Node.peers"};
  std::map<net::MachineId, Peer> peers_;

  mutable util::CheckedMutex policy_mu_{"rpc.Node.policy"};
  CallPolicy default_policy_;
  /// Fast path: skip the policy_mu_ lookup entirely while the node-level
  /// default is inert (the common case).
  std::atomic<bool> has_default_policy_{false};

  telemetry::SpanSink span_sink_;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> control_requests_{0};
  std::atomic<std::uint64_t> remote_exceptions_{0};
  std::atomic<std::uint64_t> objects_spawned_{0};
  std::atomic<std::uint64_t> objects_destroyed_{0};
  TraceFn trace_;

  util::CheckedMutex shutdown_mu_{"rpc.Node.shutdown"};
  util::CondVar shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace oopp::rpc
