// Process-wide registry of remotable classes, keyed by class name.
//
// Every machine in the cluster shares this registry when machines live in
// one OS process (both fabrics shipped here).  In a genuinely multi-process
// deployment each process would run the same registration code at startup —
// the registry is exactly the information the paper's compiler would have
// baked into both sides of the protocol.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rpc/class_info.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::rpc {

class ClassRegistry {
 public:
  static ClassRegistry& instance();

  /// Find a class by name; nullptr if unknown.
  [[nodiscard]] const ClassInfo* find(std::string_view name) const;

  /// Get-or-create the mutable record for `name`.  Returns {info, created};
  /// when created == false the caller must not re-bind.
  std::pair<ClassInfo*, bool> add(std::string name);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable util::CheckedSharedMutex mu_{"rpc.ClassRegistry"};
  std::unordered_map<std::string, std::unique_ptr<ClassInfo>> classes_;
};

}  // namespace oopp::rpc
