// Per-machine table of live servant objects.
//
// The paper equates one remote object with one server process that accepts
// commands sequentially.  Each table entry therefore carries a FIFO command
// queue: non-reentrant method invocations are appended and drained one at a
// time, which gives every object the paper's process semantics (including
// a well-defined point for the group barrier of §4), while different
// objects on the same machine execute concurrently.
//
// The table is sharded by object id (shard = id & (shards - 1)) so the
// node's N:M dispatch can route and look up concurrently without one map
// mutex serializing every request; DispatchOptions::shards picks the
// count.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "rpc/class_info.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::rpc {

class ObjectTable {
 public:
  struct Entry {
    std::unique_ptr<ServantBase> servant;
    const ClassInfo* info = nullptr;

    // Command queue state (managed by Node).
    util::CheckedMutex queue_mu{"rpc.ObjectTable.Entry.queue"};
    std::deque<std::function<void()>> queue;
    bool draining = false;
    bool destroyed = false;
  };

  /// `shards` is rounded up to a power of two (so shard_of is a mask).
  explicit ObjectTable(std::size_t shards = 1);

  /// Register a servant; returns its fresh object id (ids are never
  /// reused, so a stale remote pointer can only miss, never alias).
  net::ObjectId insert(std::unique_ptr<ServantBase> servant,
                       const ClassInfo* info);

  /// Shared ownership so an in-flight call keeps the entry alive even if
  /// the object is concurrently destroyed.
  [[nodiscard]] std::shared_ptr<Entry> find(net::ObjectId id) const;

  /// Remove from the table.  Returns false if absent.
  bool erase(net::ObjectId id);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<net::ObjectId> ids() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Which shard an object id maps to (kNodeObject → 0); the node's
  /// dispatch queues mirror this mapping.
  [[nodiscard]] std::size_t shard_of(net::ObjectId id) const {
    return id & (shards_.size() - 1);
  }

 private:
  struct Shard {
    mutable util::CheckedMutex mu{"rpc.ObjectTable.shard"};
    std::unordered_map<net::ObjectId, std::shared_ptr<Entry>> map;
  };

  std::vector<Shard> shards_;
  std::atomic<net::ObjectId> next_{1};  // 0 is kNodeObject
};

}  // namespace oopp::rpc
