// Runtime class descriptions: the dispatch tables that stand in for the
// paper's compiler-generated client/server protocol.
//
// A ClassInfo owns, for one remotable class:
//   * constructors — decode a serialized argument tuple, build the servant;
//   * methods      — decode arguments, invoke, encode the result;
//   * persistence  — optional save/restore hooks used by the persistent-
//                    process machinery of §5.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "serial/archive.hpp"

namespace oopp::rpc {

/// Type-erased holder for a live servant instance.
class ServantBase {
 public:
  virtual ~ServantBase() = default;
  /// Pointer to the instance, cast back to the concrete type by the
  /// invoker generated for that same type.
  virtual void* instance() = 0;
};

template <class T>
class Servant final : public ServantBase {
 public:
  explicit Servant(std::unique_ptr<T> obj) : obj_(std::move(obj)) {}
  void* instance() override { return obj_.get(); }
  T& object() { return *obj_; }

 private:
  std::unique_ptr<T> obj_;
};

/// Deserialize arguments from `args`, run the method on `instance`, encode
/// the result into `result`.
using MethodFn =
    std::function<void(void* instance, serial::IArchive& args,
                       serial::OArchive& result)>;

struct MethodInfo {
  std::string name;
  MethodFn fn;
  /// Reentrant methods bypass the servant's command queue and may run
  /// concurrently with queued methods.  Used for one-sided operations
  /// (e.g. the FFT transpose's deposit_block) that peers invoke while the
  /// target is itself blocked inside a method.
  bool reentrant = false;
};

struct CtorInfo {
  std::function<std::unique_ptr<ServantBase>(serial::IArchive&)> construct;
};

struct ClassInfo {
  std::string name;
  /// C++ type backing this wire name; guards against two classes
  /// accidentally claiming one name.
  const std::type_info* cpp_type = nullptr;
  std::vector<CtorInfo> ctors;
  std::unordered_map<net::MethodId, MethodInfo> methods;

  /// Persistence hooks; null unless the class opted in via
  /// Binder::persistent().
  std::function<void(void* instance, serial::OArchive&)> save;
  std::function<std::unique_ptr<ServantBase>(serial::IArchive&)> restore;

  [[nodiscard]] const MethodInfo* find_method(net::MethodId id) const {
    auto it = methods.find(id);
    return it == methods.end() ? nullptr : &it->second;
  }
  [[nodiscard]] bool persistent() const {
    return static_cast<bool>(save) && static_cast<bool>(restore);
  }
};

}  // namespace oopp::rpc
