#include "rpc/node.hpp"

#include <typeinfo>

#include "rpc/binding.hpp"
#include "serial/archive.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace oopp::rpc {

thread_local Node* Node::tls_current_ = nullptr;

Node* Node::current() { return tls_current_; }

Node::Node(net::MachineId id, net::Fabric& fabric, Options opts)
    : id_(id),
      opts_(opts),
      fabric_(fabric),
      pool_(ElasticPool::Options{.min_threads = opts.min_threads,
                                 .max_threads = opts.max_threads}) {}

bool Node::payload_intact(const net::Message& m) const {
  if (!opts_.checksums || m.header.payload_crc == 0) return true;
  return net::payload_checksum(m.payload) == m.header.payload_crc;
}

Node::~Node() { stop(); }

void Node::start() {
  OOPP_CHECK(!started_);
  started_ = true;
  fabric_.attach(id_, &inbox_);
  // oopp-lint: allow(raw-thread-primitive) — joined in stop().
  receiver_ = std::thread([this] { receive_loop(); });
}

void Node::stop() {
  stop_receiving();
  fail_pending();
  stop_pool();
}

void Node::stop_receiving() {
  inbox_.close();
  if (receiver_.joinable()) receiver_.join();
}

void Node::fail_pending() {
  std::unordered_map<net::SeqNum, std::shared_ptr<std::promise<net::Message>>>
      doomed;
  {
    std::lock_guard lock(pending_mu_);
    aborting_ = true;
    doomed.swap(pending_);
  }
  for (auto& [seq, prom] : doomed) {
    prom->set_exception(
        std::make_exception_ptr(CallAborted("node shutting down")));
  }
}

void Node::stop_pool() { pool_.shutdown(); }

void Node::wait_for_shutdown_request() {
  std::unique_lock lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Node::receive_loop() {
  while (auto msg = inbox_.pop()) {
    if (!payload_intact(*msg)) {
      if (msg->header.kind == net::MsgKind::kRequest) {
        respond_error(*msg, net::CallStatus::kBadFrame,
                      serial::to_bytes(std::string(
                          "payload checksum mismatch on request")));
      } else {
        // Surface the corruption at the call site as BadFrame.
        msg->header.status = net::CallStatus::kBadFrame;
        msg->payload = serial::to_bytes(
            std::string("payload checksum mismatch on response"));
        on_response(std::move(*msg));
      }
      continue;
    }
    if (msg->header.kind == net::MsgKind::kResponse) {
      // Responses are completed inline — never queued behind servant work,
      // so a servant blocked on a nested call always gets its reply.
      on_response(std::move(*msg));
    } else {
      on_request(std::move(*msg));
    }
  }
}

void Node::on_response(net::Message resp) {
  std::shared_ptr<std::promise<net::Message>> prom;
  {
    std::lock_guard lock(pending_mu_);
    auto it = pending_.find(resp.header.seq);
    if (it == pending_.end()) return;  // caller gave up (shutdown)
    prom = std::move(it->second);
    pending_.erase(it);
  }
  prom->set_value(std::move(resp));
}

void Node::on_request(net::Message req) {
  if (req.header.object == net::kNodeObject) {
    pool_.submit([this, req = std::move(req)]() mutable {
      ContextGuard guard(this);
      handle_control(req);
    });
    return;
  }

  auto entry = objects_.find(req.header.object);
  if (!entry) {
    respond_error(req, net::CallStatus::kObjectNotFound, {});
    return;
  }
  const MethodInfo* mi = entry->info->find_method(req.header.method);
  if (!mi) {
    respond_error(req, net::CallStatus::kMethodNotFound,
                  serial::to_bytes(std::string("unknown method id on class " +
                                               entry->info->name)));
    return;
  }

  if (mi->reentrant) {
    // One-sided operation: runs immediately on its own pool task, even if
    // the object is busy inside a queued method.
    pool_.submit([this, entry, mi, req = std::move(req)]() mutable {
      ContextGuard guard(this);
      execute(entry, mi, req);
    });
    return;
  }

  enqueue_command(entry, [this, entry, mi, req = std::move(req)] {
    execute(entry, mi, req);
  });
}

void Node::enqueue_command(std::shared_ptr<ObjectTable::Entry> entry,
                           std::function<void()> cmd) {
  bool kick = false;
  {
    std::lock_guard lock(entry->queue_mu);
    entry->queue.push_back(std::move(cmd));
    if (!entry->draining) {
      entry->draining = true;
      kick = true;
    }
  }
  if (!kick) return;
  pool_.submit([this, entry] {
    ContextGuard guard(this);
    // Drain the command queue FIFO — the paper's "process accepts commands"
    // loop.  One drain task exists per object at a time.
    for (;;) {
      std::function<void()> next;
      {
        std::lock_guard lock(entry->queue_mu);
        if (entry->queue.empty()) {
          entry->draining = false;
          return;
        }
        next = std::move(entry->queue.front());
        entry->queue.pop_front();
      }
      next();
    }
  });
}

void Node::execute(const std::shared_ptr<ObjectTable::Entry>& entry,
                   const MethodInfo* mi, const net::Message& req) {
  if (entry->destroyed || !entry->servant) {
    respond_error(req, net::CallStatus::kObjectNotFound, {});
    return;
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  CallTrace trace;
  if (trace_) {
    trace.caller = req.header.src;
    trace.object = req.header.object;
    trace.class_name = entry->info->name;
    trace.method = mi->name;
    trace.request_bytes = req.payload.size();
  }
  const std::int64_t t0 = trace_ ? now_ns() : 0;
  try {
    serial::IArchive ia(req.payload);
    serial::OArchive oa;
    mi->fn(entry->servant->instance(), ia, oa);
    if (trace_) {
      trace.status = net::CallStatus::kOk;
      trace.response_bytes = oa.size();
      trace.duration_ns = now_ns() - t0;
      trace_(trace);
    }
    respond_ok(req, oa.take());
  } catch (const serial::serial_error& e) {
    if (trace_) {
      trace.status = net::CallStatus::kBadFrame;
      trace.duration_ns = now_ns() - t0;
      trace_(trace);
    }
    respond_error(req, net::CallStatus::kBadFrame,
                  serial::to_bytes(std::string(e.what())));
  } catch (const std::exception& e) {
    remote_exceptions_.fetch_add(1, std::memory_order_relaxed);
    if (trace_) {
      trace.status = net::CallStatus::kRemoteException;
      trace.duration_ns = now_ns() - t0;
      trace_(trace);
    }
    serial::OArchive oa;
    oa(std::string(typeid(e).name()), std::string(e.what()));
    respond_error(req, net::CallStatus::kRemoteException, oa.take());
  }
}

NodeStats Node::stats() const {
  NodeStats s;
  s.objects_live = objects_.size();
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.control_requests = control_requests_.load(std::memory_order_relaxed);
  s.remote_exceptions = remote_exceptions_.load(std::memory_order_relaxed);
  s.objects_spawned = objects_spawned_.load(std::memory_order_relaxed);
  s.objects_destroyed = objects_destroyed_.load(std::memory_order_relaxed);
  s.pool_threads = pool_.thread_count();
  s.pool_tasks_run = pool_.tasks_run();
  return s;
}

void Node::handle_control(const net::Message& req) {
  static const net::MethodId kSpawn = net::method_id(kSpawnMethod);
  static const net::MethodId kDestroy = net::method_id(kDestroyMethod);
  static const net::MethodId kPassivate = net::method_id(kPassivateMethod);
  static const net::MethodId kRestore = net::method_id(kRestoreMethod);
  static const net::MethodId kStats = net::method_id(kStatsMethod);
  static const net::MethodId kShutdown = net::method_id(kShutdownMethod);

  control_requests_.fetch_add(1, std::memory_order_relaxed);
  try {
    serial::IArchive ia(req.payload);

    if (req.header.method == kSpawn) {
      const auto class_name = ia.read<std::string>();
      const auto ctor_index = ia.read<std::uint32_t>();
      const ClassInfo* info = ClassRegistry::instance().find(class_name);
      if (!info) throw UnknownClass("unknown class '" + class_name + "'");
      OOPP_CHECK_MSG(ctor_index < info->ctors.size(),
                     "constructor index " << ctor_index << " out of range for "
                                          << class_name);
      auto servant = info->ctors[ctor_index].construct(ia);
      const auto id = objects_.insert(std::move(servant), info);
      objects_spawned_.fetch_add(1, std::memory_order_relaxed);
      respond_ok(req, serial::to_bytes(static_cast<std::uint64_t>(id)));
      return;
    }

    if (req.header.method == kDestroy) {
      const auto target = ia.read<std::uint64_t>();
      auto entry = objects_.find(target);
      if (!entry) {
        respond_error(req, net::CallStatus::kObjectNotFound, {});
        return;
      }
      // Destruction goes through the command queue: all previously issued
      // commands complete first, then the process terminates (paper §2:
      // the destructor "causes termination of the remote process and
      // completion of the corresponding client-server communications").
      enqueue_command(entry, [this, entry, target, req] {
        entry->destroyed = true;
        entry->servant.reset();  // run the destructor now
        objects_.erase(target);
        objects_destroyed_.fetch_add(1, std::memory_order_relaxed);
        respond_ok(req, {});
      });
      return;
    }

    if (req.header.method == kPassivate) {
      const auto target = ia.read<std::uint64_t>();
      const bool destroy_after = ia.read<std::uint8_t>() != 0;
      auto entry = objects_.find(target);
      if (!entry) {
        respond_error(req, net::CallStatus::kObjectNotFound, {});
        return;
      }
      if (!entry->info->persistent())
        throw rpc_error("class " + entry->info->name +
                        " is not persistent (no save/restore binding)");
      enqueue_command(entry, [this, entry, target, destroy_after, req] {
        if (entry->destroyed || !entry->servant) {
          respond_error(req, net::CallStatus::kObjectNotFound, {});
          return;
        }
        try {
          serial::OArchive state;
          entry->info->save(entry->servant->instance(), state);
          serial::OArchive oa;
          oa(entry->info->name, state.bytes());
          if (destroy_after) {
            entry->destroyed = true;
            entry->servant.reset();
            objects_.erase(target);
          }
          respond_ok(req, oa.take());
        } catch (const std::exception& e) {
          serial::OArchive oa;
          oa(std::string(typeid(e).name()), std::string(e.what()));
          respond_error(req, net::CallStatus::kRemoteException, oa.take());
        }
      });
      return;
    }

    if (req.header.method == kRestore) {
      const auto class_name = ia.read<std::string>();
      const auto state = ia.read<std::vector<std::byte>>();
      const ClassInfo* info = ClassRegistry::instance().find(class_name);
      if (!info) throw UnknownClass("unknown class '" + class_name + "'");
      if (!info->persistent())
        throw rpc_error("class " + class_name + " is not persistent");
      serial::IArchive sa(state);
      auto servant = info->restore(sa);
      const auto id = objects_.insert(std::move(servant), info);
      objects_spawned_.fetch_add(1, std::memory_order_relaxed);
      respond_ok(req, serial::to_bytes(static_cast<std::uint64_t>(id)));
      return;
    }

    if (req.header.method == kStats) {
      respond_ok(req, serial::to_bytes(stats()));
      return;
    }

    if (req.header.method == kShutdown) {
      respond_ok(req, {});
      {
        std::lock_guard lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return;
    }

    respond_error(req, net::CallStatus::kMethodNotFound,
                  serial::to_bytes(std::string("unknown control method")));
  } catch (const serial::serial_error& e) {
    respond_error(req, net::CallStatus::kBadFrame,
                  serial::to_bytes(std::string(e.what())));
  } catch (const std::exception& e) {
    serial::OArchive oa;
    oa(std::string(typeid(e).name()), std::string(e.what()));
    respond_error(req, net::CallStatus::kRemoteException, oa.take());
  }
}

net::MessageHeader Node::response_header(const net::Message& req,
                                         net::CallStatus status) {
  net::MessageHeader h;
  h.kind = net::MsgKind::kResponse;
  h.status = status;
  h.src = req.header.dst;
  h.dst = req.header.src;
  h.seq = req.header.seq;
  h.object = req.header.object;
  h.method = req.header.method;
  return h;
}

void Node::respond_ok(const net::Message& req, std::vector<std::byte> payload) {
  net::Message resp;
  resp.header = response_header(req, net::CallStatus::kOk);
  resp.payload = std::move(payload);
  if (opts_.checksums)
    resp.header.payload_crc = net::payload_checksum(resp.payload);
  fabric_.send(std::move(resp));
}

void Node::respond_error(const net::Message& req, net::CallStatus status,
                         std::vector<std::byte> payload) {
  net::Message resp;
  resp.header = response_header(req, status);
  resp.payload = std::move(payload);
  if (opts_.checksums)
    resp.header.payload_crc = net::payload_checksum(resp.payload);
  fabric_.send(std::move(resp));
}

std::future<net::Message> Node::async_raw(net::MachineId dst,
                                          net::ObjectId object,
                                          net::MethodId method,
                                          std::vector<std::byte> payload) {
  auto prom = std::make_shared<std::promise<net::Message>>();
  auto fut = prom->get_future();
  const net::SeqNum seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(pending_mu_);
    if (aborting_) throw CallAborted("node shutting down");
    pending_.emplace(seq, prom);
  }
  net::Message msg;
  msg.header.kind = net::MsgKind::kRequest;
  msg.header.src = id_;
  msg.header.dst = dst;
  msg.header.seq = seq;
  msg.header.object = object;
  msg.header.method = method;
  msg.payload = std::move(payload);
  if (opts_.checksums)
    msg.header.payload_crc = net::payload_checksum(msg.payload);
  fabric_.send(std::move(msg));
  return fut;
}

net::Message Node::call_raw(net::MachineId dst, net::ObjectId object,
                            net::MethodId method,
                            std::vector<std::byte> payload) {
  note_blocking_remote_call("rpc::Node::call_raw");
  auto fut = async_raw(dst, object, method, std::move(payload));
  net::Message resp = fut.get();
  throw_on_error(resp);
  return resp;
}

void Node::throw_on_error(const net::Message& resp) {
  switch (resp.header.status) {
    case net::CallStatus::kOk:
      return;
    case net::CallStatus::kRemoteException: {
      serial::IArchive ia(resp.payload);
      auto type = ia.read<std::string>();
      auto what = ia.read<std::string>();
      throw RemoteError(resp.header.src, std::move(type), std::move(what));
    }
    case net::CallStatus::kObjectNotFound:
      throw ObjectNotFound(resp.header.src, resp.header.object);
    case net::CallStatus::kMethodNotFound: {
      serial::IArchive ia(resp.payload);
      throw MethodNotFound(ia.read<std::string>());
    }
    case net::CallStatus::kBadFrame: {
      serial::IArchive ia(resp.payload);
      throw BadFrame(ia.read<std::string>());
    }
  }
  throw rpc_error("unknown response status");
}

}  // namespace oopp::rpc
