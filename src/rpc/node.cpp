#include "rpc/node.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <optional>
#include <typeinfo>
#include <vector>

#include "rpc/binding.hpp"
#include "serial/archive.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace oopp::rpc {

namespace {

/// Per-verb instruments, resolved once — async_raw is the hot path.
/// Counters are always on; latency histograms only fill when tracing is
/// enabled (see telemetry::enabled() gating at the call sites).
telemetry::Counter& verb_counter(telemetry::Verb v) {
  static std::array<telemetry::Counter*, 6> counters = [] {
    auto& scope = telemetry::Metrics::scope_for("rpc");
    return std::array<telemetry::Counter*, 6>{
        &scope.counter("call_issued"),      &scope.counter("async_issued"),
        &scope.counter("barrier_issued"),   &scope.counter("control_issued"),
        &scope.counter("page_read_issued"), &scope.counter("page_write_issued"),
    };
  }();
  return *counters[static_cast<std::size_t>(v)];
}

telemetry::Histogram& verb_histogram(telemetry::Verb v) {
  static std::array<telemetry::Histogram*, 6> hists = [] {
    auto& scope = telemetry::Metrics::scope_for("rpc");
    return std::array<telemetry::Histogram*, 6>{
        &scope.histogram("call_ns"),      &scope.histogram("async_ns"),
        &scope.histogram("barrier_ns"),   &scope.histogram("control_ns"),
        &scope.histogram("page_read_ns"), &scope.histogram("page_write_ns"),
    };
  }();
  return *hists[static_cast<std::size_t>(v)];
}

/// rpc.retry scope: client-side retry driver + server-side dedup cache.
struct RetryMetrics {
  telemetry::Counter& resends;            // retry attempts put on the wire
  telemetry::Counter& bad_frame_retries;  // retries triggered by kBadFrame
  telemetry::Counter& giveups;            // calls failed after all attempts
  telemetry::Counter& dedup_replays;      // cached responses replayed
  telemetry::Counter& dedup_inflight_drops;  // duplicates of running calls
};

RetryMetrics& retry_metrics() {
  static RetryMetrics m = [] {
    auto& s = telemetry::Metrics::scope_for("rpc.retry");
    return RetryMetrics{s.counter("resends"), s.counter("bad_frame_retries"),
                        s.counter("giveups"), s.counter("dedup_replays"),
                        s.counter("dedup_inflight_drops")};
  }();
  return m;
}

/// rpc.breaker scope: per-peer circuit breaker transitions and effects.
struct BreakerMetrics {
  telemetry::Counter& opened;
  telemetry::Counter& closed;
  telemetry::Counter& fast_fails;  // calls rejected without touching the net
  telemetry::Counter& probes;      // half-open probe admissions
};

BreakerMetrics& breaker_metrics() {
  static BreakerMetrics m = [] {
    auto& s = telemetry::Metrics::scope_for("rpc.breaker");
    return BreakerMetrics{s.counter("opened"), s.counter("closed"),
                          s.counter("fast_fails"), s.counter("probes")};
  }();
  return m;
}

/// rpc.dispatch scope: the N:M routing layer between the receiver thread
/// and the worker pool (docs/DISPATCH.md).
struct DispatchMetrics {
  telemetry::Counter& routed;             // requests routed to a shard
  telemetry::Counter& queue_full_rejects; // bounded object queues refusing
  telemetry::Histogram& shard_depth;      // shard queue depth at enqueue
};

DispatchMetrics& dispatch_metrics() {
  static DispatchMetrics m = [] {
    auto& s = telemetry::Metrics::scope_for("rpc.dispatch");
    return DispatchMetrics{s.counter("routed"),
                           s.counter("queue_full_rejects"),
                           s.histogram("shard_depth")};
  }();
  return m;
}

/// Lock-free high-water update (queue depth statistics).
void note_depth(std::atomic<std::uint64_t>& hwm, std::size_t depth) {
  auto prev = hwm.load(std::memory_order_relaxed);
  while (depth > prev &&
         !hwm.compare_exchange_weak(prev, depth, std::memory_order_relaxed)) {
  }
}

}  // namespace

thread_local Node* Node::tls_current_ = nullptr;

Node* Node::current() { return tls_current_; }

Node::Node(net::MachineId id, net::Fabric& fabric, Options opts)
    : id_(id),
      opts_(opts),
      fabric_(fabric),
      pool_(ElasticPool::Options{.min_threads = opts.dispatch.workers,
                                 .max_threads = opts.dispatch.max_workers}),
      objects_(opts.dispatch.shards),
      default_policy_(opts.default_policy) {
  has_default_policy_.store(default_policy_.retryable(),
                            std::memory_order_relaxed);
  dispatch_shards_.reserve(objects_.shard_count());
  for (std::size_t i = 0; i < objects_.shard_count(); ++i)
    dispatch_shards_.push_back(std::make_unique<DispatchShard>());
}

bool Node::payload_intact(const net::Message& m) const {
  if (!opts_.checksums || m.header.payload_crc == 0) return true;
  return net::payload_checksum(m.payload) == m.header.payload_crc;
}

Node::~Node() { stop(); }

void Node::start() {
  OOPP_CHECK(!started_);
  started_ = true;
  fabric_.attach(id_, &inbox_);
  // oopp-lint: allow(raw-thread-primitive) — joined in stop().
  receiver_ = std::thread([this] { receive_loop(); });
  // oopp-lint: allow(raw-thread-primitive) — joined in stop_retry().
  retry_thread_ = std::thread([this] { retry_loop(); });
}

void Node::stop() {
  stop_receiving();
  fail_pending();
  stop_pool();
}

void Node::stop_receiving() {
  // Detach first: from here no fabric reader can push into inbox_, even
  // while peers are still sending (their frames are read and dropped), so
  // destroying this node under fire cannot deliver into a dead Inbox.
  if (started_) fabric_.detach(id_);
  inbox_.close();
  if (receiver_.joinable()) receiver_.join();
  stop_retry();
}

void Node::stop_retry() {
  {
    std::lock_guard lock(retry_mu_);
    retry_stop_ = true;
    retries_.clear();
  }
  retry_cv_.notify_all();
  if (retry_thread_.joinable()) retry_thread_.join();
}

void Node::fail_pending() {
  {
    // The retry driver must not resurrect calls we are about to abort.
    std::lock_guard lock(retry_mu_);
    retries_.clear();
  }
  std::unordered_map<net::SeqNum, PendingCall> doomed;
  {
    std::lock_guard lock(pending_mu_);
    aborting_ = true;
    doomed.swap(pending_);
  }
  for (auto& [seq, call] : doomed) {
    if (call.traced) {
      call.span.status = static_cast<std::uint8_t>(net::CallStatus::kAborted);
      call.span.end_ns = now_ns();
      span_sink_.record(call.span);
    }
    call.prom->set_exception(
        std::make_exception_ptr(CallAborted("node shutting down")));
  }
}

void Node::stop_pool() { pool_.shutdown(); }

void Node::wait_for_shutdown_request() {
  std::unique_lock lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Node::receive_loop() {
  while (auto msg = inbox_.pop()) {
    if (!payload_intact(*msg)) {
      if (msg->header.kind == net::MsgKind::kRequest) {
        // Answer directly, bypassing respond_error's dedup bookkeeping: a
        // corrupted duplicate must not disturb the at-most-once record of
        // the intact attempt that may be executing right now.
        fabric_.send(net::make_response(
            msg->header, net::CallStatus::kBadFrame,
            serial::to_bytes(
                std::string("payload checksum mismatch on request")),
            opts_.checksums));
      } else {
        // Surface the corruption at the call site as BadFrame: this is an
        // in-place rewrite of an inbound frame, not construction of one.
        // oopp-lint: allow(raw-message-header)
        msg->header.status = net::CallStatus::kBadFrame;
        msg->payload = serial::to_bytes(
            std::string("payload checksum mismatch on response"));
        on_response(std::move(*msg));
      }
      continue;
    }
    if (msg->header.kind == net::MsgKind::kResponse) {
      // Responses are completed inline — never queued behind servant work,
      // so a servant blocked on a nested call always gets its reply.
      on_response(std::move(*msg));
    } else {
      route_request(std::move(*msg));
    }
  }
}

void Node::route_request(net::Message req) {
  // N:M dispatch stage 1 (docs/DISPATCH.md): the receiver thread only
  // appends to the target shard's FIFO — the ordering chain is inbox FIFO
  // -> shard FIFO -> object command queue FIFO, so two requests for one
  // object can never reorder, while requests for objects in different
  // shards are dispatched concurrently.
  const std::size_t shard = objects_.shard_of(req.header.object);
  DispatchShard& ds = *dispatch_shards_[shard];
  bool kick = false;
  std::size_t depth = 0;
  {
    std::lock_guard lock(ds.mu);
    ds.q.push_back(std::move(req));
    depth = ds.q.size();
    if (!ds.draining) {
      ds.draining = true;
      kick = true;
    }
  }
  note_depth(queue_depth_hwm_, depth);
  auto& dm = dispatch_metrics();
  dm.routed.add(1);
  if (telemetry::enabled()) dm.shard_depth.record(depth);
  if (!kick) return;
  if (!pool_.try_submit([this, shard] { drain_shard(shard); })) {
    // Pool already shut down: the node is tearing down, and fail_pending
    // has settled (or will settle) every caller-side future.
    std::lock_guard lock(ds.mu);
    ds.draining = false;
  }
}

void Node::drain_shard(std::size_t shard) {
  ContextGuard guard(this);
  DispatchShard& ds = *dispatch_shards_[shard];
  // One drain task per shard at a time; on_request never blocks on
  // servant work (executions go to object queues or their own pool
  // tasks), so a shard cannot stall its siblings.
  for (;;) {
    net::Message req;
    {
      std::lock_guard lock(ds.mu);
      if (ds.q.empty()) {
        ds.draining = false;
        return;
      }
      req = std::move(ds.q.front());
      ds.q.pop_front();
    }
    on_request(std::move(req));
  }
}

void Node::on_response(net::Message resp) {
  if (resp.header.attempt > 0) {
    // This answers a retryable call: retire its retry entry — unless it is
    // a corrupted-in-flight response and the policy says to treat that
    // like loss (the server's dedup cache replays the real result on the
    // next attempt without re-executing).
    bool swallow = false;
    {
      std::lock_guard lock(retry_mu_);
      auto it = retries_.find(resp.header.seq);
      if (it != retries_.end()) {
        RetryEntry& e = it->second;
        const auto now = steady_clock::now();
        if (resp.header.status == net::CallStatus::kBadFrame &&
            e.policy.retry_bad_frame &&
            e.attempts_sent < e.policy.max_attempts &&
            now < e.overall_deadline) {
          e.in_backoff = true;
          e.due = now + jittered_backoff(e.policy, e.attempts_sent);
          swallow = true;
        } else {
          retries_.erase(it);
        }
      }
    }
    if (swallow) {
      retry_metrics().bad_frame_retries.add(1);
      retry_cv_.notify_all();
      return;
    }
    record_peer_success(resp.header.src);
  }
  PendingCall call;
  {
    std::lock_guard lock(pending_mu_);
    auto it = pending_.find(resp.header.seq);
    if (it == pending_.end()) return;  // caller gave up (shutdown)
    call = std::move(it->second);
    pending_.erase(it);
  }
  if (call.traced) {
    call.span.status = static_cast<std::uint8_t>(resp.header.status);
    call.span.end_ns = now_ns();
    span_sink_.record(call.span);
    verb_histogram(call.verb)
        .record(static_cast<std::uint64_t>(call.span.end_ns -
                                           call.span.start_ns));
  }
  call.prom->set_value(std::move(resp));
}

void Node::on_request(net::Message req) {
  // Runs on a shard drain task (stage 2 of the N:M dispatch).  Everything
  // here is quick and non-blocking: servant executions go to object
  // command queues or their own pool tasks — a control or reentrant
  // handler making a nested blocking call must never occupy the drain
  // task that would deliver requests for its own shard.
  if (dedup_intercept(req)) return;
  if (req.header.object == net::kNodeObject) {
    const bool ok = pool_.try_submit([this, req = std::move(req)]() mutable {
      ContextGuard guard(this);
      handle_control(req);
    });
    if (!ok) return;  // teardown race: futures settle via fail_pending
    return;
  }

  auto entry = objects_.find(req.header.object);
  if (!entry) {
    respond_error(req, net::CallStatus::kObjectNotFound, {});
    return;
  }
  const MethodInfo* mi = entry->info->find_method(req.header.method);
  if (!mi) {
    respond_error(req, net::CallStatus::kMethodNotFound,
                  serial::to_bytes(std::string("unknown method id on class " +
                                               entry->info->name)));
    return;
  }

  if (mi->reentrant) {
    // One-sided operation: runs immediately on its own pool task, even if
    // the object is busy inside a queued method.
    if (!pool_.try_submit([this, entry, mi, req = std::move(req)]() mutable {
          ContextGuard guard(this);
          execute(entry, mi, req);
        })) {
      return;  // teardown race
    }
    return;
  }

  const bool accepted =
      enqueue_command(entry,
                      [this, entry, mi, req] { execute(entry, mi, req); },
                      /*bounded=*/true);
  if (!accepted) {
    // Backpressure: the object's queue sits at dispatch.queue_bound.
    // Refuse loudly (rpc::PeerUnavailable at the caller) instead of
    // growing memory without limit.
    respond_error(req, net::CallStatus::kUnavailable,
                  serial::to_bytes(std::string("object command queue full")));
  }
}

bool Node::enqueue_command(std::shared_ptr<ObjectTable::Entry> entry,
                           std::function<void()> cmd, bool bounded) {
  const std::size_t bound = opts_.dispatch.queue_bound;
  bool kick = false;
  std::size_t depth = 0;
  {
    std::lock_guard lock(entry->queue_mu);
    if (bounded && bound > 0 && entry->queue.size() >= bound) {
      dispatch_metrics().queue_full_rejects.add(1);
      return false;
    }
    entry->queue.push_back(std::move(cmd));
    depth = entry->queue.size();
    if (!entry->draining) {
      entry->draining = true;
      kick = true;
    }
  }
  note_depth(queue_depth_hwm_, depth);
  if (!kick) return true;
  const bool ok = pool_.try_submit([this, entry] {
    ContextGuard guard(this);
    // Drain the command queue FIFO — the paper's "process accepts commands"
    // loop.  One drain task exists per object at a time.
    for (;;) {
      std::function<void()> next;
      {
        std::lock_guard lock(entry->queue_mu);
        if (entry->queue.empty()) {
          entry->draining = false;
          return;
        }
        next = std::move(entry->queue.front());
        entry->queue.pop_front();
      }
      next();
    }
  });
  if (!ok) {
    // Pool already shut down (teardown race): leave the command dropped
    // and let fail_pending settle the caller's future.
    std::lock_guard lock(entry->queue_mu);
    entry->draining = false;
  }
  return true;
}

void Node::execute(const std::shared_ptr<ObjectTable::Entry>& entry,
                   const MethodInfo* mi, const net::Message& req) {
  if (entry->destroyed || !entry->servant) {
    respond_error(req, net::CallStatus::kObjectNotFound, {});
    return;
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  // Distributed lockcheck: while this handler runs, every checked lock it
  // acquires records a cross-node edge remote-held-class -> local-class,
  // tagged with the method and the calling peer (mi->name has program
  // lifetime — it lives in the class registry).  No-op when the request
  // carries no held set.
  util::lockcheck::RemoteHeldScope remote_held(
      req.header.held.ids.data(), req.header.held.count, req.header.src, id_,
      mi->name.c_str());

  CallTrace trace;
  if (trace_) {
    trace.caller = req.header.src;
    trace.object = req.header.object;
    trace.class_name = entry->info->name;
    trace.method = mi->name;
    trace.request_bytes = req.payload.size();
  }

  // Server span: the execution of this method, child of the client span
  // stamped in the request header.  Entering its ContextScope is what
  // makes the servant's own outbound calls (and LocalSpans) children of
  // this span — causality propagates without user code.
  const bool traced = telemetry::enabled() && req.header.trace_id != 0;
  telemetry::Span sspan{};
  std::optional<telemetry::ContextScope> span_ctx;
  if (traced) {
    sspan.trace_id = req.header.trace_id;
    sspan.parent_id = req.header.span_id;
    sspan.span_id = telemetry::next_id();
    sspan.node = id_;
    sspan.kind = telemetry::SpanKind::kServer;
    std::snprintf(sspan.name, sizeof(sspan.name), "%s.%s",
                  entry->info->name.c_str(), mi->name.c_str());
    sspan.start_ns = now_ns();
    span_ctx.emplace(
        telemetry::TraceContext{sspan.trace_id, sspan.span_id});
  }
  auto finish_span = [&](net::CallStatus status) {
    if (!traced) return;
    span_ctx.reset();
    sspan.status = static_cast<std::uint8_t>(status);
    sspan.end_ns = now_ns();
    span_sink_.record(sspan);
  };

  const std::int64_t t0 = trace_ ? now_ns() : 0;
  try {
    // Decode over the payload's shared backing store so serial::Bytes
    // arguments alias the inbound frame (zero-copy receive), and respond
    // through to_buffer so spliced Bytes results go back out as slices.
    const serial::Bytes backing = req.payload.share();
    serial::IArchive ia(backing.span(), backing.store(), backing.offset());
    serial::OArchive oa;
    mi->fn(entry->servant->instance(), ia, oa);
    if (trace_) {
      trace.status = net::CallStatus::kOk;
      trace.response_bytes = oa.size();
      trace.duration_ns = now_ns() - t0;
      trace_(trace);
    }
    finish_span(net::CallStatus::kOk);
    respond_ok(req, net::to_buffer(oa));
  } catch (const serial::serial_error& e) {
    if (trace_) {
      trace.status = net::CallStatus::kBadFrame;
      trace.duration_ns = now_ns() - t0;
      trace_(trace);
    }
    finish_span(net::CallStatus::kBadFrame);
    respond_error(req, net::CallStatus::kBadFrame,
                  serial::to_bytes(std::string(e.what())));
  } catch (const std::exception& e) {
    remote_exceptions_.fetch_add(1, std::memory_order_relaxed);
    if (trace_) {
      trace.status = net::CallStatus::kRemoteException;
      trace.duration_ns = now_ns() - t0;
      trace_(trace);
    }
    finish_span(net::CallStatus::kRemoteException);
    serial::OArchive oa;
    oa(std::string(typeid(e).name()), std::string(e.what()));
    respond_error(req, net::CallStatus::kRemoteException, oa.take());
  }
}

NodeStats Node::stats() const {
  NodeStats s;
  s.objects_live = objects_.size();
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.control_requests = control_requests_.load(std::memory_order_relaxed);
  s.remote_exceptions = remote_exceptions_.load(std::memory_order_relaxed);
  s.objects_spawned = objects_spawned_.load(std::memory_order_relaxed);
  s.objects_destroyed = objects_destroyed_.load(std::memory_order_relaxed);
  s.pool_threads = pool_.thread_count();
  s.pool_tasks_run = pool_.tasks_run();
  s.dispatch_shards = objects_.shard_count();
  s.queue_depth_hwm = queue_depth_hwm_.load(std::memory_order_relaxed);
  s.pool_busy = pool_.busy_count();
  return s;
}

void Node::handle_control(const net::Message& req) {
  static const net::MethodId kSpawn = net::method_id(kSpawnMethod);
  static const net::MethodId kDestroy = net::method_id(kDestroyMethod);
  static const net::MethodId kPassivate = net::method_id(kPassivateMethod);
  static const net::MethodId kRestore = net::method_id(kRestoreMethod);
  static const net::MethodId kStats = net::method_id(kStatsMethod);
  static const net::MethodId kShutdown = net::method_id(kShutdownMethod);

  control_requests_.fetch_add(1, std::memory_order_relaxed);

  // Control requests get a server span too (name "node.control"), so
  // spawn/destroy traffic shows up in traces as children of the caller.
  // The span closes when dispatch returns; work deferred through a
  // command queue (destroy, passivate) is covered by the caller's span.
  const bool traced = telemetry::enabled() && req.header.trace_id != 0;
  std::optional<telemetry::ContextScope> span_ctx;
  telemetry::Span sspan{};
  if (traced) {
    sspan.trace_id = req.header.trace_id;
    sspan.parent_id = req.header.span_id;
    sspan.span_id = telemetry::next_id();
    sspan.node = id_;
    sspan.kind = telemetry::SpanKind::kServer;
    sspan.set_name("node.control");
    sspan.start_ns = now_ns();
    span_ctx.emplace(
        telemetry::TraceContext{sspan.trace_id, sspan.span_id});
  }
  struct SpanFinisher {
    Node* node;
    bool traced;
    telemetry::Span* span;
    net::CallStatus status = net::CallStatus::kOk;
    ~SpanFinisher() {
      if (!traced) return;
      span->status = static_cast<std::uint8_t>(status);
      span->end_ns = now_ns();
      node->span_sink_.record(*span);
    }
  } finisher{this, traced, &sspan};

  try {
    serial::IArchive ia(req.payload);

    if (req.header.method == kSpawn) {
      const auto class_name = ia.read<std::string>();
      const auto ctor_index = ia.read<std::uint32_t>();
      const ClassInfo* info = ClassRegistry::instance().find(class_name);
      if (!info) throw UnknownClass("unknown class '" + class_name + "'");
      OOPP_CHECK_MSG(ctor_index < info->ctors.size(),
                     "constructor index " << ctor_index << " out of range for "
                                          << class_name);
      auto servant = info->ctors[ctor_index].construct(ia);
      const auto id = objects_.insert(std::move(servant), info);
      objects_spawned_.fetch_add(1, std::memory_order_relaxed);
      respond_ok(req, serial::to_bytes(static_cast<std::uint64_t>(id)));
      return;
    }

    if (req.header.method == kDestroy) {
      const auto target = ia.read<std::uint64_t>();
      auto entry = objects_.find(target);
      if (!entry) {
        respond_error(req, net::CallStatus::kObjectNotFound, {});
        return;
      }
      // Destruction goes through the command queue: all previously issued
      // commands complete first, then the process terminates (paper §2:
      // the destructor "causes termination of the remote process and
      // completion of the corresponding client-server communications").
      enqueue_command(
          entry,
          [this, entry, target, req] {
            entry->destroyed = true;
            entry->servant.reset();  // run the destructor now
            objects_.erase(target);
            objects_destroyed_.fetch_add(1, std::memory_order_relaxed);
            respond_ok(req, {});
          },
          /*bounded=*/false);
      return;
    }

    if (req.header.method == kPassivate) {
      const auto target = ia.read<std::uint64_t>();
      const bool destroy_after = ia.read<std::uint8_t>() != 0;
      auto entry = objects_.find(target);
      if (!entry) {
        respond_error(req, net::CallStatus::kObjectNotFound, {});
        return;
      }
      if (!entry->info->persistent())
        throw Error("class " + entry->info->name +
                    " is not persistent (no save/restore binding)");
      enqueue_command(
          entry,
          [this, entry, target, destroy_after, req] {
            if (entry->destroyed || !entry->servant) {
              respond_error(req, net::CallStatus::kObjectNotFound, {});
              return;
            }
            try {
              serial::OArchive state;
              entry->info->save(entry->servant->instance(), state);
              serial::OArchive oa;
              oa(entry->info->name, state.bytes());
              if (destroy_after) {
                entry->destroyed = true;
                entry->servant.reset();
                objects_.erase(target);
              }
              respond_ok(req, oa.take());
            } catch (const std::exception& e) {
              serial::OArchive oa;
              oa(std::string(typeid(e).name()), std::string(e.what()));
              respond_error(req, net::CallStatus::kRemoteException, oa.take());
            }
          },
          /*bounded=*/false);
      return;
    }

    if (req.header.method == kRestore) {
      const auto class_name = ia.read<std::string>();
      const auto state = ia.read<std::vector<std::byte>>();
      const ClassInfo* info = ClassRegistry::instance().find(class_name);
      if (!info) throw UnknownClass("unknown class '" + class_name + "'");
      if (!info->persistent())
        throw Error("class " + class_name + " is not persistent");
      serial::IArchive sa(state);
      auto servant = info->restore(sa);
      const auto id = objects_.insert(std::move(servant), info);
      objects_spawned_.fetch_add(1, std::memory_order_relaxed);
      respond_ok(req, serial::to_bytes(static_cast<std::uint64_t>(id)));
      return;
    }

    if (req.header.method == kStats) {
      respond_ok(req, serial::to_bytes(stats()));
      return;
    }

    if (req.header.method == kShutdown) {
      respond_ok(req, {});
      {
        std::lock_guard lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return;
    }

    finisher.status = net::CallStatus::kMethodNotFound;
    respond_error(req, net::CallStatus::kMethodNotFound,
                  serial::to_bytes(std::string("unknown control method")));
  } catch (const serial::serial_error& e) {
    finisher.status = net::CallStatus::kBadFrame;
    respond_error(req, net::CallStatus::kBadFrame,
                  serial::to_bytes(std::string(e.what())));
  } catch (const Error& e) {
    // Framework errors (UnknownClass, non-persistent class, ...) travel
    // with their own status byte so the caller rethrows the exact type.
    finisher.status = e.code();
    serial::OArchive oa;
    oa(std::string(typeid(e).name()), std::string(e.what()));
    respond_error(req, e.code(), oa.take());
  } catch (const std::exception& e) {
    finisher.status = net::CallStatus::kRemoteException;
    serial::OArchive oa;
    oa(std::string(typeid(e).name()), std::string(e.what()));
    respond_error(req, net::CallStatus::kRemoteException, oa.take());
  }
}

void Node::respond_ok(const net::Message& req, net::Buffer payload) {
  net::Message resp = net::make_response(req.header, net::CallStatus::kOk,
                                         std::move(payload), opts_.checksums);
  dedup_store(req, resp);
  fabric_.send(std::move(resp));
}

void Node::respond_error(const net::Message& req, net::CallStatus status,
                         net::Buffer payload) {
  net::Message resp =
      net::make_response(req.header, status, std::move(payload),
                         opts_.checksums);
  dedup_store(req, resp);
  fabric_.send(std::move(resp));
}

bool Node::dedup_intercept(const net::Message& req) {
  if (req.header.attempt == 0) return false;
  net::Message replay;
  {
    std::lock_guard lock(dedup_mu_);
    const DedupKey key{req.header.src, req.header.seq};
    auto it = dedup_.find(key);
    if (it == dedup_.end()) {
      // First sighting: record the execution as in flight, then dispatch.
      dedup_.emplace(key, DedupEntry{});
      dedup_fifo_.push_back(key);
      while (dedup_.size() > opts_.dedup_cache_entries &&
             !dedup_fifo_.empty()) {
        dedup_.erase(dedup_fifo_.front());
        dedup_fifo_.pop_front();
      }
      return false;
    }
    if (!it->second.completed) {
      // Duplicate of an attempt still executing: drop it.  The running
      // execution answers the caller when it finishes.
      retry_metrics().dedup_inflight_drops.add(1);
      return true;
    }
    replay = it->second.response;
  }
  retry_metrics().dedup_replays.add(1);
  fabric_.send(std::move(replay));
  return true;
}

void Node::dedup_store(const net::Message& req, const net::Message& response) {
  if (req.header.attempt == 0) return;
  std::lock_guard lock(dedup_mu_);
  const DedupKey key{req.header.src, req.header.seq};
  auto it = dedup_.find(key);
  if (response.header.status == net::CallStatus::kBadFrame) {
    // Never cache a corrupt-frame verdict: erase the marker so a retry
    // re-executes.  A corruption-induced BadFrame heals on retry; a
    // deterministic one just re-surfaces once attempts are exhausted.
    if (it != dedup_.end()) dedup_.erase(it);
    return;
  }
  if (it == dedup_.end()) return;  // evicted under cache pressure
  it->second.completed = true;
  it->second.response = response;
}

void Node::retry_loop() {
  struct Resend {
    net::SeqNum seq = 0;
    net::Message msg;
  };
  std::unique_lock lock(retry_mu_);
  for (;;) {
    if (retry_stop_) return;
    if (retries_.empty()) {
      // oopp-lint: allow(condvar-wait-no-predicate) the for(;;) re-checks
      retry_cv_.wait(lock);  // retry_stop_ and retries_ every iteration
      continue;
    }
    const auto now = steady_clock::now();
    time_point earliest = time_point::max();
    std::vector<Resend> resends;
    std::vector<net::SeqNum> giveups;
    std::vector<net::MachineId> lost_attempts;
    for (auto it = retries_.begin(); it != retries_.end();) {
      RetryEntry& e = it->second;
      if (e.due > now) {
        earliest = std::min(earliest, e.due);
        ++it;
        continue;
      }
      if (e.in_backoff) {
        // Backoff over: put the next attempt on the wire (outside the
        // lock, below).
        e.in_backoff = false;
        e.attempts_sent += 1;
        e.due = now + e.policy.attempt_timeout;
        resends.push_back(
            {it->first,
             net::make_request(id_, e.dst, it->first, e.object, e.method,
                               e.payload, opts_.checksums, e.trace_id,
                               e.span_id, e.attempts_sent, e.held)});
        earliest = std::min(earliest, e.due);
        ++it;
        continue;
      }
      // Attempt `attempts_sent` got no response within attempt_timeout.
      lost_attempts.push_back(e.dst);
      if (e.attempts_sent >= e.policy.max_attempts ||
          now >= e.overall_deadline) {
        giveups.push_back(it->first);
        it = retries_.erase(it);
        continue;
      }
      e.in_backoff = true;
      e.due = now + jittered_backoff(e.policy, e.attempts_sent);
      if (e.due >= e.overall_deadline) {
        // The backoff wait alone would blow the deadline; give up now.
        giveups.push_back(it->first);
        it = retries_.erase(it);
        continue;
      }
      earliest = std::min(earliest, e.due);
      ++it;
    }
    if (resends.empty() && giveups.empty() && lost_attempts.empty()) {
      // oopp-lint: allow(condvar-wait-no-predicate) timed scheduling sleep
      if (earliest != time_point::max()) retry_cv_.wait_until(lock, earliest);
      continue;
    }
    lock.unlock();
    for (auto& r : resends) {
      bool blocked = false;
      try {
        admit_call(r.msg.header.dst);
      } catch (const PeerUnavailable&) {
        blocked = true;
      }
      if (blocked) {
        {
          std::lock_guard g(retry_mu_);
          retries_.erase(r.seq);
        }
        fail_call(r.seq, net::CallStatus::kUnavailable,
                  std::make_exception_ptr(PeerUnavailable(
                      r.msg.header.dst, "circuit breaker opened mid-retry")));
        continue;
      }
      retry_metrics().resends.add(1);
      fabric_.send(std::move(r.msg));
    }
    for (auto peer : lost_attempts) record_peer_failure(peer);
    if (!giveups.empty()) {
      retry_metrics().giveups.add(giveups.size());
      for (auto seq : giveups)
        fail_call(seq, net::CallStatus::kTimeout,
                  std::make_exception_ptr(CallTimeout(
                      "remote call timed out (all retry attempts lost)")));
    }
    lock.lock();
  }
}

void Node::fail_call(net::SeqNum seq, net::CallStatus status,
                     std::exception_ptr ex) {
  PendingCall call;
  {
    std::lock_guard lock(pending_mu_);
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;  // a response won the race
    call = std::move(it->second);
    pending_.erase(it);
  }
  if (call.traced) {
    call.span.status = static_cast<std::uint8_t>(status);
    call.span.end_ns = now_ns();
    span_sink_.record(call.span);
  }
  call.prom->set_exception(std::move(ex));
}

void Node::admit_call(net::MachineId dst) {
  if (opts_.breaker_threshold == 0 || dst == id_) return;
  auto& bm = breaker_metrics();
  const char* why = nullptr;
  {
    std::lock_guard lock(peers_mu_);
    auto it = peers_.find(dst);
    if (it == peers_.end()) return;  // never failed: closed by default
    Peer& p = it->second;
    switch (p.state) {
      case BreakerState::kClosed:
        return;
      case BreakerState::kOpen:
        if (steady_clock::now() >= p.open_until) {
          // Cooldown elapsed — this very call becomes the probe.
          p.state = BreakerState::kHalfOpen;
          p.probe_inflight = true;
          bm.probes.add(1);
          return;
        }
        why = "circuit breaker open";
        break;
      case BreakerState::kHalfOpen:
        if (!p.probe_inflight) {
          p.probe_inflight = true;
          bm.probes.add(1);
          return;
        }
        why = "circuit breaker half-open, probe already in flight";
        break;
    }
  }
  bm.fast_fails.add(1);
  throw PeerUnavailable(dst, why);
}

void Node::record_peer_failure(net::MachineId peer) {
  if (opts_.breaker_threshold == 0 || peer == id_) return;
  auto& bm = breaker_metrics();
  bool opened = false;
  {
    std::lock_guard lock(peers_mu_);
    Peer& p = peers_[peer];
    p.consecutive_failures += 1;
    const bool trip =
        p.state == BreakerState::kHalfOpen ||
        (p.state == BreakerState::kClosed &&
         p.consecutive_failures >= opts_.breaker_threshold);
    if (trip) {
      opened = true;
      p.state = BreakerState::kOpen;
      p.open_until = steady_clock::now() + opts_.breaker_cooldown;
      p.probe_inflight = false;
    }
  }
  if (opened) bm.opened.add(1);
}

void Node::record_peer_success(net::MachineId peer) {
  if (opts_.breaker_threshold == 0 || peer == id_) return;
  auto& bm = breaker_metrics();
  bool closed = false;
  {
    std::lock_guard lock(peers_mu_);
    auto it = peers_.find(peer);
    if (it == peers_.end()) return;
    closed = it->second.state != BreakerState::kClosed;
    it->second = Peer{};
  }
  if (closed) bm.closed.add(1);
}

std::chrono::nanoseconds Node::jittered_backoff(const CallPolicy& p,
                                                std::uint32_t retry) {
  // Caller holds retry_mu_ (it guards retry_rng_).
  const auto base = std::chrono::duration_cast<std::chrono::nanoseconds>(
      p.backoff_for(retry));
  const double j = std::clamp(p.jitter, 0.0, 1.0);
  const double factor = j == 0.0 ? 1.0 : retry_rng_.uniform(1.0 - j, 1.0 + j);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(base.count()) * factor));
}

void Node::set_default_policy(const CallPolicy& p) {
  {
    std::lock_guard lock(policy_mu_);
    default_policy_ = p;
  }
  has_default_policy_.store(p.retryable(), std::memory_order_release);
}

CallPolicy Node::default_policy() const {
  std::lock_guard lock(policy_mu_);
  return default_policy_;
}

PeerHealth Node::peer_health(net::MachineId peer) const {
  std::lock_guard lock(peers_mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) return {};
  return {it->second.state, it->second.consecutive_failures};
}

std::future<net::Message> Node::async_raw(net::MachineId dst,
                                          net::ObjectId object,
                                          net::MethodId method,
                                          net::Buffer payload,
                                          telemetry::Verb verb,
                                          telemetry::TraceContext* issued,
                                          const CallPolicy* policy) {
  verb_counter(verb).add(1);

  // Distributed lockcheck piggyback: what the issuing thread holds right
  // now, captured before any of the node's own locks are taken below.
  // Free (count 0, zero wire bytes) unless OOPP_DIST_LOCK_CHECK is on.
  net::LockSet held;
  held.count = static_cast<std::uint8_t>(util::lockcheck::held_class_hashes(
      held.ids.data(), held.ids.size()));

  CallPolicy pol;
  if (policy != nullptr) {
    pol = *policy;
  } else if (has_default_policy_.load(std::memory_order_acquire)) {
    std::lock_guard lock(policy_mu_);
    pol = default_policy_;
  }
  admit_call(dst);  // throws rpc::PeerUnavailable when the breaker is open

  PendingCall call;
  call.prom = std::make_shared<std::promise<net::Message>>();
  call.verb = verb;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  if (telemetry::enabled()) {
    // Open the client span: child of whatever span this thread is inside,
    // or the root of a brand-new trace.  It completes in on_response (or
    // fail_pending), not here — the span covers the full round trip.
    const telemetry::TraceContext parent = telemetry::thread_context();
    trace_id = parent.active() ? parent.trace_id : telemetry::next_id();
    span_id = telemetry::next_id();
    call.traced = true;
    call.span.trace_id = trace_id;
    call.span.span_id = span_id;
    call.span.parent_id = parent.active() ? parent.span_id : 0;
    call.span.node = id_;
    call.span.kind = telemetry::SpanKind::kClient;
    std::snprintf(call.span.name, sizeof(call.span.name), "rpc.%s",
                  telemetry::verb_name(verb));
    call.span.start_ns = now_ns();
  }
  if (issued != nullptr) *issued = {trace_id, span_id};

  auto fut = call.prom->get_future();
  const net::SeqNum seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(pending_mu_);
    if (aborting_) throw CallAborted("node shutting down");
    pending_.emplace(seq, std::move(call));
  }
  const bool retryable = pol.retryable();
  if (retryable) {
    const auto now = steady_clock::now();
    RetryEntry e;
    e.dst = dst;
    e.object = object;
    e.method = method;
    e.payload = payload;  // shares the payload slices: no byte copy
    e.policy = pol;
    e.due = now + pol.attempt_timeout;
    if (pol.deadline.count() > 0) e.overall_deadline = now + pol.deadline;
    e.trace_id = trace_id;
    e.span_id = span_id;
    e.held = held;
    {
      std::lock_guard lock(retry_mu_);
      if (!retry_stop_) retries_.emplace(seq, std::move(e));
    }
    retry_cv_.notify_all();
  }
  fabric_.send(net::make_request(id_, dst, seq, object, method,
                                 std::move(payload), opts_.checksums, trace_id,
                                 span_id, retryable ? 1u : 0u, held));
  return fut;
}

net::Message Node::call_raw(net::MachineId dst, net::ObjectId object,
                            net::MethodId method, net::Buffer payload,
                            telemetry::Verb verb, const CallPolicy* policy) {
  note_blocking_remote_call("rpc::Node::call_raw");
  auto fut = async_raw(dst, object, method, std::move(payload), verb, nullptr,
                       policy);
  net::Message resp = [&] {
    BlockingWaitTimer timer;
    return fut.get();
  }();
  throw_on_error(resp);
  return resp;
}

void Node::throw_on_error(const net::Message& resp) {
  // Decodes the unified status byte back into the oopp::Error subclass the
  // server-side failure mapped onto (rpc/errors.hpp).
  switch (resp.header.status) {
    case net::CallStatus::kOk:
      return;
    case net::CallStatus::kRemoteException: {
      serial::IArchive ia(resp.payload);
      auto type = ia.read<std::string>();
      auto what = ia.read<std::string>();
      throw RemoteError(resp.header.src, std::move(type), std::move(what));
    }
    case net::CallStatus::kObjectNotFound:
      throw ObjectNotFound(resp.header.src, resp.header.object);
    case net::CallStatus::kMethodNotFound: {
      serial::IArchive ia(resp.payload);
      throw MethodNotFound(ia.read<std::string>());
    }
    case net::CallStatus::kBadFrame: {
      serial::IArchive ia(resp.payload);
      throw BadFrame(ia.read<std::string>());
    }
    case net::CallStatus::kAborted:
      throw CallAborted("call aborted on machine " +
                        std::to_string(resp.header.src));
    case net::CallStatus::kTimeout:
      throw CallTimeout("remote call timed out");
    case net::CallStatus::kUnavailable:
      throw PeerUnavailable(resp.header.src, "circuit breaker open");
    case net::CallStatus::kUnknownClass: {
      serial::IArchive ia(resp.payload);
      [[maybe_unused]] auto type = ia.read<std::string>();
      throw UnknownClass(ia.read<std::string>());
    }
    case net::CallStatus::kInternal: {
      serial::IArchive ia(resp.payload);
      [[maybe_unused]] auto type = ia.read<std::string>();
      throw Error(ia.read<std::string>(), net::CallStatus::kInternal);
    }
  }
  throw Error("unknown response status");
}

}  // namespace oopp::rpc
