#include "rpc/object_table.hpp"

namespace oopp::rpc {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  if (n < 1) return 1;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ObjectTable::ObjectTable(std::size_t shards)
    : shards_(round_up_pow2(shards)) {}

net::ObjectId ObjectTable::insert(std::unique_ptr<ServantBase> servant,
                                  const ClassInfo* info) {
  auto entry = std::make_shared<Entry>();
  entry->servant = std::move(servant);
  entry->info = info;
  const net::ObjectId id = next_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[shard_of(id)];
  std::lock_guard lock(shard.mu);
  shard.map.emplace(id, std::move(entry));
  return id;
}

std::shared_ptr<ObjectTable::Entry> ObjectTable::find(
    net::ObjectId id) const {
  const Shard& shard = shards_[shard_of(id)];
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(id);
  return it == shard.map.end() ? nullptr : it->second;
}

bool ObjectTable::erase(net::ObjectId id) {
  Shard& shard = shards_[shard_of(id)];
  std::lock_guard lock(shard.mu);
  return shard.map.erase(id) > 0;
}

std::size_t ObjectTable::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

std::vector<net::ObjectId> ObjectTable::ids() const {
  std::vector<net::ObjectId> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    out.reserve(out.size() + shard.map.size());
    for (const auto& [id, _] : shard.map) out.push_back(id);
  }
  return out;
}

}  // namespace oopp::rpc
