#include "rpc/object_table.hpp"

namespace oopp::rpc {

net::ObjectId ObjectTable::insert(std::unique_ptr<ServantBase> servant,
                                  const ClassInfo* info) {
  auto entry = std::make_shared<Entry>();
  entry->servant = std::move(servant);
  entry->info = info;
  std::lock_guard lock(mu_);
  const net::ObjectId id = next_++;
  map_.emplace(id, std::move(entry));
  return id;
}

std::shared_ptr<ObjectTable::Entry> ObjectTable::find(
    net::ObjectId id) const {
  std::lock_guard lock(mu_);
  auto it = map_.find(id);
  return it == map_.end() ? nullptr : it->second;
}

bool ObjectTable::erase(net::ObjectId id) {
  std::lock_guard lock(mu_);
  return map_.erase(id) > 0;
}

std::size_t ObjectTable::size() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

std::vector<net::ObjectId> ObjectTable::ids() const {
  std::lock_guard lock(mu_);
  std::vector<net::ObjectId> out;
  out.reserve(map_.size());
  for (const auto& [id, _] : map_) out.push_back(id);
  return out;
}

}  // namespace oopp::rpc
