#include "util/thread_pool.hpp"

#include <stdexcept>

namespace oopp {

ElasticPool::ElasticPool(Options opts) : opts_(opts) {
  if (opts_.min_threads == 0) opts_.min_threads = 1;
  if (opts_.max_threads < opts_.min_threads)
    opts_.max_threads = opts_.min_threads;
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < opts_.min_threads; ++i) spawn_worker_locked();
}

ElasticPool::~ElasticPool() { shutdown(); }

void ElasticPool::submit(std::function<void()> task) {
  if (!try_submit(std::move(task)))
    throw std::runtime_error("ElasticPool: submit after shutdown");
}

bool ElasticPool::try_submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    // Grow when nobody is idle: a busy worker may be about to block on a
    // nested remote call, and this task could be the one that unblocks it.
    if (idle_ == 0 && live_.load(std::memory_order_relaxed) < opts_.max_threads) {
      reap_finished_locked();
      spawn_worker_locked();
    }
  }
  cv_.notify_one();
  return true;
}

void ElasticPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    to_join.swap(workers_);
  }
  cv_.notify_all();
  for (auto& t : to_join)
    if (t.joinable()) t.join();
}

void ElasticPool::spawn_worker_locked() {
  workers_.emplace_back([this] { worker_loop(); });
  live_.fetch_add(1, std::memory_order_relaxed);
}

void ElasticPool::reap_finished_locked() {
  // Join workers that retired on idle timeout so the workers_ vector does
  // not grow without bound in long-running nodes.
  if (finished_.empty()) return;
  for (auto id : finished_) {
    for (auto it = workers_.begin(); it != workers_.end(); ++it) {
      if (it->get_id() == id) {
        // The worker has already released mu_ and is returning from its
        // thread function, so this join completes immediately.
        it->join();
        workers_.erase(it);
        break;
      }
    }
  }
  finished_.clear();
}

void ElasticPool::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    ++idle_;
    const bool can_retire =
        live_.load(std::memory_order_relaxed) > opts_.min_threads;
    bool have_work;
    if (can_retire) {
      have_work = cv_.wait_for(lock, opts_.idle_timeout, [this] {
        return shutdown_ || !queue_.empty();
      });
    } else {
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      have_work = true;
    }
    --idle_;

    if (!queue_.empty()) {
      auto task = std::move(queue_.front());
      queue_.pop_front();
      // Cascade growth: this worker may block inside its task, and no
      // further submit() might arrive to trigger a spawn — make sure the
      // remaining queue has someone to drain it.
      if (!queue_.empty() && idle_ == 0 && !shutdown_ &&
          live_.load(std::memory_order_relaxed) < opts_.max_threads) {
        spawn_worker_locked();
      }
      lock.unlock();
      busy_.fetch_add(1, std::memory_order_relaxed);
      task();
      busy_.fetch_sub(1, std::memory_order_relaxed);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      continue;
    }
    if (shutdown_) break;
    if (!have_work && can_retire &&
        live_.load(std::memory_order_relaxed) > opts_.min_threads) {
      // Retire this surplus worker.
      finished_.push_back(std::this_thread::get_id());
      break;
    }
  }
  live_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace oopp
