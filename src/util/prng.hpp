// Deterministic, seedable PRNG used by workload generators and property
// tests.  splitmix64 for seeding, xoshiro256** as the generator; both are
// tiny, fast and reproducible across platforms, which matters for tests
// that must generate identical workloads on every run.
#pragma once

#include <cstdint>
#include <limits>

namespace oopp {

/// splitmix64: used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — public-domain generator by Blackman & Vigna.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace oopp
