// Timing helpers shared by the runtime, the network cost model and the
// benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace oopp {

using steady_clock = std::chrono::steady_clock;
using time_point = steady_clock::time_point;

/// Nanoseconds since an arbitrary epoch; monotonic.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             steady_clock::now().time_since_epoch())
      .count();
}

/// Simple scope timer: construct, then read elapsed time in the unit you
/// need.  Used by benches that report paper-style rows rather than going
/// through google-benchmark.
class Timer {
 public:
  Timer() : start_(steady_clock::now()) {}

  void reset() { start_ = steady_clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(steady_clock::now() - start_)
        .count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  time_point start_;
};

}  // namespace oopp
