#include "util/checked_mutex.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace oopp::util::lockcheck {

namespace {

struct HeldLock {
  const void* instance;
  const char* cls;
};

// What the thread acquiring the far side of a conflicting edge held at the
// time — the "other stack" of a cycle report.
struct EdgeInfo {
  std::vector<std::string> holder_stack;
  std::string thread_id;
};

struct Graph {
  std::mutex mu;
  // Interned lock-class names; node-based so string_views stay stable.
  std::unordered_set<std::string> names;
  // cls -> classes ever acquired while cls was held.
  std::unordered_map<std::string_view, std::set<std::string_view>> adj;
  std::map<std::pair<std::string_view, std::string_view>, EdgeInfo> edges;

  std::string_view intern(const char* s) { return *names.emplace(s).first; }
};

Graph& graph() {
  static Graph* g = new Graph();  // leaked: usable during static teardown
  return *g;
}

FailureHandler g_handler = nullptr;
std::mutex g_handler_mu;

thread_local std::vector<HeldLock> t_held;
// Per-thread set of (held-name-ptr, new-name-ptr) pairs already vetted
// against the global graph — the steady-state fast path takes no global
// lock.  Keyed on raw name pointers; duplicate string literals across
// translation units only cost a redundant (correct) global re-check.
thread_local std::set<std::pair<const void*, const void*>> t_seen;

std::string this_thread_id() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return os.str();
}

void fail(const std::string& report) {
  FailureHandler h;
  {
    std::lock_guard lock(g_handler_mu);
    h = g_handler;
  }
  if (h != nullptr) {
    h(report);
    return;
  }
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

void append_held_stack(std::ostringstream& os) {
  for (std::size_t i = 0; i < t_held.size(); ++i) {
    os << "  [" << i << "] " << t_held[i].cls << " (instance "
       << t_held[i].instance << ")\n";
  }
}

// Is `to` reachable from `from` following recorded edges?  Fills `path`
// with the chain from `from` to `to` when it is.
bool reachable(Graph& g, std::string_view from, std::string_view to,
               std::set<std::string_view>& visited,
               std::vector<std::string_view>& path) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  if (!visited.insert(from).second) return false;
  auto it = g.adj.find(from);
  if (it == g.adj.end()) return false;
  for (const auto& next : it->second) {
    if (reachable(g, next, to, visited, path)) {
      path.insert(path.begin(), from);
      return true;
    }
  }
  return false;
}

// Must be called with g.mu held and the cycle path from `acquiring` back
// to `held` already computed.
std::string cycle_report(Graph& g, const char* held_cls,
                         const char* acquiring_cls,
                         const std::vector<std::string_view>& path) {
  std::ostringstream os;
  os << "== OOPP lock-order violation ==========================================\n"
     << "acquiring '" << acquiring_cls << "' while holding '" << held_cls
     << "' creates a lock-order cycle:\n  ";
  os << held_cls;
  for (const auto& n : path) os << " -> " << n;
  os << "\n\nthis thread (" << this_thread_id() << ") holds:\n";
  append_held_stack(os);
  os << "\nconflicting acquisition order previously recorded:\n";
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = g.edges.find({path[i], path[i + 1]});
    if (it == g.edges.end()) continue;
    os << "  '" << path[i] << "' -> '" << path[i + 1] << "' by thread "
       << it->second.thread_id << " holding:\n";
    for (std::size_t j = 0; j < it->second.holder_stack.size(); ++j)
      os << "    [" << j << "] " << it->second.holder_stack[j] << "\n";
  }
  os << "=======================================================================\n";
  return os.str();
}

}  // namespace

FailureHandler set_failure_handler(FailureHandler h) {
  std::lock_guard lock(g_handler_mu);
  FailureHandler prev = g_handler;
  g_handler = h;
  return prev;
}

bool enabled() {
#ifdef OOPP_LOCK_CHECK
  static const bool on = [] {
    const char* env = std::getenv("OOPP_LOCK_CHECK");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return on;
#else
  return false;
#endif
}

std::size_t held_count() { return t_held.size(); }

void on_acquire(const void* instance, const char* cls) {
  if (!enabled()) return;

  for (const auto& h : t_held) {
    if (h.instance == instance) {
      std::ostringstream os;
      os << "== OOPP lock-order violation ==========================================\n"
         << "recursive acquisition of mutex '" << cls << "' (instance "
         << instance << ") — self-deadlock.\nthis thread ("
         << this_thread_id() << ") holds:\n";
      append_held_stack(os);
      os << "=======================================================================\n";
      t_held.push_back({instance, cls});  // keep stack balanced for unlock
      fail(os.str());
      return;
    }
  }

  for (const auto& h : t_held) {
    // Same-class nesting (distinct instances) carries no between-class
    // ordering information; a self-edge would poison every cycle query.
    if (h.cls == cls ||
        std::string_view(h.cls) == std::string_view(cls))
      continue;
    if (!t_seen.emplace(h.cls, cls).second) continue;  // vetted earlier

    Graph& g = graph();
    std::lock_guard lock(g.mu);
    const auto from = g.intern(h.cls);
    const auto to = g.intern(cls);
    if (g.adj[from].insert(to).second) {
      // New edge: does the reverse direction already exist transitively?
      std::set<std::string_view> visited;
      std::vector<std::string_view> path;
      if (reachable(g, to, from, visited, path)) {
        std::string report = cycle_report(g, h.cls, cls, path);
        t_held.push_back({instance, cls});
        fail(report);
        return;
      }
      EdgeInfo info;
      info.thread_id = this_thread_id();
      info.holder_stack.reserve(t_held.size() + 1);
      for (const auto& held : t_held) info.holder_stack.emplace_back(held.cls);
      info.holder_stack.emplace_back(cls);
      g.edges.emplace(std::pair{from, to}, std::move(info));
    }
  }

  t_held.push_back({instance, cls});
}

void on_release(const void* instance) {
  if (!enabled()) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance == instance) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Unmatched release: lock taken before checking was enabled — ignore.
}

void on_blocking_call(const char* where) {
  if (!enabled() || t_held.empty()) return;
  std::ostringstream os;
  os << "== OOPP lock-order violation ==========================================\n"
     << "blocking remote call (" << where
     << ") while holding checked mutexes — a network round trip under a\n"
     << "lock deadlocks as soon as the remote side needs that lock.\n"
     << "this thread (" << this_thread_id() << ") holds:\n";
  append_held_stack(os);
  os << "=======================================================================\n";
  fail(os.str());
}

void reset_for_testing() {
  Graph& g = graph();
  std::lock_guard lock(g.mu);
  g.adj.clear();
  g.edges.clear();
}

}  // namespace oopp::util::lockcheck
