#include "util/checked_mutex.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace oopp::util::lockcheck {

namespace {

struct HeldLock {
  const void* instance;
  const char* cls;
};

// What the thread acquiring the far side of a conflicting edge held at the
// time — the "other stack" of a cycle report.
struct EdgeInfo {
  std::vector<std::string> holder_stack;
  std::string thread_id;
};

struct Graph {
  std::mutex mu;
  // Interned lock-class names; node-based so string_views stay stable.
  std::unordered_set<std::string> names;
  // cls -> classes ever acquired while cls was held.
  std::unordered_map<std::string_view, std::set<std::string_view>> adj;
  std::map<std::pair<std::string_view, std::string_view>, EdgeInfo> edges;

  std::string_view intern(const char* s) { return *names.emplace(s).first; }
};

Graph& graph() {
  static Graph* g = new Graph();  // leaked: usable during static teardown
  return *g;
}

FailureHandler g_handler = nullptr;
std::mutex g_handler_mu;

std::atomic<EventHook> g_event_hook{nullptr};

// True while this thread is inside the event hook.  The hook lives above
// us (telemetry) and takes checked mutexes of its own; without the guard
// those acquisitions would record cross edges and re-emit, re-entering
// the hook mid-initialization — a self-deadlock on its static guards.
thread_local bool t_in_emit = false;

void emit_event(Event e) {
  if (t_in_emit) return;
  EventHook h = g_event_hook.load(std::memory_order_acquire);
  if (h == nullptr) return;
  t_in_emit = true;
  h(e);
  t_in_emit = false;
}

// -- distributed extension state --------------------------------------------

/// One remote->local ordering observation: while serving `method` for
/// `peer`, node `node` acquired the local class while the remote issuer
/// held the class hashed `from` (names resolved via the class table).
struct CrossEdgeInfo {
  std::string method;
  std::uint32_t peer = 0;
  std::uint32_t node = 0;
  std::uint64_t count = 0;
};

struct CrossStore {
  std::mutex mu;
  // hash -> class name, for every class acquired while distributed
  // checking was on.  This is what lets the merger resolve a peer dump's
  // from_hash even when this process never recorded an edge for it.
  std::unordered_map<std::uint32_t, std::string> classes;
  // (remote class hash, local class name) -> provenance.
  std::map<std::pair<std::uint32_t, std::string>, CrossEdgeInfo> edges;
};

CrossStore& cross() {
  static CrossStore* s = new CrossStore();  // leaked, like graph()
  return *s;
}

/// The remote caller's held set for the RPC the thread is serving.
struct RemoteCtx {
  std::array<std::uint32_t, kMaxHeldClasses> hashes{};
  std::size_t count = 0;
  std::uint32_t peer = 0;
  std::uint32_t node = 0;
  const char* method = "";
};

thread_local RemoteCtx* t_remote = nullptr;

std::atomic<int> g_distributed{-1};  // -1 = not yet read from environment

thread_local std::vector<HeldLock> t_held;
// Per-thread set of (held-name-ptr, new-name-ptr) pairs already vetted
// against the global graph — the steady-state fast path takes no global
// lock.  Keyed on raw name pointers; duplicate string literals across
// translation units only cost a redundant (correct) global re-check.
thread_local std::set<std::pair<const void*, const void*>> t_seen;

std::string this_thread_id() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return os.str();
}

void fail(const std::string& report) {
  emit_event(Event::kHazardFlagged);
  FailureHandler h;
  {
    std::lock_guard lock(g_handler_mu);
    h = g_handler;
  }
  if (h != nullptr) {
    h(report);
    return;
  }
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

void append_held_stack(std::ostringstream& os) {
  for (std::size_t i = 0; i < t_held.size(); ++i) {
    os << "  [" << i << "] " << t_held[i].cls << " (instance "
       << t_held[i].instance << ")\n";
  }
}

// Is `to` reachable from `from` following recorded edges?  Fills `path`
// with the chain from `from` to `to` when it is.
bool reachable(Graph& g, std::string_view from, std::string_view to,
               std::set<std::string_view>& visited,
               std::vector<std::string_view>& path) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  if (!visited.insert(from).second) return false;
  auto it = g.adj.find(from);
  if (it == g.adj.end()) return false;
  for (const auto& next : it->second) {
    if (reachable(g, next, to, visited, path)) {
      path.insert(path.begin(), from);
      return true;
    }
  }
  return false;
}

// Must be called with g.mu held and the cycle path from `acquiring` back
// to `held` already computed.
std::string cycle_report(Graph& g, const char* held_cls,
                         const char* acquiring_cls,
                         const std::vector<std::string_view>& path) {
  std::ostringstream os;
  os << "== OOPP lock-order violation ==========================================\n"
     << "acquiring '" << acquiring_cls << "' while holding '" << held_cls
     << "' creates a lock-order cycle:\n  ";
  os << held_cls;
  for (const auto& n : path) os << " -> " << n;
  os << "\n\nthis thread (" << this_thread_id() << ") holds:\n";
  append_held_stack(os);
  os << "\nconflicting acquisition order previously recorded:\n";
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = g.edges.find({path[i], path[i + 1]});
    if (it == g.edges.end()) continue;
    os << "  '" << path[i] << "' -> '" << path[i + 1] << "' by thread "
       << it->second.thread_id << " holding:\n";
    for (std::size_t j = 0; j < it->second.holder_stack.size(); ++j)
      os << "    [" << j << "] " << it->second.holder_stack[j] << "\n";
  }
  os << "=======================================================================\n";
  return os.str();
}

}  // namespace

FailureHandler set_failure_handler(FailureHandler h) {
  std::lock_guard lock(g_handler_mu);
  FailureHandler prev = g_handler;
  g_handler = h;
  return prev;
}

bool enabled() {
#ifdef OOPP_LOCK_CHECK
  static const bool on = [] {
    const char* env = std::getenv("OOPP_LOCK_CHECK");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return on;
#else
  return false;
#endif
}

std::size_t held_count() { return t_held.size(); }

// Register the class and, when a RemoteHeldScope is active, record the
// cross edges remote-class -> cls.  Same-class pairs are skipped: the
// remote holder and this acquisition are distinct instances on distinct
// machines, so (as with local same-class nesting) the pair alone carries
// no ordering information.
static void note_distributed_acquire(const char* cls) {
  // Locks taken by the event hook itself are instrumentation, not servant
  // behaviour — recording them would add noise edges and re-emit.
  if (t_in_emit) return;
  const std::uint32_t to_hash = class_hash(cls);
  std::size_t fresh_edges = 0;
  {
    CrossStore& s = cross();
    std::lock_guard lock(s.mu);
    s.classes.try_emplace(to_hash, cls);
    if (t_remote != nullptr) {
      for (std::size_t i = 0; i < t_remote->count; ++i) {
        const std::uint32_t from = t_remote->hashes[i];
        if (from == to_hash) continue;
        auto [it, fresh] = s.edges.try_emplace(
            std::pair{from, std::string(cls)},
            CrossEdgeInfo{t_remote->method, t_remote->peer, t_remote->node,
                          0});
        it->second.count += 1;
        fresh_edges += fresh ? 1 : 0;
      }
    }
  }
  // Emitted with the store unlocked: the hook may acquire checked mutexes
  // (the metrics registry does), re-entering this function on this thread.
  for (std::size_t i = 0; i < fresh_edges; ++i)
    emit_event(Event::kCrossEdgeRecorded);
}

void on_acquire(const void* instance, const char* cls) {
  if (!enabled()) return;
  if (distributed_enabled()) note_distributed_acquire(cls);

  for (const auto& h : t_held) {
    if (h.instance == instance) {
      std::ostringstream os;
      os << "== OOPP lock-order violation ==========================================\n"
         << "recursive acquisition of mutex '" << cls << "' (instance "
         << instance << ") — self-deadlock.\nthis thread ("
         << this_thread_id() << ") holds:\n";
      append_held_stack(os);
      os << "=======================================================================\n";
      t_held.push_back({instance, cls});  // keep stack balanced for unlock
      fail(os.str());
      return;
    }
  }

  for (const auto& h : t_held) {
    // Same-class nesting (distinct instances) carries no between-class
    // ordering information; a self-edge would poison every cycle query.
    if (h.cls == cls ||
        std::string_view(h.cls) == std::string_view(cls))
      continue;
    if (!t_seen.emplace(h.cls, cls).second) continue;  // vetted earlier

    Graph& g = graph();
    std::lock_guard lock(g.mu);
    const auto from = g.intern(h.cls);
    const auto to = g.intern(cls);
    if (g.adj[from].insert(to).second) {
      // New edge: does the reverse direction already exist transitively?
      std::set<std::string_view> visited;
      std::vector<std::string_view> path;
      if (reachable(g, to, from, visited, path)) {
        std::string report = cycle_report(g, h.cls, cls, path);
        t_held.push_back({instance, cls});
        fail(report);
        return;
      }
      EdgeInfo info;
      info.thread_id = this_thread_id();
      info.holder_stack.reserve(t_held.size() + 1);
      for (const auto& held : t_held) info.holder_stack.emplace_back(held.cls);
      info.holder_stack.emplace_back(cls);
      g.edges.emplace(std::pair{from, to}, std::move(info));
    }
  }

  t_held.push_back({instance, cls});
}

void on_release(const void* instance) {
  if (!enabled()) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance == instance) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Unmatched release: lock taken before checking was enabled — ignore.
}

void on_blocking_call(const char* where) {
  if (!enabled() || t_held.empty()) return;
  std::ostringstream os;
  os << "== OOPP lock-order violation ==========================================\n"
     << "blocking remote call (" << where
     << ") while holding checked mutexes — a network round trip under a\n"
     << "lock deadlocks as soon as the remote side needs that lock.\n"
     << "this thread (" << this_thread_id() << ") holds:\n";
  append_held_stack(os);
  os << "=======================================================================\n";
  fail(os.str());
}

void reset_for_testing() {
  {
    Graph& g = graph();
    std::lock_guard lock(g.mu);
    g.adj.clear();
    g.edges.clear();
  }
  CrossStore& s = cross();
  std::lock_guard lock(s.mu);
  s.classes.clear();
  s.edges.clear();
}

// -- distributed extension ---------------------------------------------------

bool distributed_enabled() {
  if (!enabled()) return false;
  int v = g_distributed.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("OOPP_DIST_LOCK_CHECK");
    v = (env != nullptr && env[0] != '\0' &&
         std::string_view(env) != "0")
            ? 1
            : 0;
    g_distributed.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_distributed_enabled(bool on) {
  g_distributed.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint32_t class_hash(std::string_view cls) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : cls) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  auto folded = static_cast<std::uint32_t>(h ^ (h >> 32));
  return folded == 0 ? 1 : folded;
}

std::size_t held_class_hashes(std::uint32_t* out, std::size_t max) {
  if (!distributed_enabled() || t_held.empty()) return 0;
  std::size_t n = 0;
  for (const auto& h : t_held) {
    const std::uint32_t hash = class_hash(h.cls);
    bool dup = false;
    for (std::size_t i = 0; i < n; ++i) dup = dup || out[i] == hash;
    if (dup) continue;
    if (n == max) break;  // oldest-held classes win the truncation
    out[n++] = hash;
  }
  return n;
}

RemoteHeldScope::RemoteHeldScope(const std::uint32_t* hashes,
                                 std::size_t count, std::uint32_t peer,
                                 std::uint32_t node, const char* method) {
  if (count == 0 || !distributed_enabled()) return;
  auto* ctx = new RemoteCtx();
  ctx->count = std::min(count, kMaxHeldClasses);
  for (std::size_t i = 0; i < ctx->count; ++i) ctx->hashes[i] = hashes[i];
  ctx->peer = peer;
  ctx->node = node;
  ctx->method = method;
  prev_ = t_remote;
  t_remote = ctx;
  active_ = true;
}

RemoteHeldScope::~RemoteHeldScope() {
  if (!active_) return;
  delete t_remote;
  t_remote = static_cast<RemoteCtx*>(prev_);
}

void set_event_hook(EventHook h) {
  g_event_hook.store(h, std::memory_order_release);
}

namespace {

void json_escape(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

}  // namespace

std::string dump_graph_json(std::uint32_t node) {
  std::ostringstream os;
  os << "{\n \"node\": " << node << ",\n \"classes\": [";

  // Every class name this process has seen: the interned order-graph
  // names plus the distributed class table (which also covers classes
  // acquired with nothing else held).
  std::map<std::string, std::uint32_t> classes;  // sorted, deduped
  {
    Graph& g = graph();
    std::lock_guard lock(g.mu);
    for (const auto& n : g.names) classes.emplace(n, class_hash(n));
  }
  {
    CrossStore& s = cross();
    std::lock_guard lock(s.mu);
    for (const auto& [hash, name] : s.classes) classes.emplace(name, hash);
  }
  bool first = true;
  for (const auto& [name, hash] : classes) {
    os << (first ? "" : ",") << "\n  {\"name\": \"";
    json_escape(os, name);
    os << "\", \"hash\": " << hash << "}";
    first = false;
  }

  os << "\n ],\n \"local_edges\": [";
  {
    Graph& g = graph();
    std::lock_guard lock(g.mu);
    first = true;
    for (const auto& [pair, info] : g.edges) {
      os << (first ? "" : ",") << "\n  {\"from\": \"";
      json_escape(os, pair.first);
      os << "\", \"to\": \"";
      json_escape(os, pair.second);
      os << "\", \"thread\": \"";
      json_escape(os, info.thread_id);
      os << "\", \"holder_stack\": [";
      for (std::size_t i = 0; i < info.holder_stack.size(); ++i) {
        os << (i == 0 ? "" : ", ") << '"';
        json_escape(os, info.holder_stack[i]);
        os << '"';
      }
      os << "]}";
      first = false;
    }
  }

  os << "\n ],\n \"cross_edges\": [";
  {
    CrossStore& s = cross();
    std::lock_guard lock(s.mu);
    first = true;
    for (const auto& [key, info] : s.edges) {
      os << (first ? "" : ",") << "\n  {\"from_hash\": " << key.first
         << ", \"from\": \"";
      auto it = s.classes.find(key.first);
      if (it != s.classes.end()) json_escape(os, it->second);
      os << "\", \"to\": \"";
      json_escape(os, key.second);
      os << "\", \"method\": \"";
      json_escape(os, info.method);
      os << "\", \"peer\": " << info.peer << ", \"node\": " << info.node
         << ", \"count\": " << info.count << "}";
      first = false;
    }
  }
  os << "\n ]\n}\n";
  return os.str();
}

}  // namespace oopp::util::lockcheck
