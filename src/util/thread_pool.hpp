// Elastic thread pool.
//
// Every incoming RPC request on a node is dispatched as a task on the
// node's pool.  Servant methods are allowed to make *nested blocking*
// remote calls (the paper's FFT group does exactly this during the
// distributed transpose), so a fixed-size pool could deadlock: all workers
// blocked waiting on replies that can only be produced by dispatching more
// requests.  The pool therefore grows on demand — whenever a task is
// submitted and no worker is idle, a new worker is spawned, up to
// max_threads.  Workers above min_threads retire after an idle timeout.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/checked_mutex.hpp"

namespace oopp {

class ElasticPool {
 public:
  struct Options {
    std::size_t min_threads = 2;
    std::size_t max_threads = 512;
    std::chrono::milliseconds idle_timeout{200};
  };

  ElasticPool() : ElasticPool(Options{}) {}
  explicit ElasticPool(Options opts);
  ~ElasticPool();

  ElasticPool(const ElasticPool&) = delete;
  ElasticPool& operator=(const ElasticPool&) = delete;

  /// Enqueue a task.  Never blocks (beyond the internal lock).  Throws
  /// std::runtime_error if the pool has been shut down.
  void submit(std::function<void()> task);

  /// Like submit(), but returns false instead of throwing when the pool
  /// has been shut down (the task is dropped).  Dispatch paths racing a
  /// node teardown use this: work refused at shutdown is work whose
  /// futures fail_pending() already settled.
  [[nodiscard]] bool try_submit(std::function<void()> task);

  /// Stop accepting tasks, drain the queue, join all workers.  Idempotent.
  void shutdown();

  /// Number of live worker threads (approximate; for tests/metrics).
  [[nodiscard]] std::size_t thread_count() const {
    return live_.load(std::memory_order_relaxed);
  }

  /// Workers currently inside a task (approximate; for utilization
  /// metrics: busy_count() / thread_count()).
  [[nodiscard]] std::size_t busy_count() const {
    return busy_.load(std::memory_order_relaxed);
  }

  /// Total tasks executed (for tests/metrics).
  [[nodiscard]] std::uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

 private:
  void spawn_worker_locked();
  void worker_loop();
  void reap_finished_locked();

  Options opts_;
  mutable util::CheckedMutex mu_{"util.ElasticPool"};
  util::CondVar cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::vector<std::thread::id> finished_;  // retired workers awaiting join
  std::size_t idle_ = 0;
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> busy_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  bool shutdown_ = false;
};

}  // namespace oopp
