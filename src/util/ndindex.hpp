// Small helpers for three-dimensional index arithmetic.  The paper's data
// model is built around 3-D arrays broken into rectangular pages, so the
// same (i1, i2, i3) <-> linear-offset conversions recur in the storage,
// array and FFT layers.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace oopp {

using index_t = std::int64_t;

/// Ceiling division for non-negative integers.
constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

/// Extents of a 3-D box.
struct Extents3 {
  index_t n1 = 0, n2 = 0, n3 = 0;

  [[nodiscard]] constexpr index_t volume() const { return n1 * n2 * n3; }

  /// Row-major linear offset of (i1, i2, i3); i3 is the fastest axis,
  /// matching C array layout double[n1][n2][n3].
  [[nodiscard]] constexpr index_t linear(index_t i1, index_t i2,
                                         index_t i3) const {
    return (i1 * n2 + i2) * n3 + i3;
  }

  [[nodiscard]] constexpr bool contains(index_t i1, index_t i2,
                                        index_t i3) const {
    return i1 >= 0 && i1 < n1 && i2 >= 0 && i2 < n2 && i3 >= 0 && i3 < n3;
  }

  constexpr bool operator==(const Extents3&) const = default;
};

/// Inverse of Extents3::linear.
inline std::array<index_t, 3> delinearize(const Extents3& e, index_t lin) {
  OOPP_CHECK(lin >= 0 && lin < e.volume());
  const index_t i3 = lin % e.n3;
  const index_t rest = lin / e.n3;
  const index_t i2 = rest % e.n2;
  const index_t i1 = rest / e.n2;
  return {i1, i2, i3};
}

}  // namespace oopp
