// Lock-order-checked mutex — the concurrency-correctness substrate.
//
// Every mutex in the framework is a CheckedMutex carrying a *lock class*
// name (e.g. "net.Inbox").  In OOPP_LOCK_CHECK builds (the default; see
// the top-level CMakeLists) each acquisition is recorded in a per-thread
// held-lock stack and a process-wide lock-class order graph:
//
//   * acquiring B while holding A records the edge A -> B; if B -> ... -> A
//     is already in the graph the program has two call paths that take the
//     same locks in opposite orders — a latent deadlock — and the checker
//     fails *immediately*, printing both threads' lock sequences, even
//     though this particular run did not hang.  (Same idea as the kernel's
//     lockdep: one interleaving proves the hazard for all interleavings.)
//   * re-acquiring a mutex the thread already holds fails (self-deadlock;
//     none of the framework's mutexes are recursive).
//   * blocking on a remote call while holding any checked mutex fails
//     (lockcheck::on_blocking_call, fed by the hook in rpc/binding.hpp):
//     a held lock would then be held for a full network round trip, and
//     if the remote side ever needs that lock the system deadlocks.
//
// Violations go to the failure handler: by default an explanatory report
// on stderr followed by abort(); tests install a capturing handler.
// Ordering edges between *instances of the same class* are not tracked
// (two net.TcpFabric.link mutexes, say) — keep same-class nesting out of
// the code, the linter's job hierarchy is documented in
// docs/CONCURRENCY.md.
//
// Without OOPP_LOCK_CHECK the wrappers compile down to the underlying
// std::mutex / std::shared_mutex operations (the name pointer is the only
// overhead).  The runtime kill switch OOPP_LOCK_CHECK=0 in the
// environment disables checking without a rebuild.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace oopp::util::lockcheck {

/// Receives the violation report.  Returning (instead of aborting) is
/// allowed — used by tests; the faulty edge stays recorded so the same
/// violation is reported once.
using FailureHandler = void (*)(const std::string& report);

/// Install a handler; returns the previous one.  nullptr restores the
/// default print-and-abort behaviour.
FailureHandler set_failure_handler(FailureHandler h);

/// Compile-time support AND runtime switch (env OOPP_LOCK_CHECK != "0").
[[nodiscard]] bool enabled();

/// Number of checked locks the calling thread currently holds.
[[nodiscard]] std::size_t held_count();

/// Record an acquisition attempt of `instance` (lock class `cls`) by this
/// thread.  Called *before* blocking on the underlying mutex so the
/// hazard is reported even if this run would deadlock.
void on_acquire(const void* instance, const char* cls);

/// Undo the held-stack entry (release, or failed try_lock).
void on_release(const void* instance);

/// The calling thread is about to block waiting for a remote response
/// (`where` names the call site).  Fails if any checked lock is held.
void on_blocking_call(const char* where);

/// Test-only: drop all recorded ordering edges (per-thread caches survive,
/// so tests must use fresh lock-class names per scenario).
void reset_for_testing();

}  // namespace oopp::util::lockcheck

namespace oopp::util {

/// Drop-in std::mutex with lock-order checking.  Works with
/// std::lock_guard / std::unique_lock; pair with util::CondVar instead of
/// std::condition_variable.
class CheckedMutex {
 public:
  CheckedMutex() = default;
  explicit CheckedMutex(const char* name) : name_(name) {}
  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
#endif
    mu_.lock();
  }

  bool try_lock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
    if (mu_.try_lock()) return true;
    lockcheck::on_release(this);
    return false;
#else
    return mu_.try_lock();
#endif
  }

  void unlock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_release(this);
#endif
    mu_.unlock();
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "anon";
};

/// Drop-in std::shared_mutex with lock-order checking.  Shared
/// acquisitions participate in the order graph exactly like exclusive
/// ones (a reader holding S while taking X elsewhere orders S before X).
class CheckedSharedMutex {
 public:
  CheckedSharedMutex() = default;
  explicit CheckedSharedMutex(const char* name) : name_(name) {}
  CheckedSharedMutex(const CheckedSharedMutex&) = delete;
  CheckedSharedMutex& operator=(const CheckedSharedMutex&) = delete;

  void lock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
#endif
    mu_.lock();
  }
  bool try_lock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
    if (mu_.try_lock()) return true;
    lockcheck::on_release(this);
    return false;
#else
    return mu_.try_lock();
#endif
  }
  void unlock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_release(this);
#endif
    mu_.unlock();
  }

  void lock_shared() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
#endif
    mu_.lock_shared();
  }
  bool try_lock_shared() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
    if (mu_.try_lock_shared()) return true;
    lockcheck::on_release(this);
    return false;
#else
    return mu_.try_lock_shared();
#endif
  }
  void unlock_shared() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_release(this);
#endif
    mu_.unlock_shared();
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "anon";
};

/// Condition variable for CheckedMutex.  Waits adopt the underlying
/// std::mutex so the native (futex-based) std::condition_variable is used
/// — no condition_variable_any overhead.  The lock checker keeps treating
/// the mutex as held across the wait, which is the correct caller-visible
/// view (the wait re-acquires before returning).
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(std::unique_lock<CheckedMutex>& lk) {
    Adopted inner(lk);
    cv_.wait(inner.lk);
  }

  template <class Pred>
  void wait(std::unique_lock<CheckedMutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      std::unique_lock<CheckedMutex>& lk,
      const std::chrono::time_point<Clock, Duration>& tp) {
    Adopted inner(lk);
    return cv_.wait_until(inner.lk, tp);
  }

  template <class Clock, class Duration, class Pred>
  bool wait_until(std::unique_lock<CheckedMutex>& lk,
                  const std::chrono::time_point<Clock, Duration>& tp,
                  Pred pred) {
    while (!pred()) {
      if (wait_until(lk, tp) == std::cv_status::timeout) return pred();
    }
    return true;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(std::unique_lock<CheckedMutex>& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    return wait_until(lk, std::chrono::steady_clock::now() + d);
  }

  template <class Rep, class Period, class Pred>
  bool wait_for(std::unique_lock<CheckedMutex>& lk,
                const std::chrono::duration<Rep, Period>& d, Pred pred) {
    return wait_until(lk, std::chrono::steady_clock::now() + d,
                      std::move(pred));
  }

 private:
  /// Borrow the native mutex for the duration of one wait; the borrow is
  /// returned even if the wait throws.
  struct Adopted {
    std::unique_lock<std::mutex> lk;
    explicit Adopted(std::unique_lock<CheckedMutex>& outer)
        : lk(outer.mutex()->mu_, std::adopt_lock) {}
    ~Adopted() { lk.release(); }
  };
  std::condition_variable cv_;
};

}  // namespace oopp::util
