// Lock-order-checked mutex — the concurrency-correctness substrate.
//
// Every mutex in the framework is a CheckedMutex carrying a *lock class*
// name (e.g. "net.Inbox").  In OOPP_LOCK_CHECK builds (the default; see
// the top-level CMakeLists) each acquisition is recorded in a per-thread
// held-lock stack and a process-wide lock-class order graph:
//
//   * acquiring B while holding A records the edge A -> B; if B -> ... -> A
//     is already in the graph the program has two call paths that take the
//     same locks in opposite orders — a latent deadlock — and the checker
//     fails *immediately*, printing both threads' lock sequences, even
//     though this particular run did not hang.  (Same idea as the kernel's
//     lockdep: one interleaving proves the hazard for all interleavings.)
//   * re-acquiring a mutex the thread already holds fails (self-deadlock;
//     none of the framework's mutexes are recursive).
//   * blocking on a remote call while holding any checked mutex fails
//     (lockcheck::on_blocking_call, fed by the hook in rpc/binding.hpp):
//     a held lock would then be held for a full network round trip, and
//     if the remote side ever needs that lock the system deadlocks.
//
// Violations go to the failure handler: by default an explanatory report
// on stderr followed by abort(); tests install a capturing handler.
// Ordering edges between *instances of the same class* are not tracked
// (two net.TcpFabric.link mutexes, say) — keep same-class nesting out of
// the code, the linter's job hierarchy is documented in
// docs/CONCURRENCY.md.
//
// Without OOPP_LOCK_CHECK the wrappers compile down to the underlying
// std::mutex / std::shared_mutex operations (the name pointer is the only
// overhead).  The runtime kill switch OOPP_LOCK_CHECK=0 in the
// environment disables checking without a rebuild.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace oopp::util::lockcheck {

/// Receives the violation report.  Returning (instead of aborting) is
/// allowed — used by tests; the faulty edge stays recorded so the same
/// violation is reported once.
using FailureHandler = void (*)(const std::string& report);

/// Install a handler; returns the previous one.  nullptr restores the
/// default print-and-abort behaviour.
FailureHandler set_failure_handler(FailureHandler h);

/// Compile-time support AND runtime switch (env OOPP_LOCK_CHECK != "0").
[[nodiscard]] bool enabled();

/// Number of checked locks the calling thread currently holds.
[[nodiscard]] std::size_t held_count();

/// Record an acquisition attempt of `instance` (lock class `cls`) by this
/// thread.  Called *before* blocking on the underlying mutex so the
/// hazard is reported even if this run would deadlock.
void on_acquire(const void* instance, const char* cls);

/// Undo the held-stack entry (release, or failed try_lock).
void on_release(const void* instance);

/// The calling thread is about to block waiting for a remote response
/// (`where` names the call site).  Fails if any checked lock is held.
void on_blocking_call(const char* where);

/// Test-only: drop all recorded ordering edges (per-thread caches survive,
/// so tests must use fresh lock-class names per scenario).
void reset_for_testing();

// ---------------------------------------------------------------------------
// Distributed extension: the cluster-wide wait-for graph.
//
// The local checker above is blind to distributed inversions: node A holds
// L1 and calls B; B's handler takes L2 and calls back A, whose handler
// needs L1 — no single process ever sees both locks in one held stack.
// The extension closes that hole in three pieces:
//
//   1. The RPC client piggybacks the issuing thread's held lock-class set
//      (as 32-bit name hashes) on the message header (held_class_hashes,
//      carried like trace/span ids — see net/message.hpp).
//   2. The dispatch side installs a RemoteHeldScope around servant method
//      execution; every lock the handler then acquires records a *cross
//      edge* remote-class -> local-class, tagged with the RPC method, the
//      calling peer, and the serving node.  Cross edges live in their own
//      store — they never enter the online order graph (two nodes' same-
//      name classes are different mutex instances, so a cross edge alone
//      proves nothing; only a *cycle* through them does).
//   3. dump_graph_json() exports classes + local edges + cross edges as
//      JSON (one file per process via Cluster::dump_lockgraph); the
//      offline merger tools/oopp_graph.py unions the dumps and reports
//      cycles — including ones spanning >= 2 nodes — lockdep-style.
//
// Everything is gated on distributed_enabled() (env OOPP_DIST_LOCK_CHECK,
// default off, runtime-overridable like telemetry::set_enabled): disabled
// means zero wire bytes and no recording.
// ---------------------------------------------------------------------------

/// Hard cap on piggybacked held classes per message (wire format limit).
inline constexpr std::size_t kMaxHeldClasses = 8;

/// Compile-time support AND runtime switch (env OOPP_DIST_LOCK_CHECK=1 or
/// set_distributed_enabled).  Always false when lock checking itself is
/// off.
[[nodiscard]] bool distributed_enabled();

/// Programmatic override (tests, CI harnesses).  Wins over the environment.
void set_distributed_enabled(bool on);

/// FNV-1a-32 of a lock-class name; never returns 0 (0 = "no class").
[[nodiscard]] std::uint32_t class_hash(std::string_view cls);

/// Hashes of the distinct lock classes the calling thread holds right
/// now, written to `out` (at most `max`); returns the count written.
/// Returns 0 when distributed checking is off.
std::size_t held_class_hashes(std::uint32_t* out, std::size_t max);

/// Dispatch-side RAII: while alive, the calling thread is executing an
/// RPC whose remote issuer held the given lock classes.  Each checked
/// acquisition under the scope records a cross edge remote -> local.
/// `method` must outlive the program (points into MethodInfo).  Nestable
/// (saves/restores the previous scope); a no-op when count == 0 or
/// distributed checking is off.
class RemoteHeldScope {
 public:
  RemoteHeldScope(const std::uint32_t* hashes, std::size_t count,
                  std::uint32_t peer, std::uint32_t node, const char* method);
  ~RemoteHeldScope();
  RemoteHeldScope(const RemoteHeldScope&) = delete;
  RemoteHeldScope& operator=(const RemoteHeldScope&) = delete;

 private:
  void* prev_ = nullptr;
  bool active_ = false;
};

/// Telemetry bridge.  util sits below telemetry in the layering, so the
/// checker reports through a hook instead of bumping counters directly;
/// Cluster installs one that feeds the "lockcheck" metric scope.
enum class Event : std::uint8_t {
  kCrossEdgeRecorded = 0,  // first sighting of a remote->local pair
  kHazardFlagged = 1,      // any failure-handler invocation
};
using EventHook = void (*)(Event);
void set_event_hook(EventHook h);

/// The process-wide graph as JSON: lock classes (name + wire hash), local
/// order edges with provenance (recording thread + held stack), and cross
/// edges with provenance (RPC method, peer, serving node, count).  `node`
/// labels the dump (the hosting machine id, or any stable id for
/// multi-node single-process clusters — the graph itself is per-process).
std::string dump_graph_json(std::uint32_t node);

}  // namespace oopp::util::lockcheck

namespace oopp::util {

/// Drop-in std::mutex with lock-order checking.  Works with
/// std::lock_guard / std::unique_lock; pair with util::CondVar instead of
/// std::condition_variable.
class CheckedMutex {
 public:
  CheckedMutex() = default;
  explicit CheckedMutex(const char* name) : name_(name) {}
  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
#endif
    mu_.lock();
  }

  bool try_lock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
    if (mu_.try_lock()) return true;
    lockcheck::on_release(this);
    return false;
#else
    return mu_.try_lock();
#endif
  }

  void unlock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_release(this);
#endif
    mu_.unlock();
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "anon";
};

/// Drop-in std::shared_mutex with lock-order checking.  Shared
/// acquisitions participate in the order graph exactly like exclusive
/// ones (a reader holding S while taking X elsewhere orders S before X).
class CheckedSharedMutex {
 public:
  CheckedSharedMutex() = default;
  explicit CheckedSharedMutex(const char* name) : name_(name) {}
  CheckedSharedMutex(const CheckedSharedMutex&) = delete;
  CheckedSharedMutex& operator=(const CheckedSharedMutex&) = delete;

  void lock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
#endif
    mu_.lock();
  }
  bool try_lock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
    if (mu_.try_lock()) return true;
    lockcheck::on_release(this);
    return false;
#else
    return mu_.try_lock();
#endif
  }
  void unlock() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_release(this);
#endif
    mu_.unlock();
  }

  void lock_shared() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
#endif
    mu_.lock_shared();
  }
  bool try_lock_shared() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_acquire(this, name_);
    if (mu_.try_lock_shared()) return true;
    lockcheck::on_release(this);
    return false;
#else
    return mu_.try_lock_shared();
#endif
  }
  void unlock_shared() {
#ifdef OOPP_LOCK_CHECK
    lockcheck::on_release(this);
#endif
    mu_.unlock_shared();
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "anon";
};

/// Condition variable for CheckedMutex.  Waits adopt the underlying
/// std::mutex so the native (futex-based) std::condition_variable is used
/// — no condition_variable_any overhead.  The lock checker keeps treating
/// the mutex as held across the wait, which is the correct caller-visible
/// view (the wait re-acquires before returning).
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(std::unique_lock<CheckedMutex>& lk) {
    Adopted inner(lk);
    // oopp-lint: allow(condvar-wait-no-predicate) the predicate overload
    cv_.wait(inner.lk);  // below forwards here; callers get the check
  }

  template <class Pred>
  void wait(std::unique_lock<CheckedMutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      std::unique_lock<CheckedMutex>& lk,
      const std::chrono::time_point<Clock, Duration>& tp) {
    Adopted inner(lk);
    // oopp-lint: allow(condvar-wait-no-predicate) predicate overload below
    return cv_.wait_until(inner.lk, tp);
  }

  template <class Clock, class Duration, class Pred>
  bool wait_until(std::unique_lock<CheckedMutex>& lk,
                  const std::chrono::time_point<Clock, Duration>& tp,
                  Pred pred) {
    while (!pred()) {
      if (wait_until(lk, tp) == std::cv_status::timeout) return pred();
    }
    return true;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(std::unique_lock<CheckedMutex>& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    return wait_until(lk, std::chrono::steady_clock::now() + d);
  }

  template <class Rep, class Period, class Pred>
  bool wait_for(std::unique_lock<CheckedMutex>& lk,
                const std::chrono::duration<Rep, Period>& d, Pred pred) {
    return wait_until(lk, std::chrono::steady_clock::now() + d,
                      std::move(pred));
  }

 private:
  /// Borrow the native mutex for the duration of one wait; the borrow is
  /// returned even if the wait throws.
  struct Adopted {
    std::unique_lock<std::mutex> lk;
    explicit Adopted(std::unique_lock<CheckedMutex>& outer)
        : lk(outer.mutex()->mu_, std::adopt_lock) {}
    ~Adopted() { lk.release(); }
  };
  std::condition_variable cv_;
};

}  // namespace oopp::util
