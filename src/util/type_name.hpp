// Short, stable names for types used to build remotable class names for
// templates (e.g. RemoteVector<double> registers as "oopp.vec<f64>").
// typeid().name() is compiler-specific, so the common scalar types get
// fixed spellings; anything else must specialize.
#pragma once

#include <cstdint>
#include <string_view>

namespace oopp {

template <class T>
struct type_name_of;  // specialize for your type

#define OOPP_TYPE_NAME(T, NAME)                     \
  template <>                                       \
  struct type_name_of<T> {                          \
    static constexpr std::string_view value = NAME; \
  }

OOPP_TYPE_NAME(bool, "bool");
OOPP_TYPE_NAME(char, "char");
OOPP_TYPE_NAME(signed char, "i8");
OOPP_TYPE_NAME(unsigned char, "u8");
OOPP_TYPE_NAME(short, "i16");
OOPP_TYPE_NAME(unsigned short, "u16");
OOPP_TYPE_NAME(int, "i32");
OOPP_TYPE_NAME(unsigned int, "u32");
OOPP_TYPE_NAME(long, "i64");
OOPP_TYPE_NAME(unsigned long, "u64");
OOPP_TYPE_NAME(long long, "i64l");
OOPP_TYPE_NAME(unsigned long long, "u64l");
OOPP_TYPE_NAME(float, "f32");
OOPP_TYPE_NAME(double, "f64");
OOPP_TYPE_NAME(long double, "f80");

#undef OOPP_TYPE_NAME

template <class T>
constexpr std::string_view type_name() {
  return type_name_of<T>::value;
}

}  // namespace oopp
