// Lightweight runtime checking used across the OOPP libraries.
//
// OOPP_CHECK is for conditions that indicate a programming error in the
// caller (bad argument, protocol misuse).  It throws instead of aborting so
// errors can cross the RPC boundary and be re-raised at the remote call
// site, as the framework requires.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace oopp {

/// Thrown when an OOPP_CHECK precondition fails.
class check_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "OOPP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}

}  // namespace detail
}  // namespace oopp

#define OOPP_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::oopp::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define OOPP_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream oopp_os_;                                    \
      oopp_os_ << msg;                                                \
      ::oopp::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   oopp_os_.str());                   \
    }                                                                 \
  } while (0)
