#include "net/tcp_fabric.hpp"

#include <cstring>
#include <stdexcept>

#include "net/tcp_wire.hpp"
#include "util/assert.hpp"

namespace oopp::net {

struct TcpFabric::Link {
  util::CheckedMutex mu{"net.TcpFabric.link"};
  int fd = -1;
  BatchQueue batch;  // guarded by mu
  ~Link() {
    if (fd >= 0) ::close(fd);
  }
};

struct TcpFabric::Endpoint {
  int listen_fd = -1;
  std::uint16_t port = 0;
  // Shared with whichever reader path serves this endpoint; detach() nulls
  // slot->inbox under slot->mu so no frame lands in a destroyed Inbox.
  std::shared_ptr<InboxSlot> slot = std::make_shared<InboxSlot>();
  // Legacy (reactor=false) path: this endpoint owns and joins its
  // acceptor/reader threads in stop().
  std::thread acceptor;  // oopp-lint: allow(raw-thread-primitive)
  util::CheckedMutex readers_mu{"net.TcpFabric.readers"};
  std::vector<std::thread> readers;  // oopp-lint: allow(raw-thread-primitive)
  std::vector<int> reader_fds;

  ~Endpoint() { stop(); }

  void stop() {
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
      listen_fd = -1;
    }
    if (acceptor.joinable()) acceptor.join();
    {
      std::lock_guard lock(readers_mu);
      for (int fd : reader_fds) ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> rs;  // oopp-lint: allow(raw-thread-primitive)
    {
      std::lock_guard lock(readers_mu);
      rs.swap(readers);
    }
    for (auto& t : rs)
      if (t.joinable()) t.join();
    {
      std::lock_guard lock(readers_mu);
      for (int fd : reader_fds) ::close(fd);
      reader_fds.clear();
    }
  }

  void listen_on_ephemeral() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    OOPP_CHECK_MSG(listen_fd >= 0, "socket() failed: " << std::strerror(errno));
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    OOPP_CHECK_MSG(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "bind() failed: " << std::strerror(errno));
    OOPP_CHECK(::listen(listen_fd, 64) == 0);
    socklen_t len = sizeof(addr);
    OOPP_CHECK(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0);
    port = ntohs(addr.sin_port);
  }

  void start_accepting() {
    // The acceptor works on a by-value copy of the listen fd: stop()
    // writes listen_fd = -1 concurrently, and the thread never needs to
    // observe that (closing the fd is what unblocks accept()).
    const int lfd = listen_fd;
    // oopp-lint: allow(raw-thread-primitive) — joined via stop().
    acceptor = std::thread([this, lfd] {
      for (;;) {
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) return;  // listener closed: shut down
        wire::set_nodelay(fd);
        std::lock_guard lock(readers_mu);
        reader_fds.push_back(fd);
        readers.emplace_back([this, fd] { read_loop(fd); });
      }
    });
  }

  void read_loop(int fd) {
    static auto& frames =
        telemetry::Metrics::scope_for("net").counter("tcp_frames_received");
    wire::FrameReader reader(fd);
    std::vector<Message> ms;
    while (reader.next_batch(ms)) {
      frames.add(ms.size());
      // After detach() the machine is gone but peers may still be
      // sending: keep reading so their writes don't block, drop frames.
      std::lock_guard lock(slot->mu);
      if (slot->inbox != nullptr) slot->inbox->push_all(std::move(ms));
    }
  }
};

TcpFabric::TcpFabric(std::size_t machines, FabricOptions opts)
    : opts_(opts), batch_opts_(opts.batch) {
  endpoints_.reserve(machines);
  for (std::size_t i = 0; i < machines; ++i)
    endpoints_.push_back(std::make_unique<Endpoint>());
  if (opts_.reactor)
    reactor_ = std::make_unique<Reactor>(Reactor::Options{
        .read_chunk = opts_.read_chunk, .socket_buffer = opts_.socket_buffer});
}

TcpFabric::~TcpFabric() { shutdown(); }

void TcpFabric::attach(MachineId id, Inbox* inbox) {
  OOPP_CHECK(id < endpoints_.size());
  Endpoint& ep = *endpoints_[id];
  {
    std::lock_guard lock(ep.slot->mu);
    ep.slot->inbox = inbox;
  }
  ep.listen_on_ephemeral();
  if (reactor_) {
    wire::set_nonblocking(ep.listen_fd);
    reactor_->add_listener(ep.listen_fd, ep.slot);
  } else {
    ep.start_accepting();
  }
}

void TcpFabric::detach(MachineId id) {
  if (id >= endpoints_.size()) return;
  auto& slot = endpoints_[id]->slot;
  std::lock_guard lock(slot->mu);
  slot->inbox = nullptr;
}

void TcpFabric::reconfigure(const FabricOptions& opts) {
  batch_opts_.store(opts.batch);
}

std::uint16_t TcpFabric::port(MachineId id) const {
  OOPP_CHECK(id < endpoints_.size());
  return endpoints_[id]->port;
}

TcpFabric::Link& TcpFabric::link_for(MachineId src, MachineId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  std::lock_guard lock(links_mu_);
  auto it = links_.find(key);
  if (it != links_.end()) return *it->second;

  auto link = std::make_unique<Link>();
  link->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OOPP_CHECK_MSG(link->fd >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoints_[dst]->port);
  OOPP_CHECK_MSG(::connect(link->fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0,
                 "connect to machine " << dst
                                       << " failed: " << std::strerror(errno));
  wire::set_nodelay(link->fd);
  auto [pos, inserted] = links_.emplace(key, std::move(link));
  OOPP_CHECK(inserted);
  return *pos->second;
}

void TcpFabric::send(Message m) {
  OOPP_CHECK_MSG(m.header.dst < endpoints_.size(),
                 "send to unknown machine " << m.header.dst);
  account(m);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(m.header.src) << 32) | m.header.dst;
  const BatchOptions bo = batch_opts_.load();
  Link& link = link_for(m.header.src, m.header.dst);

  if (!bo.enabled) {
    std::lock_guard lock(link.mu);
    // Drain leftovers from when batching was on (runtime switch-off).
    OOPP_CHECK_MSG(link.batch.flush(link.fd, FlushTrigger::kDrain),
                   "frame write failed");
    OOPP_CHECK_MSG(wire::send_framev(link.fd, m), "frame write failed");
    return;
  }

  bool arm = false;
  time_point deadline{};
  {
    std::lock_guard lock(link.mu);
    arm = link.batch.add(std::move(m), bo);
    deadline = link.batch.deadline;
    if (link.batch.due_for_size_flush(bo)) {
      OOPP_CHECK_MSG(link.batch.flush(link.fd, FlushTrigger::kSize),
                     "frame write failed");
      arm = false;
    }
  }
  // The flusher registry lock is only ever taken with no link lock held.
  if (arm) flusher_.schedule(key, deadline);
}

void TcpFabric::flush_link(std::uint64_t key) {
  std::lock_guard links_lock(links_mu_);
  auto it = links_.find(key);
  if (it == links_.end()) return;
  Link& link = *it->second;
  time_point again{};
  {
    std::lock_guard lock(link.mu);
    if (link.batch.empty()) return;
    if (link.batch.deadline <= steady_clock::now()) {
      OOPP_CHECK_MSG(link.batch.flush(link.fd, FlushTrigger::kDeadline),
                     "frame write failed");
      return;
    }
    // A size flush emptied the queue and a younger batch started since
    // this deadline was armed: come back when that one matures.
    again = link.batch.deadline;
  }
  flusher_.schedule(key, again);
}

void TcpFabric::shutdown() {
  if (down_) return;
  down_ = true;
  flusher_.stop();
  {
    std::lock_guard lock(links_mu_);
    for (auto& [key, link] : links_) {
      std::lock_guard link_lock(link->mu);
      (void)link->batch.flush(link->fd, FlushTrigger::kDrain);
    }
    links_.clear();  // closes outgoing sockets; peers' readers exit on EOF
  }
  // Listening fds close before the reactor stops, so no accept races the
  // teardown; accepted fds are owned and closed by the reactor itself.
  for (auto& ep : endpoints_) ep->stop();
  if (reactor_) reactor_->stop();
}

}  // namespace oopp::net
