// FabricOptions: the one transport configuration surface.
//
// Every fabric knob that used to live in a per-fabric Options struct or a
// scattered setter (TcpFabric::Options, TcpMeshFabric::Options,
// Fabric::set_batching) is collected here, so Cluster::Options carries a
// single `transport` value and code configuring a fabric does not need to
// know which concrete fabric it is talking to.  See the migration table
// in README.md.
#pragma once

#include <chrono>
#include <cstddef>

#include "net/batcher.hpp"

namespace oopp::net {

struct FabricOptions {
  /// Serve inbound connections with one epoll reactor thread per fabric
  /// instead of one blocking reader thread per peer connection.  Changes
  /// no wire bytes (docs/PROTOCOL.md); construction-time only.  The
  /// thread-per-peer path is kept for comparison benchmarks.
  bool reactor = true;

  /// Per-peer send coalescing (see net/batcher.hpp).  Off by default: the
  /// wire stream is then byte-identical to the pre-batching framing.
  /// Runtime-reconfigurable via Fabric::reconfigure().
  BatchOptions batch{};

  /// Reactor read granularity: bytes pulled per read() syscall while a
  /// connection is readable.
  std::size_t read_chunk = 64 * 1024;

  /// SO_RCVBUF/SO_SNDBUF for accepted sockets; 0 keeps the kernel
  /// default.
  int socket_buffer = 0;

  /// How long send() keeps redialing a peer that refuses connections
  /// (mesh deployments; peers of one cluster may start in any order).
  std::chrono::milliseconds connect_deadline{10'000};
};

}  // namespace oopp::net
