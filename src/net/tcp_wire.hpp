// Shared TCP framing and socket helpers for TcpFabric (single-process
// loopback mesh) and TcpMeshFabric (multi-process deployment).  Internal
// header.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "net/message.hpp"

namespace oopp::net::wire {

/// kind, status, src, dst, seq, object, method, crc, trace_id, span_id,
/// attempt, payload_len.
inline constexpr std::size_t kFrameHeaderSize =
    1 + 1 + 4 + 4 + 8 + 8 + 8 + 4 + 8 + 8 + 4 + 8;

inline void encode_header(const MessageHeader& h, std::uint64_t payload_len,
                          std::uint8_t* out) {
  std::size_t o = 0;
  auto put = [&](const void* p, std::size_t n) {
    std::memcpy(out + o, p, n);
    o += n;
  };
  const auto kind = static_cast<std::uint8_t>(h.kind);
  const auto status = static_cast<std::uint8_t>(h.status);
  put(&kind, 1);
  put(&status, 1);
  put(&h.src, 4);
  put(&h.dst, 4);
  put(&h.seq, 8);
  put(&h.object, 8);
  put(&h.method, 8);
  put(&h.payload_crc, 4);
  put(&h.trace_id, 8);
  put(&h.span_id, 8);
  put(&h.attempt, 4);
  put(&payload_len, 8);
}

inline void decode_header(const std::uint8_t* in, MessageHeader& h,
                          std::uint64_t& payload_len) {
  std::size_t o = 0;
  auto get = [&](void* p, std::size_t n) {
    std::memcpy(p, in + o, n);
    o += n;
  };
  std::uint8_t kind = 0, status = 0;
  get(&kind, 1);
  get(&status, 1);
  h.kind = static_cast<MsgKind>(kind);
  h.status = static_cast<CallStatus>(status);
  get(&h.src, 4);
  get(&h.dst, 4);
  get(&h.seq, 8);
  get(&h.object, 8);
  get(&h.method, 8);
  get(&h.payload_crc, 4);
  get(&h.trace_id, 8);
  get(&h.span_id, 8);
  get(&h.attempt, 4);
  get(&payload_len, 8);
}

inline bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

inline bool read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

inline void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Send one framed message; returns false on socket failure.
inline bool send_frame(int fd, const Message& m) {
  std::uint8_t hdr[kFrameHeaderSize];
  encode_header(m.header, m.payload.size(), hdr);
  if (!write_all(fd, hdr, sizeof(hdr))) return false;
  if (!m.payload.empty() &&
      !write_all(fd, m.payload.data(), m.payload.size()))
    return false;
  return true;
}

/// Receive one framed message; returns false on EOF/socket failure.
inline bool recv_frame(int fd, Message& m) {
  std::uint8_t hdr[kFrameHeaderSize];
  if (!read_all(fd, hdr, sizeof(hdr))) return false;
  std::uint64_t payload_len = 0;
  decode_header(hdr, m.header, payload_len);
  m.payload.resize(payload_len);
  if (payload_len > 0 && !read_all(fd, m.payload.data(), payload_len))
    return false;
  return true;
}

}  // namespace oopp::net::wire
