// Shared TCP framing and socket helpers for TcpFabric (single-process
// loopback mesh) and TcpMeshFabric (multi-process deployment).  Internal
// header.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "net/message.hpp"

namespace oopp::net::wire {

/// Fixed header: kind, status, src, dst, seq, object, method, crc,
/// trace_id, span_id, attempt, payload_len.
inline constexpr std::size_t kFrameHeaderSize =
    1 + 1 + 4 + 4 + 8 + 8 + 8 + 4 + 8 + 8 + 4 + 8;

// ---------------------------------------------------------------------------
// Held-locks extension (distributed lock checking, docs/CONCURRENCY.md).
//
// When the issuing thread held checked locks AND OOPP_DIST_LOCK_CHECK is
// on, the kind byte carries kHeldLocksFlag and the fixed header is
// followed by `count (u8) | count x class-hash (u32)`.  With the feature
// off (or nothing held) the flag is clear and zero extension bytes are
// written — frames are byte-identical to the pre-extension format, so
// old and new peers interoperate exactly like batching on/off does.  The
// flagged kind values (0x40/0x41) cannot collide with kBatchMagic (0xB5).
// ---------------------------------------------------------------------------

inline constexpr std::uint8_t kHeldLocksFlag = 0x40;
inline constexpr std::size_t kMaxHeldClasses = 8;  // mirrors lockcheck's cap
inline constexpr std::size_t kMaxFrameHeaderSize =
    kFrameHeaderSize + 1 + 4 * kMaxHeldClasses;

/// Bytes encode_header will write for this header.
inline std::size_t header_wire_size(const MessageHeader& h) {
  return kFrameHeaderSize +
         (h.held.empty() ? 0 : 1 + 4 * std::size_t{h.held.count});
}

/// Encode into `out` (which must hold header_wire_size(h) bytes, at most
/// kMaxFrameHeaderSize); returns the bytes written.
inline std::size_t encode_header(const MessageHeader& h,
                                 std::uint64_t payload_len,
                                 std::uint8_t* out) {
  std::size_t o = 0;
  auto put = [&](const void* p, std::size_t n) {
    std::memcpy(out + o, p, n);
    o += n;
  };
  const auto count = static_cast<std::uint8_t>(
      std::min<std::size_t>(h.held.count, kMaxHeldClasses));
  const auto kind = static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(h.kind) | (count != 0 ? kHeldLocksFlag : 0));
  const auto status = static_cast<std::uint8_t>(h.status);
  put(&kind, 1);
  put(&status, 1);
  put(&h.src, 4);
  put(&h.dst, 4);
  put(&h.seq, 8);
  put(&h.object, 8);
  put(&h.method, 8);
  put(&h.payload_crc, 4);
  put(&h.trace_id, 8);
  put(&h.span_id, 8);
  put(&h.attempt, 4);
  put(&payload_len, 8);
  if (count != 0) {
    put(&count, 1);
    for (std::uint8_t i = 0; i < count; ++i) put(&h.held.ids[i], 4);
  }
  return o;
}

/// Decode the kFrameHeaderSize fixed prefix; returns true when a
/// held-locks extension follows on the wire (flag set in the kind byte).
inline bool decode_fixed_header(const std::uint8_t* in, MessageHeader& h,
                                std::uint64_t& payload_len) {
  std::size_t o = 0;
  auto get = [&](void* p, std::size_t n) {
    std::memcpy(p, in + o, n);
    o += n;
  };
  std::uint8_t kind = 0, status = 0;
  get(&kind, 1);
  get(&status, 1);
  const bool held = (kind & kHeldLocksFlag) != 0;
  h.kind = static_cast<MsgKind>(kind & ~kHeldLocksFlag);
  h.status = static_cast<CallStatus>(status);
  get(&h.src, 4);
  get(&h.dst, 4);
  get(&h.seq, 8);
  get(&h.object, 8);
  get(&h.method, 8);
  get(&h.payload_crc, 4);
  get(&h.trace_id, 8);
  get(&h.span_id, 8);
  get(&h.attempt, 4);
  get(&payload_len, 8);
  h.held = {};
  return held;
}

/// Decode a held-locks extension from `in` (at most `avail` bytes);
/// returns bytes consumed, or 0 on a malformed extension.
inline std::size_t decode_held_ext(const std::uint8_t* in, std::size_t avail,
                                   LockSet& held) {
  if (avail < 1) return 0;
  const std::uint8_t count = in[0];
  if (count == 0 || count > kMaxHeldClasses) return 0;
  const std::size_t need = 1 + 4 * std::size_t{count};
  if (avail < need) return 0;
  held.count = count;
  for (std::uint8_t i = 0; i < count; ++i)
    std::memcpy(&held.ids[i], in + 1 + 4 * std::size_t{i}, 4);
  return need;
}

/// Decode a full header from a contiguous buffer of `avail` bytes
/// (>= kFrameHeaderSize); returns total bytes consumed, or 0 when the
/// held-locks extension is malformed or truncated.
inline std::size_t decode_header(const std::uint8_t* in, std::size_t avail,
                                 MessageHeader& h,
                                 std::uint64_t& payload_len) {
  if (!decode_fixed_header(in, h, payload_len)) return kFrameHeaderSize;
  const std::size_t ext = decode_held_ext(in + kFrameHeaderSize,
                                          avail - kFrameHeaderSize, h.held);
  return ext == 0 ? 0 : kFrameHeaderSize + ext;
}

inline bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

inline bool read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

inline void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

inline void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Gather-write every iovec fully, handling partial writes, EINTR, and
/// IOV_MAX by chunking.  Zero-length entries are permitted and skipped.
inline bool writev_all(int fd, struct iovec* iov, std::size_t cnt) {
  std::size_t i = 0;
  while (i < cnt) {
    if (iov[i].iov_len == 0) {
      ++i;
      continue;
    }
    // Well under any platform's IOV_MAX.
    const auto chunk = static_cast<int>(std::min<std::size_t>(cnt - i, 64));
    const ssize_t w = ::writev(fd, iov + i, chunk);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    auto left = static_cast<std::size_t>(w);
    while (left > 0) {
      if (left >= iov[i].iov_len) {
        left -= iov[i].iov_len;
        ++i;
      } else {
        iov[i].iov_base = static_cast<std::uint8_t*>(iov[i].iov_base) + left;
        iov[i].iov_len -= left;
        left = 0;
      }
    }
  }
  return true;
}

/// Send one framed message; returns false on socket failure.
inline bool send_frame(int fd, const Message& m) {
  std::uint8_t hdr[kMaxFrameHeaderSize];
  const std::size_t hlen = encode_header(m.header, m.payload.size(), hdr);
  if (!write_all(fd, hdr, hlen)) return false;
  const auto payload = m.payload.bytes();
  if (!payload.empty() && !write_all(fd, payload.data(), payload.size()))
    return false;
  return true;
}

/// Send one framed message as a single gather-write: byte-identical to
/// send_frame on the wire, but one syscall and no payload flatten — each
/// Buffer slice becomes an iovec.
inline bool send_framev(int fd, const Message& m) {
  std::uint8_t hdr[kMaxFrameHeaderSize];
  const std::size_t hlen = encode_header(m.header, m.payload.size(), hdr);
  std::array<iovec, 64> iov;
  if (m.payload.slice_count() + 1 > iov.size()) {
    // Degenerate scatter (never produced by the runtime today): flatten.
    const auto payload = m.payload.bytes();
    iov[0] = {hdr, hlen};
    iov[1] = {const_cast<std::byte*>(payload.data()), payload.size()};
    return writev_all(fd, iov.data(), 2);
  }
  std::size_t cnt = 0;
  iov[cnt++] = {hdr, hlen};
  for (std::size_t i = 0; i < m.payload.slice_count(); ++i) {
    const auto s = m.payload.slice(i);
    if (!s.empty()) iov[cnt++] = {const_cast<std::byte*>(s.data()), s.size()};
  }
  return writev_all(fd, iov.data(), cnt);
}

// ---------------------------------------------------------------------------
// Batch framing.
//
// A batch frame coalesces N ordinary frames into one wire unit:
//
//   magic (1, 0xB5) | version (1) | reserved (2) | count (u32) |
//   payload_len (u64) | count × [frame header | frame payload]
//
// payload_len covers everything after the batch header, so a receiver can
// pull the whole batch in one read and slice sub-frame payloads
// zero-copy.  The magic byte cannot collide with an ordinary frame, whose
// first byte is MsgKind (0 or 1) — receivers always accept both formats,
// so peers with batching on and off interoperate.  Sub-frames keep their
// own payload_crc: corruption is detected (and retried/dropped) per
// logical message, not per batch.
//
// These constants and codecs are the only sanctioned spelling of the
// batch header; composing one by hand elsewhere is rejected by the
// batch-frame-header lint rule.
// ---------------------------------------------------------------------------

inline constexpr std::uint8_t kBatchMagic = 0xB5;
inline constexpr std::uint8_t kBatchVersion = 1;
inline constexpr std::size_t kBatchHeaderSize = 1 + 1 + 2 + 4 + 8;

/// Sanity bounds for inbound batch headers: a violation means a corrupt
/// or hostile stream, and the connection is dropped.
inline constexpr std::uint32_t kMaxBatchFrames = 1u << 20;
inline constexpr std::uint64_t kMaxBatchBytes = 1ull << 31;

inline void encode_batch_header(std::uint32_t count, std::uint64_t payload_len,
                                std::uint8_t* out) {
  out[0] = kBatchMagic;
  out[1] = kBatchVersion;
  out[2] = 0;
  out[3] = 0;
  std::memcpy(out + 4, &count, 4);
  std::memcpy(out + 8, &payload_len, 8);
}

inline bool decode_batch_header(const std::uint8_t* in, std::uint32_t& count,
                                std::uint64_t& payload_len) {
  if (in[0] != kBatchMagic || in[1] != kBatchVersion) return false;
  std::memcpy(&count, in + 4, 4);
  std::memcpy(&payload_len, in + 8, 8);
  return count >= 1 && count <= kMaxBatchFrames &&
         payload_len >= count * kFrameHeaderSize &&
         payload_len <= kMaxBatchBytes;
}

/// Send `n` frames as one batch wire unit with a single gather-write.
/// n == 1 falls back to a plain frame (the batch wrapper only ever pays
/// for itself when it amortizes over ≥ 2 frames).
inline bool send_batch(int fd, const Message* frames, std::size_t n) {
  if (n == 0) return true;
  if (n == 1) return send_framev(fd, frames[0]);
  std::uint64_t payload_len = 0;
  for (std::size_t i = 0; i < n; ++i)
    payload_len += header_wire_size(frames[i].header) +
                   frames[i].payload.size();
  std::uint8_t bhdr[kBatchHeaderSize];
  encode_batch_header(static_cast<std::uint32_t>(n), payload_len, bhdr);

  std::vector<std::array<std::uint8_t, kMaxFrameHeaderSize>> hdrs(n);
  std::vector<iovec> iov;
  iov.reserve(1 + 2 * n);
  iov.push_back({bhdr, kBatchHeaderSize});
  for (std::size_t i = 0; i < n; ++i) {
    const Message& m = frames[i];
    const std::size_t hlen =
        encode_header(m.header, m.payload.size(), hdrs[i].data());
    iov.push_back({hdrs[i].data(), hlen});
    for (std::size_t s = 0; s < m.payload.slice_count(); ++s) {
      const auto sl = m.payload.slice(s);
      if (!sl.empty())
        iov.push_back({const_cast<std::byte*>(sl.data()), sl.size()});
    }
  }
  return writev_all(fd, iov.data(), iov.size());
}

/// Split a filled batch payload (everything after the batch header) into
/// `count` messages whose payloads are zero-copy views of the shared
/// store.  Returns false on a malformed or truncated sub-frame sequence.
/// The one batch-splitting routine — FrameReader (blocking reads) and
/// StreamFrameDecoder (reactor) both go through it, so the two inbound
/// paths cannot diverge.
inline bool split_batch(
    const std::shared_ptr<const std::vector<std::byte>>& store,
    std::uint32_t count, std::uint64_t payload_len,
    std::vector<Message>& out) {
  out.reserve(out.size() + count);
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (off + kFrameHeaderSize > payload_len) return false;
    Message m;
    std::uint64_t sub_len = 0;
    const std::size_t hdr_len = decode_header(
        reinterpret_cast<const std::uint8_t*>(store->data()) + off,
        payload_len - off, m.header, sub_len);
    if (hdr_len == 0) return false;  // malformed held-locks extension
    off += hdr_len;
    if (off + sub_len > payload_len) return false;
    m.payload = Buffer::view(store, off, sub_len);
    off += sub_len;
    out.push_back(std::move(m));
  }
  return off == payload_len;
}

/// Receive one framed message; returns false on EOF/socket failure.
/// Pre-batching codec, kept for frame-level tests; fabric read loops use
/// FrameReader, which additionally understands batch frames.
inline bool recv_frame(int fd, Message& m) {
  std::uint8_t hdr[kFrameHeaderSize];
  if (!read_all(fd, hdr, sizeof(hdr))) return false;
  std::uint64_t payload_len = 0;
  if (decode_fixed_header(hdr, m.header, payload_len)) {
    std::uint8_t ext[1 + 4 * kMaxHeldClasses];
    if (!read_all(fd, ext, 1)) return false;
    if (ext[0] == 0 || ext[0] > kMaxHeldClasses) return false;
    if (!read_all(fd, ext + 1, 4 * std::size_t{ext[0]})) return false;
    if (decode_held_ext(ext, sizeof(ext), m.header.held) == 0) return false;
  }
  std::vector<std::byte> payload(payload_len);
  if (payload_len > 0 && !read_all(fd, payload.data(), payload_len))
    return false;
  m.payload = Buffer(std::move(payload));
  return true;
}

/// Batch-aware frame receiver for one connection.  Peeks the first byte
/// of each wire unit: an ordinary frame is read as before; a batch frame
/// is pulled into one shared allocation and split into per-message
/// Buffer views (zero-copy).  One FrameReader per socket, single reader
/// thread — no internal locking.
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  /// All messages of the next wire unit (1 for a plain frame, the full
  /// sub-frame sequence for a batch), replacing `out`'s contents.
  /// Returns false on EOF, socket failure, or a malformed batch header.
  bool next_batch(std::vector<Message>& out) {
    out.clear();
    if (pos_ < buffered_.size()) {
      out.assign(std::make_move_iterator(buffered_.begin() +
                                         static_cast<std::ptrdiff_t>(pos_)),
                 std::make_move_iterator(buffered_.end()));
      buffered_.clear();
      pos_ = 0;
      return true;
    }
    return fill(out);
  }

  /// One message at a time (batch sub-frames are handed out in order).
  bool next(Message& m) {
    if (pos_ >= buffered_.size()) {
      buffered_.clear();
      pos_ = 0;
      if (!fill(buffered_)) return false;
    }
    m = std::move(buffered_[pos_++]);
    return true;
  }

 private:
  /// Read one wire unit into `out`.
  bool fill(std::vector<Message>& out) {
    std::uint8_t first = 0;
    if (!read_all(fd_, &first, 1)) return false;
    if (first != kBatchMagic) {
      std::uint8_t hdr[kFrameHeaderSize];
      hdr[0] = first;
      if (!read_all(fd_, hdr + 1, kFrameHeaderSize - 1)) return false;
      std::uint64_t payload_len = 0;
      Message m;
      if (decode_fixed_header(hdr, m.header, payload_len)) {
        std::uint8_t ext[1 + 4 * kMaxHeldClasses];
        if (!read_all(fd_, ext, 1)) return false;
        if (ext[0] == 0 || ext[0] > kMaxHeldClasses) return false;
        if (!read_all(fd_, ext + 1, 4 * std::size_t{ext[0]})) return false;
        if (decode_held_ext(ext, sizeof(ext), m.header.held) == 0)
          return false;
      }
      std::vector<std::byte> payload(payload_len);
      if (payload_len > 0 && !read_all(fd_, payload.data(), payload_len))
        return false;
      m.payload = Buffer(std::move(payload));
      out.push_back(std::move(m));
      return true;
    }

    std::uint8_t bhdr[kBatchHeaderSize];
    bhdr[0] = first;
    if (!read_all(fd_, bhdr + 1, kBatchHeaderSize - 1)) return false;
    std::uint32_t count = 0;
    std::uint64_t payload_len = 0;
    if (!decode_batch_header(bhdr, count, payload_len)) return false;
    auto store = std::make_shared<std::vector<std::byte>>(payload_len);
    // The store becomes shared and const once filled; read into it first.
    if (!read_all(fd_, store->data(), payload_len)) return false;
    return split_batch(std::move(store), count, payload_len, out);
  }

  int fd_;
  std::vector<Message> buffered_;
  std::size_t pos_ = 0;
};

/// Incremental frame decoder for nonblocking sockets: the reactor's
/// counterpart of FrameReader.  Bytes arrive in arbitrary read()-sized
/// chunks; feed() consumes them and appends every completed message to
/// the caller's vector.  Parses exactly the wire units FrameReader does —
/// plain frames, the held-locks header extension, and 0xB5 batch frames
/// (split zero-copy through the shared split_batch routine) — so the
/// reactor changes no wire bytes.  One decoder per connection, driven by
/// a single reactor thread: no internal locking.
class StreamFrameDecoder {
 public:
  /// Consume `n` bytes of stream.  Returns false on a malformed stream
  /// (bad batch header, bad held-locks extension); the connection must
  /// then be dropped, exactly as FrameReader's fill() failure does.
  bool feed(const std::uint8_t* data, std::size_t n,
            std::vector<Message>& out) {
    while (n > 0 || ready()) {
      if (state_ == State::kHeader) {
        const std::size_t take = std::min(n, need_ - have_);
        std::memcpy(hdr_ + have_, data, take);
        have_ += take;
        data += take;
        n -= take;
        if (have_ < need_) return true;  // header still incomplete
        if (!advance_header()) return false;
        continue;
      }
      const std::size_t take =
          std::min<std::size_t>(n, store_.size() - filled_);
      std::memcpy(store_.data() + filled_, data, take);
      filled_ += take;
      data += take;
      n -= take;
      if (filled_ < store_.size()) return true;  // payload still incomplete
      if (!emit(out)) return false;
    }
    return true;
  }

 private:
  enum class State : std::uint8_t { kHeader, kPayload };

  [[nodiscard]] bool ready() const {
    // A zero-byte unit (empty payload, or a header fully buffered by the
    // previous chunk) completes without consuming further input.
    return (state_ == State::kHeader && have_ == need_) ||
           (state_ == State::kPayload && filled_ == store_.size());
  }

  /// The header grew to `need_` bytes: classify, extend, or finish it.
  bool advance_header() {
    if (have_ == 1) {
      need_ = hdr_[0] == kBatchMagic ? kBatchHeaderSize : kFrameHeaderSize;
      return true;
    }
    if (hdr_[0] == kBatchMagic) {
      if (!decode_batch_header(hdr_, batch_count_, payload_len_))
        return false;
      return begin_payload();
    }
    if (have_ == kFrameHeaderSize) {
      if (!decode_fixed_header(hdr_, msg_.header, payload_len_))
        return begin_payload();  // no held-locks extension follows
      need_ = kFrameHeaderSize + 1;  // the extension's count byte
      return true;
    }
    if (have_ == kFrameHeaderSize + 1) {
      const std::uint8_t count = hdr_[kFrameHeaderSize];
      if (count == 0 || count > kMaxHeldClasses) return false;
      need_ = kFrameHeaderSize + 1 + 4 * std::size_t{count};
      return true;
    }
    if (decode_held_ext(hdr_ + kFrameHeaderSize, have_ - kFrameHeaderSize,
                        msg_.header.held) == 0)
      return false;
    return begin_payload();
  }

  bool begin_payload() {
    if (payload_len_ > kMaxBatchBytes) return false;
    state_ = State::kPayload;
    store_.assign(static_cast<std::size_t>(payload_len_), std::byte{});
    filled_ = 0;
    return true;
  }

  /// Payload complete: hand out the finished message(s) and reset.
  bool emit(std::vector<Message>& out) {
    bool ok = true;
    if (hdr_[0] == kBatchMagic) {
      ok = split_batch(
          std::make_shared<const std::vector<std::byte>>(std::move(store_)),
          batch_count_, payload_len_, out);
    } else {
      msg_.payload = Buffer(std::move(store_));
      out.push_back(std::move(msg_));
      msg_ = Message{};
    }
    state_ = State::kHeader;
    have_ = 0;
    need_ = 1;
    store_.clear();
    filled_ = 0;
    return ok;
  }

  State state_ = State::kHeader;
  std::uint8_t hdr_[kMaxFrameHeaderSize > kBatchHeaderSize
                        ? kMaxFrameHeaderSize
                        : kBatchHeaderSize] = {};
  std::size_t have_ = 0;
  std::size_t need_ = 1;
  Message msg_;
  std::uint32_t batch_count_ = 0;
  std::uint64_t payload_len_ = 0;
  std::vector<std::byte> store_;
  std::size_t filled_ = 0;
};

}  // namespace oopp::net::wire
