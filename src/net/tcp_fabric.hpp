// TCP fabric: machines exchange frames over real loopback sockets.
//
// Each attached machine gets a listening socket on 127.0.0.1 with an
// ephemeral port.  Outgoing links are established lazily on first send and
// cached per (src, dst) pair; a per-link mutex keeps frames atomic on the
// socket.  A reader thread per accepted connection decodes frames and
// pushes them into the destination inbox.
//
// This fabric exists to show that the runtime's semantics do not depend on
// shared memory: every remote method really crosses the kernel socket
// layer, byte for byte, like the MPI substrate in the paper's own
// experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/batcher.hpp"
#include "net/fabric.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::net {

class TcpFabric final : public Fabric {
 public:
  struct Options {
    /// Per-peer send coalescing (see net/batcher.hpp).  Off by default:
    /// the wire stream is then byte-identical to the pre-batching
    /// framing.
    BatchOptions batch{};
  };

  explicit TcpFabric(std::size_t machines)
      : TcpFabric(machines, Options{}) {}
  TcpFabric(std::size_t machines, Options opts);
  ~TcpFabric() override;

  void attach(MachineId id, Inbox* inbox) override;
  void send(Message m) override;
  void shutdown() override;

  /// Reconfigure batching at runtime; takes effect for subsequent sends.
  /// Turning batching off drains each link's queue on its next send.
  void set_batching(const BatchOptions& batch) { batch_opts_.store(batch); }
  [[nodiscard]] BatchOptions batching() const { return batch_opts_.load(); }

  /// Port the given machine listens on (for tests).
  [[nodiscard]] std::uint16_t port(MachineId id) const;

 private:
  struct Endpoint;  // listener + accept thread + readers for one machine
  struct Link;      // cached outgoing connection for one (src, dst) pair

  Link& link_for(MachineId src, MachineId dst);
  /// Deadline-flush callback (runs on the flusher thread).
  void flush_link(std::uint64_t key);

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  util::CheckedMutex links_mu_{"net.TcpFabric.links"};
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
  bool down_ = false;

  AtomicBatchOptions batch_opts_;
  BatchFlusher flusher_{[this](std::uint64_t key) { flush_link(key); }};
};

}  // namespace oopp::net
