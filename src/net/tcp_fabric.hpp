// TCP fabric: machines exchange frames over real loopback sockets.
//
// Each attached machine gets a listening socket on 127.0.0.1 with an
// ephemeral port.  Outgoing links are established lazily on first send and
// cached per (src, dst) pair; a per-link mutex keeps frames atomic on the
// socket.
//
// Inbound connections are served, by default, by one epoll reactor thread
// shared across every endpoint of the fabric (net/reactor.hpp); setting
// FabricOptions::reactor = false restores the historical thread-per-peer
// blocking readers for comparison.  Both paths decode the identical wire
// stream.
//
// This fabric exists to show that the runtime's semantics do not depend on
// shared memory: every remote method really crosses the kernel socket
// layer, byte for byte, like the MPI substrate in the paper's own
// experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/batcher.hpp"
#include "net/fabric.hpp"
#include "net/fabric_options.hpp"
#include "net/reactor.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::net {

class TcpFabric final : public Fabric {
 public:
  /// Transport knobs moved to the fabric-agnostic net::FabricOptions;
  /// designated initializers like `TcpFabric::Options{.batch = b}` keep
  /// compiling through this alias during the migration (README table).
  using Options [[deprecated("use net::FabricOptions")]] = FabricOptions;

  explicit TcpFabric(std::size_t machines)
      : TcpFabric(machines, FabricOptions{}) {}
  TcpFabric(std::size_t machines, FabricOptions opts);
  ~TcpFabric() override;

  void attach(MachineId id, Inbox* inbox) override;
  void detach(MachineId id) override;
  void send(Message m) override;
  void reconfigure(const FabricOptions& opts) override;
  void shutdown() override;

  /// The options this fabric runs with (batch reflects reconfigure()).
  [[nodiscard]] FabricOptions options() const {
    FabricOptions o = opts_;
    o.batch = batch_opts_.load();
    return o;
  }

  [[deprecated("use reconfigure() with net::FabricOptions")]] void
  set_batching(const BatchOptions& batch) {
    batch_opts_.store(batch);
  }
  [[deprecated("use options().batch")]] [[nodiscard]] BatchOptions batching()
      const {
    return batch_opts_.load();
  }

  /// Port the given machine listens on (for tests).
  [[nodiscard]] std::uint16_t port(MachineId id) const;

 private:
  struct Endpoint;  // listener (+ legacy accept/reader threads) per machine
  struct Link;      // cached outgoing connection for one (src, dst) pair

  Link& link_for(MachineId src, MachineId dst);
  /// Deadline-flush callback (runs on the flusher thread).
  void flush_link(std::uint64_t key);

  FabricOptions opts_;  // construction-time snapshot (batch lives below)
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::unique_ptr<Reactor> reactor_;  // present iff opts_.reactor
  util::CheckedMutex links_mu_{"net.TcpFabric.links"};
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
  bool down_ = false;

  AtomicBatchOptions batch_opts_;
  BatchFlusher flusher_{[this](std::uint64_t key) { flush_link(key); }};
};

}  // namespace oopp::net
