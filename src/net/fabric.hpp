// Fabric: the interconnect abstraction.
//
// A Fabric moves Messages between machines.  Two implementations ship:
//
//  * InProcFabric — machines live in one address space; the fabric applies
//    an alpha-beta CostModel so communication costs are visible (this is
//    the default substrate standing in for the paper's physical cluster).
//  * TcpFabric    — machines exchange frames over real loopback sockets;
//    every byte genuinely crosses the kernel socket layer.
//
// Node code is fabric-agnostic: it only ever consumes its Inbox and calls
// send().
#pragma once

#include <atomic>
#include <cstdint>

#include "net/inbox.hpp"
#include "net/message.hpp"
#include "telemetry/metrics.hpp"

namespace oopp::net {

struct FabricOptions;  // net/fabric_options.hpp

class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Register the inbox that receives messages addressed to machine `id`.
  /// Must be called for every machine before any send() targeting it.
  virtual void attach(MachineId id, Inbox* inbox) = 0;

  /// Unregister machine `id`'s inbox: from the moment this returns, no
  /// fabric thread will deliver another frame into it, even while peers
  /// keep sending (their frames are read and dropped).  Part of the node
  /// shutdown sequence — the inbox may be destroyed right after.  Safe to
  /// call for an id that was never attached.  Idempotent.
  virtual void detach(MachineId /*id*/) {}

  /// Deliver `m` to the machine in m.header.dst.  Never blocks on the
  /// receiver.  Thread-safe.
  virtual void send(Message m) = 0;

  /// Apply the runtime-changeable subset of FabricOptions (today: the
  /// batching knobs) to subsequent sends.  Construction-time fields
  /// (reactor, buffers) are ignored.  Thread-safe.
  virtual void reconfigure(const FabricOptions& /*opts*/) {}

  /// Tear down background resources (threads, sockets).  Idempotent.
  virtual void shutdown() {}

  // -- traffic accounting (used by benches and tests) ----------------------
  [[nodiscard]] std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

 protected:
  void account(const Message& m) {
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(m.wire_size(), std::memory_order_relaxed);
    // Process-wide mirror of the per-fabric counters so a metrics report
    // covers traffic even after a fabric is destroyed.
    static auto& scope = telemetry::Metrics::scope_for("net");
    static auto& msgs = scope.counter("messages_sent");
    static auto& bytes = scope.counter("bytes_sent");
    msgs.add(1);
    bytes.add(m.wire_size());
  }

 private:
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace oopp::net
