// Per-node delayed-delivery message queue.
//
// Every node consumes exactly one Inbox regardless of which fabric feeds
// it.  The in-process fabric timestamps messages with a future delivery
// time computed from the CostModel; pop() holds messages back until their
// delivery time, which is how simulated network delay is realized without
// blocking the *sender*.
//
// Close semantics (deterministic drain): close() marks the inbox closed
// and makes every already-queued message immediately deliverable — the
// simulated network delay collapses, consumers drain the backlog in FIFO
// order and then observe nullopt.  Messages pushed *after* close() are
// dropped (models a dead node).  So: everything accepted before close()
// is delivered exactly once; nothing accepted after close() is delivered.
#pragma once

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "util/checked_mutex.hpp"
#include "util/clock.hpp"

namespace oopp::net {

class Inbox {
 public:
  /// Enqueue for delivery at `deliver_at` (steady-clock).  Messages are
  /// kept in push order; the fabric guarantees per-link monotonic
  /// timestamps so FIFO order per link is preserved.
  void push(Message m, time_point deliver_at) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return;  // dropping on the floor models a dead node
      queue_.push_back(Entry{std::move(m), deliver_at});
    }
    cv_.notify_one();
  }

  void push_now(Message m) { push(std::move(m), steady_clock::now()); }

  /// Enqueue a whole batch for immediate delivery under one lock — the
  /// receive path of a batched fabric read.  Arrival order (and thus
  /// per-link FIFO) follows the vector order.
  void push_all(std::vector<Message> ms) {
    if (ms.empty()) return;
    {
      std::lock_guard lock(mu_);
      if (closed_) return;
      const auto now = steady_clock::now();
      for (auto& m : ms) queue_.push_back(Entry{std::move(m), now});
    }
    cv_.notify_all();
  }

  /// Block until a message is deliverable (its timestamp has passed, or
  /// the inbox was closed — see the close semantics above) or the inbox
  /// is closed and drained.  Returns nullopt only when closed and empty.
  ///
  /// Delivery picks the *first entry in arrival order whose time has
  /// passed*, not blindly the queue head: links have independent delays,
  /// so a due message from one link must not sit behind an undue one from
  /// another.  Per-link FIFO still holds — each link's timestamps are
  /// monotonic, so within a link the first-arrived entry is always the
  /// first due.
  std::optional<Message> pop() {
    std::unique_lock lock(mu_);
    for (;;) {
      if (!queue_.empty()) {
        // closed_ collapses all delays: drain strictly in arrival order.
        if (closed_) {
          Message m = std::move(queue_.front().msg);
          queue_.pop_front();
          return m;
        }
        const auto now = steady_clock::now();
        time_point earliest = time_point::max();
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (it->deliver_at <= now) {
            Message m = std::move(it->msg);
            queue_.erase(it);
            return m;
          }
          earliest = std::min(earliest, it->deliver_at);
        }
        // oopp-lint: allow(condvar-wait-no-predicate) delay sleep; the
        cv_.wait_until(lock, earliest);  // for(;;) re-scans the queue
        continue;
      }
      if (closed_) return std::nullopt;
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    }
  }

  /// Make all queued messages immediately deliverable, unblock all
  /// consumers, drop subsequent pushes.  Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  struct Entry {
    Message msg;
    time_point deliver_at;
  };
  mutable util::CheckedMutex mu_{"net.Inbox"};
  util::CondVar cv_;
  std::deque<Entry> queue_;
  bool closed_ = false;
};

}  // namespace oopp::net
