// Per-node delayed-delivery message queue.
//
// Every node consumes exactly one Inbox regardless of which fabric feeds
// it.  The in-process fabric timestamps messages with a future delivery
// time computed from the CostModel; pop() holds messages back until their
// delivery time, which is how simulated network delay is realized without
// blocking the *sender*.
//
// Close semantics (deterministic drain): close() marks the inbox closed
// and makes every already-queued message immediately deliverable — the
// simulated network delay collapses, consumers drain the backlog in FIFO
// order and then observe nullopt.  Messages pushed *after* close() are
// dropped (models a dead node).  So: everything accepted before close()
// is delivered exactly once; nothing accepted after close() is delivered.
#pragma once

#include <chrono>
#include <deque>
#include <mutex>
#include <optional>

#include "net/message.hpp"
#include "util/checked_mutex.hpp"
#include "util/clock.hpp"

namespace oopp::net {

class Inbox {
 public:
  /// Enqueue for delivery at `deliver_at` (steady-clock).  Messages are
  /// kept in push order; the fabric guarantees per-link monotonic
  /// timestamps so FIFO order per link is preserved.
  void push(Message m, time_point deliver_at) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return;  // dropping on the floor models a dead node
      queue_.push_back(Entry{std::move(m), deliver_at});
    }
    cv_.notify_one();
  }

  void push_now(Message m) { push(std::move(m), steady_clock::now()); }

  /// Block until a message is deliverable (its timestamp has passed, or
  /// the inbox was closed — see the close semantics above) or the inbox
  /// is closed and drained.  Returns nullopt only when closed and empty.
  std::optional<Message> pop() {
    std::unique_lock lock(mu_);
    for (;;) {
      if (!queue_.empty()) {
        const auto due = queue_.front().deliver_at;
        // closed_ is re-checked on every iteration: a close() that lands
        // during the timed wait below releases the message immediately
        // instead of holding it until its simulated delivery time.
        if (closed_ || due <= steady_clock::now()) {
          Message m = std::move(queue_.front().msg);
          queue_.pop_front();
          return m;
        }
        cv_.wait_until(lock, due);
        continue;
      }
      if (closed_) return std::nullopt;
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    }
  }

  /// Make all queued messages immediately deliverable, unblock all
  /// consumers, drop subsequent pushes.  Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  struct Entry {
    Message msg;
    time_point deliver_at;
  };
  mutable util::CheckedMutex mu_{"net.Inbox"};
  util::CondVar cv_;
  std::deque<Entry> queue_;
  bool closed_ = false;
};

}  // namespace oopp::net
