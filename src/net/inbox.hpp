// Per-node delayed-delivery message queue.
//
// Every node consumes exactly one Inbox regardless of which fabric feeds
// it.  The in-process fabric timestamps messages with a future delivery
// time computed from the CostModel; pop() holds messages back until their
// delivery time, which is how simulated network delay is realized without
// blocking the *sender*.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "net/message.hpp"
#include "util/clock.hpp"

namespace oopp::net {

class Inbox {
 public:
  /// Enqueue for delivery at `deliver_at` (steady-clock).  Messages are
  /// kept in push order; the fabric guarantees per-link monotonic
  /// timestamps so FIFO order per link is preserved.
  void push(Message m, time_point deliver_at) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return;  // dropping on the floor models a dead node
      queue_.push_back(Entry{std::move(m), deliver_at});
    }
    cv_.notify_one();
  }

  void push_now(Message m) { push(std::move(m), steady_clock::now()); }

  /// Block until a message is deliverable (its timestamp has passed) or
  /// the inbox is closed.  Returns nullopt on close.
  std::optional<Message> pop() {
    std::unique_lock lock(mu_);
    for (;;) {
      if (!queue_.empty()) {
        const auto due = queue_.front().deliver_at;
        const auto now = steady_clock::now();
        if (due <= now) {
          Message m = std::move(queue_.front().msg);
          queue_.pop_front();
          return m;
        }
        cv_.wait_until(lock, due);
        continue;
      }
      if (closed_) return std::nullopt;
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    }
  }

  /// Unblock all consumers; subsequent pushes are dropped.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  struct Entry {
    Message msg;
    time_point deliver_at;
  };
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool closed_ = false;
};

}  // namespace oopp::net
