// TcpMeshFabric: the interconnect for genuine multi-OS-process (or
// multi-host) deployment.
//
// Every machine of the cluster is a separate process; each knows the full
// endpoint table (host + port per machine id), binds its own configured
// port, and dials peers lazily on first send.  The frame format is shared
// with the single-process TcpFabric, so the two interoperate.
//
// Connections to peers that are not up yet are retried with backoff until
// a configurable deadline — processes of one cluster may start in any
// order.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/batcher.hpp"
#include "net/fabric.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class TcpMeshFabric final : public Fabric {
 public:
  struct Options {
    /// How long send() keeps redialing a peer that refuses connections.
    std::chrono::milliseconds connect_deadline{10'000};
    /// Per-peer send coalescing (see net/batcher.hpp).  Off by default:
    /// the wire stream is then byte-identical to the pre-batching
    /// framing, and peers with different settings interoperate.
    BatchOptions batch{};
  };

  explicit TcpMeshFabric(std::vector<Endpoint> peers)
      : TcpMeshFabric(std::move(peers), Options{}) {}
  TcpMeshFabric(std::vector<Endpoint> peers, Options opts);
  ~TcpMeshFabric() override;

  /// Bind and listen on peers[id]'s port; only one machine per process
  /// may attach.
  void attach(MachineId id, Inbox* inbox) override;

  void send(Message m) override;
  void shutdown() override;

  /// Reconfigure batching at runtime; takes effect for subsequent sends.
  /// Turning batching off drains each link's queue on its next send.
  void set_batching(const BatchOptions& batch) { batch_opts_.store(batch); }
  [[nodiscard]] BatchOptions batching() const { return batch_opts_.load(); }

  [[nodiscard]] MachineId local_machine() const { return local_; }
  [[nodiscard]] const std::vector<Endpoint>& peers() const { return peers_; }

 private:
  struct Link;

  Link& link_for(MachineId dst);
  /// Deadline-flush callback (runs on the flusher thread).
  void flush_link(std::uint64_t key);

  std::vector<Endpoint> peers_;
  Options opts_;
  MachineId local_ = 0;
  bool attached_ = false;

  int listen_fd_ = -1;
  Inbox* inbox_ = nullptr;
  // The fabric owns and joins its acceptor/reader threads in shutdown().
  std::thread acceptor_;  // oopp-lint: allow(raw-thread-primitive)
  util::CheckedMutex readers_mu_{"net.TcpMeshFabric.readers"};
  std::vector<std::thread> readers_;  // oopp-lint: allow(raw-thread-primitive)
  std::vector<int> reader_fds_;

  util::CheckedMutex links_mu_{"net.TcpMeshFabric.links"};
  std::unordered_map<MachineId, std::unique_ptr<Link>> links_;
  bool down_ = false;

  AtomicBatchOptions batch_opts_;
  BatchFlusher flusher_{[this](std::uint64_t key) {
    flush_link(key);
  }};
};

/// Parse an endpoints file: one "host port" pair per line, machine id =
/// line number; '#' starts a comment.
std::vector<Endpoint> load_endpoints(const std::string& path);

}  // namespace oopp::net
