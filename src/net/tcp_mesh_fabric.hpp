// TcpMeshFabric: the interconnect for genuine multi-OS-process (or
// multi-host) deployment.
//
// Every machine of the cluster is a separate process; each knows the full
// endpoint table (host + port per machine id), binds its own configured
// port, and dials peers lazily on first send.  The frame format is shared
// with the single-process TcpFabric, so the two interoperate.
//
// Connections to peers that are not up yet are retried with backoff until
// a configurable deadline — processes of one cluster may start in any
// order.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/batcher.hpp"
#include "net/fabric.hpp"
#include "net/fabric_options.hpp"
#include "net/reactor.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class TcpMeshFabric final : public Fabric {
 public:
  /// Transport knobs moved to the fabric-agnostic net::FabricOptions
  /// (README migration table).  Note FabricOptions declares `batch`
  /// before `connect_deadline`, so designated initializers naming both
  /// must list `.batch` first.
  using Options [[deprecated("use net::FabricOptions")]] = FabricOptions;

  explicit TcpMeshFabric(std::vector<Endpoint> peers)
      : TcpMeshFabric(std::move(peers), FabricOptions{}) {}
  TcpMeshFabric(std::vector<Endpoint> peers, FabricOptions opts);
  ~TcpMeshFabric() override;

  /// Bind and listen on peers[id]'s port; only one machine per process
  /// may attach.
  void attach(MachineId id, Inbox* inbox) override;
  void detach(MachineId id) override;

  void send(Message m) override;
  void reconfigure(const FabricOptions& opts) override;
  void shutdown() override;

  /// The options this fabric runs with (batch reflects reconfigure()).
  [[nodiscard]] FabricOptions options() const {
    FabricOptions o = opts_;
    o.batch = batch_opts_.load();
    return o;
  }

  [[deprecated("use reconfigure() with net::FabricOptions")]] void
  set_batching(const BatchOptions& batch) {
    batch_opts_.store(batch);
  }
  [[deprecated("use options().batch")]] [[nodiscard]] BatchOptions batching()
      const {
    return batch_opts_.load();
  }

  [[nodiscard]] MachineId local_machine() const { return local_; }
  [[nodiscard]] const std::vector<Endpoint>& peers() const { return peers_; }

 private:
  struct Link;

  Link& link_for(MachineId dst);
  /// Deadline-flush callback (runs on the flusher thread).
  void flush_link(std::uint64_t key);

  std::vector<Endpoint> peers_;
  FabricOptions opts_;  // construction snapshot (batch lives in batch_opts_)
  MachineId local_ = 0;
  bool attached_ = false;

  int listen_fd_ = -1;
  // Shared with whichever reader path serves this process; detach() nulls
  // slot_->inbox under slot_->mu so no frame lands in a destroyed Inbox.
  std::shared_ptr<InboxSlot> slot_ = std::make_shared<InboxSlot>();
  std::unique_ptr<Reactor> reactor_;  // present iff opts_.reactor
  // Legacy (reactor=false) path: the fabric owns and joins its
  // acceptor/reader threads in shutdown().
  std::thread acceptor_;  // oopp-lint: allow(raw-thread-primitive)
  util::CheckedMutex readers_mu_{"net.TcpMeshFabric.readers"};
  std::vector<std::thread> readers_;  // oopp-lint: allow(raw-thread-primitive)
  std::vector<int> reader_fds_;

  util::CheckedMutex links_mu_{"net.TcpMeshFabric.links"};
  std::unordered_map<MachineId, std::unique_ptr<Link>> links_;
  bool down_ = false;

  AtomicBatchOptions batch_opts_;
  BatchFlusher flusher_{[this](std::uint64_t key) {
    flush_link(key);
  }};
};

/// Parse an endpoints file: one "host port" pair per line, machine id =
/// line number; '#' starts a comment.
std::vector<Endpoint> load_endpoints(const std::string& path);

}  // namespace oopp::net
