// FaultyFabric: a fault-injecting decorator over any Fabric.
//
// Wraps an inner fabric and, per message, may drop it (models loss /
// partition) or flip one payload byte (models corruption).  Combined with
// Node::Options::checksums and Future::get_for deadlines, the tests prove
// the framework's failure behaviour is *typed*:
//
//   corruption → rpc::BadFrame at the caller (request or response side);
//   loss       → rpc::CallTimeout on a deadline (no silent hang forever,
//                no wrong answer).
//
// Deterministic: all randomness comes from the seeded generator, and
// fault kinds can be restricted to requests or responses.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "net/fabric.hpp"
#include "net/fabric_options.hpp"
#include "util/checked_mutex.hpp"
#include "util/prng.hpp"

namespace oopp::net {

class FaultyFabric final : public Fabric {
 public:
  struct Faults {
    double drop_probability = 0.0;     // [0, 1]
    double corrupt_probability = 0.0;  // [0, 1]
    bool affect_requests = true;
    bool affect_responses = true;
    std::uint64_t seed = 0x5eed;
  };

  FaultyFabric(std::unique_ptr<Fabric> inner, Faults faults)
      : inner_(std::move(inner)), faults_(faults), rng_(faults.seed) {}

  void attach(MachineId id, Inbox* inbox) override {
    inner_->attach(id, inbox);
  }

  void detach(MachineId id) override { inner_->detach(id); }

  void reconfigure(const FabricOptions& opts) override {
    inner_->reconfigure(opts);
  }

  void send(Message m) override {
    account(m);
    {
      // The whole fault decision sits under mu_: the eligibility flags are
      // part of faults_ and must be read against the same configuration
      // the probabilities come from (set_faults can swap it concurrently).
      std::lock_guard lock(mu_);
      const bool eligible =
          (m.header.kind == MsgKind::kRequest && faults_.affect_requests) ||
          (m.header.kind == MsgKind::kResponse && faults_.affect_responses);
      if (eligible) {
        if (faults_.drop_probability > 0.0 &&
            rng_.uniform() < faults_.drop_probability) {
          dropped_.fetch_add(1, std::memory_order_relaxed);
          return;  // the network ate it
        }
        if (faults_.corrupt_probability > 0.0 && !m.payload.empty() &&
            rng_.uniform() < faults_.corrupt_probability) {
          const auto pos = rng_.below(m.payload.size());
          // Copy-on-write: the sender's retry/dedup copies share these
          // payload slices and must keep the intact bytes.
          m.payload.mutate_byte(pos, std::byte{0x40});
          corrupted_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    inner_->send(std::move(m));
  }

  void shutdown() override { inner_->shutdown(); }

  /// Reconfigure at runtime (e.g. run a healthy setup phase, then turn
  /// the network hostile).
  void set_faults(Faults faults) {
    std::lock_guard lock(mu_);
    faults_ = faults;
  }

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t corrupted() const {
    return corrupted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Fabric& inner() { return *inner_; }

 private:
  std::unique_ptr<Fabric> inner_;
  Faults faults_;
  util::CheckedMutex mu_{"net.FaultyFabric"};
  Xoshiro256 rng_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> corrupted_{0};
};

}  // namespace oopp::net
