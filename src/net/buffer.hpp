// Buffer: the zero-copy payload representation carried by net::Message.
//
// A Buffer is an ordered sequence of ref-counted byte slices.  The two
// producers on the hot path construct it without copying:
//
//   * serial::OArchive::take() yields a std::vector<std::byte> that the
//     implicit Buffer constructor *adopts* (one move, zero copies) — the
//     serialized argument pack travels from the archive through Message
//     to the socket untouched;
//   * a batched receive (wire::FrameReader) reads a whole batch payload
//     into one shared allocation and hands each sub-frame a Buffer::view
//     of its range.
//
// Copying a Buffer copies slice descriptors (refcount bumps), never the
// bytes — which is what makes the retry driver's resend copy, the dedup
// cache's replay copy, and FaultyFabric's pass-through effectively free.
//
// Readers see a contiguous std::span<const std::byte> via bytes() (and an
// implicit conversion, so `serial::IArchive ia(m.payload)` compiles
// unchanged).  A single-slice Buffer — the overwhelmingly common case —
// returns its storage directly; a multi-slice Buffer flattens lazily into
// a cached allocation on first access.
//
// A Buffer is immutable except for mutate_byte(), a copy-on-write hook
// that exists solely so FaultyFabric can corrupt one byte without
// disturbing other holders of the same slices.  Like Message itself, a
// Buffer instance is not internally synchronized: concurrent access to
// one *instance* needs external ordering, while distinct instances may
// freely share underlying slices across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "serial/archive.hpp"
#include "serial/bytes.hpp"
#include "util/assert.hpp"

namespace oopp::net {

class Buffer {
 public:
  Buffer() = default;

  /// Adopt a byte vector without copying.  Implicit on purpose: every
  /// call site that built a std::vector<std::byte> payload keeps
  /// compiling, and OArchive::take() feeds this directly.
  Buffer(std::vector<std::byte> bytes) {  // NOLINT(google-explicit-constructor)
    if (bytes.empty()) return;
    size_ = bytes.size();
    slices_.push_back(Slice{
        std::make_shared<const std::vector<std::byte>>(std::move(bytes)), 0,
        size_});
  }

  /// A view of `[off, off+len)` of shared storage: how a batched receive
  /// gives each sub-frame its payload without copying the batch buffer.
  static Buffer view(std::shared_ptr<const std::vector<std::byte>> store,
                     std::size_t off, std::size_t len) {
    Buffer b;
    if (len == 0) return b;
    OOPP_CHECK(store != nullptr && off + len <= store->size());
    b.size_ = len;
    b.slices_.push_back(Slice{std::move(store), off, len});
    return b;
  }

  /// Adopt an OArchive's sealed segment chain (refcount bumps, no byte
  /// copies): how a payload that spliced serial::Bytes slices reaches
  /// the wire without flattening.  Segments arrive in stream order.
  static Buffer from_segments(std::vector<serial::Bytes> segs) {
    Buffer b;
    for (serial::Bytes& s : segs) {
      if (s.empty()) continue;
      b.size_ += s.size();
      b.slices_.push_back(Slice{s.store(), s.offset(), s.size()});
    }
    return b;
  }

  /// The whole payload as one ref-counted serial::Bytes slice — what an
  /// IArchive takes to decode Bytes arguments as views into this buffer.
  /// Single-slice buffers (the common case) share their storage
  /// directly; a multi-slice buffer flattens once (the same lazy flatten
  /// bytes() performs) and shares the flat allocation.
  [[nodiscard]] serial::Bytes share() const {
    if (slices_.empty()) return {};
    if (slices_.size() == 1)
      return serial::Bytes(slices_[0].store, slices_[0].off, slices_[0].len);
    (void)bytes();  // materialize flat_
    return serial::Bytes(flat_, 0, size_);
  }

  /// Append another buffer's slices (refcount bumps, no byte copies).
  void append(const Buffer& b) {
    for (const Slice& s : b.slices_) slices_.push_back(s);
    size_ += b.size_;
    flat_.reset();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t slice_count() const { return slices_.size(); }

  /// The i-th slice as a span — what send_framev turns into iovecs.
  [[nodiscard]] std::span<const std::byte> slice(std::size_t i) const {
    const Slice& s = slices_[i];
    return {s.store->data() + s.off, s.len};
  }

  /// Contiguous view of the whole payload.  Free for empty and
  /// single-slice buffers; a multi-slice buffer flattens once into a
  /// cached allocation (rare: only consumers that parse a scatter-built
  /// payload pay it).
  [[nodiscard]] std::span<const std::byte> bytes() const {
    if (slices_.empty()) return {};
    if (slices_.size() == 1) return slice(0);
    if (!flat_) {
      auto flat = std::make_shared<std::vector<std::byte>>();
      flat->reserve(size_);
      for (std::size_t i = 0; i < slices_.size(); ++i) {
        const auto s = slice(i);
        flat->insert(flat->end(), s.begin(), s.end());
      }
      flat_ = std::move(flat);
    }
    return {flat_->data(), flat_->size()};
  }

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator std::span<const std::byte>() const { return bytes(); }

  [[nodiscard]] std::byte operator[](std::size_t pos) const {
    return bytes()[pos];
  }

  [[nodiscard]] std::vector<std::byte> to_vector() const {
    const auto b = bytes();
    return {b.begin(), b.end()};
  }

  /// FNV-1a-32 over the logical byte sequence, never returning 0 (0 means
  /// "unchecked" in the frame header).  Computed per slice — no flatten.
  [[nodiscard]] std::uint32_t checksum() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < slices_.size(); ++i) {
      for (std::byte b : slice(i)) {
        h ^= static_cast<std::uint8_t>(b);
        h *= 0x100000001b3ULL;
      }
    }
    auto folded = static_cast<std::uint32_t>(h ^ (h >> 32));
    return folded == 0 ? 1 : folded;
  }

  /// Copy-on-write single-byte XOR, for fault injection only: other
  /// Buffers sharing these slices are unaffected.
  void mutate_byte(std::size_t pos, std::byte xor_mask) {
    OOPP_CHECK(pos < size_);
    std::vector<std::byte> copy = to_vector();
    copy[pos] ^= xor_mask;
    *this = Buffer(std::move(copy));
  }

 private:
  struct Slice {
    std::shared_ptr<const std::vector<std::byte>> store;
    std::size_t off = 0;
    std::size_t len = 0;
  };

  std::vector<Slice> slices_;
  std::size_t size_ = 0;
  /// Lazily built contiguous copy for multi-slice buffers; shared so that
  /// copies of a flattened Buffer reuse it.
  mutable std::shared_ptr<const std::vector<std::byte>> flat_;
};

/// Finish an OArchive into a Buffer, preserving spliced segments: the
/// common pack-and-send idiom `async_raw(..., to_buffer(oa), ...)`.
/// Without segments this is exactly the old Buffer(oa.take()) adoption.
inline Buffer to_buffer(serial::OArchive& oa) {
  if (!oa.has_segments()) return Buffer(oa.take());
  return Buffer::from_segments(oa.take_segments());
}

}  // namespace oopp::net
