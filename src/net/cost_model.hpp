// Network cost model for the in-process fabric.
//
// The paper's experiments presuppose a cluster whose interconnect has real
// latency and finite bandwidth — that is what makes "move the computation
// to the data" beat "move the data to the computation" (§3), and what the
// communication-avoiding motivation in §1 is about.  Running everything in
// one address space would hide those effects, so the in-process fabric
// charges each message the classic alpha-beta cost:
//
//     delay(bytes) = alpha + bytes / beta + per_message_cpu
//
// Delivery order per (src, dst) link is kept FIFO even when a small
// message's computed delay undercuts a large predecessor's.
#pragma once

#include <chrono>
#include <cstdint>

namespace oopp::net {

struct CostModel {
  /// One-way message latency (alpha), nanoseconds.
  std::int64_t latency_ns = 0;
  /// Link bandwidth (beta), bytes per microsecond.  0 = infinite.
  double bytes_per_us = 0.0;
  /// Fixed per-message CPU cost (packetization), nanoseconds.
  std::int64_t per_message_ns = 0;
  /// Sender NIC injection bandwidth (the LogGP "G"), bytes per
  /// microsecond; 0 = infinite.  Unlike the in-flight terms above, egress
  /// time *occupies the sender*: a machine's outgoing messages serialize
  /// on its NIC.  This is what makes a flat fan-out from one machine cost
  /// N x (bytes/G) while a tree spreads the injection load (experiment
  /// E11).
  double egress_bytes_per_us = 0.0;
  /// Fixed per-message sender occupancy (the LogGP "o"), nanoseconds.
  std::int64_t egress_per_message_ns = 0;

  [[nodiscard]] std::int64_t delay_ns(std::size_t bytes) const {
    std::int64_t d = latency_ns + per_message_ns;
    if (bytes_per_us > 0.0)
      d += static_cast<std::int64_t>(static_cast<double>(bytes) /
                                     bytes_per_us * 1e3);
    return d;
  }

  /// Receiver NIC drain bandwidth, bytes per microsecond; 0 = infinite.
  /// Messages addressed to one machine serialize on its ingress port —
  /// the "incast" effect that makes a flat gather/reduce at one root cost
  /// ~N x (bytes/G) (experiment E11).
  double ingress_bytes_per_us = 0.0;
  std::int64_t ingress_per_message_ns = 0;

  /// Time the sender's NIC is busy injecting this message.
  [[nodiscard]] std::int64_t egress_ns(std::size_t bytes) const {
    std::int64_t d = egress_per_message_ns;
    if (egress_bytes_per_us > 0.0)
      d += static_cast<std::int64_t>(static_cast<double>(bytes) /
                                     egress_bytes_per_us * 1e3);
    return d;
  }

  /// Time the receiver's NIC is busy draining this message.
  [[nodiscard]] std::int64_t ingress_ns(std::size_t bytes) const {
    std::int64_t d = ingress_per_message_ns;
    if (ingress_bytes_per_us > 0.0)
      d += static_cast<std::int64_t>(static_cast<double>(bytes) /
                                     ingress_bytes_per_us * 1e3);
    return d;
  }

  /// A model that adds no artificial delay — raw framework overhead.
  static CostModel zero() { return {}; }

  /// A model resembling a commodity cluster interconnect:
  /// ~25 us latency, ~1.2 GB/s effective bandwidth.
  static CostModel commodity_cluster() {
    return {.latency_ns = 25'000, .bytes_per_us = 1200.0,
            .per_message_ns = 500};
  }

  /// A model resembling an HPC fabric: ~2 us latency, ~10 GB/s.
  static CostModel hpc_fabric() {
    return {.latency_ns = 2'000, .bytes_per_us = 10'000.0,
            .per_message_ns = 100};
  }
};

}  // namespace oopp::net
