#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>

#include <atomic>
#include <cstring>

#include "net/tcp_wire.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"

namespace oopp::net {

namespace {

/// net.reactor scope: the event loop's own instruments, next to the
/// legacy "net"/tcp_frames_received counter both read paths feed.
struct ReactorMetrics {
  telemetry::Counter& accepts;
  telemetry::Counter& closes;
  telemetry::Counter& wakeups;  // epoll_wait returns
  telemetry::Counter& frames;
  telemetry::Counter& bytes;
};

ReactorMetrics& reactor_metrics() {
  static ReactorMetrics m = [] {
    auto& s = telemetry::Metrics::scope_for("net.reactor");
    return ReactorMetrics{s.counter("accepts"), s.counter("closes"),
                          s.counter("wakeups"), s.counter("frames"),
                          s.counter("bytes")};
  }();
  return m;
}

}  // namespace

struct Reactor::Conn {
  int fd = -1;
  std::shared_ptr<InboxSlot> slot;
  wire::StreamFrameDecoder decoder;
};

Reactor::Reactor(Options opts) : opts_(opts) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  OOPP_CHECK_MSG(epoll_fd_ >= 0,
                 "epoll_create1 failed: " << std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  OOPP_CHECK_MSG(wake_fd_ >= 0, "eventfd failed: " << std::strerror(errno));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  OOPP_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

Reactor::~Reactor() {
  stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void Reactor::add_listener(int listen_fd, std::shared_ptr<InboxSlot> slot) {
  {
    std::lock_guard lock(mu_);
    OOPP_CHECK_MSG(!stopped_, "add_listener on a stopped reactor");
    listeners_.emplace(listen_fd, std::move(slot));
    if (!started_) {
      started_ = true;
      // oopp-lint: allow(raw-thread-primitive) — joined in stop().
      thread_ = std::thread([this] { run(); });
    }
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = listen_fd;
  OOPP_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd, &ev) == 0,
                 "epoll_ctl(listener) failed: " << std::strerror(errno));
}

void Reactor::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mu_);
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  listeners_.clear();
}

void Reactor::do_accept(int listen_fd,
                        const std::shared_ptr<InboxSlot>& slot) {
  // Edge-triggered: accept until the backlog is dry.
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener closed
    }
    wire::set_nodelay(fd);
    if (opts_.socket_buffer > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &opts_.socket_buffer,
                   sizeof(opts_.socket_buffer));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.socket_buffer,
                   sizeof(opts_.socket_buffer));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->slot = slot;
    {
      std::lock_guard lock(mu_);
      conns_.emplace(fd, std::move(conn));
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close_conn(fd);
      continue;
    }
    reactor_metrics().accepts.add(1);
  }
}

bool Reactor::do_read(Conn& conn) {
  static auto& legacy_frames =
      telemetry::Metrics::scope_for("net").counter("tcp_frames_received");
  auto& rm = reactor_metrics();
  // Reused across events: only the reactor thread enters do_read.
  std::vector<std::uint8_t>& buf = read_buf_;
  if (buf.size() != opts_.read_chunk) buf.assign(opts_.read_chunk, 0);
  std::vector<Message> ms;
  // Edge-triggered: read until EAGAIN, EOF, or error.
  for (;;) {
    const ssize_t r = ::read(conn.fd, buf.data(), buf.size());
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (r == 0) return false;  // EOF
    rm.bytes.add(static_cast<std::uint64_t>(r));
    ms.clear();
    if (!conn.decoder.feed(buf.data(), static_cast<std::size_t>(r), ms))
      return false;  // malformed stream: drop the connection
    if (ms.empty()) continue;
    rm.frames.add(ms.size());
    legacy_frames.add(ms.size());
    // Deliver under the slot lock: detach() nulls the inbox under the
    // same lock, so no frame can land in a destroyed Inbox.
    std::lock_guard lock(conn.slot->mu);
    if (conn.slot->inbox != nullptr)
      conn.slot->inbox->push_all(std::move(ms));
  }
  return true;
}

void Reactor::close_conn(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  {
    std::lock_guard lock(mu_);
    conns_.erase(fd);  // Conn owns no fd resource; close below
  }
  ::close(fd);
  reactor_metrics().closes.add(1);
}

void Reactor::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: tearing down
    }
    reactor_metrics().wakeups.add(1);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        (void)!::read(wake_fd_, &drain, sizeof(drain));
        std::lock_guard lock(mu_);
        if (stopped_) return;
        continue;
      }
      std::shared_ptr<InboxSlot> listener_slot;
      Conn* conn = nullptr;
      {
        std::lock_guard lock(mu_);
        if (auto it = listeners_.find(fd); it != listeners_.end()) {
          listener_slot = it->second;
        } else if (auto ct = conns_.find(fd); ct != conns_.end()) {
          conn = ct->second.get();
        }
      }
      if (listener_slot != nullptr) {
        do_accept(fd, listener_slot);
      } else if (conn != nullptr) {
        // Only this thread reads or erases connections, so the pointer
        // stays valid without holding mu_ across the (potentially long)
        // read loop.
        if (!do_read(*conn)) close_conn(fd);
      }
    }
  }
}

}  // namespace oopp::net
