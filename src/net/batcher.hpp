// Per-peer send coalescing shared by the TCP fabrics.
//
// With batching enabled, small frames destined for one peer accumulate
// in a per-link BatchQueue and are flushed as one batch wire unit (see
// tcp_wire.hpp) when either
//
//   * the queue reaches max_bytes or max_frames  — size flush, inline on
//     the sending thread; or
//   * max_delay elapses since the queue's first frame — deadline flush,
//     driven by the fabric's BatchFlusher thread.
//
// A §4 split loop or ProcessGroup::async fan-out thus costs one syscall
// per peer per flush instead of one (or two) per call.  Off (the
// default) every frame is written immediately via send_framev, which is
// byte-identical to the historic framing — and receivers accept both
// formats regardless of the local setting, so the knob is runtime-
// switchable and mixed clusters interoperate.
//
// Locking: BatchQueue state lives under its link's own mutex.  The
// flusher registry mutex is only ever taken *without* a link mutex held
// on the schedule path (senders arm deadlines after releasing the link),
// and the flusher thread calls back without holding its registry mutex —
// so the only established order is link → flusher, and the lock-order
// checker stays happy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/tcp_wire.hpp"
#include "telemetry/metrics.hpp"
#include "util/checked_mutex.hpp"
#include "util/clock.hpp"

namespace oopp::net {

/// Knobs for per-peer send coalescing (Fabric Options / set_batching).
struct BatchOptions {
  /// Off by default: batching trades up to max_delay of latency on a
  /// lone sequential call for syscall amortization on bursts.  Turn it
  /// on for pipelined/async workloads.
  bool enabled = false;
  /// Size flush thresholds: whichever trips first.
  std::size_t max_bytes = 16 * 1024;
  std::size_t max_frames = 256;
  /// Deadline flush: the longest a frame may wait in the queue.
  std::chrono::microseconds max_delay{50};
};

/// Runtime-switchable BatchOptions: senders snapshot with load() on every
/// send, set_batching stores.  Individually relaxed atomics — a send
/// racing a reconfigure sees some mix of old and new knobs, which is
/// harmless (every combination is a valid configuration).
class AtomicBatchOptions {
 public:
  AtomicBatchOptions() = default;
  explicit AtomicBatchOptions(const BatchOptions& o) { store(o); }

  void store(const BatchOptions& o) {
    max_bytes_.store(o.max_bytes, std::memory_order_relaxed);
    max_frames_.store(o.max_frames, std::memory_order_relaxed);
    max_delay_us_.store(static_cast<std::uint64_t>(o.max_delay.count()),
                        std::memory_order_relaxed);
    enabled_.store(o.enabled, std::memory_order_release);
  }

  [[nodiscard]] BatchOptions load() const {
    BatchOptions o;
    o.enabled = enabled_.load(std::memory_order_acquire);
    o.max_bytes = max_bytes_.load(std::memory_order_relaxed);
    o.max_frames = max_frames_.load(std::memory_order_relaxed);
    o.max_delay = std::chrono::microseconds(
        max_delay_us_.load(std::memory_order_relaxed));
    return o;
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> max_bytes_{16 * 1024};
  std::atomic<std::size_t> max_frames_{256};
  std::atomic<std::uint64_t> max_delay_us_{50};
};

/// net.batch scope: flush counters by trigger plus fill histograms.
struct BatchMetrics {
  telemetry::Counter& flush_size;      // flushes tripped by bytes/frames
  telemetry::Counter& flush_deadline;  // flushes tripped by max_delay
  telemetry::Counter& flush_drain;     // disable-switch / shutdown drains
  telemetry::Counter& batches_sent;    // batch wire units (≥ 2 frames)
  telemetry::Counter& frames_batched;  // frames that travelled in a batch
  telemetry::Histogram& fill_frames;   // frames per flush
  telemetry::Histogram& fill_bytes;    // wire bytes per flush
};

inline BatchMetrics& batch_metrics() {
  static BatchMetrics m = [] {
    auto& s = telemetry::Metrics::scope_for("net.batch");
    return BatchMetrics{s.counter("flush_size"),
                        s.counter("flush_deadline"),
                        s.counter("flush_drain"),
                        s.counter("batches_sent"),
                        s.counter("frames_batched"),
                        s.histogram("fill_frames"),
                        s.histogram("fill_bytes")};
  }();
  return m;
}

/// What tripped a flush, for metrics attribution.
enum class FlushTrigger : std::uint8_t { kSize, kDeadline, kDrain };

/// Pending frames for one link.  Every member and method is guarded by
/// the owning link's mutex; the struct itself adds no locking.
struct BatchQueue {
  std::vector<Message> frames;
  std::size_t bytes = 0;       // wire bytes queued (headers + payloads)
  time_point deadline{};       // valid while !frames.empty()

  [[nodiscard]] bool empty() const { return frames.empty(); }

  /// Returns true when this frame started a new batch (the caller must
  /// arm the deadline flusher after releasing the link mutex).
  bool add(Message m, const BatchOptions& o) {
    const bool first = frames.empty();
    if (first) deadline = steady_clock::now() + o.max_delay;
    bytes += wire::header_wire_size(m.header) + m.payload.size();
    frames.push_back(std::move(m));
    return first;
  }

  [[nodiscard]] bool due_for_size_flush(const BatchOptions& o) const {
    return bytes >= o.max_bytes || frames.size() >= o.max_frames;
  }

  /// Write everything queued as one batch wire unit and record metrics.
  /// Returns false on socket failure.  No-op on an empty queue.
  bool flush(int fd, FlushTrigger trigger) {
    if (frames.empty()) return true;
    auto& m = batch_metrics();
    switch (trigger) {
      case FlushTrigger::kSize: m.flush_size.add(1); break;
      case FlushTrigger::kDeadline: m.flush_deadline.add(1); break;
      case FlushTrigger::kDrain: m.flush_drain.add(1); break;
    }
    m.fill_frames.record(frames.size());
    m.fill_bytes.record(bytes);
    if (frames.size() >= 2) {
      m.batches_sent.add(1);
      m.frames_batched.add(frames.size());
    }
    const bool ok = wire::send_batch(fd, frames.data(), frames.size());
    frames.clear();
    bytes = 0;
    return ok;
  }
};

/// The deadline-flush driver: one per fabric.  Links register a key and a
/// deadline; the single flusher thread (started lazily on first use, so
/// fabrics that never batch pay nothing) invokes the fabric's callback
/// for each key whose deadline passed.  The callback runs with no
/// flusher lock held; it locks the link itself and may re-schedule.
class BatchFlusher {
 public:
  using Callback = std::function<void(std::uint64_t key)>;

  explicit BatchFlusher(Callback cb) : cb_(std::move(cb)) {}
  ~BatchFlusher() { stop(); }

  BatchFlusher(const BatchFlusher&) = delete;
  BatchFlusher& operator=(const BatchFlusher&) = delete;

  /// Request a callback for `key` at (or shortly after) `when`.  An
  /// earlier pending deadline for the same key wins.
  void schedule(std::uint64_t key, time_point when) {
    bool notify = false;
    {
      std::lock_guard lock(mu_);
      if (stop_) return;
      if (!started_) {
        started_ = true;
        // oopp-lint: allow(raw-thread-primitive) — joined in stop().
        thread_ = std::thread([this] { loop(); });
      }
      auto it = due_.find(key);
      if (it == due_.end() || when < it->second) {
        due_[key] = when;
        notify = true;
      }
    }
    if (notify) cv_.notify_all();
  }

  /// Stop the thread.  Pending deadlines are abandoned — callers drain
  /// their queues themselves on shutdown.  Idempotent.
  void stop() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
      due_.clear();
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void loop() {
    std::unique_lock lock(mu_);
    std::vector<std::uint64_t> fired;
    for (;;) {
      if (stop_) return;
      if (due_.empty()) {
        cv_.wait(lock, [this] { return stop_ || !due_.empty(); });
        continue;
      }
      const auto now = steady_clock::now();
      time_point earliest = time_point::max();
      fired.clear();
      for (auto it = due_.begin(); it != due_.end();) {
        if (it->second <= now) {
          fired.push_back(it->first);
          it = due_.erase(it);
        } else {
          earliest = std::min(earliest, it->second);
          ++it;
        }
      }
      if (fired.empty()) {
        // oopp-lint: allow(condvar-wait-no-predicate) scheduling sleep;
        cv_.wait_until(lock, earliest);  // the for(;;) re-checks due_
        continue;
      }
      lock.unlock();
      for (const auto key : fired) cb_(key);
      lock.lock();
    }
  }

  Callback cb_;
  util::CheckedMutex mu_{"net.BatchFlusher"};
  util::CondVar cv_;
  std::map<std::uint64_t, time_point> due_;
  std::thread thread_;  // oopp-lint: allow(raw-thread-primitive)
  bool started_ = false;
  bool stop_ = false;
};

}  // namespace oopp::net
