// In-process fabric: the default cluster substrate.
//
// Each simulated machine's inbox is reachable directly; send() stamps the
// message with a delivery time computed from the CostModel and enqueues it.
// The sender never blocks, so N simultaneous transfers overlap exactly as
// they would on N independent links — this is what makes the paper's §4
// split-loop experiment reproduce.
//
// FIFO per link: delivery timestamps on each (src, dst) pair are forced to
// be monotonically non-decreasing, so a small message can never overtake a
// large one on the same link.
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "net/cost_model.hpp"
#include "net/fabric.hpp"
#include "util/assert.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::net {

class InProcFabric final : public Fabric {
 public:
  explicit InProcFabric(std::size_t machines, CostModel cost = CostModel::zero())
      : cost_(cost),
        slots_(machines),
        links_(machines * machines),
        egress_(machines),
        ingress_(machines) {}

  void attach(MachineId id, Inbox* inbox) override {
    OOPP_CHECK(id < slots_.size());
    Slot& slot = slots_[id];
    std::lock_guard lock(slot.mu);
    slot.inbox = inbox;
    slot.was_attached = true;
  }

  void detach(MachineId id) override {
    if (id >= slots_.size()) return;
    Slot& slot = slots_[id];
    std::lock_guard lock(slot.mu);
    slot.inbox = nullptr;
  }

  void send(Message m) override {
    const MachineId src = m.header.src;
    const MachineId dst = m.header.dst;
    OOPP_CHECK_MSG(dst < slots_.size(), "send to unknown machine " << dst);
    account(m);

    if (src == dst) {
      // Machine-local loopback: no NIC, no link — deliver immediately
      // (still through the inbox, so semantics are unchanged).
      deliver_now(dst, std::move(m));
      return;
    }

    const auto now = steady_clock::now();

    // Sender NIC occupancy: this machine's outgoing messages serialize on
    // its egress port.  The message enters the network only when the NIC
    // finishes injecting it.
    auto injected_at = now;
    const auto egress = cost_.egress_ns(m.wire_size());
    if (egress > 0) {
      Egress& port = egress_[src];
      std::lock_guard lock(port.mu);
      const auto start = std::max(now, port.busy_until);
      port.busy_until = start + std::chrono::nanoseconds(egress);
      injected_at = port.busy_until;
    }

    const auto delay = std::chrono::nanoseconds(cost_.delay_ns(m.wire_size()));
    auto deliver_at = injected_at + delay;

    // Receiver NIC occupancy: messages addressed to one machine drain
    // through its ingress port one at a time (incast).
    const auto ingress = cost_.ingress_ns(m.wire_size());
    if (ingress > 0) {
      Egress& port = ingress_[dst];
      std::lock_guard lock(port.mu);
      const auto start = std::max(deliver_at, port.busy_until);
      port.busy_until = start + std::chrono::nanoseconds(ingress);
      deliver_at = port.busy_until;
    }

    Link& link = links_[src * slots_.size() + dst];
    {
      std::lock_guard lock(link.mu);
      if (deliver_at <= link.last)
        deliver_at = link.last + std::chrono::nanoseconds(1);
      link.last = deliver_at;
    }
    if (telemetry::enabled()) {
      static auto& delay_hist =
          telemetry::Metrics::scope_for("net").histogram("inproc_delay_ns");
      delay_hist.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(deliver_at -
                                                               now)
              .count()));
    }
    Slot& slot = slots_[dst];
    std::lock_guard lock(slot.mu);
    OOPP_CHECK_MSG(slot.was_attached, "send to unattached machine " << dst);
    // Detached mid-shutdown: the machine is gone, drop like a real
    // network would (the Inbox may already be destroyed).
    if (slot.inbox != nullptr) slot.inbox->push(std::move(m), deliver_at);
  }

  [[nodiscard]] const CostModel& cost_model() const { return cost_; }

  /// Swap the cost model between phases.  Benches build their fixture
  /// over a free network, then dial in the modeled NIC for the measured
  /// section (and back off for teardown).  Deliberately unsynchronized
  /// with send(): only call at a quiet moment, with no messages in
  /// flight.
  void set_cost_model(const CostModel& c) { cost_ = c; }

 private:
  struct Slot {
    util::CheckedMutex mu{"net.InProcFabric.slot"};
    Inbox* inbox = nullptr;  // guarded by mu; null after detach()
    bool was_attached = false;
  };
  struct Link {
    util::CheckedMutex mu{"net.InProcFabric.link"};
    time_point last{};
  };
  struct Egress {
    util::CheckedMutex mu{"net.InProcFabric.port"};
    time_point busy_until{};
  };

  void deliver_now(MachineId dst, Message m) {
    Slot& slot = slots_[dst];
    std::lock_guard lock(slot.mu);
    OOPP_CHECK_MSG(slot.was_attached, "send to unattached machine " << dst);
    if (slot.inbox != nullptr) slot.inbox->push_now(std::move(m));
  }

  CostModel cost_;
  std::vector<Slot> slots_;
  std::vector<Link> links_;
  std::vector<Egress> egress_;
  std::vector<Egress> ingress_;
};

}  // namespace oopp::net
