// Reactor: one epoll thread serving every inbound connection of a fabric.
//
// Replaces the thread-per-peer blocking readers of TcpFabric and
// TcpMeshFabric: listening sockets and accepted connections are
// nonblocking and edge-triggered; a single thread accepts, reads, and
// decodes frames (via wire::StreamFrameDecoder, which parses exactly what
// the blocking FrameReader does — the reactor changes no wire bytes).
//
// Inbound sockets are simplex here: a fabric link is one direction of one
// (src, dst) pair, written by the sender's own threads under the link
// mutex, so the reactor never needs write readiness — EPOLLOUT is unused
// by design.
//
// Delivery goes through an InboxSlot, a shared inbox pointer behind a
// mutex: Fabric::detach() nulls the pointer under the slot lock, after
// which the reactor reads and drops frames for that machine instead of
// pushing into a destroyed Inbox (the racing-shutdown fix).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/inbox.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::net {

/// The destination inbox of one attached machine, shared between the
/// reader path (reactor or legacy per-peer threads) and Fabric::detach.
struct InboxSlot {
  util::CheckedMutex mu{"net.InboxSlot"};
  Inbox* inbox = nullptr;
};

class Reactor {
 public:
  struct Options {
    std::size_t read_chunk = 64 * 1024;
    int socket_buffer = 0;  // SO_RCVBUF/SO_SNDBUF; 0 = kernel default
  };

  explicit Reactor(Options opts);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Register a listening socket; connections it accepts deliver into
  /// `slot`.  The caller keeps ownership of `listen_fd` (and closes it to
  /// stop new accepts); the reactor owns every fd it accepts.  The fd
  /// must already be nonblocking.  Thread-safe.
  void add_listener(int listen_fd, std::shared_ptr<InboxSlot> slot);

  /// Stop the reactor thread and close all accepted connections.
  /// Idempotent.  Callers close their listening fds first so no new
  /// connections race the teardown.
  void stop();

 private:
  struct Conn;

  void run();
  void do_accept(int listen_fd, const std::shared_ptr<InboxSlot>& slot);
  /// Drain one readable connection; returns false when it must close
  /// (EOF, error, malformed stream).
  bool do_read(Conn& conn);
  void close_conn(int fd);
  void wake();

  Options opts_;
  std::vector<std::uint8_t> read_buf_;  // reactor-thread only
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: nudges epoll_wait for stop()
  std::thread thread_;  // oopp-lint: allow(raw-thread-primitive) joined in stop()

  util::CheckedMutex mu_{"net.Reactor.state"};
  std::unordered_map<int, std::shared_ptr<InboxSlot>> listeners_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace oopp::net
