// Wire-level message types shared by every fabric implementation.
//
// The paper's model: constructing an object on machine i spawns a server
// process there; every remote method execution is a client/server exchange.
// A Message is one direction of that exchange — either a Request (invoke
// method `method` on object `object` with serialized arguments in
// `payload`) or a Response (serialized result, or a serialized exception
// when status != ok).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace oopp::net {

using MachineId = std::uint32_t;
using ObjectId = std::uint64_t;
using MethodId = std::uint64_t;
using SeqNum = std::uint64_t;

/// Reserved object id: messages addressed to the node itself (control
/// plane: spawn, shutdown, ping).
inline constexpr ObjectId kNodeObject = 0;

enum class MsgKind : std::uint8_t {
  kRequest = 0,
  kResponse = 1,
};

enum class CallStatus : std::uint8_t {
  kOk = 0,
  kRemoteException = 1,   // servant method threw; payload carries details
  kObjectNotFound = 2,    // no such object on the destination machine
  kMethodNotFound = 3,    // object exists but method id is unknown
  kBadFrame = 4,          // argument deserialization failed
};

struct MessageHeader {
  MsgKind kind = MsgKind::kRequest;
  CallStatus status = CallStatus::kOk;  // meaningful for responses
  MachineId src = 0;
  MachineId dst = 0;
  SeqNum seq = 0;
  ObjectId object = kNodeObject;
  MethodId method = 0;
  /// FNV-1a-32 of the payload; 0 when checksumming is disabled.
  std::uint32_t payload_crc = 0;
};

/// FNV-1a over arbitrary bytes, folded to 32 bits, never returning 0 (so
/// 0 can mean "unchecked").
inline std::uint32_t payload_checksum(const std::vector<std::byte>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 0x100000001b3ULL;
  }
  auto folded = static_cast<std::uint32_t>(h ^ (h >> 32));
  return folded == 0 ? 1 : folded;
}

struct Message {
  MessageHeader header;
  std::vector<std::byte> payload;

  /// Total bytes this message occupies on the wire; used by the network
  /// cost model and by transfer accounting in the benches.
  [[nodiscard]] std::size_t wire_size() const {
    return sizeof(MessageHeader) + payload.size();
  }
};

/// FNV-1a hash used to derive stable MethodIds from method names.  Both
/// sides of the protocol register methods by name, so the hash only has to
/// be stable, not cryptographic.
constexpr MethodId method_id(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace oopp::net
