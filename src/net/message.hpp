// Wire-level message types shared by every fabric implementation.
//
// The paper's model: constructing an object on machine i spawns a server
// process there; every remote method execution is a client/server exchange.
// A Message is one direction of that exchange — either a Request (invoke
// method `method` on object `object` with serialized arguments in
// `payload`) or a Response (serialized result, or a serialized exception
// when status != ok).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "net/buffer.hpp"

namespace oopp::net {

using MachineId = std::uint32_t;
using ObjectId = std::uint64_t;
using MethodId = std::uint64_t;
using SeqNum = std::uint64_t;

/// Reserved object id: messages addressed to the node itself (control
/// plane: spawn, shutdown, ping).
inline constexpr ObjectId kNodeObject = 0;

enum class MsgKind : std::uint8_t {
  kRequest = 0,
  kResponse = 1,
};

/// Numeric error codes carried in the Message status field.  These are
/// the single source of truth for remote-call failure classification: the
/// oopp::Error hierarchy (rpc/errors.hpp) maps 1:1 onto the non-ok codes,
/// and telemetry spans record the raw byte.
enum class CallStatus : std::uint8_t {
  kOk = 0,
  kRemoteException = 1,   // servant method threw; payload carries details
  kObjectNotFound = 2,    // no such object on the destination machine
  kMethodNotFound = 3,    // object exists but method id is unknown
  kBadFrame = 4,          // argument/payload integrity failure
  kAborted = 5,           // call abandoned (peer died, node shut down)
  kTimeout = 6,           // caller-side deadline expired (Future::get_for)
  kUnknownClass = 7,      // spawn requested for an unregistered class
  kInternal = 8,          // invariant violation inside the runtime
  kUnavailable = 9,       // circuit breaker open: peer not being attempted
};

inline const char* call_status_name(CallStatus s) {
  switch (s) {
    case CallStatus::kOk: return "ok";
    case CallStatus::kRemoteException: return "remote_exception";
    case CallStatus::kObjectNotFound: return "object_not_found";
    case CallStatus::kMethodNotFound: return "method_not_found";
    case CallStatus::kBadFrame: return "bad_frame";
    case CallStatus::kAborted: return "aborted";
    case CallStatus::kTimeout: return "timeout";
    case CallStatus::kUnknownClass: return "unknown_class";
    case CallStatus::kInternal: return "internal";
    case CallStatus::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// Distributed lock-check extension: the lock-class-name hashes the
/// issuing thread held when the request went out (util::lockcheck wire
/// piggyback; see docs/CONCURRENCY.md "Distributed deadlock detection").
/// Empty unless OOPP_DIST_LOCK_CHECK is on — and an empty set costs zero
/// bytes on the wire, keeping frames byte-identical to the pre-extension
/// format.  Requests only; responses never carry one.
struct LockSet {
  std::uint8_t count = 0;
  std::array<std::uint32_t, 8> ids{};

  [[nodiscard]] bool empty() const { return count == 0; }
};

struct MessageHeader {
  MsgKind kind = MsgKind::kRequest;
  CallStatus status = CallStatus::kOk;  // meaningful for responses
  MachineId src = 0;
  MachineId dst = 0;
  SeqNum seq = 0;
  ObjectId object = kNodeObject;
  MethodId method = 0;
  /// FNV-1a-32 of the payload; 0 when checksumming is disabled.
  std::uint32_t payload_crc = 0;
  /// Distributed-tracing extension: the trace this message belongs to and
  /// the client span that issued it.  0/0 = untraced.  Carried on the
  /// wire by every fabric; see src/telemetry/trace.hpp for the model.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  /// Fault-tolerance extension: which delivery attempt of a retryable
  /// call this request is (1 = first send, 2+ = retries).  0 marks a
  /// non-retryable call — the server skips at-most-once bookkeeping for
  /// those.  Responses echo the attempt they answer.
  std::uint32_t attempt = 0;
  /// Distributed lock-check extension (see LockSet above).
  LockSet held;
};

/// FNV-1a over arbitrary bytes, folded to 32 bits, never returning 0 (so
/// 0 can mean "unchecked").
inline std::uint32_t payload_checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 0x100000001b3ULL;
  }
  auto folded = static_cast<std::uint32_t>(h ^ (h >> 32));
  return folded == 0 ? 1 : folded;
}

/// Buffer overload: walks the slices instead of forcing a flatten.
inline std::uint32_t payload_checksum(const Buffer& payload) {
  return payload.checksum();
}

struct Message {
  MessageHeader header;
  Buffer payload;

  /// Total bytes this message occupies on the wire; used by the network
  /// cost model and by transfer accounting in the benches.  The LockSet
  /// field is excluded from the fixed part — on the wire it occupies
  /// bytes only when non-empty (1 count byte + 4 per class hash).
  [[nodiscard]] std::size_t wire_size() const {
    return sizeof(MessageHeader) - sizeof(LockSet) + payload.size() +
           (header.held.empty() ? 0 : 1 + 4u * header.held.count);
  }
};

/// Build a request frame.  This and make_response are the only sanctioned
/// ways to assemble a Message header outside src/net/ (enforced by the
/// raw-message-header lint rule) — they keep the checksum policy and the
/// trace extension in one place.
inline Message make_request(MachineId src, MachineId dst, SeqNum seq,
                            ObjectId object, MethodId method,
                            Buffer payload, bool checksum,
                            std::uint64_t trace_id = 0,
                            std::uint64_t span_id = 0,
                            std::uint32_t attempt = 0,
                            const LockSet& held = {}) {
  Message m;
  m.header.kind = MsgKind::kRequest;
  m.header.status = CallStatus::kOk;
  m.header.src = src;
  m.header.dst = dst;
  m.header.seq = seq;
  m.header.object = object;
  m.header.method = method;
  m.header.trace_id = trace_id;
  m.header.span_id = span_id;
  m.header.attempt = attempt;
  m.header.held = held;
  m.payload = std::move(payload);
  if (checksum) m.header.payload_crc = payload_checksum(m.payload);
  return m;
}

/// Build the response to `request`: src/dst swapped, seq/object/method and
/// the trace extension echoed so the caller can match and attribute it.
/// The request's held-lock set is NOT echoed — responses complete a
/// pending call; there is no dispatch context to attribute edges to.
inline Message make_response(const MessageHeader& request, CallStatus status,
                             Buffer payload, bool checksum) {
  Message m;
  m.header.kind = MsgKind::kResponse;
  m.header.status = status;
  m.header.src = request.dst;
  m.header.dst = request.src;
  m.header.seq = request.seq;
  m.header.object = request.object;
  m.header.method = request.method;
  m.header.trace_id = request.trace_id;
  m.header.span_id = request.span_id;
  m.header.attempt = request.attempt;
  m.payload = std::move(payload);
  if (checksum) m.header.payload_crc = payload_checksum(m.payload);
  return m;
}

/// FNV-1a hash used to derive stable MethodIds from method names.  Both
/// sides of the protocol register methods by name, so the hash only has to
/// be stable, not cryptographic.
constexpr MethodId method_id(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace oopp::net
