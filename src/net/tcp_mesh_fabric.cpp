#include "net/tcp_mesh_fabric.hpp"

#include <netdb.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "net/tcp_wire.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace oopp::net {

struct TcpMeshFabric::Link {
  util::CheckedMutex mu{"net.TcpMeshFabric.link"};
  int fd = -1;
  BatchQueue batch;  // guarded by mu
  ~Link() {
    if (fd >= 0) ::close(fd);
  }
};

TcpMeshFabric::TcpMeshFabric(std::vector<Endpoint> peers, FabricOptions opts)
    : peers_(std::move(peers)), opts_(opts), batch_opts_(opts.batch) {
  OOPP_CHECK_MSG(!peers_.empty(), "empty endpoint table");
  if (opts_.reactor)
    reactor_ = std::make_unique<Reactor>(Reactor::Options{
        .read_chunk = opts_.read_chunk, .socket_buffer = opts_.socket_buffer});
}

TcpMeshFabric::~TcpMeshFabric() { shutdown(); }

void TcpMeshFabric::attach(MachineId id, Inbox* inbox) {
  OOPP_CHECK_MSG(!attached_,
                 "TcpMeshFabric hosts exactly one machine per process");
  OOPP_CHECK(id < peers_.size());
  attached_ = true;
  local_ = id;
  {
    std::lock_guard lock(slot_->mu);
    slot_->inbox = inbox;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  OOPP_CHECK_MSG(listen_fd_ >= 0, "socket() failed: " << std::strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(peers_[id].port);
  OOPP_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind to port " << peers_[id].port
                                 << " failed: " << std::strerror(errno));
  OOPP_CHECK(::listen(listen_fd_, 64) == 0);

  if (reactor_) {
    wire::set_nonblocking(listen_fd_);
    reactor_->add_listener(listen_fd_, slot_);
    return;
  }

  // The acceptor works on a by-value copy of the listen fd: shutdown()
  // writes listen_fd_ = -1 concurrently, and the thread never needs to
  // observe that (closing the fd is what unblocks accept()).
  const int lfd = listen_fd_;
  // oopp-lint: allow(raw-thread-primitive) — joined in shutdown().
  acceptor_ = std::thread([this, lfd] {
    for (;;) {
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd < 0) return;
      wire::set_nodelay(fd);
      std::lock_guard lock(readers_mu_);
      reader_fds_.push_back(fd);
      readers_.emplace_back([this, fd] {
        static auto& frames = telemetry::Metrics::scope_for("net").counter(
            "tcp_frames_received");
        wire::FrameReader reader(fd);
        std::vector<Message> ms;
        while (reader.next_batch(ms)) {
          frames.add(ms.size());
          // After detach() peers may still be sending: keep reading so
          // their writes don't block, drop the frames.
          std::lock_guard slot_lock(slot_->mu);
          if (slot_->inbox != nullptr) slot_->inbox->push_all(std::move(ms));
        }
      });
    }
  });
}

void TcpMeshFabric::detach(MachineId id) {
  if (!attached_ || id != local_) return;
  std::lock_guard lock(slot_->mu);
  slot_->inbox = nullptr;
}

void TcpMeshFabric::reconfigure(const FabricOptions& opts) {
  batch_opts_.store(opts.batch);
}

TcpMeshFabric::Link& TcpMeshFabric::link_for(MachineId dst) {
  {
    std::lock_guard lock(links_mu_);
    auto it = links_.find(dst);
    if (it != links_.end()) return *it->second;
  }

  // Resolve and dial with retry: peers of one cluster may come up in any
  // order.
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(peers_[dst].port);
  OOPP_CHECK_MSG(::getaddrinfo(peers_[dst].host.c_str(), port_str.c_str(),
                               &hints, &res) == 0,
                 "cannot resolve " << peers_[dst].host);

  const auto deadline = steady_clock::now() + opts_.connect_deadline;
  int fd = -1;
  for (;;) {
    fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    OOPP_CHECK(fd >= 0);
    if (::connect(fd, res->ai_addr, res->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
    if (steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ::freeaddrinfo(res);
  OOPP_CHECK_MSG(fd >= 0, "cannot connect to machine "
                              << dst << " at " << peers_[dst].host << ":"
                              << peers_[dst].port);
  wire::set_nodelay(fd);

  std::lock_guard lock(links_mu_);
  auto it = links_.find(dst);
  if (it != links_.end()) {
    // Lost a dial race; keep the established one.
    ::close(fd);
    return *it->second;
  }
  auto link = std::make_unique<Link>();
  link->fd = fd;
  auto [pos, inserted] = links_.emplace(dst, std::move(link));
  OOPP_CHECK(inserted);
  return *pos->second;
}

void TcpMeshFabric::send(Message m) {
  OOPP_CHECK_MSG(m.header.dst < peers_.size(),
                 "send to unknown machine " << m.header.dst);
  OOPP_CHECK_MSG(m.header.src == local_,
                 "mesh fabric can only send as machine " << local_);
  account(m);

  if (m.header.dst == local_) {
    // Loopback without touching the kernel — never batched: there is no
    // syscall to amortize, and delaying it would only add latency.
    std::lock_guard lock(slot_->mu);
    if (slot_->inbox != nullptr) slot_->inbox->push_now(std::move(m));
    return;
  }

  const auto dst = m.header.dst;
  const BatchOptions bo = batch_opts_.load();
  Link& link = link_for(dst);

  if (!bo.enabled) {
    std::lock_guard lock(link.mu);
    // Drain leftovers from when batching was on (runtime switch-off).
    OOPP_CHECK_MSG(link.batch.flush(link.fd, FlushTrigger::kDrain),
                   "frame write to machine " << dst << " failed");
    OOPP_CHECK_MSG(wire::send_framev(link.fd, m),
                   "frame write to machine " << dst << " failed");
    return;
  }

  bool arm = false;
  time_point deadline{};
  {
    std::lock_guard lock(link.mu);
    arm = link.batch.add(std::move(m), bo);
    deadline = link.batch.deadline;
    if (link.batch.due_for_size_flush(bo)) {
      OOPP_CHECK_MSG(link.batch.flush(link.fd, FlushTrigger::kSize),
                     "frame write to machine " << dst << " failed");
      arm = false;
    }
  }
  // The flusher registry lock is only ever taken with no link lock held.
  if (arm) flusher_.schedule(dst, deadline);
}

void TcpMeshFabric::flush_link(std::uint64_t key) {
  const auto dst = static_cast<MachineId>(key);
  std::lock_guard links_lock(links_mu_);
  auto it = links_.find(dst);
  if (it == links_.end()) return;
  Link& link = *it->second;
  time_point again{};
  {
    std::lock_guard lock(link.mu);
    if (link.batch.empty()) return;
    if (link.batch.deadline <= steady_clock::now()) {
      OOPP_CHECK_MSG(link.batch.flush(link.fd, FlushTrigger::kDeadline),
                     "frame write to machine " << dst << " failed");
      return;
    }
    // A size flush emptied the queue and a younger batch started since
    // this deadline was armed: come back when that one matures.
    again = link.batch.deadline;
  }
  flusher_.schedule(key, again);
}

void TcpMeshFabric::shutdown() {
  if (down_) return;
  down_ = true;
  flusher_.stop();
  {
    std::lock_guard lock(links_mu_);
    for (auto& [dst, link] : links_) {
      std::lock_guard link_lock(link->mu);
      (void)link->batch.flush(link->fd, FlushTrigger::kDrain);
    }
    links_.clear();
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard lock(readers_mu_);
    for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> rs;  // oopp-lint: allow(raw-thread-primitive)
  {
    std::lock_guard lock(readers_mu_);
    rs.swap(readers_);
  }
  for (auto& t : rs)
    if (t.joinable()) t.join();
  {
    std::lock_guard lock(readers_mu_);
    for (int fd : reader_fds_) ::close(fd);
    reader_fds_.clear();
  }
  // Listening fd is already closed above, so no accept races the
  // teardown; accepted fds are owned and closed by the reactor itself.
  if (reactor_) reactor_->stop();
}

std::vector<Endpoint> load_endpoints(const std::string& path) {
  std::ifstream in(path);
  OOPP_CHECK_MSG(in.good(), "cannot open endpoints file " << path);
  std::vector<Endpoint> out;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    Endpoint ep;
    unsigned port = 0;
    if (ls >> ep.host >> port) {
      OOPP_CHECK_MSG(port > 0 && port < 65536, "bad port in " << path);
      ep.port = static_cast<std::uint16_t>(port);
      out.push_back(std::move(ep));
    }
  }
  OOPP_CHECK_MSG(!out.empty(), "no endpoints in " << path);
  return out;
}

}  // namespace oopp::net
