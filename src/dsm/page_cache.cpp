#include "dsm/page_cache.hpp"

#include <algorithm>

#include "core/future.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace oopp::dsm {

// ---------------------------------------------------------------------------
// CoherentDevice
// ---------------------------------------------------------------------------

void CoherentDevice::recall_dirty(int page_index, const RemoteRef* except) {
  auto it = dirty_owner_.find(page_index);
  if (it == dirty_owner_.end()) return;
  if (except && it->second == *except) return;
  const RemoteRef who = it->second;
  // Clear the registration BEFORE the recall: once recalled, a coalesced
  // flush still in flight from this owner must find itself superseded.
  dirty_owner_.erase(it);
  static auto& recalls =
      telemetry::Metrics::scope_for("dsm.prefetch").counter("writeback_recalls");
  recalls.add(1);
  // flush_page is reentrant on the owner — it surrenders the buffered
  // bytes even while blocked in a read or in its own flush.
  remote_ptr<PageCache> owner(who);
  const FlushResult r =
      owner.call<&PageCache::flush_page>(PageKey{self_ref_, page_index});
  if (r.dirty) write_array(r.page, page_index);
}

void CoherentDevice::invalidate_subscribers(int page_index,
                                            const RemoteRef* except) {
  auto it = subscribers_.find(page_index);
  if (it == subscribers_.end()) return;
  // Invalidate and wait for the acknowledgements: after this returns, no
  // cache anywhere serves the old bytes.  The subscription survives — a
  // reader that comes back simply misses once.
  const PageKey key{self_ref_, page_index};
  std::vector<Future<void>> acks;
  acks.reserve(it->second.size());
  for (const auto& sub : it->second) {
    if (except && sub == *except) continue;
    acks.push_back(
        remote_ptr<PageCache>(sub).async<&PageCache::invalidate>(key));
  }
  // Coherence requires every ack; a lost subscriber must stall the writer,
  // not let it publish stale reads.  oopp-lint: allow(future-bare-get)
  for (auto& a : acks) a.get();
}

storage::ArrayPage CoherentDevice::read_array_subscribe(
    int page_index, remote_ptr<PageCache> subscriber, RemoteRef device_self) {
  OOPP_CHECK(subscriber.valid());
  OOPP_CHECK_MSG(!self_ref_.valid() || self_ref_ == device_self,
                 "subscribers disagree about this device's identity");
  self_ref_ = device_self;
  // A write-back owner may hold fresher bytes than the backing file;
  // pull them in before serving ("read after completed write never
  // stale" extends to buffered writes).
  recall_dirty(page_index, nullptr);
  auto page = read_array(page_index);
  subscribers_[page_index].insert(subscriber.ref());
  return page;
}

std::vector<storage::ArrayPage> CoherentDevice::read_arrays_subscribe(
    std::vector<std::int32_t> indices, remote_ptr<PageCache> subscriber,
    RemoteRef device_self) {
  OOPP_CHECK(subscriber.valid());
  OOPP_CHECK_MSG(!self_ref_.valid() || self_ref_ == device_self,
                 "subscribers disagree about this device's identity");
  self_ref_ = device_self;
  for (const auto idx : indices) recall_dirty(idx, nullptr);
  auto pages = read_arrays(indices);
  for (const auto idx : indices) subscribers_[idx].insert(subscriber.ref());
  return pages;
}

void CoherentDevice::write_array_coherent(const storage::ArrayPage& page,
                                          int page_index) {
  // Ordered: the buffered write-back (if any) lands first, then this
  // write wins, then every reader's copy is shot down.
  recall_dirty(page_index, nullptr);
  write_array(page, page_index);
  invalidate_subscribers(page_index, nullptr);
}

void CoherentDevice::write_arrays_coherent(
    std::vector<storage::ArrayPage> pages, std::vector<std::int32_t> indices) {
  OOPP_CHECK_MSG(pages.size() == indices.size(),
                 "write_arrays_coherent: " << pages.size() << " pages for "
                                           << indices.size() << " indices");
  for (const auto idx : indices) recall_dirty(idx, nullptr);
  write_arrays(std::move(pages), indices);
  for (const auto idx : indices) invalidate_subscribers(idx, nullptr);
}

void CoherentDevice::quiesce_pages(std::vector<std::int32_t> indices,
                                   std::uint64_t map_version) {
  static auto& quiesced =
      telemetry::Metrics::scope_for("array.redist").counter("quiesced_pages");
  quiesced.add(indices.size());
  last_quiesce_version_ = std::max(last_quiesce_version_, map_version);
  for (const auto idx : indices) {
    check_index(idx);
    // Buffered write-back bytes must reach the file before the migrator's
    // raw read; every cached copy dies with the old layout.
    recall_dirty(idx, nullptr);
    invalidate_subscribers(idx, nullptr);
  }
}

void CoherentDevice::mark_dirty(int page_index, remote_ptr<PageCache> owner,
                                RemoteRef device_self) {
  OOPP_CHECK(owner.valid());
  OOPP_CHECK_MSG(!self_ref_.valid() || self_ref_ == device_self,
                 "subscribers disagree about this device's identity");
  self_ref_ = device_self;
  check_index(page_index);
  const RemoteRef who = owner.ref();
  // A previous owner's buffered bytes land first; every other reader's
  // copy becomes stale the moment the new owner's local write completes,
  // so they are invalidated before the ownership ack.
  recall_dirty(page_index, &who);
  invalidate_subscribers(page_index, &who);
  subscribers_[page_index].insert(who);
  dirty_owner_[page_index] = who;
}

void CoherentDevice::flush_pages(std::vector<storage::ArrayPage> pages,
                                 std::vector<std::int32_t> indices,
                                 remote_ptr<PageCache> owner) {
  OOPP_CHECK_MSG(pages.size() == indices.size(),
                 "flush_pages: " << pages.size() << " pages for "
                                 << indices.size() << " indices");
  OOPP_CHECK(owner.valid());
  auto& scope = telemetry::Metrics::scope_for("dsm.prefetch");
  static auto& flushes = scope.counter("writeback_flushes");
  static auto& flushed = scope.counter("writeback_pages");
  static auto& superseded = scope.counter("writeback_superseded");
  static auto& batch_h = scope.histogram("writeback_batch_pages");
  flushes.add(1);
  batch_h.record(indices.size());

  const RemoteRef who = owner.ref();
  std::vector<storage::ArrayPage> apply;
  std::vector<std::int32_t> apply_idx;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    // Only pages this owner still owns: a page recalled by a competing
    // reader or overwritten by a newer coherent write was already
    // handled — applying the stale flush would clobber newer data.
    auto it = dirty_owner_.find(indices[i]);
    if (it == dirty_owner_.end() || it->second != who) {
      superseded.add(1);
      continue;
    }
    dirty_owner_.erase(it);
    apply.push_back(std::move(pages[i]));
    apply_idx.push_back(indices[i]);
  }
  if (apply_idx.empty()) return;
  flushed.add(apply_idx.size());
  write_arrays(std::move(apply), apply_idx);
  // The flusher keeps its (now clean) copy; everyone else is stale.
  for (const auto idx : apply_idx) invalidate_subscribers(idx, &who);
}

void CoherentDevice::unsubscribe(int page_index,
                                 remote_ptr<PageCache> subscriber) {
  auto it = subscribers_.find(page_index);
  if (it == subscribers_.end()) return;
  it->second.erase(subscriber.ref());
  if (it->second.empty()) subscribers_.erase(it);
}

std::uint64_t CoherentDevice::subscriber_count(int page_index) const {
  auto it = subscribers_.find(page_index);
  return it == subscribers_.end() ? 0 : it->second.size();
}

// ---------------------------------------------------------------------------
// PageCache
// ---------------------------------------------------------------------------

storage::ArrayPage PageCache::read_array(remote_ptr<CoherentDevice> device,
                                         int page_index) {
  OOPP_CHECK_MSG(self_.valid(), "set_self before reads");
  const PageKey key{device.ref(), page_index};

  std::vector<PageKey> drop;
  bool in_prefetch = false;
  {
    std::lock_guard lock(mu_);
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      ++hits_;
      static auto& hit_ctr =
          telemetry::Metrics::scope_for("dsm").counter("cache_hits");
      hit_ctr.add(1);
      if (it->second.from_prefetch && !it->second.used) {
        ++pf_useful_;
        static auto& useful =
            telemetry::Metrics::scope_for("dsm.prefetch").counter("useful");
        useful.add(1);
      }
      it->second.used = true;
      if (!it->second.dirty) touch_lru_locked(key);
      return it->second.page;
    }
    ++misses_;
    static auto& miss_ctr =
        telemetry::Metrics::scope_for("dsm").counter("cache_misses");
    miss_ctr.add(1);
    in_prefetch = prefetch_ && prefetch_->device == device.ref() &&
                  std::find(prefetch_->indices.begin(),
                            prefetch_->indices.end(),
                            page_index) != prefetch_->indices.end();
    if (!in_prefetch) {
      pending_ = key;
      pending_poisoned_ = false;
    }
    drop.swap(to_unsubscribe_);
  }

  // Retire stale subscriptions from past evictions (outside the lock).
  for (const auto& k : drop) {
    remote_ptr<CoherentDevice> dev(k.device);
    dev.call<&CoherentDevice::unsubscribe>(k.index, self_);
  }

  if (in_prefetch) {
    // The page is already on the wire: block for the batch (this is the
    // pipeline's hand-off point, not an extra round trip) and serve it.
    harvest_prefetch(device);
    bool served = false;
    storage::ArrayPage result;
    {
      std::lock_guard lock(mu_);
      auto it = pages_.find(key);
      if (it != pages_.end()) {
        if (it->second.from_prefetch && !it->second.used) {
          ++pf_useful_;
          static auto& useful =
              telemetry::Metrics::scope_for("dsm.prefetch").counter("useful");
          useful.add(1);
        }
        it->second.used = true;
        result = it->second.page;
        served = true;
      } else {
        // Poisoned by a raced invalidation: fall through to a fresh fetch.
        // The harvest queued this key's unsubscribe; cancel it — the
        // deferred drop at a later miss would otherwise silently cancel
        // the live subscription the refetch below is about to establish,
        // and every write after that would leave this cache serving
        // stale bytes.
        to_unsubscribe_.erase(
            std::remove(to_unsubscribe_.begin(), to_unsubscribe_.end(), key),
            to_unsubscribe_.end());
        pending_ = key;
        pending_poisoned_ = false;
      }
    }
    if (served) {
      // Stream continues — keep the read-ahead window ahead of it.
      maybe_issue_prefetch(device, page_index);
      return result;
    }
  }

  // Fetch + subscribe.  An invalidation may land during this call (the
  // write it belongs to was ordered after our subscription on the
  // device's queue) — then the fetched bytes are already stale and must
  // not be cached.
  auto page = device.call<&CoherentDevice::read_array_subscribe>(
      page_index, self_, device.ref());

  {
    std::lock_guard lock(mu_);
    if (!pending_poisoned_) {
      auto& e = pages_[key];
      e.page = page;
      e.dirty = false;
      e.from_prefetch = false;
      e.used = true;
      insert_lru_locked(key);
      while (pages_.size() - dirty_ > capacity_) evict_lru_locked();
    }
    pending_.reset();
  }
  maybe_issue_prefetch(device, page_index);
  return page;
}

void PageCache::harvest_prefetch(remote_ptr<CoherentDevice> device) {
  Future<std::vector<storage::ArrayPage>> fut;
  {
    std::lock_guard lock(mu_);
    OOPP_CHECK(prefetch_.has_value());
    fut = std::move(prefetch_->fut);
  }
  // Block outside the lock: a reentrant invalidate must be able to land
  // (and poison raced pages) while the batch is in flight.
  // oopp-lint: allow(future-bare-get)
  std::vector<storage::ArrayPage> fetched = fut.get();

  std::lock_guard lock(mu_);
  OOPP_CHECK(fetched.size() == prefetch_->indices.size());
  static auto& wasted_ctr =
      telemetry::Metrics::scope_for("dsm.prefetch").counter("wasted");
  for (std::size_t i = 0; i < fetched.size(); ++i) {
    const std::int32_t idx = prefetch_->indices[i];
    const PageKey key{prefetch_->device, idx};
    if (prefetch_->poisoned.contains(idx)) {
      // Stale before it ever landed: drop it, keep the device's books
      // tidy (we did subscribe), and charge the prefetcher.
      ++pf_wasted_;
      wasted_ctr.add(1);
      to_unsubscribe_.push_back(key);
      continue;
    }
    if (pages_.contains(key)) continue;  // already (re)fetched
    auto& e = pages_[key];
    e.page = std::move(fetched[i]);
    e.dirty = false;
    e.from_prefetch = true;
    e.used = false;
    insert_lru_locked(key);
    while (pages_.size() - dirty_ > capacity_) evict_lru_locked();
  }
  prefetch_.reset();
  (void)device;
}

void PageCache::maybe_issue_prefetch(remote_ptr<CoherentDevice> device,
                                     int just_read_index) {
  if (opts_.readahead == 0) return;

  std::vector<std::int32_t> window;
  {
    std::lock_guard lock(mu_);
    auto& s = streams_[device.ref()];
    s.run = (just_read_index == s.last + 1) ? s.run + 1 : 1;
    s.last = just_read_index;
    if (s.run < 2) return;       // not yet a stream
    if (prefetch_) return;       // one batch in flight at a time
  }

  // Page-count lookup is a remote call — outside the lock, cached.
  std::int32_t npages = 0;
  {
    std::lock_guard lock(mu_);
    auto it = device_pages_.find(device.ref());
    if (it != device_pages_.end()) npages = it->second;
  }
  if (npages == 0) {
    npages = device.call<&storage::PageDevice::number_of_pages>();
    std::lock_guard lock(mu_);
    device_pages_[device.ref()] = npages;
  }

  {
    std::lock_guard lock(mu_);
    if (prefetch_) return;
    for (std::int32_t idx = just_read_index + 1;
         idx <= just_read_index + static_cast<std::int32_t>(opts_.readahead) &&
         idx < npages;
         ++idx) {
      if (pages_.contains(PageKey{device.ref(), idx})) continue;
      window.push_back(idx);
    }
    if (window.empty()) return;
    Prefetch p;
    p.device = device.ref();
    p.indices = window;
    prefetch_ = std::move(p);
    pf_issued_ += window.size();
    auto& scope = telemetry::Metrics::scope_for("dsm.prefetch");
    static auto& issued = scope.counter("issued");
    static auto& batches = scope.counter("batches");
    static auto& window_h = scope.histogram("window_pages");
    issued.add(window.size());
    batches.add(1);
    window_h.record(window.size());
  }
  // Issue the batched read outside the lock; the future parks in
  // prefetch_ until a read wants one of its pages.
  auto fut = device.async<&CoherentDevice::read_arrays_subscribe>(
      window, self_, device.ref());
  std::lock_guard lock(mu_);
  prefetch_->fut = std::move(fut);
}

void PageCache::write_array(remote_ptr<CoherentDevice> device,
                            storage::ArrayPage page, int page_index) {
  OOPP_CHECK_MSG(self_.valid(), "set_self before writes");
  if (!opts_.write_back) {
    // Write-through: the device handles coherence before acknowledging.
    device.call<&CoherentDevice::write_array_coherent>(page, page_index);
    return;
  }

  const PageKey key{device.ref(), page_index};
  bool need_mark = false;
  {
    std::lock_guard lock(mu_);
    auto it = pages_.find(key);
    if (it == pages_.end()) {
      auto& e = pages_[key];
      e.page = std::move(page);
      e.dirty = true;
      e.used = true;
      ++dirty_;
      need_mark = true;
    } else {
      if (!it->second.dirty) {
        // Leaving the LRU: dirty pages are pinned until flushed.
        if (auto pos = lru_pos_.find(key); pos != lru_pos_.end()) {
          lru_.erase(pos->second);
          lru_pos_.erase(pos);
        }
        it->second.dirty = true;
        ++dirty_;
        need_mark = true;
      }
      it->second.page = std::move(page);
      it->second.used = true;
      it->second.from_prefetch = false;
    }
  }
  // Ownership registration is synchronous: the local write "completes"
  // (returns to the writer) only after the device has invalidated every
  // other reader — buffered or not, a completed write is never stale.
  if (need_mark)
    device.call<&CoherentDevice::mark_dirty>(page_index, self_, device.ref());

  bool over = false;
  {
    std::lock_guard lock(mu_);
    over = dirty_ > opts_.max_dirty;
  }
  if (over) flush();
}

void PageCache::flush() {
  OOPP_CHECK_MSG(self_.valid(), "set_self before flush");
  // Snapshot the dirty set, grouped per device, WITHOUT clearing the
  // dirty flags: a concurrent recall (flush_page) must still see them.
  // The device-side supersede check keeps the two paths from clobbering
  // each other.
  std::map<RemoteRef, std::pair<std::vector<std::int32_t>,
                                std::vector<storage::ArrayPage>>>
      groups;
  {
    std::lock_guard lock(mu_);
    for (const auto& [key, e] : pages_) {
      if (!e.dirty) continue;
      flushing_.insert(key);
      auto& g = groups[key.device];
      g.first.push_back(key.index);
      g.second.push_back(e.page);
    }
  }

  for (auto& [dev_ref, g] : groups) {
    remote_ptr<CoherentDevice> dev(dev_ref);
    dev.call<&CoherentDevice::flush_pages>(std::move(g.second), g.first,
                                           self_);
    std::lock_guard lock(mu_);
    for (const auto idx : g.first) {
      const PageKey key{dev_ref, idx};
      flushing_.erase(key);
      // Gone or clean: recalled by a competing accessor, or dropped by an
      // invalidation that raced the flush_pages call (a newer write
      // superseded the flushed bytes device-side).
      auto it = pages_.find(key);
      if (it == pages_.end() || !it->second.dirty) continue;
      it->second.dirty = false;
      --dirty_;
      insert_lru_locked(key);
    }
  }
  std::lock_guard lock(mu_);
  flushing_.clear();
  while (pages_.size() - dirty_ > capacity_) evict_lru_locked();
}

FlushResult PageCache::flush_page(PageKey key) {
  std::lock_guard lock(mu_);
  auto it = pages_.find(key);
  if (it == pages_.end() || !it->second.dirty) return {};
  it->second.dirty = false;
  --dirty_;
  insert_lru_locked(key);
  // The copy stays resident (clean): the recalling device hands our
  // bytes to the competing accessor, it does not invalidate us.
  return {true, it->second.page};
}

void PageCache::invalidate(PageKey key) {
  std::lock_guard lock(mu_);
  ++invalidations_;
  if (pending_ && *pending_ == key) pending_poisoned_ = true;
  if (prefetch_ && prefetch_->device == key.device &&
      std::find(prefetch_->indices.begin(), prefetch_->indices.end(),
                key.index) != prefetch_->indices.end())
    prefetch_->poisoned.insert(key.index);
  auto it = pages_.find(key);
  if (it == pages_.end()) return;
  if (it->second.dirty) {
    if (flushing_.contains(key)) {
      // The page is in an in-flight flush snapshot.  While we are the
      // registered dirty owner, a competing writer RECALLS (which cleans
      // the entry) before invalidating — so a dirty entry receiving an
      // invalidation here means the device already applied our
      // flush_pages, deregistered us, and a newer write superseded the
      // flushed bytes.  Drop the entry now so the post-flush loop cannot
      // mark it clean and serve stale hits.
      flushing_.erase(key);
      pages_.erase(it);
      --dirty_;
      return;
    }
    // Never drop buffered bytes otherwise: our dirty write completed
    // AFTER the write this invalidation announces (mark_dirty ordered us
    // behind it on the device queue), so our bytes win — they leave via
    // flush, not here.
    return;
  }
  if (it->second.from_prefetch && !it->second.used) {
    ++pf_wasted_;
    static auto& wasted_ctr =
        telemetry::Metrics::scope_for("dsm.prefetch").counter("wasted");
    wasted_ctr.add(1);
  }
  lru_.erase(lru_pos_[key]);
  lru_pos_.erase(key);
  pages_.erase(it);
}

std::uint64_t PageCache::resident() const {
  std::lock_guard lock(mu_);
  return pages_.size();
}

std::uint64_t PageCache::dirty_resident() const {
  std::lock_guard lock(mu_);
  return dirty_;
}

void PageCache::touch_lru_locked(const PageKey& key) {
  lru_.erase(lru_pos_[key]);
  lru_.push_front(key);
  lru_pos_[key] = lru_.begin();
}

void PageCache::insert_lru_locked(const PageKey& key) {
  if (auto it = lru_pos_.find(key); it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(key);
  lru_pos_[key] = lru_.begin();
}

void PageCache::evict_lru_locked() {
  OOPP_CHECK(!lru_.empty());
  const PageKey victim = lru_.back();
  lru_.pop_back();
  lru_pos_.erase(victim);
  auto it = pages_.find(victim);
  if (it != pages_.end()) {
    if (it->second.from_prefetch && !it->second.used) {
      ++pf_wasted_;
      static auto& wasted_ctr =
          telemetry::Metrics::scope_for("dsm.prefetch").counter("wasted");
      wasted_ctr.add(1);
    }
    pages_.erase(it);
  }
  to_unsubscribe_.push_back(victim);  // dropped at the next miss
}

}  // namespace oopp::dsm
