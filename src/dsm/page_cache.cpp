#include "dsm/page_cache.hpp"

#include "core/future.hpp"
#include "telemetry/metrics.hpp"

namespace oopp::dsm {

// ---------------------------------------------------------------------------
// CoherentDevice
// ---------------------------------------------------------------------------

storage::ArrayPage CoherentDevice::read_array_subscribe(
    int page_index, remote_ptr<PageCache> subscriber, RemoteRef device_self) {
  OOPP_CHECK(subscriber.valid());
  OOPP_CHECK_MSG(!self_ref_.valid() || self_ref_ == device_self,
                 "subscribers disagree about this device's identity");
  self_ref_ = device_self;
  auto page = read_array(page_index);
  subscribers_[page_index].insert(subscriber.ref());
  return page;
}

void CoherentDevice::write_array_coherent(const storage::ArrayPage& page,
                                          int page_index) {
  write_array(page, page_index);
  auto it = subscribers_.find(page_index);
  if (it == subscribers_.end()) return;
  // Invalidate every subscriber and wait for the acknowledgements: after
  // this method returns, no cache anywhere serves the old bytes.  The
  // subscription survives — a reader that comes back simply misses once.
  const PageKey key{self_ref_, page_index};
  std::vector<Future<void>> acks;
  acks.reserve(it->second.size());
  for (const auto& sub : it->second)
    acks.push_back(
        remote_ptr<PageCache>(sub).async<&PageCache::invalidate>(key));
  // Coherence requires every ack; a lost subscriber must stall the writer,
  // not let it publish stale reads.  oopp-lint: allow(future-bare-get)
  for (auto& a : acks) a.get();
}

void CoherentDevice::unsubscribe(int page_index,
                                 remote_ptr<PageCache> subscriber) {
  auto it = subscribers_.find(page_index);
  if (it == subscribers_.end()) return;
  it->second.erase(subscriber.ref());
  if (it->second.empty()) subscribers_.erase(it);
}

std::uint64_t CoherentDevice::subscriber_count(int page_index) const {
  auto it = subscribers_.find(page_index);
  return it == subscribers_.end() ? 0 : it->second.size();
}

// ---------------------------------------------------------------------------
// PageCache
// ---------------------------------------------------------------------------

storage::ArrayPage PageCache::read_array(remote_ptr<CoherentDevice> device,
                                         int page_index) {
  OOPP_CHECK_MSG(self_.valid(), "set_self before reads");
  const PageKey key{device.ref(), page_index};

  std::vector<PageKey> drop;
  {
    std::lock_guard lock(mu_);
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      ++hits_;
      static auto& hit_ctr =
          telemetry::Metrics::scope_for("dsm").counter("cache_hits");
      hit_ctr.add(1);
      // Touch LRU.
      lru_.erase(lru_pos_[key]);
      lru_.push_front(key);
      lru_pos_[key] = lru_.begin();
      return it->second;
    }
    ++misses_;
    static auto& miss_ctr =
        telemetry::Metrics::scope_for("dsm").counter("cache_misses");
    miss_ctr.add(1);
    pending_ = key;
    pending_poisoned_ = false;
    drop.swap(to_unsubscribe_);
  }

  // Retire stale subscriptions from past evictions (outside the lock).
  for (const auto& k : drop) {
    remote_ptr<CoherentDevice> dev(k.device);
    dev.call<&CoherentDevice::unsubscribe>(k.index, self_);
  }

  // Fetch + subscribe.  An invalidation may land during this call (the
  // write it belongs to was ordered after our subscription on the
  // device's queue) — then the fetched bytes are already stale and must
  // not be cached.
  auto page = device.call<&CoherentDevice::read_array_subscribe>(
      page_index, self_, device.ref());

  {
    std::lock_guard lock(mu_);
    if (!pending_poisoned_) {
      pages_[key] = page;
      lru_.push_front(key);
      lru_pos_[key] = lru_.begin();
      while (pages_.size() > capacity_) evict_lru_locked();
    }
    pending_.reset();
  }
  return page;
}

void PageCache::invalidate(PageKey key) {
  std::lock_guard lock(mu_);
  ++invalidations_;
  if (pending_ && *pending_ == key) pending_poisoned_ = true;
  auto it = pages_.find(key);
  if (it == pages_.end()) return;
  lru_.erase(lru_pos_[key]);
  lru_pos_.erase(key);
  pages_.erase(it);
}

std::uint64_t PageCache::resident() const {
  std::lock_guard lock(mu_);
  return pages_.size();
}

void PageCache::evict_lru_locked() {
  OOPP_CHECK(!lru_.empty());
  const PageKey victim = lru_.back();
  lru_.pop_back();
  lru_pos_.erase(victim);
  pages_.erase(victim);
  to_unsubscribe_.push_back(victim);  // dropped at the next miss
}

}  // namespace oopp::dsm
