// Coherent page caching — distributed-shared-memory flavour on top of the
// storage substrate.
//
// The paper's §2 "shared memory implementation" gives many computing
// processes access to one data block; every access is a round trip.  This
// module adds the optimization a DSM system would: each machine hosts a
// PageCache process; reads go through the local cache, and devices track
// their readers and *call them back* to invalidate on writes — remote
// method execution flowing server → client, the same primitive in the
// other direction.
//
//   CoherentDevice — an ArrayPageDevice whose subscribing reads register
//                    the reader's cache, and whose coherent writes
//                    invalidate every subscriber (and wait for their
//                    acknowledgements) before acknowledging the writer:
//                    a read after a completed write never sees stale data.
//   PageCache      — per-machine read-through cache with LRU eviction and
//                    hit/miss/invalidation counters.  Optionally overlaps
//                    communication with computation: sequential read
//                    streams arm a batched read-ahead (async prefetch),
//                    and write-back mode buffers dirty pages locally,
//                    flushing them in coalesced batches.  Write-back
//                    coherence is pull-based: the device keeps a
//                    dirty-owner registry and *recalls* the buffered
//                    bytes (reentrant flush_page) before serving any
//                    competing read or write — a read after a completed
//                    write never sees stale data, buffered or not.
//
// Deadlock discipline: cache → device calls are queued (distinct objects);
// device → cache invalidations and recalls target *reentrant* methods, so
// they land even while that cache is blocked inside a read or a flush.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "core/future.hpp"
#include "core/remote_ptr.hpp"
#include "storage/array_page_device.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::dsm {

class PageCache;

/// Key of a cached page: the owning device process + page index.
struct PageKey {
  RemoteRef device;
  std::int32_t index = 0;

  bool operator<(const PageKey& o) const {
    if (device.machine != o.device.machine)
      return device.machine < o.device.machine;
    if (device.object != o.device.object)
      return device.object < o.device.object;
    return index < o.index;
  }
  bool operator==(const PageKey&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, PageKey& k) {
  ar(k.device, k.index);
}

/// What a cache hands back when a device recalls a dirty page: the
/// buffered bytes, or dirty=false if the page was already flushed (the
/// recall raced the cache's own flush).
struct FlushResult {
  bool dirty = false;
  storage::ArrayPage page;
};

template <class Ar>
void oopp_serialize(Ar& ar, FlushResult& r) {
  ar(r.dirty, r.page);
}

/// Knobs for the cache's communication/computation overlap machinery.
struct PageCacheOptions {
  /// Pages to prefetch ahead of a detected sequential read stream
  /// (0 = prefetch off).  One batched read_arrays_subscribe call covers
  /// the whole window.
  std::uint32_t readahead = 0;
  /// Buffer writes locally and flush in coalesced batches instead of
  /// writing through on every page.
  bool write_back = false;
  /// Bound on locally buffered dirty pages; exceeding it triggers a
  /// coalesced flush.  Dirty pages are exempt from LRU eviction.
  std::uint32_t max_dirty = 16;
};

template <class Ar>
void oopp_serialize(Ar& ar, PageCacheOptions& o) {
  ar(o.readahead, o.write_back, o.max_dirty);
}

/// A block device whose pages can be cached coherently by reader caches.
class CoherentDevice : public storage::ArrayPageDevice {
 public:
  CoherentDevice(std::string filename, int number_of_pages, int n1, int n2,
                 int n3)
      : ArrayPageDevice(std::move(filename), number_of_pages, n1, n2, n3) {}
  CoherentDevice(std::string filename, int number_of_pages, int n1, int n2,
                 int n3, storage::DeviceOptions options)
      : ArrayPageDevice(std::move(filename), number_of_pages, n1, n2, n3,
                        options) {}

  /// Restore from a passivated image.  Subscriptions are not persisted —
  /// caches of a previous incarnation are gone; readers resubscribe.
  explicit CoherentDevice(serial::IArchive& ia) : ArrayPageDevice(ia) {}

  /// Read a page and remember the caller's cache as a subscriber.
  /// `device_self` is this device's own reference as the subscriber
  /// addresses it — the identity echoed back in invalidations (an object
  /// does not otherwise know its own remote pointer).
  storage::ArrayPage read_array_subscribe(int page_index,
                                          remote_ptr<PageCache> subscriber,
                                          RemoteRef device_self);

  /// Batched subscribe-read: the prefetch path.  One call moves the whole
  /// read-ahead window and registers the subscriber for every page.
  [[nodiscard]] std::vector<storage::ArrayPage> read_arrays_subscribe(
      std::vector<std::int32_t> indices, remote_ptr<PageCache> subscriber,
      RemoteRef device_self);

  /// Write a page, then invalidate (and wait for) every subscriber of
  /// that page.  After this returns, no cache serves the old bytes.
  void write_array_coherent(const storage::ArrayPage& page, int page_index);

  /// Batched coherent write: recalls dirty owners, applies all pages,
  /// then runs one invalidation round per page.
  void write_arrays_coherent(std::vector<storage::ArrayPage> pages,
                             std::vector<std::int32_t> indices);

  /// A write-back cache announces itself as the dirty owner of a page
  /// BEFORE completing the buffered write locally.  The device recalls
  /// any previous owner, invalidates every other subscriber (their copies
  /// would be stale the moment the owner's write completes), and only
  /// then acknowledges — the write-back counterpart of the write-through
  /// coherence guarantee.
  void mark_dirty(int page_index, remote_ptr<PageCache> owner,
                  RemoteRef device_self);

  /// Coalesced write-back from a dirty owner.  Pages whose dirty-owner
  /// registration was already cleared (recalled by a competing reader, or
  /// superseded by a newer coherent write) are skipped — the flush never
  /// clobbers newer data.
  void flush_pages(std::vector<storage::ArrayPage> pages,
                   std::vector<std::int32_t> indices,
                   remote_ptr<PageCache> owner);

  /// A cache drops its subscription when it evicts the page.
  void unsubscribe(int page_index, remote_ptr<PageCache> subscriber);

  /// Re-layout barrier (overrides ArrayPageDevice): an Array migrator is
  /// about to move these slots' raw bytes under a new page-map version.
  /// Recalls the dirty owner of every slot (the buffered bytes must land
  /// before the raw copy reads the file) and invalidates every
  /// subscriber (their cached copies die with the old layout).
  void quiesce_pages(std::vector<std::int32_t> indices,
                     std::uint64_t map_version) override;

  /// Highest page-map version a quiesce announced — how tests observe
  /// that a redistribution's version bump reached the DSM layer.
  [[nodiscard]] std::uint64_t last_quiesce_version() const {
    return last_quiesce_version_;
  }

  [[nodiscard]] std::uint64_t subscriber_count(int page_index) const;

  /// True while some cache holds the page's freshest bytes locally.
  [[nodiscard]] bool has_dirty_owner(int page_index) const {
    return dirty_owner_.contains(page_index);
  }

 private:
  /// Pull the dirty owner's buffered bytes (reentrant flush_page on the
  /// owner — it may be blocked in a read) and apply them locally.  The
  /// `except` owner is left alone.  Must run before any competing read
  /// or write of the page is served.
  void recall_dirty(int page_index, const RemoteRef* except);

  /// Invalidate every subscriber except `except` and wait for the acks.
  void invalidate_subscribers(int page_index, const RemoteRef* except);

  std::map<int, std::set<RemoteRef>> subscribers_;
  std::map<int, RemoteRef> dirty_owner_;  // page -> write-back cache
  RemoteRef self_ref_{};  // learned from the first subscription
  std::uint64_t last_quiesce_version_ = 0;
};

/// Per-machine read-through page cache (one process per reader machine),
/// optionally prefetching sequential streams and buffering writes.
class PageCache {
 public:
  explicit PageCache(std::uint32_t capacity_pages)
      : PageCache(capacity_pages, PageCacheOptions{}) {}

  PageCache(std::uint32_t capacity_pages, PageCacheOptions options)
      : capacity_(capacity_pages), opts_(options) {
    OOPP_CHECK(capacity_ > 0);
    OOPP_CHECK(!opts_.write_back || opts_.max_dirty > 0);
  }

  /// Wire the cache's own identity (needed to subscribe at devices).
  void set_self(remote_ptr<PageCache> self) { self_ = self; }

  /// Read-through: serve from cache, harvest an in-flight prefetch that
  /// covers the page, or fetch-and-subscribe.  Sequential misses arm a
  /// batched read-ahead of the next `readahead` pages.
  storage::ArrayPage read_array(remote_ptr<CoherentDevice> device,
                                int page_index);

  /// Write a page.  Write-through mode forwards to the device's coherent
  /// write; write-back mode buffers the page locally as dirty (after
  /// registering ownership via mark_dirty) and flushes in coalesced
  /// batches when the dirty set exceeds max_dirty.
  void write_array(remote_ptr<CoherentDevice> device, storage::ArrayPage page,
                   int page_index);

  /// Push every buffered dirty page out, one coalesced flush_pages call
  /// per device.
  void flush();

  /// Invalidation callback from a device.  REENTRANT: arrives while this
  /// cache may be blocked inside read_array.  Never drops a dirty page —
  /// buffered bytes leave only via flush_page or flush (the dirty write
  /// completed after the write this invalidation belongs to).
  void invalidate(PageKey key);

  /// Recall callback from a device about to serve a competing read or
  /// write: surrender the buffered bytes (the local copy stays, clean).
  /// REENTRANT: this cache may be blocked in its own flush or read.
  FlushResult flush_page(PageKey key);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }
  [[nodiscard]] std::uint64_t resident() const;
  [[nodiscard]] std::uint64_t dirty_resident() const;

  /// Prefetch accounting: pages requested ahead, pages served from a
  /// prefetch, pages fetched ahead but dropped unused.
  [[nodiscard]] std::uint64_t prefetch_issued() const { return pf_issued_; }
  [[nodiscard]] std::uint64_t prefetch_useful() const { return pf_useful_; }
  [[nodiscard]] std::uint64_t prefetch_wasted() const { return pf_wasted_; }

 private:
  struct Entry {
    storage::ArrayPage page;
    bool dirty = false;
    bool from_prefetch = false;
    bool used = false;  // served at least one hit since arriving
  };

  /// One prefetch batch in flight (reads are queued, so at most one).
  /// The future is moved out for the blocking harvest; indices/poisoned
  /// stay behind so the reentrant invalidate can poison raced pages.
  struct Prefetch {
    RemoteRef device;
    std::vector<std::int32_t> indices;
    Future<std::vector<storage::ArrayPage>> fut;
    std::set<std::int32_t> poisoned;
  };

  void evict_lru_locked();
  void touch_lru_locked(const PageKey& key);
  void insert_lru_locked(const PageKey& key);

  /// Block for the in-flight prefetch batch and cache its non-poisoned
  /// pages.  Called with mu_ NOT held.
  void harvest_prefetch(remote_ptr<CoherentDevice> device);

  /// Update the per-device stream detector and, on a sequential run,
  /// launch the next read-ahead batch.  Called with mu_ NOT held.
  void maybe_issue_prefetch(remote_ptr<CoherentDevice> device,
                            int just_read_index);

  std::uint32_t capacity_;
  PageCacheOptions opts_;
  remote_ptr<PageCache> self_;

  // Guards everything below (invalidate/flush_page are reentrant).  Never
  // held across a device call — see read_array.
  mutable util::CheckedMutex mu_{"dsm.PageCache"};
  std::map<PageKey, Entry> pages_;
  std::list<PageKey> lru_;  // front = most recent; clean pages only
  std::map<PageKey, std::list<PageKey>::iterator> lru_pos_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t dirty_ = 0;
  std::uint64_t pf_issued_ = 0;
  std::uint64_t pf_useful_ = 0;
  std::uint64_t pf_wasted_ = 0;

  // The fetch in flight and whether an invalidation raced it — a
  // poisoned fetch must not be cached.
  std::optional<PageKey> pending_;
  bool pending_poisoned_ = false;

  std::optional<Prefetch> prefetch_;

  // Dirty keys snapshotted by an in-flight flush().  An invalidation
  // arriving for one of these while the entry is still dirty means the
  // flushed bytes were already superseded device-side — invalidate()
  // drops the entry so the post-flush loop cannot mark it clean.
  std::set<PageKey> flushing_;

  // Sequential-stream detector, per device: last miss index + run length.
  struct Stream {
    std::int32_t last = -2;
    std::uint32_t run = 0;
  };
  std::map<RemoteRef, Stream> streams_;
  std::map<RemoteRef, std::int32_t> device_pages_;  // page-count cache

  // Evicted subscriptions to drop (performed outside the cache lock).
  std::vector<PageKey> to_unsubscribe_;
};

}  // namespace oopp::dsm

template <>
struct oopp::rpc::class_def<oopp::dsm::CoherentDevice> {
  using D = oopp::dsm::CoherentDevice;
  static std::string name() { return "oopp.dsm.CoherentDevice"; }
  using ctors = ctor_list<
      ctor<std::string, int, int, int, int>,
      ctor<std::string, int, int, int, int, oopp::storage::DeviceOptions>>;
  template <class B>
  static void bind(B& b) {
    // Inherit the whole ArrayPageDevice protocol (which itself inherits
    // PageDevice's) — three levels of process inheritance.
    class_def<oopp::storage::ArrayPageDevice>::bind(b);
    b.template method<&D::read_array_subscribe>("read_array_subscribe");
    b.template method<&D::read_arrays_subscribe>("read_arrays_subscribe");
    b.template method<&D::write_array_coherent>("write_array_coherent");
    b.template method<&D::write_arrays_coherent>("write_arrays_coherent");
    b.template method<&D::mark_dirty>("mark_dirty");
    b.template method<&D::flush_pages>("flush_pages");
    b.template method<&D::unsubscribe>("unsubscribe");
    b.template method<&D::subscriber_count>("subscriber_count");
    b.template method<&D::has_dirty_owner>("has_dirty_owner");
    b.template method<&D::last_quiesce_version>("last_quiesce_version");
  }
};

template <>
struct oopp::rpc::class_def<oopp::dsm::PageCache> {
  using C = oopp::dsm::PageCache;
  static std::string name() { return "oopp.dsm.PageCache"; }
  using ctors =
      ctor_list<ctor<std::uint32_t>,
                ctor<std::uint32_t, oopp::dsm::PageCacheOptions>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&C::set_self>("set_self");
    b.template method<&C::read_array>("read_array");
    b.template method<&C::write_array>("write_array");
    b.template method<&C::flush>("flush");
    b.template method<&C::invalidate>("invalidate", reentrant);
    b.template method<&C::flush_page>("flush_page", reentrant);
    b.template method<&C::hits>("hits");
    b.template method<&C::misses>("misses");
    b.template method<&C::invalidations>("invalidations");
    b.template method<&C::resident>("resident");
    b.template method<&C::dirty_resident>("dirty_resident");
    b.template method<&C::prefetch_issued>("prefetch_issued");
    b.template method<&C::prefetch_useful>("prefetch_useful");
    b.template method<&C::prefetch_wasted>("prefetch_wasted");
  }
};
