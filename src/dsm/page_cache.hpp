// Coherent page caching — distributed-shared-memory flavour on top of the
// storage substrate.
//
// The paper's §2 "shared memory implementation" gives many computing
// processes access to one data block; every access is a round trip.  This
// module adds the optimization a DSM system would: each machine hosts a
// PageCache process; reads go through the local cache, and devices track
// their readers and *call them back* to invalidate on writes — remote
// method execution flowing server → client, the same primitive in the
// other direction.
//
//   CoherentDevice — an ArrayPageDevice whose subscribing reads register
//                    the reader's cache, and whose coherent writes
//                    invalidate every subscriber (and wait for their
//                    acknowledgements) before acknowledging the writer:
//                    a read after a completed write never sees stale data.
//   PageCache      — per-machine read-through cache with LRU eviction and
//                    hit/miss/invalidation counters.
//
// Deadlock discipline: cache → device calls are queued (distinct objects);
// device → cache invalidations target a *reentrant* method, so they land
// even while that cache is blocked inside a read.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "core/remote_ptr.hpp"
#include "storage/array_page_device.hpp"
#include "util/checked_mutex.hpp"

namespace oopp::dsm {

class PageCache;

/// Key of a cached page: the owning device process + page index.
struct PageKey {
  RemoteRef device;
  std::int32_t index = 0;

  bool operator<(const PageKey& o) const {
    if (device.machine != o.device.machine)
      return device.machine < o.device.machine;
    if (device.object != o.device.object)
      return device.object < o.device.object;
    return index < o.index;
  }
  bool operator==(const PageKey&) const = default;
};

template <class Ar>
void oopp_serialize(Ar& ar, PageKey& k) {
  ar(k.device, k.index);
}

/// A block device whose pages can be cached coherently by reader caches.
class CoherentDevice : public storage::ArrayPageDevice {
 public:
  CoherentDevice(std::string filename, int number_of_pages, int n1, int n2,
                 int n3)
      : ArrayPageDevice(std::move(filename), number_of_pages, n1, n2, n3) {}
  CoherentDevice(std::string filename, int number_of_pages, int n1, int n2,
                 int n3, storage::DeviceOptions options)
      : ArrayPageDevice(std::move(filename), number_of_pages, n1, n2, n3,
                        options) {}

  /// Restore from a passivated image.  Subscriptions are not persisted —
  /// caches of a previous incarnation are gone; readers resubscribe.
  explicit CoherentDevice(serial::IArchive& ia) : ArrayPageDevice(ia) {}

  /// Read a page and remember the caller's cache as a subscriber.
  /// `device_self` is this device's own reference as the subscriber
  /// addresses it — the identity echoed back in invalidations (an object
  /// does not otherwise know its own remote pointer).
  storage::ArrayPage read_array_subscribe(int page_index,
                                          remote_ptr<PageCache> subscriber,
                                          RemoteRef device_self);

  /// Write a page, then invalidate (and wait for) every subscriber of
  /// that page.  After this returns, no cache serves the old bytes.
  void write_array_coherent(const storage::ArrayPage& page, int page_index);

  /// A cache drops its subscription when it evicts the page.
  void unsubscribe(int page_index, remote_ptr<PageCache> subscriber);

  [[nodiscard]] std::uint64_t subscriber_count(int page_index) const;

 private:
  std::map<int, std::set<RemoteRef>> subscribers_;
  RemoteRef self_ref_{};  // learned from the first subscription
};

/// Per-machine read-through page cache (one process per reader machine).
class PageCache {
 public:
  explicit PageCache(std::uint32_t capacity_pages)
      : capacity_(capacity_pages) {
    OOPP_CHECK(capacity_ > 0);
  }

  /// Wire the cache's own identity (needed to subscribe at devices).
  void set_self(remote_ptr<PageCache> self) { self_ = self; }

  /// Read-through: serve from cache or fetch-and-subscribe.
  storage::ArrayPage read_array(remote_ptr<CoherentDevice> device,
                                int page_index);

  /// Invalidation callback from a device.  REENTRANT: arrives while this
  /// cache may be blocked inside read_array.
  void invalidate(PageKey key);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }
  [[nodiscard]] std::uint64_t resident() const;

 private:
  void evict_lru_locked();

  std::uint32_t capacity_;
  remote_ptr<PageCache> self_;

  // Guards everything below (invalidate is reentrant).  Never held across
  // the device fetch — see read_array.
  mutable util::CheckedMutex mu_{"dsm.PageCache"};
  std::map<PageKey, storage::ArrayPage> pages_;
  std::list<PageKey> lru_;  // front = most recent
  std::map<PageKey, std::list<PageKey>::iterator> lru_pos_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;

  // The fetch in flight (reads are queued, so at most one) and whether an
  // invalidation raced it — a poisoned fetch must not be cached.
  std::optional<PageKey> pending_;
  bool pending_poisoned_ = false;

  // Evicted subscriptions to drop (performed outside the cache lock).
  std::vector<PageKey> to_unsubscribe_;
};

}  // namespace oopp::dsm

template <>
struct oopp::rpc::class_def<oopp::dsm::CoherentDevice> {
  using D = oopp::dsm::CoherentDevice;
  static std::string name() { return "oopp.dsm.CoherentDevice"; }
  using ctors = ctor_list<
      ctor<std::string, int, int, int, int>,
      ctor<std::string, int, int, int, int, oopp::storage::DeviceOptions>>;
  template <class B>
  static void bind(B& b) {
    // Inherit the whole ArrayPageDevice protocol (which itself inherits
    // PageDevice's) — three levels of process inheritance.
    class_def<oopp::storage::ArrayPageDevice>::bind(b);
    b.template method<&D::read_array_subscribe>("read_array_subscribe");
    b.template method<&D::write_array_coherent>("write_array_coherent");
    b.template method<&D::unsubscribe>("unsubscribe");
    b.template method<&D::subscriber_count>("subscriber_count");
  }
};

template <>
struct oopp::rpc::class_def<oopp::dsm::PageCache> {
  using C = oopp::dsm::PageCache;
  static std::string name() { return "oopp.dsm.PageCache"; }
  using ctors = ctor_list<ctor<std::uint32_t>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&C::set_self>("set_self");
    b.template method<&C::read_array>("read_array");
    b.template method<&C::invalidate>("invalidate", reentrant);
    b.template method<&C::hits>("hits");
    b.template method<&C::misses>("misses");
    b.template method<&C::invalidations>("invalidations");
    b.template method<&C::resident>("resident");
  }
};
