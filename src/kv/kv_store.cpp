#include "kv/kv_store.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/future.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"

namespace oopp::kv {

// ---------------------------------------------------------------------------
// KvShard
// ---------------------------------------------------------------------------

void KvShard::simulate_service_time() const {
  if (service_us_ > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(service_us_));
}

std::uint64_t KvShard::put(const std::string& key, const std::string& value) {
  static auto& puts = telemetry::Metrics::scope_for("kv").counter("puts");
  puts.add(1);
  simulate_service_time();
  map_[key] = value;
  ++version_;
  replicate_put(key, value);
  return version_;
}

std::optional<std::string> KvShard::get(const std::string& key) const {
  static auto& gets = telemetry::Metrics::scope_for("kv").counter("gets");
  gets.add(1);
  simulate_service_time();
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool KvShard::erase(const std::string& key) {
  static auto& erases =
      telemetry::Metrics::scope_for("kv").counter("erases");
  erases.add(1);
  const bool existed = map_.erase(key) > 0;
  if (existed) {
    ++version_;
    replicate_erase(key);
  }
  return existed;
}

std::vector<std::pair<std::string, std::string>> KvShard::scan(
    const std::string& prefix, std::uint64_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = map_.lower_bound(prefix);
       it != map_.end() && out.size() < limit; ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(*it);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> KvShard::dump() const {
  return {map_.begin(), map_.end()};
}

void KvShard::load(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    std::uint64_t version) {
  map_.clear();
  map_.insert(pairs.begin(), pairs.end());
  version_ = version;
}

void KvShard::replicate_put(const std::string& key,
                            const std::string& value) {
  // Synchronous chain replication: the backup has applied the mutation
  // (in the same order, thanks to its command queue) before the primary
  // acknowledges.  The backup itself has no backup, so the nested put
  // recurses at most once.
  if (backup_.valid()) backup_.call<&KvShard::put>(key, value);
}

void KvShard::replicate_erase(const std::string& key) {
  if (backup_.valid()) backup_.call<&KvShard::erase>(key);
}

// ---------------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------------

KvStore KvStore::create(
    Config config, const std::function<net::MachineId(int)>& placement,
    const std::function<net::MachineId(int)>& backup_placement) {
  OOPP_CHECK_MSG(config.shards > 0, "a store needs at least one shard");
  KvStore store;
  store.primaries_.reserve(config.shards);
  store.backups_.resize(config.shards);
  for (int s = 0; s < config.shards; ++s)
    store.primaries_.push_back(
        make_remote<KvShard>(placement(s), config.shard_service_us));
  if (config.replicate) {
    for (int s = 0; s < config.shards; ++s) {
      const net::MachineId machine =
          backup_placement ? backup_placement(s) : placement(s) + 1;
      store.backups_[s] =
          make_remote<KvShard>(machine, config.shard_service_us);
      store.primaries_[s].call<&KvShard::set_backup>(store.backups_[s]);
    }
  }
  return store;
}

void KvStore::put(const std::string& key, const std::string& value) {
  primaries_[shard_of(key)].call<&KvShard::put>(key, value);
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  return primaries_[shard_of(key)].call<&KvShard::get>(key);
}

bool KvStore::erase(const std::string& key) {
  return primaries_[shard_of(key)].call<&KvShard::erase>(key);
}

void KvStore::multi_put(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  // Split loop: all shards ingest concurrently; per-shard order follows
  // issue order (FIFO command queues).
  std::vector<Future<std::uint64_t>> futs;
  futs.reserve(pairs.size());
  for (const auto& [k, v] : pairs)
    futs.push_back(primaries_[shard_of(k)].async<&KvShard::put>(k, v));
  // Store ops are all-or-nothing; a retrying default policy on the driver
  // node bounds them.  oopp-lint: allow(future-bare-get)
  for (auto& f : futs) (void)f.get();
}

std::vector<std::optional<std::string>> KvStore::multi_get(
    const std::vector<std::string>& keys) const {
  std::vector<Future<std::optional<std::string>>> futs;
  futs.reserve(keys.size());
  for (const auto& k : keys)
    futs.push_back(primaries_[shard_of(k)].async<&KvShard::get>(k));
  std::vector<std::optional<std::string>> out;
  out.reserve(keys.size());
  // oopp-lint: allow(future-bare-get) — see multi_put.
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

std::uint64_t KvStore::size() const {
  std::vector<Future<std::uint64_t>> futs;
  futs.reserve(primaries_.size());
  for (const auto& p : primaries_) futs.push_back(p.async<&KvShard::size>());
  std::uint64_t total = 0;
  // oopp-lint: allow(future-bare-get) — see multi_put.
  for (auto& f : futs) total += f.get();
  return total;
}

std::vector<std::pair<std::string, std::string>> KvStore::scan(
    const std::string& prefix, std::uint64_t limit_per_shard) const {
  std::vector<Future<std::vector<std::pair<std::string, std::string>>>> futs;
  futs.reserve(primaries_.size());
  for (const auto& p : primaries_)
    futs.push_back(p.async<&KvShard::scan>(prefix, limit_per_shard));
  std::vector<std::pair<std::string, std::string>> all;
  for (auto& f : futs) {
    auto part = f.get();  // oopp-lint: allow(future-bare-get) — see multi_put.
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

void KvStore::promote_backup(int shard) {
  OOPP_CHECK(shard >= 0 && shard < shards());
  OOPP_CHECK_MSG(backups_[shard].valid(),
                 "shard " << shard << " has no backup to promote");
  primaries_[shard] = backups_[shard];
  backups_[shard] = {};
}

void KvStore::add_backup(int shard, net::MachineId machine) {
  OOPP_CHECK(shard >= 0 && shard < shards());
  OOPP_CHECK_MSG(!backups_[shard].valid(),
                 "shard " << shard << " already has a backup");
  auto fresh = make_remote<KvShard>(machine);
  // Bootstrap: full state transfer, then attach.  Mutations issued after
  // set_backup flow through the chain; the transfer and the attach run
  // through the primary's queue, so no mutation is lost in between when
  // driven from a single client.
  const auto snapshot = primaries_[shard].call<&KvShard::dump>();
  const auto version = primaries_[shard].call<&KvShard::version>();
  fresh.call<&KvShard::load>(snapshot, version);
  primaries_[shard].call<&KvShard::set_backup>(fresh);
  backups_[shard] = fresh;
}

void KvStore::destroy() {
  std::vector<Future<void>> futs;
  for (auto& p : primaries_)
    if (p.valid()) futs.push_back(p.async_destroy());
  for (auto& b : backups_)
    if (b.valid()) futs.push_back(b.async_destroy());
  // oopp-lint: allow(future-bare-get) — teardown waits for completion.
  for (auto& f : futs) f.get();
  primaries_.clear();
  backups_.clear();
}

}  // namespace oopp::kv
