// A sharded, replicated key-value store built from objects-as-processes.
//
// The paper's conclusion claims the framework covers "client-server
// applications" and is useful for "operating system design"; this module
// is that claim made concrete.  Everything is ordinary remote objects:
//
//   KvShard  — one partition, a versioned ordered map.  Optionally chains
//              to a backup shard: a primary applies each mutation locally
//              and then executes the same mutation on its backup before
//              acknowledging (synchronous chain replication — the
//              object-as-process command queue gives per-shard
//              linearizability for free).
//   KvStore  — the client facade: hashes keys onto shards, runs multi-key
//              operations as §4 split loops, and can promote a backup to
//              primary when a primary process dies (failover).
//
// Shards opt into the §5 persistence machinery, so a whole store can be
// passivated and re-activated through symbolic addresses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

// Note: kv deliberately sits *below* core in the layering — the Cluster
// backs its symbolic-address registry with a replicated KvStore, so this
// header must not pull in core/cluster.hpp.
#include "core/remote_ptr.hpp"
#include "rpc/binding.hpp"

namespace oopp::kv {

/// One partition of the key space.
class KvShard {
 public:
  KvShard() = default;

  /// Simulated per-operation service time (storage engine cost) — the
  /// same device-modeling idea as storage::DeviceOptions; lets benches
  /// study sharding with server work as the scarce resource.
  explicit KvShard(std::uint32_t service_us) : service_us_(service_us) {}

  explicit KvShard(serial::IArchive& ia) { ia(map_, version_, service_us_); }
  void oopp_save(serial::OArchive& oa) const {
    oa(map_, version_, service_us_);
  }

  /// Store; returns the store-wide mutation version of this shard.
  std::uint64_t put(const std::string& key, const std::string& value);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Remove; returns true if the key existed.
  bool erase(const std::string& key);

  [[nodiscard]] std::uint64_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Keys with the given prefix, ordered, at most `limit` pairs.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> scan(
      const std::string& prefix, std::uint64_t limit) const;

  /// Chain replication: every subsequent mutation is forwarded to (and
  /// acknowledged by) the backup before the primary acknowledges.
  void set_backup(remote_ptr<KvShard> backup) { backup_ = backup; }
  [[nodiscard]] bool has_backup() const { return backup_.valid(); }

  /// Full state transfer (bootstrap a fresh backup).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> dump() const;
  void load(const std::vector<std::pair<std::string, std::string>>& pairs,
            std::uint64_t version);

 private:
  void replicate_put(const std::string& key, const std::string& value);
  void replicate_erase(const std::string& key);
  void simulate_service_time() const;

  std::map<std::string, std::string> map_;
  std::uint64_t version_ = 0;
  std::uint32_t service_us_ = 0;
  remote_ptr<KvShard> backup_;
};

/// Client facade.  Copyable and serializable: hand it to remote worker
/// processes and they become clients of the same store.
class KvStore {
 public:
  struct Config {
    int shards = 4;
    bool replicate = false;  // one backup per shard
    std::uint32_t shard_service_us = 0;  // simulated per-op engine cost
  };

  KvStore() = default;

  /// Create the shard processes.  placement(i) hosts primary i;
  /// backups (if any) are placed by backup_placement (default: the next
  /// machine over, so a machine loss never takes both copies).
  static KvStore create(
      Config config, const std::function<net::MachineId(int)>& placement,
      const std::function<net::MachineId(int)>& backup_placement = {});

  // -- single-key ops --------------------------------------------------------
  void put(const std::string& key, const std::string& value);
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  bool erase(const std::string& key);

  // -- multi-key ops (split loops across shards) ----------------------------
  void multi_put(
      const std::vector<std::pair<std::string, std::string>>& pairs);
  [[nodiscard]] std::vector<std::optional<std::string>> multi_get(
      const std::vector<std::string>& keys) const;

  /// Total pairs across shards.
  [[nodiscard]] std::uint64_t size() const;

  /// All pairs with the prefix, merged and ordered.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> scan(
      const std::string& prefix, std::uint64_t limit_per_shard = 1000) const;

  // -- availability ----------------------------------------------------------

  /// Replace shard s's primary with its backup (the old primary is
  /// presumed dead).  The promoted shard runs without a backup until
  /// add_backup is called.
  void promote_backup(int shard);

  /// Attach a fresh backup process for shard s on the given machine,
  /// bootstrapped with a full state transfer.
  void add_backup(int shard, net::MachineId machine);

  [[nodiscard]] int shards() const { return static_cast<int>(primaries_.size()); }
  [[nodiscard]] int shard_of(const std::string& key) const {
    return static_cast<int>(std::hash<std::string>()(key) %
                            primaries_.size());
  }
  [[nodiscard]] const remote_ptr<KvShard>& primary(int s) const {
    return primaries_[s];
  }
  [[nodiscard]] const remote_ptr<KvShard>& backup(int s) const {
    return backups_[s];
  }

  /// Terminate every shard process.
  void destroy();

 private:
  std::vector<remote_ptr<KvShard>> primaries_;
  std::vector<remote_ptr<KvShard>> backups_;  // invalid entries = none

  template <class Ar>
  friend void oopp_serialize(Ar& ar, KvStore& s);
};

template <class Ar>
void oopp_serialize(Ar& ar, KvStore& s) {
  ar(s.primaries_, s.backups_);
}

}  // namespace oopp::kv

template <>
struct oopp::rpc::class_def<oopp::kv::KvShard> {
  using S = oopp::kv::KvShard;
  static std::string name() { return "oopp.kv.Shard"; }
  using ctors = ctor_list<ctor<>, ctor<std::uint32_t>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&S::put>("put");
    b.template method<&S::get>("get");
    b.template method<&S::erase>("erase");
    b.template method<&S::size>("size");
    b.template method<&S::version>("version");
    b.template method<&S::scan>("scan");
    b.template method<&S::set_backup>("set_backup");
    b.template method<&S::has_backup>("has_backup");
    b.template method<&S::dump>("dump");
    b.template method<&S::load>("load");
    b.persistent();
  }
};
