// E3 — move the data vs move the computation (paper §3).
//
// Claim: summing a remote n^3 block either ships the whole page to the
// client (read_array + local sum) or ships the computation (device-side
// sum, one double back).  On a bandwidth-limited interconnect the
// computation-shipping variant wins for large pages; for tiny pages the
// two are comparable (both dominated by latency).
#include <cstdio>

#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "storage/array_page_device.hpp"
#include "util/prng.hpp"

using namespace oopp;
using bench::ScratchDir;

int main() {
  bench::headline("E3  move data vs move computation (paper §3)",
                  "device-side sum ships 8 bytes; page-copy sum ships n^3 "
                  "doubles — crossover as pages grow");

  Cluster::Options opts;
  opts.machines = 2;
  opts.cost = net::CostModel::commodity_cluster();
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);
  ScratchDir dir("e3");

  std::printf("\n%6s %10s | %14s %14s %10s\n", "n", "page KiB",
              "ship-data us", "ship-compute us", "ratio");
  std::printf("------------------+----------------------------------------\n");

  for (int n : {4, 8, 16, 32, 64, 96}) {
    auto dev = cluster.make_remote<storage::ArrayPageDevice>(
        1, dir.file("blk" + std::to_string(n)), 2, n, n, n);

    storage::ArrayPage page(n, n, n);
    Xoshiro256 rng(static_cast<std::uint64_t>(n));
    for (index_t i = 0; i < page.elements(); ++i)
      page.values()[i] = rng.uniform(0.0, 1.0);
    dev.call<&storage::ArrayPageDevice::write_array>(page, 0);

    const int reps = n >= 64 ? 5 : 11;
    double sum_a = 0.0, sum_b = 0.0;
    const double ship_data = bench::median_seconds(reps, [&] {
      auto local = dev.call<&storage::ArrayPageDevice::read_array>(0);
      sum_a = local.sum();
    });
    const double ship_compute = bench::median_seconds(reps, [&] {
      sum_b = dev.call<&storage::ArrayPageDevice::sum>(0);
    });

    OOPP_CHECK(sum_a == sum_b);
    const double kib =
        static_cast<double>(page.size()) / 1024.0;
    std::printf("%6d %10.1f | %14.0f %15.0f %9.2fx\n", n, kib,
                ship_data * 1e6, ship_compute * 1e6,
                ship_data / ship_compute);
    dev.destroy();
  }

  std::printf("\nshape checks:\n");
  bench::note("tiny pages: ratio ~1 (latency-bound either way)");
  bench::note("large pages: ship-data grows with bytes/beta; ratio >> 1");
  return 0;
}
