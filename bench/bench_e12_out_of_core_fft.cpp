// E12 — the paper's motivating computation (§1): a 3-D Fourier transform
// over an array stored on many page devices, too large for the client's
// memory budget.
//
// Claims exercised:
//   * the transform completes within ANY memory budget, and the total
//     I/O volume is invariant — the budget only changes how many slab
//     round trips move it (two read+write passes over the array);
//   * the PageMap (§5) determines how far each slab's I/O fans out over
//     the devices — the same out-of-core FFT is ~D x faster on a
//     round-robin layout than on a single spindle.
#include <cstdio>
#include <cstring>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "fft/fft3d.hpp"
#include "fft/out_of_core.hpp"
#include "util/prng.hpp"

using namespace oopp;
namespace arr = oopp::array;
using bench::ScratchDir;

namespace {

arr::Array make_disk_array(Cluster& cluster, const ScratchDir& dir,
                           const std::string& tag, const Extents3& n,
                           const Extents3& b, int devices,
                           arr::PageMapKind kind, std::uint32_t service_us) {
  const Extents3 grid{ceil_div(n.n1, b.n1), ceil_div(n.n2, b.n2),
                      ceil_div(n.n3, b.n3)};
  const arr::PageMapSpec spec{kind};
  arr::BlockStorageConfig cfg;
  cfg.file_prefix = dir.file(tag);
  cfg.devices = devices;
  cfg.pages_per_device =
      static_cast<std::int32_t>(spec.pages_per_device(grid, devices));
  cfg.n1 = static_cast<int>(b.n1);
  cfg.n2 = static_cast<int>(b.n2);
  cfg.n3 = static_cast<int>(b.n3);
  cfg.device_options.service_us = service_us;
  auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % cluster.size());
  });
  return arr::Array(n.n1, n.n2, n.n3, b.n1, b.n2, b.n3, storage, spec);
}

// CI smoke: the tentpole comparison — the same out-of-core transform,
// strict read→compute→write order vs the double-buffered pipeline
// (prefetch slab k+1 / transform k / write-behind k-1).  Emits
// BENCH_e12.json; CI fails the job if the pipeline does not win.
int run_smoke() {
  bench::headline("E12 out-of-core FFT, serial vs pipelined (smoke)",
                  "prefetch + write-behind hide the devices' service time "
                  "behind the transform");
  Cluster cluster(4);
  ScratchDir dir("e12s");

  // Sized so slab compute and slab I/O are comparable — that is where
  // overlap pays: while slab k transforms (~ms of FFT), its neighbours'
  // fetch and write-back ride the devices.
  const Extents3 N{64, 64, 64};
  const Extents3 b{8, 8, 8};
  const int devices = 4;
  constexpr std::uint32_t kServiceUs = 300;
  // Both modes run the SAME slab schedule (one 8-row page layer per
  // slab, page-aligned — no read-modify-write at slab seams): serial
  // holds one slab at a time, the pipeline triple-buffers the identical
  // slabs within the full budget.  Identical I/O volume and seek
  // pattern; only the ordering differs — that isolates the overlap.
  const std::size_t budget = std::size_t{3} * (std::size_t{512} << 10);

  Xoshiro256 rng(12);
  std::vector<double> re0(static_cast<std::size_t>(N.volume()));
  std::vector<double> im0(re0.size());
  for (auto& x : re0) x = rng.uniform(-1, 1);
  for (auto& x : im0) x = rng.uniform(-1, 1);
  const auto whole = arr::Domain::whole(N);

  double ms[2] = {0, 0};
  std::uint64_t stall_ns = 0;
  for (const bool pipeline : {false, true}) {
    auto re = make_disk_array(cluster, dir,
                              std::string("sA") + (pipeline ? "p" : "s"), N,
                              b, devices, arr::PageMapKind::kRoundRobin,
                              kServiceUs);
    auto im = make_disk_array(cluster, dir,
                              std::string("sB") + (pipeline ? "p" : "s"), N,
                              b, devices, arr::PageMapKind::kRoundRobin,
                              kServiceUs);
    re.write(re0, whole);
    im.write(im0, whole);
    fft::OutOfCoreStats stats;
    // pipeline=true sizes slabs from max_bytes/3; give serial budget/3
    // directly so both modes move the very same slabs.
    const std::size_t max_bytes = pipeline ? budget : budget / 3;
    const double secs = bench::median_seconds(3, [&] {
      stats = fft::fft3d_out_of_core(
          re, im, -1,
          fft::OutOfCoreOptions{.max_bytes = max_bytes, .pipeline = pipeline});
    });
    ms[pipeline ? 1 : 0] = secs * 1e3;
    if (pipeline) stall_ns = stats.stall_ns();
    arr::destroy_block_storage(const_cast<arr::BlockStorage&>(re.storage()));
    arr::destroy_block_storage(const_cast<arr::BlockStorage&>(im.storage()));
  }

  const double speedup = ms[0] / ms[1];
  bench::note("64^3 complex field, 4 devices/array, %u us service, "
              "%zu KiB pipeline budget (same 8-row slabs in both modes):",
              kServiceUs, budget >> 10);
  bench::note("  serial   : %8.1f ms", ms[0]);
  bench::note("  pipelined: %8.1f ms  (%.2fx, %.1f ms stalled)", ms[1],
              speedup, double(stall_ns) / 1e6);
  bench::emit_json_fields("e12",
                          {{"serial_ms", ms[0]},
                           {"pipelined_ms", ms[1]},
                           {"pipeline_speedup", speedup},
                           {"pipeline_stall_ms", double(stall_ns) / 1e6}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  bench::headline("E12 out-of-core FFT over page devices (paper §1 + §5)",
                  "any memory budget computes the same transform with the "
                  "same I/O volume; the PageMap sets the I/O parallelism");

  Cluster cluster(4);
  ScratchDir dir("e12");

  const Extents3 N{32, 32, 32};
  const Extents3 b{8, 8, 8};  // 64 pages of 4 KiB doubles
  const int devices = 8;
  constexpr std::uint32_t kServiceUs = 300;
  const double array_mib =
      double(N.volume()) * sizeof(double) * 2 / (1 << 20);
  bench::note("complex field: %lld^3 (%.1f MiB re+im), 64 pages/array, "
              "%d devices, %u us service",
              static_cast<long long>(N.n1), array_mib, devices, kServiceUs);

  // Reference result computed in memory.
  Xoshiro256 rng(21);
  std::vector<double> re0(static_cast<std::size_t>(N.volume()));
  std::vector<double> im0(re0.size());
  for (auto& x : re0) x = rng.uniform(-1, 1);
  for (auto& x : im0) x = rng.uniform(-1, 1);
  std::vector<fft::cplx> expect(re0.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    expect[i] = fft::cplx(re0[i], im0[i]);
  fft::fft3d_inplace(expect, N, -1);

  const auto whole = arr::Domain::whole(N);

  std::printf("\nmemory-budget sweep (round-robin layout):\n");
  std::printf("%12s | %7s %7s %12s %10s | %10s\n", "budget", "slabs1",
              "slabs2", "elems moved", "ms", "max err");
  std::printf("-------------+---------------------------------------+------"
              "-----\n");
  for (std::size_t budget :
       {std::size_t{64} << 10, std::size_t{256} << 10, std::size_t{1} << 20,
        std::size_t{64} << 20}) {
    auto re = make_disk_array(cluster, dir, "rrA" + std::to_string(budget),
                              N, b, devices, arr::PageMapKind::kRoundRobin,
                              kServiceUs);
    auto im = make_disk_array(cluster, dir, "rrB" + std::to_string(budget),
                              N, b, devices, arr::PageMapKind::kRoundRobin,
                              kServiceUs);
    re.write(re0, whole);
    im.write(im0, whole);

    Timer t;
    const auto stats = fft::fft3d_out_of_core(
        re, im, -1,
        fft::OutOfCoreOptions{.max_bytes = budget, .pipeline = false});
    const double ms = t.millis();

    const auto re_out = re.read(whole);
    const auto im_out = im.read(whole);
    double err = 0.0;
    for (std::size_t i = 0; i < expect.size(); ++i)
      err = std::max(err, std::abs(fft::cplx(re_out[i], im_out[i]) -
                                   expect[i]));

    std::printf("%9zu KB | %7lld %7lld %12llu %10.1f | %10.2e\n",
                budget >> 10, static_cast<long long>(stats.pass1.slabs),
                static_cast<long long>(stats.pass2.slabs),
                static_cast<unsigned long long>(stats.elements_moved()), ms,
                err);
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(re.storage()));
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(im.storage()));
  }

  std::printf("\nlayout sweep (1 MiB budget):\n");
  std::printf("%14s | %10s | %10s\n", "layout", "ms", "vs single");
  double single_ms = 0.0;
  for (auto kind :
       {arr::PageMapKind::kSingleDevice, arr::PageMapKind::kBlocked,
        arr::PageMapKind::kRoundRobin}) {
    const arr::PageMapSpec spec{kind};
    auto re = make_disk_array(cluster, dir,
                              std::string("lyA") + spec.name(), N, b,
                              devices, kind, kServiceUs);
    auto im = make_disk_array(cluster, dir,
                              std::string("lyB") + spec.name(), N, b,
                              devices, kind, kServiceUs);
    re.write(re0, whole);
    im.write(im0, whole);
    Timer t;
    (void)fft::fft3d_out_of_core(
        re, im, -1,
        fft::OutOfCoreOptions{.max_bytes = std::size_t{1} << 20,
                              .pipeline = false});
    const double ms = t.millis();
    if (kind == arr::PageMapKind::kSingleDevice) single_ms = ms;
    std::printf("%14s | %10.1f | %9.1fx\n", spec.name(), ms, single_ms / ms);
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(re.storage()));
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(im.storage()));
  }

  std::printf("\npipeline sweep (round-robin, 384 KiB budget):\n");
  std::printf("%10s | %10s %12s %12s\n", "mode", "ms", "stall rd ms",
              "stall wr ms");
  for (const bool pipeline : {false, true}) {
    auto re = make_disk_array(cluster, dir,
                              std::string("plA") + (pipeline ? "p" : "s"), N,
                              b, devices, arr::PageMapKind::kRoundRobin,
                              kServiceUs);
    auto im = make_disk_array(cluster, dir,
                              std::string("plB") + (pipeline ? "p" : "s"), N,
                              b, devices, arr::PageMapKind::kRoundRobin,
                              kServiceUs);
    re.write(re0, whole);
    im.write(im0, whole);
    Timer t;
    const auto stats = fft::fft3d_out_of_core(
        re, im, -1,
        fft::OutOfCoreOptions{.max_bytes = std::size_t{384} << 10,
                              .pipeline = pipeline});
    const double ms = t.millis();
    std::printf("%10s | %10.1f %12.1f %12.1f\n",
                pipeline ? "pipelined" : "serial", ms,
                double(stats.pass1.stall_read_ns + stats.pass2.stall_read_ns) /
                    1e6,
                double(stats.pass1.stall_write_ns +
                       stats.pass2.stall_write_ns) /
                    1e6);
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(re.storage()));
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(im.storage()));
  }

  std::printf("\nshape checks:\n");
  bench::note("elements moved is identical for every budget (two passes, "
              "exactly) and max err ~1e-12: same transform");
  bench::note("budgets below a page-layer force read-modify-write on "
              "shared pages — wall time jumps although the logical volume "
              "is unchanged (align slabs to page rows)");
  bench::note("batched slab I/O charges one service per contiguous run, so "
              "whole-layer slabs are nearly layout-insensitive — the per-page "
              "PageMap effect (E6's ~D x) survives where access fragments "
              "into many runs, not on bulk sequential slabs");
  bench::note("the double-buffered pipeline hides slab fetch and write-back "
              "behind the transform: stall time is what overlap could not "
              "cover");
  return 0;
}
