// E12 — the paper's motivating computation (§1): a 3-D Fourier transform
// over an array stored on many page devices, too large for the client's
// memory budget.
//
// Claims exercised:
//   * the transform completes within ANY memory budget, and the total
//     I/O volume is invariant — the budget only changes how many slab
//     round trips move it (two read+write passes over the array);
//   * the PageMap (§5) determines how far each slab's I/O fans out over
//     the devices — the same out-of-core FFT is ~D x faster on a
//     round-robin layout than on a single spindle.
#include <cstdio>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "fft/fft3d.hpp"
#include "fft/out_of_core.hpp"
#include "util/prng.hpp"

using namespace oopp;
namespace arr = oopp::array;
using bench::ScratchDir;

namespace {

arr::Array make_disk_array(Cluster& cluster, const ScratchDir& dir,
                           const std::string& tag, const Extents3& n,
                           const Extents3& b, int devices,
                           arr::PageMapKind kind, std::uint32_t service_us) {
  const Extents3 grid{ceil_div(n.n1, b.n1), ceil_div(n.n2, b.n2),
                      ceil_div(n.n3, b.n3)};
  const arr::PageMapSpec spec{kind};
  arr::BlockStorageConfig cfg;
  cfg.file_prefix = dir.file(tag);
  cfg.devices = devices;
  cfg.pages_per_device =
      static_cast<std::int32_t>(spec.pages_per_device(grid, devices));
  cfg.n1 = static_cast<int>(b.n1);
  cfg.n2 = static_cast<int>(b.n2);
  cfg.n3 = static_cast<int>(b.n3);
  cfg.device_options.service_us = service_us;
  auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % cluster.size());
  });
  return arr::Array(n.n1, n.n2, n.n3, b.n1, b.n2, b.n3, storage, spec);
}

}  // namespace

int main() {
  bench::headline("E12 out-of-core FFT over page devices (paper §1 + §5)",
                  "any memory budget computes the same transform with the "
                  "same I/O volume; the PageMap sets the I/O parallelism");

  Cluster cluster(4);
  ScratchDir dir("e12");

  const Extents3 N{32, 32, 32};
  const Extents3 b{8, 8, 8};  // 64 pages of 4 KiB doubles
  const int devices = 8;
  constexpr std::uint32_t kServiceUs = 300;
  const double array_mib =
      double(N.volume()) * sizeof(double) * 2 / (1 << 20);
  bench::note("complex field: %lld^3 (%.1f MiB re+im), 64 pages/array, "
              "%d devices, %u us service",
              static_cast<long long>(N.n1), array_mib, devices, kServiceUs);

  // Reference result computed in memory.
  Xoshiro256 rng(21);
  std::vector<double> re0(static_cast<std::size_t>(N.volume()));
  std::vector<double> im0(re0.size());
  for (auto& x : re0) x = rng.uniform(-1, 1);
  for (auto& x : im0) x = rng.uniform(-1, 1);
  std::vector<fft::cplx> expect(re0.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    expect[i] = fft::cplx(re0[i], im0[i]);
  fft::fft3d_inplace(expect, N, -1);

  const auto whole = arr::Domain::whole(N);

  std::printf("\nmemory-budget sweep (round-robin layout):\n");
  std::printf("%12s | %7s %7s %12s %10s | %10s\n", "budget", "slabs1",
              "slabs2", "elems moved", "ms", "max err");
  std::printf("-------------+---------------------------------------+------"
              "-----\n");
  for (std::size_t budget :
       {std::size_t{64} << 10, std::size_t{256} << 10, std::size_t{1} << 20,
        std::size_t{64} << 20}) {
    auto re = make_disk_array(cluster, dir, "rrA" + std::to_string(budget),
                              N, b, devices, arr::PageMapKind::kRoundRobin,
                              kServiceUs);
    auto im = make_disk_array(cluster, dir, "rrB" + std::to_string(budget),
                              N, b, devices, arr::PageMapKind::kRoundRobin,
                              kServiceUs);
    re.write(re0, whole);
    im.write(im0, whole);

    Timer t;
    const auto stats = fft::fft3d_out_of_core(
        re, im, -1, fft::OutOfCoreOptions{.max_bytes = budget});
    const double ms = t.millis();

    const auto re_out = re.read(whole);
    const auto im_out = im.read(whole);
    double err = 0.0;
    for (std::size_t i = 0; i < expect.size(); ++i)
      err = std::max(err, std::abs(fft::cplx(re_out[i], im_out[i]) -
                                   expect[i]));

    std::printf("%9zu KB | %7lld %7lld %12llu %10.1f | %10.2e\n",
                budget >> 10, static_cast<long long>(stats.pass1_slabs),
                static_cast<long long>(stats.pass2_slabs),
                static_cast<unsigned long long>(stats.elements_moved), ms,
                err);
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(re.storage()));
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(im.storage()));
  }

  std::printf("\nlayout sweep (1 MiB budget):\n");
  std::printf("%14s | %10s | %10s\n", "layout", "ms", "vs single");
  double single_ms = 0.0;
  for (auto kind :
       {arr::PageMapKind::kSingleDevice, arr::PageMapKind::kBlocked,
        arr::PageMapKind::kRoundRobin}) {
    const arr::PageMapSpec spec{kind};
    auto re = make_disk_array(cluster, dir,
                              std::string("lyA") + spec.name(), N, b,
                              devices, kind, kServiceUs);
    auto im = make_disk_array(cluster, dir,
                              std::string("lyB") + spec.name(), N, b,
                              devices, kind, kServiceUs);
    re.write(re0, whole);
    im.write(im0, whole);
    Timer t;
    (void)fft::fft3d_out_of_core(
        re, im, -1, fft::OutOfCoreOptions{.max_bytes = std::size_t{1} << 20});
    const double ms = t.millis();
    if (kind == arr::PageMapKind::kSingleDevice) single_ms = ms;
    std::printf("%14s | %10.1f | %9.1fx\n", spec.name(), ms, single_ms / ms);
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(re.storage()));
    arr::destroy_block_storage(
        const_cast<arr::BlockStorage&>(im.storage()));
  }

  std::printf("\nshape checks:\n");
  bench::note("elements moved is identical for every budget (two passes, "
              "exactly) and max err ~1e-12: same transform");
  bench::note("budgets below a page-layer force read-modify-write on "
              "shared pages — wall time jumps although the logical volume "
              "is unchanged (align slabs to page rows)");
  bench::note("round-robin beats single-device by ~the device count — the "
              "PageMap determines the computation's I/O parallelism");
  return 0;
}
