// E15 — extension: third-party array copies.
//
// Copying one distributed Array into another can route every page through
// the client (read + write) or order device-to-device pulls (the client
// sends one tiny command per page).  Under a bandwidth-limited client
// link the direct path wins by ~2x (payload crosses one link instead of
// two, and the client link stops being the funnel); page service times
// also overlap across device pairs.
#include <cstdio>
#include <numeric>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "array/copy.hpp"
#include "bench_common.hpp"
#include "core/oopp.hpp"

using namespace oopp;
namespace arr = oopp::array;
using bench::ScratchDir;

int main() {
  bench::headline("E15 third-party array copy",
                  "device-to-device pulls keep the payload off the "
                  "client's link: ~2x over client-buffered copies");

  // Finite NIC occupancy makes the client link a real resource — the
  // thing the buffered path funnels every byte through (twice).
  Cluster::Options opts;
  opts.machines = 4;
  opts.cost = net::CostModel{.latency_ns = 25'000,
                             .bytes_per_us = 1'200.0,
                             .per_message_ns = 500,
                             .egress_bytes_per_us = 100.0,
                             .egress_per_message_ns = 500,
                             .ingress_bytes_per_us = 100.0,
                             .ingress_per_message_ns = 500};
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);
  bench::note("NIC occupancy: 100 MB/s egress and ingress per machine");
  ScratchDir dir("e15");

  const Extents3 N{32, 32, 32};
  const Extents3 b{16, 16, 16};
  const Extents3 grid{2, 2, 2};
  constexpr int kDevices = 8;
  constexpr std::uint32_t kServiceUs = 50;

  auto make_array = [&](const std::string& tag, arr::PageMapKind kind) {
    const arr::PageMapSpec spec{kind};
    arr::BlockStorageConfig cfg;
    cfg.file_prefix = dir.file(tag);
    cfg.devices = kDevices;
    cfg.pages_per_device =
        static_cast<std::int32_t>(spec.pages_per_device(grid, kDevices));
    cfg.n1 = static_cast<int>(b.n1);
    cfg.n2 = static_cast<int>(b.n2);
    cfg.n3 = static_cast<int>(b.n3);
    cfg.device_options.service_us = kServiceUs;
    auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<net::MachineId>(i % cluster.size());
    });
    return arr::Array(N.n1, N.n2, N.n3, b.n1, b.n2, b.n3, storage, spec);
  };

  auto src = make_array("src", arr::PageMapKind::kRoundRobin);
  auto dst = make_array("dst", arr::PageMapKind::kBlocked);
  const auto whole = arr::Domain::whole(N);
  std::vector<double> buf(static_cast<std::size_t>(whole.volume()));
  std::iota(buf.begin(), buf.end(), 0.0);
  src.write(buf, whole);
  bench::note("%lld pages of 16^3 doubles, %d devices, %u us service",
              static_cast<long long>(grid.volume()), kDevices, kServiceUs);

  const double buffered_ms = bench::median_seconds(3, [&] {
                               auto data = src.read(whole);
                               dst.write(data, whole);
                             }) * 1e3;

  const double direct_ms = bench::median_seconds(3, [&] {
                             (void)arr::copy(src, dst, whole);
                           }) * 1e3;

  OOPP_CHECK(dst.read(whole) == buf);
  std::printf("\n%18s | %10s\n", "path", "ms");
  std::printf("-------------------+-----------\n");
  std::printf("%18s | %10.1f\n", "client-buffered", buffered_ms);
  std::printf("%18s | %10.1f\n", "device-to-device", direct_ms);
  std::printf("\nshape checks:\n");
  bench::note("direct path is %.1fx faster: the buffered copy pushes every "
              "byte through the client's ingress AND egress port, the "
              "direct copy spreads page crossings over the device machines",
              buffered_ms / direct_ms);
  bench::note("the gap grows with page size (fixed per-pull round trips "
              "amortize; the NIC terms dominate)");
  return 0;
}
