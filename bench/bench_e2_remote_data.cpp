// E2 — remote plain data access granularity (paper §2).
//
// Claim: `data[i] = x` on a remote double array costs one client/server
// round trip per element — correct but expensive; bulk transfers amortize
// the per-message cost over many elements.
//
// Measures, for n elements on a simulated HPC fabric:
//   element loop — n round trips (the paper's data[7] = 3.1415 semantics);
//   bulk         — one assign/slice pair moving all n at once.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "core/oopp.hpp"

using namespace oopp;

int main() {
  bench::headline("E2  remote plain data: element vs bulk (paper §2)",
                  "each element access is one round trip; bulk transfer "
                  "amortizes it by orders of magnitude");

  Cluster::Options opts;
  opts.machines = 2;
  opts.cost = net::CostModel::hpc_fabric();
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);

  std::printf("\n%8s | %14s %14s %12s | %16s\n", "n", "element us", "bulk us",
              "speedup", "us per element");
  std::printf("---------+------------------------------------------+-------"
              "---------\n");

  for (std::uint64_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
    auto data = cluster.make_remote_array<double>(1, n);
    std::vector<double> values(n);
    std::iota(values.begin(), values.end(), 0.0);

    const int reps = n >= 4096 ? 3 : 7;
    const double elem_s = bench::median_seconds(reps, [&] {
      for (std::uint64_t i = 0; i < n; ++i) data[i] = values[i];
      double acc = 0.0;
      for (std::uint64_t i = 0; i < n; ++i) acc += data[i];
      (void)acc;
    });
    const double bulk_s = bench::median_seconds(reps, [&] {
      data.assign(0, values);
      auto back = data.to_vector();
      (void)back;
    });

    std::printf("%8llu | %14.0f %14.1f %11.0fx | %16.3f\n",
                static_cast<unsigned long long>(n), elem_s * 1e6,
                bulk_s * 1e6, elem_s / bulk_s,
                elem_s * 1e6 / static_cast<double>(2 * n));
    data.destroy();
  }

  std::printf("\nshape checks:\n");
  bench::note("element cost per item is ~flat (dominated by round trip)");
  bench::note("bulk/element gap widens with n");
  return 0;
}
