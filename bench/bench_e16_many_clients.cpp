// E16 — many concurrent clients: event-driven fabric + N:M dispatch vs
// thread-per-peer readers (PR 7).
//
// Claim: one epoll reactor per endpoint plus sharded dispatch onto the
// worker pool sustains 4x the concurrent connections of the
// thread-per-peer design at equal or better tail latency — the server's
// thread count stops scaling with its peer count.
//
// Workload: `conns` client machines each hammer their own echo object on
// machine 0 over real TCP, keeping `inflight` calls windowed per client.
// The sweep holds total in-flight constant while trading connection
// count against per-connection depth, so the two transports face the
// same aggregate load shaped two ways.
//
// `--smoke` runs the 4-config comparison CI gates on (reactor at 64
// connections must hold the thread-per-peer p99 at both 64 and 16
// connections within noise) and leaves BENCH_e16.json behind.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "telemetry/metrics.hpp"

using namespace oopp;

namespace {

class Echo {
 public:
  std::uint64_t echo(std::uint64_t v) { return v; }
};

}  // namespace

template <>
struct oopp::rpc::class_def<Echo> {
  static std::string name() { return "bench.e16.Echo"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Echo::echo>("echo");
  }
};

namespace {

struct RunResult {
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  double calls_per_sec = 0;
};

/// One configuration: `conns` client machines, `inflight` windowed calls
/// each, `per_client` total calls each, against machine 0 hosting one
/// echo object per client.  Returns merged per-call completion latency
/// percentiles.
RunResult run_config(bool reactor, int conns, int inflight, int per_client) {
  Cluster::Options opts;
  opts.machines = static_cast<std::size_t>(conns) + 1;
  opts.fabric = Cluster::FabricKind::kTcp;
  opts.transport.reactor = reactor;
  Cluster cluster(opts);

  std::vector<remote_ptr<Echo>> objs;
  objs.reserve(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c)
    objs.push_back(cluster.make_remote<Echo>(0));

  std::vector<std::vector<std::int64_t>> samples(
      static_cast<std::size_t>(conns));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(conns));
  const std::int64_t t0 = now_ns();
  for (int c = 0; c < conns; ++c) {
    clients.emplace_back([&, c] {
      auto guard = cluster.use(static_cast<net::MachineId>(c + 1));
      auto& obj = objs[static_cast<std::size_t>(c)];
      // Warm-up: establish the link and the object's first dispatch.
      (void)obj.call<&Echo::echo>(0);

      auto& mine = samples[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(per_client));
      std::vector<std::pair<Future<std::uint64_t>, std::int64_t>> window;
      window.reserve(static_cast<std::size_t>(inflight));
      std::size_t head = 0;
      for (int i = 0; i < per_client; ++i) {
        window.emplace_back(obj.async<&Echo::echo>(
                                static_cast<std::uint64_t>(i)),
                            now_ns());
        if (window.size() - head >= static_cast<std::size_t>(inflight)) {
          auto& [f, issued] = window[head++];
          (void)f.get_for(std::chrono::seconds(30));
          mine.push_back(now_ns() - issued);
          if (head == window.size()) {
            window.clear();
            head = 0;
          }
        }
      }
      for (; head < window.size(); ++head) {
        auto& [f, issued] = window[head];
        (void)f.get_for(std::chrono::seconds(30));
        mine.push_back(now_ns() - issued);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;

  for (auto& o : objs) o.destroy();

  std::vector<std::int64_t> merged;
  merged.reserve(static_cast<std::size_t>(conns) *
                 static_cast<std::size_t>(per_client));
  for (auto& s : samples) merged.insert(merged.end(), s.begin(), s.end());
  std::sort(merged.begin(), merged.end());

  RunResult r;
  r.p50_ns = bench::percentile_ns(merged, 0.50);
  r.p99_ns = bench::percentile_ns(merged, 0.99);
  r.calls_per_sec = static_cast<double>(merged.size()) / secs;
  return r;
}

/// Best (lowest p99) of `reps` runs — min is the usual estimator for the
/// structural cost on a shared CI runner; scheduler noise only adds time.
RunResult best_of(int reps, bool reactor, int conns, int inflight,
                  int per_client) {
  RunResult best = run_config(reactor, conns, inflight, per_client);
  for (int r = 1; r < reps; ++r) {
    RunResult next = run_config(reactor, conns, inflight, per_client);
    if (next.p99_ns < best.p99_ns) best = next;
  }
  return best;
}

void note_dispatch_telemetry() {
  auto& dispatch = telemetry::Metrics::scope_for("rpc.dispatch");
  auto& reactor = telemetry::Metrics::scope_for("net.reactor");
  bench::note("rpc.dispatch: routed=%llu queue_full_rejects=%llu",
              static_cast<unsigned long long>(
                  dispatch.counter("routed").value()),
              static_cast<unsigned long long>(
                  dispatch.counter("queue_full_rejects").value()));
  bench::note("net.reactor : accepts=%llu frames=%llu bytes=%llu",
              static_cast<unsigned long long>(
                  reactor.counter("accepts").value()),
              static_cast<unsigned long long>(
                  reactor.counter("frames").value()),
              static_cast<unsigned long long>(
                  reactor.counter("bytes").value()));
}

// CI smoke: the 4-config gate at constant total in-flight (64).  The
// reactor must carry 4x the connections of the 16-conn thread-per-peer
// config at equal-or-better p99, and must not lose to thread-per-peer on
// the same 64-connection shape.
int run_smoke() {
  bench::headline("E16  many concurrent clients (smoke)",
                  "reactor + N:M dispatch sustains 4x connections at "
                  "equal-or-better p99 than thread-per-peer readers");
  const int per_client_64 = 150;
  const int per_client_16 = 600;  // same total calls per config
  const int reps = 3;

  const RunResult tpp16 = best_of(reps, false, 16, 4, per_client_16);
  const RunResult tpp64 = best_of(reps, false, 64, 1, per_client_64);
  const RunResult re16 = best_of(reps, true, 16, 4, per_client_16);
  const RunResult re64 = best_of(reps, true, 64, 1, per_client_64);

  std::printf("\n%-22s | %10s %10s %12s\n", "config (conns x depth)",
              "p50 us", "p99 us", "calls/s");
  std::printf("-----------------------+-----------------------------------\n");
  const auto row = [](const char* name, const RunResult& r) {
    std::printf("%-22s | %10.1f %10.1f %12.0f\n", name,
                static_cast<double>(r.p50_ns) / 1e3,
                static_cast<double>(r.p99_ns) / 1e3, r.calls_per_sec);
  };
  row("thread-per-peer 16x4", tpp16);
  row("thread-per-peer 64x1", tpp64);
  row("reactor         16x4", re16);
  row("reactor         64x1", re64);
  note_dispatch_telemetry();

  bench::emit_json_fields(
      "e16",
      {{"per_client_64", static_cast<double>(per_client_64)},
       {"per_client_16", static_cast<double>(per_client_16)},
       {"tpp16x4_p50_ns", static_cast<double>(tpp16.p50_ns)},
       {"tpp16x4_p99_ns", static_cast<double>(tpp16.p99_ns)},
       {"tpp64x1_p50_ns", static_cast<double>(tpp64.p50_ns)},
       {"tpp64x1_p99_ns", static_cast<double>(tpp64.p99_ns)},
       {"reactor16x4_p50_ns", static_cast<double>(re16.p50_ns)},
       {"reactor16x4_p99_ns", static_cast<double>(re16.p99_ns)},
       {"reactor64x1_p50_ns", static_cast<double>(re64.p50_ns)},
       {"reactor64x1_p99_ns", static_cast<double>(re64.p99_ns)},
       {"reactor64x1_calls_per_sec", re64.calls_per_sec}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  bench::headline("E16  many concurrent clients",
                  "connection count x per-connection depth sweep at "
                  "constant aggregate load; the reactor decouples server "
                  "threads from peer count");

  const int per_client = 400;
  std::printf("\n%8s | %5s %7s | %10s %10s %12s\n", "mode", "conns",
              "depth", "p50 us", "p99 us", "calls/s");
  std::printf("---------+---------------+-----------------------------------\n");
  for (const bool reactor : {false, true}) {
    for (const int conns : {4, 16, 64}) {
      for (const int inflight : {1, 4}) {
        const RunResult r = best_of(2, reactor, conns, inflight, per_client);
        std::printf("%8s | %5d %7d | %10.1f %10.1f %12.0f\n",
                    reactor ? "reactor" : "tpp", conns, inflight,
                    static_cast<double>(r.p50_ns) / 1e3,
                    static_cast<double>(r.p99_ns) / 1e3, r.calls_per_sec);
      }
    }
  }
  note_dispatch_telemetry();

  std::printf("\nshape checks:\n");
  bench::note("thread-per-peer spawns one reader per connection: p99 "
              "climbs with conns as the scheduler thrashes");
  bench::note("reactor p99 stays ~flat across the conns sweep at equal "
              "aggregate in-flight");
  return 0;
}
