// E10 — ablation: where a remote method execution spends its time.
//
// DESIGN.md §5 calls out the runtime's design choices; this bench
// decomposes the cost of one call on the zero-cost fabric (so only the
// framework itself is measured):
//
//   serialize    — encode + decode of the argument payload, no network;
//   ping         — full round trip through the object's command queue,
//                  empty payload (dispatch + queue + transport);
//   reentrant    — same round trip bypassing the command queue
//                  (ablation of the actor/process semantics);
//   echo         — full round trip carrying the payload both ways.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/oopp.hpp"

using namespace oopp;

namespace {

class Probe {
 public:
  Probe() = default;
  void noop() {}
  void noop_fast() {}
  std::uint64_t echo(const std::vector<std::uint8_t>& bytes) {
    return bytes.size();
  }

 private:
};

}  // namespace

template <>
struct oopp::rpc::class_def<Probe> {
  static std::string name() { return "bench.Probe"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Probe::noop>("noop");
    b.template method<&Probe::noop_fast>("noop_fast", reentrant);
    b.template method<&Probe::echo>("echo");
  }
};

int main() {
  bench::headline("E10 ablation: cost breakdown of a remote method call",
                  "serialization, transport/dispatch and the per-object "
                  "command queue each contribute; the queue costs little");

  Cluster cluster(2);  // zero-cost fabric: pure framework overhead
  auto probe = cluster.make_remote<Probe>(1);

  // Warm-up (registration, pool growth).
  for (int i = 0; i < 100; ++i) probe.call<&Probe::noop>();

  const int reps = 2001;
  const double ping_us = bench::median_seconds(5, [&] {
                           for (int i = 0; i < reps; ++i)
                             probe.call<&Probe::noop>();
                         }) /
                         reps * 1e6;
  const double fast_us = bench::median_seconds(5, [&] {
                           for (int i = 0; i < reps; ++i)
                             probe.call<&Probe::noop_fast>();
                         }) /
                         reps * 1e6;

  std::printf("\nempty-payload round trip: queued %.2f us, reentrant %.2f "
              "us (queue overhead %.2f us)\n",
              ping_us, fast_us, ping_us - fast_us);

  std::printf("\n%10s | %14s %14s %16s\n", "payload", "serialize us",
              "echo us", "echo - ping us");
  std::printf("-----------+-----------------------------------------------\n");
  for (std::size_t size : {0u, 256u, 4096u, 65536u, 1048576u}) {
    std::vector<std::uint8_t> payload(size, 0x5a);
    const int r = size >= 65536 ? 101 : 1001;

    const double ser_us =
        bench::median_seconds(5, [&] {
          for (int i = 0; i < r; ++i) {
            serial::OArchive oa;
            oa(payload);
            serial::IArchive ia(oa.bytes());
            auto back = ia.read<std::vector<std::uint8_t>>();
            (void)back;
          }
        }) /
        r * 1e6;

    const double echo_us = bench::median_seconds(5, [&] {
                             for (int i = 0; i < r; ++i)
                               (void)probe.call<&Probe::echo>(payload);
                           }) /
                           r * 1e6;

    std::printf("%9zuB | %14.2f %14.2f %16.2f\n", size, ser_us, echo_us,
                echo_us - ping_us);
  }

  std::printf("\nshape checks:\n");
  bench::note("queue overhead (queued - reentrant) is a small constant — "
              "process semantics is cheap");
  bench::note("serialize is ~2 memcpys of the payload and dominates echo "
              "growth; the remainder is dispatch + wakeups");
  return 0;
}
