// E9 — group barrier cost (paper §4).
//
// Claim: "an explicit compiler-supported barrier method for arrays of
// objects may be useful.  For example, the processes belonging to the fft
// array can be synchronized with fft->barrier();"
//
// The barrier is a ping through every member's command queue, issued as a
// split loop.  Cost should stay ~flat in group size on a latency-bound
// fabric (pings overlap), and the barrier must order correctly after
// in-flight work.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "core/oopp.hpp"

using namespace oopp;

namespace {

class Sleeper {
 public:
  Sleeper() = default;
  int nap(int ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return ++naps_;
  }
  int naps() const { return naps_; }

 private:
  int naps_ = 0;
};

}  // namespace

template <>
struct oopp::rpc::class_def<Sleeper> {
  static std::string name() { return "bench.Sleeper"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Sleeper::nap>("nap");
    b.template method<&Sleeper::naps>("naps");
  }
};

int main() {
  bench::headline("E9  group barrier (paper §4)",
                  "barrier = split-loop ping through every member's command "
                  "queue: ~flat in group size, ordered after pending work");

  Cluster::Options opts;
  opts.machines = 4;
  opts.cost = net::CostModel::hpc_fabric();
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);

  std::printf("\n%4s | %14s %18s\n", "N", "idle barrier us",
              "barrier after work ms");
  std::printf("-----+------------------------------------\n");

  for (int n : {2, 4, 8, 16, 32, 64}) {
    ProcessGroup<Sleeper> group;
    for (int i = 0; i < n; ++i)
      group.push_back(cluster.make_remote<Sleeper>(
          static_cast<net::MachineId>(i % cluster.size())));

    const double idle_us =
        bench::median_seconds(15, [&] { group.barrier(); }) * 1e6;

    // Barrier must wait for in-flight commands: each member gets a 10 ms
    // nap; the barrier should cost ~10 ms (overlapped), not n x 10 ms.
    const double busy_ms = bench::median_seconds(3, [&] {
      auto futs = group.async<&Sleeper::nap>(10);
      group.barrier();
      for (auto& f : futs) (void)f.get();
    }) * 1e3;

    std::printf("%4d | %14.0f %18.1f\n", n, idle_us, busy_ms);
    group.destroy_all();
  }

  std::printf("\nshape checks:\n");
  bench::note("idle barrier ~flat in N (pings overlap on the fabric)");
  bench::note("busy barrier ~ the nap length, not N x nap: it waits for "
              "each member exactly once, in parallel");
  return 0;
}
