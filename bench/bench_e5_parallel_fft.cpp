// E5 — the distributed FFT process group (paper §4, §1).
//
// Claim: a group of N FFT processes jointly computes the transform of a
// 3-D array, exchanging slabs by executing methods on remote objects.
//
// On this single-core host compute cannot speed up with N, so the
// experiment reports what the framework controls: correctness against the
// node-local FFT, wall time, and the communication volume (messages and
// bytes) the group exchanges — plus the §4 wiring ablation: the deep-
// copied group (SetGroup's "preferable" form) vs chasing a remote
// directory of pointers on every peer access.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "fft/fft3d.hpp"
#include "fft/fft_worker.hpp"
#include "util/prng.hpp"

using namespace oopp;
using fft::cplx;

namespace {

struct RunResult {
  double ms = 0.0;
  double err = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

RunResult run(Cluster& cluster, const Extents3& e, int workers,
              bool use_directory, const std::vector<cplx>& input,
              const std::vector<cplx>& expect) {
  fft::DistributedFFT3D dfft(
      e, workers,
      [&](int w) {
        return static_cast<net::MachineId>(w % cluster.size());
      },
      fft::DistributedFFT3D::Options{.use_directory = use_directory,
                                     .restore_layout = true});
  dfft.scatter(input);

  const auto m0 = cluster.fabric().messages_sent();
  const auto b0 = cluster.fabric().bytes_sent();
  Timer t;
  dfft.forward();
  RunResult r;
  r.ms = t.millis();
  r.messages = cluster.fabric().messages_sent() - m0;
  r.bytes = cluster.fabric().bytes_sent() - b0;

  auto got = dfft.gather();
  for (std::size_t i = 0; i < got.size(); ++i)
    r.err = std::max(r.err, std::abs(got[i] - expect[i]));
  dfft.shutdown();
  return r;
}

}  // namespace

int main() {
  bench::headline("E5  distributed 3-D FFT process group (paper §4)",
                  "N processes jointly transform the array via remote "
                  "method execution; deep-copied group wiring beats "
                  "directory chasing");

  Cluster::Options opts;
  opts.machines = 4;
  opts.cost = net::CostModel::commodity_cluster();
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);

  const Extents3 e{32, 32, 32};
  bench::note("array: %lld x %lld x %lld complex (%.1f MiB); single core — "
              "communication, not compute, is under test",
              static_cast<long long>(e.n1), static_cast<long long>(e.n2),
              static_cast<long long>(e.n3),
              double(e.volume()) * sizeof(cplx) / (1 << 20));

  Xoshiro256 rng(5);
  std::vector<cplx> input(static_cast<std::size_t>(e.volume()));
  for (auto& v : input) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));

  auto expect = input;
  Timer t;
  fft::fft3d_inplace(expect, e, -1);
  const double local_ms = t.millis();
  std::printf("\nnode-local 3-D FFT baseline: %.1f ms\n", local_ms);

  std::printf("\n%3s %10s | %10s %10s %10s %12s\n", "N", "wiring", "ms",
              "max err", "msgs", "MiB moved");
  std::printf("---------------+-----------------------------------------------\n");

  for (int workers : {1, 2, 4, 8}) {
    for (bool use_dir : {false, true}) {
      if (workers == 1 && use_dir) continue;
      const auto r = run(cluster, e, workers, use_dir, input, expect);
      std::printf("%3d %10s | %10.1f %10.2e %10llu %12.2f\n", workers,
                  use_dir ? "directory" : "deep-copy", r.ms, r.err,
                  static_cast<unsigned long long>(r.messages),
                  double(r.bytes) / (1 << 20));
    }
  }

  std::printf("\nshape checks:\n");
  bench::note("max err ~1e-12 for every N: the group computes the same "
              "transform");
  bench::note("bytes moved ~2 x array (forward + layout-restore all-to-all)");
  bench::note("directory wiring roughly doubles the message count "
              "(deterministic: 2 lookup round trips per peer per exchange); "
              "its latency cost emerges as N grows — at small N it hides "
              "in this host's scheduling noise");
  return 0;
}
