// E11 — collective operations: flat fan-out vs binomial tree.
//
// Claim (paper conclusion): the objects-as-processes framework has the
// expressive power of the established models — here, MPI-style
// collectives built purely from remote method execution.
//
// With a finite NIC injection bandwidth (LogGP-style egress modeling), a
// flat broadcast from one machine injects N copies of the payload through
// one port (~N x bytes/G), while the binomial tree spreads injection over
// the members (~log2 N rounds).  The crossover in N and payload size is
// the classic result; reproducing it validates both the collectives and
// the egress model.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "coll/collectives.hpp"
#include "core/oopp.hpp"

using namespace oopp;
namespace coll = oopp::coll;
using coll::CollWorker;
using coll::Topology;

int main() {
  bench::headline("E11 collectives: flat vs binomial tree",
                  "finite-egress NIC: flat broadcast ~N x (bytes/G), tree "
                  "~log2(N) rounds");

  // NIC ports are the scarce resource: injection and drain at 10 MB/s so
  // the simulated occupancy dwarfs the single-core marshaling cost and
  // the classic LogGP shapes emerge cleanly.
  Cluster::Options opts;
  opts.machines = 32;
  opts.cost = net::CostModel{.latency_ns = 20'000,
                             .bytes_per_us = 5'000.0,
                             .per_message_ns = 200,
                             .egress_bytes_per_us = 10.0,
                             .egress_per_message_ns = 1'000,
                             .ingress_bytes_per_us = 10.0,
                             .ingress_per_message_ns = 1'000};
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);
  bench::note("NIC model: 10 MB/s egress AND ingress, 1 us per message");

  const std::size_t kLen = 1024;  // 8 KiB payload → ~0.84 ms per NIC pass
  std::vector<double> payload(kLen, 1.25);
  std::printf("\npayload: %zu doubles (%.0f KiB)\n", kLen,
              kLen * sizeof(double) / 1024.0);

  std::printf("\nbroadcast:\n%4s | %12s %12s | %8s\n", "N", "flat ms",
              "tree ms", "ratio");
  std::printf("-----+---------------------------+---------\n");
  for (int n : {2, 4, 8, 16, 32}) {
    auto group = coll::make_group<double>(n, [&](int i) {
      return static_cast<net::MachineId>(i % cluster.size());
    });
    const double flat_ms = bench::median_seconds(3, [&] {
                             coll::broadcast(group, 0, payload,
                                             Topology::kFlat);
                           }) * 1e3;
    const double tree_ms = bench::median_seconds(3, [&] {
                             coll::broadcast(group, 0, payload,
                                             Topology::kTree);
                           }) * 1e3;
    std::printf("%4d | %12.2f %12.2f | %7.2fx\n", n, flat_ms, tree_ms,
                flat_ms / tree_ms);
    group.destroy_all();
  }

  std::printf("\nreduce (sum):\n%4s | %12s %12s | %8s\n", "N", "flat ms",
              "tree ms", "ratio");
  std::printf("-----+---------------------------+---------\n");
  for (int n : {2, 4, 8, 16, 32}) {
    auto group = coll::make_group<double>(n, [&](int i) {
      return static_cast<net::MachineId>(i % cluster.size());
    });
    coll::broadcast(group, 0, payload, Topology::kTree);  // fill data
    const double flat_ms = bench::median_seconds(3, [&] {
                             (void)coll::reduce(group, 0,
                                                coll::ReduceKind::kSum,
                                                Topology::kFlat);
                           }) * 1e3;
    const double tree_ms = bench::median_seconds(3, [&] {
                             (void)coll::reduce(group, 0,
                                                coll::ReduceKind::kSum,
                                                Topology::kTree);
                           }) * 1e3;
    std::printf("%4d | %12.2f %12.2f | %7.2fx\n", n, flat_ms, tree_ms,
                flat_ms / tree_ms);
    group.destroy_all();
  }

  std::printf("\nshape checks:\n");
  bench::note("flat grows ~linearly in N (root's NIC carries N payload "
              "copies); tree grows ~log2(N)");
  bench::note("crossover near N=8: below it the tree's extra hop latency "
              "dominates, above it the ratio widens (the classic result)");
  bench::note("reduce mirrors broadcast: flat concentrates N inbound "
              "payloads at the root's ingress port");
  return 0;
}
