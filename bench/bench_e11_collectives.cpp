// E11 — collective operations: flat fan-out vs binomial tree.
//
// Claim (paper conclusion): the objects-as-processes framework has the
// expressive power of the established models — here, MPI-style
// collectives built purely from remote method execution.
//
// With a finite NIC injection bandwidth (LogGP-style egress modeling), a
// flat broadcast from one machine injects N copies of the payload through
// one port (~N x bytes/G), while the binomial tree spreads injection over
// the members (~log2 N rounds).  The crossover in N and payload size is
// the classic result; reproducing it validates both the collectives and
// the egress model.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "coll/collectives.hpp"
#include "coll/communicator.hpp"
#include "core/oopp.hpp"
#include "net/inproc_fabric.hpp"
#include "util/clock.hpp"

using namespace oopp;
namespace coll = oopp::coll;
using coll::CollWorker;
using coll::Topology;

namespace {

const char* algo_name(coll::Algo a) {
  switch (a) {
    case coll::Algo::kTwoPass: return "two-pass";
    case coll::Algo::kRing: return "ring";
    case coll::Algo::kHalving: return "halving";
    default: return "auto";
  }
}

/// CI smoke: the single-pass allreduce (reduce-scatter + allgather) vs
/// the segmented two-pass tree vs the legacy whole-vector all_reduce, at
/// 64 KiB / 1 MiB / 8 MiB over 16 members — plus the N=64 group-setup
/// win (tree wiring vs the old flat O(N^2) loop).
///
/// The fixture is built over a free network; the E11 NIC model is dialed
/// in only for the measured sections (set_cost_model), with the port at
/// 100 B/us instead of the full bench's 10 B/us so the 8 MiB point fits
/// CI.  Both algorithms are bandwidth-bound there, so the ratio the gate
/// checks is unchanged — only the wall-clock scale shrinks.
int run_smoke() {
  bench::headline("E11 smoke: single-pass vs two-pass allreduce",
                  "reduce-scatter + allgather moves ~2B per NIC; the "
                  "two-pass tree moves ~2*log2(N)*B through the root");

  net::InProcFabric* fabric = nullptr;
  Cluster::Options opts;
  opts.machines = 32;
  opts.fabric_factory = [&](std::size_t m) {
    auto f = std::make_unique<net::InProcFabric>(m);  // free while wiring
    fabric = f.get();
    return f;
  };
  Cluster cluster(opts);

  const net::CostModel model{.latency_ns = 20'000,
                             .bytes_per_us = 5'000.0,
                             .per_message_ns = 200,
                             .egress_bytes_per_us = 100.0,
                             .egress_per_message_ns = 1'000,
                             .ingress_bytes_per_us = 100.0,
                             .ingress_per_message_ns = 1'000};
  bench::describe_cost(model);
  bench::note("NIC model: 100 B/us egress AND ingress (E11 model, 10x "
              "faster port so the smoke fits CI)");

  const int n = 16;  // one member per machine: every member owns a NIC
  std::vector<net::MachineId> machines;
  machines.reserve(n);
  for (int i = 0; i < n; ++i)
    machines.push_back(static_cast<net::MachineId>(i));
  auto group = coll::make_group<double>(
      n, [](int i) { return static_cast<net::MachineId>(i); });
  auto comm =
      coll::Communicator::on_machines(machines, coll::CommunicatorOptions{model});

  std::vector<std::pair<std::string, double>> fields;
  std::printf("\nallreduce, %d members:\n%8s | %10s %12s %12s | %8s\n",
              n, "payload", "legacy ms", "two-pass ms", "single ms",
              "speedup");
  std::printf("---------+------------------------------------+---------\n");

  struct Row {
    const char* tag;
    std::size_t len;  // doubles
    int reps;
  };
  for (const Row& row : {Row{"64k", 8'192, 3}, Row{"1m", 131'072, 3},
                         Row{"8m", 1'048'576, 1}}) {
    const std::vector<double> payload(row.len, 1.25);
    // Stage the member-resident vectors while the network is free.
    for (int i = 0; i < n; ++i)
      group[static_cast<std::size_t>(i)]
          .call<&CollWorker<double>::set_data>(payload);
    comm.set_member_data(
        std::vector<std::vector<double>>(static_cast<std::size_t>(n),
                                         payload));

    fabric->set_cost_model(model);
    // Legacy API: whole-vector tree reduce to the master + tree bcast.
    const double legacy_ms =
        bench::median_seconds(row.reps, [&] {
          (void)coll::all_reduce(group, coll::ReduceKind::kSum,
                                 Topology::kTree);
        }) * 1e3;
    // New segmented two-pass (reduce + bcast trees, pipelined segments).
    const double twopass_ms =
        bench::median_seconds(row.reps, [&] {
          (void)comm.allreduce_members(coll::ReduceKind::kSum,
                                       coll::Algo::kTwoPass);
        }) * 1e3;
    // Single-pass: reduce-scatter + allgather, algorithm chosen by the
    // cost hints (halving on 16 members).
    coll::Algo used = coll::Algo::kAuto;
    const double single_ms =
        bench::median_seconds(row.reps, [&] {
          used = comm.allreduce_members(coll::ReduceKind::kSum);
        }) * 1e3;
    fabric->set_cost_model(net::CostModel::zero());

    std::printf("%8s | %10.1f %12.1f %12.1f | %7.2fx  (%s)\n", row.tag,
                legacy_ms, twopass_ms, single_ms, twopass_ms / single_ms,
                algo_name(used));
    fields.emplace_back(std::string("legacy_") + row.tag + "_ms", legacy_ms);
    fields.emplace_back(std::string("twopass_") + row.tag + "_ms",
                        twopass_ms);
    fields.emplace_back(std::string("single_") + row.tag + "_ms", single_ms);
    fields.emplace_back(std::string("speedup_") + row.tag,
                        twopass_ms / single_ms);
  }
  // The gate point: 8 MiB under the *true* E11 NIC (10 B/us).  At the
  // smoke's 100 B/us port the modeled transfer shrinks to the same order
  // as the fixed serialize/sum/memcpy work, compressing the ratio; at
  // the real port both algorithms are bandwidth-dominated and the
  // ~2*log2(N)*B vs ~2B per-NIC byte counts show through.  Two runs
  // (one per algorithm), no legacy, so the section stays CI-sized.
  {
    const std::size_t len = 1'048'576;  // 8 MiB of doubles
    const std::vector<double> payload(len, 1.25);
    comm.set_member_data(
        std::vector<std::vector<double>>(static_cast<std::size_t>(n),
                                         payload));
    net::CostModel true_model = model;
    true_model.egress_bytes_per_us = 10.0;
    true_model.ingress_bytes_per_us = 10.0;
    fabric->set_cost_model(true_model);
    Timer t2;
    (void)comm.allreduce_members(coll::ReduceKind::kSum,
                                 coll::Algo::kTwoPass);
    const double gate_twopass_ms = t2.millis();
    Timer t1;
    const coll::Algo used = comm.allreduce_members(coll::ReduceKind::kSum);
    const double gate_single_ms = t1.millis();
    fabric->set_cost_model(net::CostModel::zero());

    std::printf("\n8 MiB gate under the true 10 B/us port:\n"
                "  two-pass: %8.1f ms   single-pass: %8.1f ms   "
                "(%.2fx, %s)\n",
                gate_twopass_ms, gate_single_ms,
                gate_twopass_ms / gate_single_ms, algo_name(used));
    fields.emplace_back("gate8m_twopass_ms", gate_twopass_ms);
    fields.emplace_back("gate8m_single_ms", gate_single_ms);
    fields.emplace_back("gate8m_speedup",
                        gate_twopass_ms / gate_single_ms);
  }
  comm.destroy();
  group.destroy_all();

  // Group setup at N=64: the old flat wiring pushes N serialized group
  // copies (O(N^2) bytes) through the master's egress port; the tree
  // wiring injects one copy and lets the members fan it out.
  const int big = 64;
  ProcessGroup<CollWorker<double>> flat_g, tree_g;
  for (int i = 0; i < big; ++i) {
    const auto m = static_cast<net::MachineId>(i % opts.machines);
    flat_g.push_back(make_remote<CollWorker<double>>(m, i));
    tree_g.push_back(make_remote<CollWorker<double>>(m, i));
  }
  fabric->set_cost_model(model);
  Timer tf;
  for (int i = 0; i < big; ++i)
    flat_g[static_cast<std::size_t>(i)]
        .call<&CollWorker<double>::set_group>(big, flat_g);
  const double setup_flat_ms = tf.millis();
  Timer tt;
  tree_g[0].call<&CollWorker<double>::wire_group>(0, big, big, tree_g);
  const double setup_tree_ms = tt.millis();
  fabric->set_cost_model(net::CostModel::zero());
  flat_g.destroy_all();
  tree_g.destroy_all();

  std::printf("\ngroup setup, N=%d over %zu machines:\n", big,
              opts.machines);
  std::printf("  flat wiring: %8.1f ms   tree wiring: %8.1f ms   "
              "(%.1fx)\n",
              setup_flat_ms, setup_tree_ms, setup_flat_ms / setup_tree_ms);
  fields.emplace_back("setup_flat_ms", setup_flat_ms);
  fields.emplace_back("setup_tree_ms", setup_tree_ms);
  fields.emplace_back("setup_speedup", setup_flat_ms / setup_tree_ms);

  bench::emit_json_fields("e11", fields);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  bench::headline("E11 collectives: flat vs binomial tree",
                  "finite-egress NIC: flat broadcast ~N x (bytes/G), tree "
                  "~log2(N) rounds");

  // NIC ports are the scarce resource: injection and drain at 10 MB/s so
  // the simulated occupancy dwarfs the single-core marshaling cost and
  // the classic LogGP shapes emerge cleanly.
  Cluster::Options opts;
  opts.machines = 32;
  opts.cost = net::CostModel{.latency_ns = 20'000,
                             .bytes_per_us = 5'000.0,
                             .per_message_ns = 200,
                             .egress_bytes_per_us = 10.0,
                             .egress_per_message_ns = 1'000,
                             .ingress_bytes_per_us = 10.0,
                             .ingress_per_message_ns = 1'000};
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);
  bench::note("NIC model: 10 MB/s egress AND ingress, 1 us per message");

  const std::size_t kLen = 1024;  // 8 KiB payload → ~0.84 ms per NIC pass
  std::vector<double> payload(kLen, 1.25);
  std::printf("\npayload: %zu doubles (%.0f KiB)\n", kLen,
              kLen * sizeof(double) / 1024.0);

  std::printf("\nbroadcast:\n%4s | %12s %12s | %8s\n", "N", "flat ms",
              "tree ms", "ratio");
  std::printf("-----+---------------------------+---------\n");
  for (int n : {2, 4, 8, 16, 32}) {
    auto group = coll::make_group<double>(n, [&](int i) {
      return static_cast<net::MachineId>(i % cluster.size());
    });
    const double flat_ms = bench::median_seconds(3, [&] {
                             coll::broadcast(group, 0, payload,
                                             Topology::kFlat);
                           }) * 1e3;
    const double tree_ms = bench::median_seconds(3, [&] {
                             coll::broadcast(group, 0, payload,
                                             Topology::kTree);
                           }) * 1e3;
    std::printf("%4d | %12.2f %12.2f | %7.2fx\n", n, flat_ms, tree_ms,
                flat_ms / tree_ms);
    group.destroy_all();
  }

  std::printf("\nreduce (sum):\n%4s | %12s %12s | %8s\n", "N", "flat ms",
              "tree ms", "ratio");
  std::printf("-----+---------------------------+---------\n");
  for (int n : {2, 4, 8, 16, 32}) {
    auto group = coll::make_group<double>(n, [&](int i) {
      return static_cast<net::MachineId>(i % cluster.size());
    });
    coll::broadcast(group, 0, payload, Topology::kTree);  // fill data
    const double flat_ms = bench::median_seconds(3, [&] {
                             (void)coll::reduce(group, 0,
                                                coll::ReduceKind::kSum,
                                                Topology::kFlat);
                           }) * 1e3;
    const double tree_ms = bench::median_seconds(3, [&] {
                             (void)coll::reduce(group, 0,
                                                coll::ReduceKind::kSum,
                                                Topology::kTree);
                           }) * 1e3;
    std::printf("%4d | %12.2f %12.2f | %7.2fx\n", n, flat_ms, tree_ms,
                flat_ms / tree_ms);
    group.destroy_all();
  }

  std::printf("\nshape checks:\n");
  bench::note("flat grows ~linearly in N (root's NIC carries N payload "
              "copies); tree grows ~log2(N)");
  bench::note("crossover near N=8: below it the tree's extra hop latency "
              "dominates, above it the ratio widens (the classic result)");
  bench::note("reduce mirrors broadcast: flat concentrates N inbound "
              "payloads at the root's ingress port");
  return 0;
}
