// E14 — extension: coherent page caching over the storage substrate.
//
// The §2 shared-data-block model makes every access a round trip; a DSM-
// style cache keeps hot pages next to the computation while write
// invalidations (remote methods flowing device → cache) preserve
// coherence.  Expected shapes:
//   * read-heavy, skewed access: cached throughput >> uncached, growing
//     with the hit rate;
//   * write-heavy access: invalidation traffic erodes the benefit — the
//     classic DSM trade-off.
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "dsm/page_cache.hpp"
#include "util/prng.hpp"

using namespace oopp;
using dsm::CoherentDevice;
using dsm::PageCache;
using bench::ScratchDir;

namespace {

// CI smoke: a cold sequential scan through the cache, read-ahead off vs
// on.  With read-ahead, one batched read_arrays_subscribe call moves the
// whole window (amortizing the device's per-run service time) and the
// next window is fetched while the stream consumes the current one.
// Emits BENCH_e14.json; CI fails the job if read-ahead does not win.
int run_smoke() {
  bench::headline("E14 sequential scan, read-ahead off vs on (smoke)",
                  "a detected stream turns N page round trips into N/W "
                  "batched windows fetched ahead of the reader");
  Cluster cluster(2);
  ScratchDir dir("e14s");

  constexpr int kPages = 64;
  constexpr int n = 8;  // 8^3 doubles = 4 KiB pages
  constexpr std::uint32_t kServiceUs = 200;
  constexpr std::uint32_t kWindow = 8;

  auto device = cluster.make_remote<CoherentDevice>(
      0, dir.file("dev"), kPages, n, n, n,
      storage::DeviceOptions{.service_us = kServiceUs});
  storage::ArrayPage page(n, n, n);
  for (int p = 0; p < kPages; ++p)
    device.call<&CoherentDevice::write_array_coherent>(page, p);

  std::uint64_t useful = 0, wasted = 0;
  auto scan_ms = [&](std::uint32_t readahead) {
    // Median of 3 cold scans, fresh cache each (no residual hits).
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
      auto cache = cluster.make_remote<PageCache>(
          1, std::uint32_t{kPages},
          dsm::PageCacheOptions{.readahead = readahead});
      cache.call<&PageCache::set_self>(cache);
      Timer t;
      for (int p = 0; p < kPages; ++p)
        (void)cache.call<&PageCache::read_array>(device, p);
      times.push_back(t.seconds());
      if (readahead > 0) {
        useful = cache.call<&PageCache::prefetch_useful>();
        wasted = cache.call<&PageCache::prefetch_wasted>();
      }
      cache.destroy();
    }
    std::sort(times.begin(), times.end());
    return times[1] * 1e3;
  };

  const double off_ms = scan_ms(0);
  const double on_ms = scan_ms(kWindow);
  const double speedup = off_ms / on_ms;
  bench::note("%d pages, %u us service, window %u:", kPages, kServiceUs,
              kWindow);
  bench::note("  read-ahead off: %8.1f ms", off_ms);
  bench::note("  read-ahead on : %8.1f ms  (%.2fx, %llu useful / %llu "
              "wasted prefetches)",
              on_ms, speedup, static_cast<unsigned long long>(useful),
              static_cast<unsigned long long>(wasted));
  bench::emit_json_fields("e14",
                          {{"prefetch_off_ms", off_ms},
                           {"prefetch_on_ms", on_ms},
                           {"prefetch_speedup", speedup},
                           {"prefetch_useful", static_cast<double>(useful)},
                           {"prefetch_wasted", static_cast<double>(wasted)}});
  device.destroy();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  bench::headline("E14 coherent page cache (DSM flavour over §2)",
                  "hot-page reads served machine-locally; write "
                  "invalidations keep every cache coherent");

  Cluster::Options opts;
  opts.machines = 3;
  opts.cost = net::CostModel::commodity_cluster();
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);
  ScratchDir dir("e14");

  constexpr int kPages = 16;
  constexpr int kHot = 4;  // the skew: most reads hit 4 pages
  constexpr int n = 16;    // 16^3 doubles = 32 KiB pages
  constexpr std::uint32_t kServiceUs = 800;

  auto device = cluster.make_remote<CoherentDevice>(
      0, dir.file("dev"), kPages, n, n, n,
      storage::DeviceOptions{.service_us = kServiceUs});
  auto cache = cluster.make_remote<PageCache>(1, std::uint32_t{8});
  cache.call<&PageCache::set_self>(cache);

  storage::ArrayPage page(n, n, n);
  for (int p = 0; p < kPages; ++p)
    device.call<&CoherentDevice::write_array_coherent>(page, p);
  bench::note("%d pages of %d^3 doubles, %u us device service, cache on "
              "machine 1 holds 8 pages",
              kPages, n, kServiceUs);

  std::printf("\n%12s | %12s %12s | %8s | %s\n", "write ratio",
              "uncached ms", "cached ms", "speedup", "hit rate");
  std::printf("-------------+---------------------------+----------+------\n");

  Xoshiro256 rng(55);
  for (double write_ratio : {0.0, 0.05, 0.2, 0.5}) {
    // One access trace reused by both variants.
    constexpr int kOps = 300;
    struct Op {
      int page;
      bool write;
    };
    std::vector<Op> trace;
    for (int i = 0; i < kOps; ++i) {
      const bool hot = rng.uniform() < 0.9;
      trace.push_back({hot ? static_cast<int>(rng.below(kHot))
                           : static_cast<int>(kHot + rng.below(kPages - kHot)),
                       rng.uniform() < write_ratio});
    }

    const double uncached = bench::median_seconds(3, [&] {
      for (const auto& op : trace) {
        if (op.write)
          device.call<&CoherentDevice::write_array_coherent>(page, op.page);
        else
          (void)device.call<&CoherentDevice::read_array>(op.page);
      }
    });

    const auto h0 = cache.call<&PageCache::hits>();
    const auto m0 = cache.call<&PageCache::misses>();
    const double cached = bench::median_seconds(3, [&] {
      for (const auto& op : trace) {
        if (op.write)
          device.call<&CoherentDevice::write_array_coherent>(page, op.page);
        else
          (void)cache.call<&PageCache::read_array>(device, op.page);
      }
    });
    const auto hits = cache.call<&PageCache::hits>() - h0;
    const auto misses = cache.call<&PageCache::misses>() - m0;

    std::printf("%11.0f%% | %12.1f %12.1f | %7.1fx | %4.0f%%\n",
                write_ratio * 100, uncached * 1e3, cached * 1e3,
                uncached / cached,
                100.0 * double(hits) / double(hits + misses));
  }

  std::printf("\nshape checks:\n");
  bench::note("read-only skewed trace: high hit rate, large speedup (hot "
              "pages never touch the device again)");
  bench::note("rising write ratio erodes both hit rate and speedup — "
              "invalidations re-cold the hot pages (the DSM trade-off)");
  device.destroy();
  cache.destroy();
  return 0;
}
