// E8 — persistent processes (paper §5).
//
// Claim: the runtime stores process representations and activates /
// de-activates processes on demand; processes are reachable through
// symbolic addresses.
//
// Measures, per state size: persist (checkpoint a live process),
// passivate (checkpoint + terminate), lookup of a live process (registry
// hit), and lookup of a passive process (restore from image).  Then the
// symbolic-address registry is swept to 4096 entries to show lookup cost
// vs registry size.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/oopp.hpp"

using namespace oopp;

int main() {
  bench::headline("E8  persistent processes (paper §5)",
                  "activation/deactivation cost tracks state size; symbolic "
                  "lookup is a registry round trip");

  Cluster cluster(3);

  std::printf("\n%12s | %12s %12s %12s %14s\n", "state", "persist us",
              "passivate us", "lookup-live", "lookup-passive");
  std::printf("-------------+------------------------------------------------"
              "-------\n");

  int tag = 0;
  for (std::uint64_t n : {1024u, 16384u, 262144u, 1048576u}) {
    const int reps = n >= 262144 ? 3 : 9;
    const std::string base = "oopp://bench/vec" + std::to_string(n) + "/";

    // persist (live checkpoint)
    auto v1 = cluster.make_remote_array<double>(1, n);
    const double persist_us = bench::median_seconds(reps, [&] {
      cluster.persist(v1.ptr(), base + "p" + std::to_string(tag++));
    }) * 1e6;

    // lookup of a live process
    cluster.persist(v1.ptr(), base + "live");
    const double lookup_live_us = bench::median_seconds(reps, [&] {
      (void)cluster.lookup<RemoteVector<double>>(base + "live");
    }) * 1e6;

    // passivate + lookup-passive (re-activation)
    const double passivate_us = bench::median_seconds(reps, [&] {
      auto v = cluster.make_remote_array<double>(1, n);
      cluster.passivate(v.ptr(), base + "s" + std::to_string(tag));
      ++tag;
    }) * 1e6;

    auto v2 = cluster.make_remote_array<double>(2, n);
    cluster.passivate(v2.ptr(), base + "cold");
    const double lookup_passive_us = bench::median_seconds(reps, [&] {
      auto p = cluster.lookup<RemoteVector<double>>(base + "cold");
      // Re-passivate so the next rep activates again.
      cluster.passivate(p, base + "cold");
    }) * 1e6;

    std::printf("%9llu KB | %12.0f %12.0f %12.0f %14.0f\n",
                static_cast<unsigned long long>(n * sizeof(double) / 1024),
                persist_us, passivate_us, lookup_live_us, lookup_passive_us);
    v1.destroy();
  }

  // Registry scaling: lookup cost vs number of symbolic addresses.
  std::printf("\nregistry sweep (live lookups):\n");
  std::printf("%10s | %12s\n", "entries", "lookup us");
  auto obj = cluster.make_remote_array<double>(1, 8);
  cluster.persist(obj.ptr(), "oopp://bench/reg/target");
  int filled = 0;
  for (int entries : {1, 64, 512, 4096}) {
    for (; filled < entries - 1; ++filled) {
      auto v = cluster.make_remote_array<double>(0, 1);
      cluster.persist(v.ptr(), "oopp://bench/reg/fill" +
                                   std::to_string(filled));
      v.destroy();
    }
    const double us = bench::median_seconds(15, [&] {
      (void)cluster.lookup<RemoteVector<double>>("oopp://bench/reg/target");
    }) * 1e6;
    std::printf("%10d | %12.1f\n", entries, us);
  }

  std::printf("\nshape checks:\n");
  bench::note("persist/passivate/activate scale with state bytes");
  bench::note("live lookup is ~flat: one registry round trip");
  bench::note("registry growth leaves lookup cost ~unchanged (map lookup)");
  return 0;
}
