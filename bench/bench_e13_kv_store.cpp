// E13 — extension: a sharded key-value store as objects-as-processes.
//
// Claim (paper conclusion): the framework covers "client-server
// applications".  The store's throughput must scale with shard count
// (each shard is an independent process whose command queue serializes
// it), and synchronous chain replication must cost about one extra
// round trip per mutation — both classic shapes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "kv/kv_store.hpp"
#include "util/prng.hpp"

using namespace oopp;
using kv::KvStore;

int main() {
  bench::headline("E13 sharded key-value store",
                  "throughput scales with shards; sync replication costs "
                  "one extra round trip per mutation");

  Cluster::Options opts;
  opts.machines = 8;
  opts.cost = net::CostModel::hpc_fabric();
  Cluster cluster(opts);
  bench::describe_cost(opts.cost);

  constexpr std::uint32_t kServiceUs = 150;  // simulated engine cost per op
  bench::note("shard engine service time: %u us/op — server work, not the "
              "single-core client, is the scarce resource", kServiceUs);

  constexpr int kOps = 2000;
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<std::string> keys;
  Xoshiro256 rng(77);
  for (int i = 0; i < kOps; ++i) {
    keys.push_back("user:" + std::to_string(rng.below(100000)));
    pairs.emplace_back(keys.back(), std::string(64, 'v'));
  }

  std::printf("\n%7s %10s | %12s %12s | %14s\n", "shards", "replicas",
              "put kops/s", "get kops/s", "puts vs 1shard");
  std::printf("-------------------+---------------------------+-----------\n");

  double base_put = 0.0;
  for (int shards : {1, 2, 4, 8}) {
    for (bool replicate : {false, true}) {
      auto store = KvStore::create(
          KvStore::Config{.shards = shards,
                          .replicate = replicate,
                          .shard_service_us = kServiceUs},
          [&](int s) {
            return static_cast<net::MachineId>(s % cluster.size());
          },
          [&](int s) {
            return static_cast<net::MachineId>((s + 1) % cluster.size());
          });

      const double put_s =
          bench::median_seconds(3, [&] { store.multi_put(pairs); });
      const double get_s =
          bench::median_seconds(3, [&] { (void)store.multi_get(keys); });

      const double put_kops = kOps / put_s / 1e3;
      const double get_kops = kOps / get_s / 1e3;
      if (shards == 1 && !replicate) base_put = put_kops;
      std::printf("%7d %10s | %12.1f %12.1f | %13.2fx\n", shards,
                  replicate ? "primary+1" : "none", put_kops, get_kops,
                  put_kops / base_put);
      store.destroy();
    }
  }

  std::printf("\nshape checks:\n");
  bench::note("throughput grows ~linearly with shard count (independent "
              "shard processes serve concurrently)");
  bench::note("replication ~halves put throughput (each mutation waits for "
              "the backup's engine + acknowledgement) and leaves gets "
              "untouched");
  return 0;
}
