// E7 — multiple Array client processes in parallel (paper §5).
//
// Claim: "The sum of the elements of the entire array can be computed by
// using the Array client in a loop over array subdomains, and by deploying
// multiple Array clients in parallel."
//
// Primary table: each client uses the paper's §2 sequential semantics
// (one page round trip at a time), so a single client serializes all
// device service time and deploying C clients is the *only* source of
// overlap — the paper's deployment claim in its pure form.
//
// Ablation: clients whose own page I/O is already split-loop parallel
// (IoMode::kParallel).  One such client saturates the devices by itself,
// so extra clients cannot help — the two knobs (intra-client split loops
// and client count) extract the same parallelism.
#include <cstdio>
#include <numeric>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "bench_common.hpp"
#include "core/oopp.hpp"

using namespace oopp;
namespace arr = oopp::array;
using bench::ScratchDir;

namespace {

double sweep(Cluster& cluster, const arr::BlockStorage& storage,
             const Extents3& N, const Extents3& n,
             const arr::PageMapSpec& spec, arr::IoMode io, int clients,
             double expect) {
  ProcessGroup<arr::Array> group;
  for (int c = 0; c < clients; ++c)
    group.push_back(cluster.make_remote<arr::Array>(
        static_cast<net::MachineId>(c % cluster.size()), N.n1, N.n2, N.n3,
        n.n1, n.n2, n.n3, storage, spec, io));

  double total = 0.0;
  const double ms = bench::median_seconds(3, [&] {
    std::vector<Future<double>> futs;
    for (int c = 0; c < clients; ++c) {
      const index_t lo = static_cast<index_t>(c) * N.n1 / clients;
      const index_t hi = static_cast<index_t>(c + 1) * N.n1 / clients;
      futs.push_back(group[c].async<&arr::Array::sum>(
          arr::Domain(lo, hi, 0, N.n2, 0, N.n3)));
    }
    total = 0.0;
    for (auto& f : futs) total += f.get();
  }) * 1e3;
  OOPP_CHECK(total == expect);
  group.destroy_all();
  return ms;
}

}  // namespace

int main() {
  bench::headline("E7  parallel Array client processes (paper §5)",
                  "with sequential per-client I/O, deploying C clients "
                  "overlaps the devices' service times ~C-fold until the "
                  "devices saturate");

  constexpr std::uint32_t kServiceUs = 1200;
  const Extents3 N{32, 32, 32};
  const Extents3 n{8, 8, 8};
  const Extents3 grid{4, 4, 4};
  const int devices = 16;

  Cluster cluster(4);
  ScratchDir dir("e7");

  const arr::PageMapSpec spec{arr::PageMapKind::kRoundRobin};
  arr::BlockStorageConfig cfg;
  cfg.file_prefix = dir.file("dev");
  cfg.devices = devices;
  cfg.pages_per_device =
      static_cast<std::int32_t>(spec.pages_per_device(grid, devices));
  cfg.n1 = static_cast<int>(n.n1);
  cfg.n2 = static_cast<int>(n.n2);
  cfg.n3 = static_cast<int>(n.n3);
  cfg.device_options.service_us = kServiceUs;
  auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % cluster.size());
  });
  bench::note("%d devices (%u us service), %s layout, 64 pages",
              devices, kServiceUs, spec.name());

  // Fill the array once.
  arr::Array writer(N.n1, N.n2, N.n3, n.n1, n.n2, n.n3, storage, spec);
  const auto whole = arr::Domain::whole(N);
  std::vector<double> buf(static_cast<std::size_t>(whole.volume()));
  std::iota(buf.begin(), buf.end(), 0.0);
  writer.write(buf, whole);
  const double expect = std::accumulate(buf.begin(), buf.end(), 0.0);

  std::printf("\nsequential per-client I/O (paper §2 semantics inside each "
              "client):\n");
  std::printf("%4s | %12s | %10s\n", "C", "sum ms", "speedup");
  std::printf("-----+--------------+-----------\n");
  double base_ms = 0.0;
  for (int clients : {1, 2, 4, 8, 16}) {
    const double ms = sweep(cluster, storage, N, n, spec,
                            arr::IoMode::kSequential, clients, expect);
    if (clients == 1) base_ms = ms;
    std::printf("%4d | %12.1f | %9.1fx\n", clients, ms, base_ms / ms);
  }

  std::printf("\nablation: split-loop per-client I/O (IoMode::kParallel) — "
              "one client already saturates the spindles:\n");
  std::printf("%4s | %12s | %10s\n", "C", "sum ms", "vs C=1");
  std::printf("-----+--------------+-----------\n");
  double par_base = 0.0;
  for (int clients : {1, 2, 4, 8}) {
    const double ms = sweep(cluster, storage, N, n, spec,
                            arr::IoMode::kParallel, clients, expect);
    if (clients == 1) par_base = ms;
    std::printf("%4d | %12.1f | %9.1fx\n", clients, ms, par_base / ms);
  }

  arr::destroy_block_storage(storage);
  std::printf("\nshape checks:\n");
  bench::note("sequential clients: speedup grows with C toward the device "
              "count bound");
  bench::note("parallel-I/O clients: flat (devices were already the "
              "bottleneck — the §4 split loop inside one client extracts "
              "the same parallelism)");
  return 0;
}
