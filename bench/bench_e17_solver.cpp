// E17 — solver workload on the collectives library: CG on coll::Communicator.
//
// Claim: compute-at-data BLAS with tree reductions beats the gather-to-
// master style.  A conjugate-gradient iteration needs two dot products;
// done the old way the master hauls whole vectors through its ingress
// port every iteration, done on the Communicator each device reduces its
// own slab and 8 bytes per member cross the network through a binomial
// tree.  Both solvers run the same arithmetic, so they converge to the
// same residual — the difference is purely where the reduction happens.
//
// Three parts:
//   1. dot microbenchmark — tree-reduced vs gather-to-master, one vector
//      size, the per-iteration reduction cost in isolation;
//   2. full CG — Communicator vs gather-BLAS baseline, fixed iteration
//      count, residuals compared, time spent in reductions recorded;
//   3. the same Communicator CG out-of-core (simulated device service
//      time) — the batched slab I/O keeps iterations affordable.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "array/page_map.hpp"
#include "bench_common.hpp"
#include "coll/communicator.hpp"
#include "core/oopp.hpp"
#include "net/inproc_fabric.hpp"
#include "util/clock.hpp"
#include "util/prng.hpp"

using namespace oopp;
namespace arr = oopp::array;

namespace {

constexpr int kDevices = 4;

/// A kBlocked (N1, N2, 1) array: each device owns one contiguous run of
/// row-slab pages — the layout the Communicator's slab kernels partition.
arr::Array make_blocked(Cluster& cluster, const std::string& prefix,
                        index_t N1, index_t N2, index_t b1,
                        storage::DeviceOptions dev,
                        std::vector<arr::BlockStorage>& keep) {
  const Extents3 grid{oopp::ceil_div(N1, b1), 1, 1};
  arr::BlockStorageConfig cfg;
  cfg.file_prefix = prefix;
  cfg.devices = kDevices;
  cfg.pages_per_device = static_cast<std::int32_t>(
      arr::PageMapSpec{arr::PageMapKind::kBlocked}.pages_per_device(grid,
                                                                    kDevices));
  cfg.n1 = static_cast<int>(b1);
  cfg.n2 = static_cast<int>(N2);
  cfg.device_options = dev;
  keep.push_back(arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % cluster.size());
  }));
  return arr::Array(N1, N2, 1, b1, N2, 1, keep.back(),
                    arr::PageMapSpec{arr::PageMapKind::kBlocked});
}

std::vector<double> random_vec(std::size_t n, Xoshiro256& rng, double lo,
                               double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Fixed-iteration CG on the Communicator.  Returns total seconds;
/// *red_s accumulates the time spent in the two dot reductions.
double comm_cg(coll::Communicator& comm, arr::Array& A, arr::Array& b,
               arr::Array& x, arr::Array& r, arr::Array& p, arr::Array& ap,
               index_t n, int iters, double* red_s) {
  const arr::Domain whole(0, n, 0, 1, 0, 1);
  x.fill(0.0, whole);
  r.fill(0.0, whole);
  comm.axpy(1.0, b, r);
  p.fill(0.0, whole);
  comm.axpy(1.0, r, p);
  *red_s = 0.0;
  Timer total;
  Timer t0;
  double rs = comm.dot(r, r);
  *red_s += t0.seconds();
  for (int it = 0; it < iters; ++it) {
    comm.matvec(A, p, ap, /*reuse_matrix=*/true);
    Timer t1;
    const double pap = comm.dot(p, ap);
    *red_s += t1.seconds();
    const double alpha = rs / pap;
    comm.axpy(alpha, p, x);
    comm.axpy(-alpha, ap, r);
    Timer t2;
    const double rs_new = comm.dot(r, r);
    *red_s += t2.seconds();
    comm.scale(rs_new / rs, p);
    comm.axpy(1.0, r, p);
    rs = rs_new;
  }
  return total.seconds();
}

/// The same CG with gather-to-master BLAS: the matrix lives at the master
/// (like the pre-Communicator example) and every vector primitive hauls
/// whole vectors through the master's NIC.
double gather_cg(const std::vector<double>& A_local, arr::Array& b,
                 arr::Array& x, arr::Array& r, arr::Array& p, arr::Array& ap,
                 index_t n, int iters, double* red_s) {
  const arr::Domain whole(0, n, 0, 1, 0, 1);
  const auto un = static_cast<std::size_t>(n);
  auto gdot = [&](arr::Array& u, arr::Array& v) {
    const auto uv = u.read(whole);
    const auto vv = v.read(whole);
    double acc = 0.0;
    for (std::size_t i = 0; i < un; ++i) acc += uv[i] * vv[i];
    return acc;
  };
  auto gaxpy = [&](double a, arr::Array& u, arr::Array& v) {
    const auto uv = u.read(whole);
    auto vv = v.read(whole);
    for (std::size_t i = 0; i < un; ++i) vv[i] += a * uv[i];
    v.write(vv, whole);
  };
  auto gmatvec = [&](arr::Array& u, arr::Array& v) {
    const auto uv = u.read(whole);
    std::vector<double> vv(un, 0.0);
    for (std::size_t i = 0; i < un; ++i) {
      double acc = 0.0;
      const double* row = A_local.data() + i * un;
      for (std::size_t j = 0; j < un; ++j) acc += row[j] * uv[j];
      vv[i] = acc;
    }
    v.write(vv, whole);
  };
  x.fill(0.0, whole);
  r.fill(0.0, whole);
  gaxpy(1.0, b, r);
  p.fill(0.0, whole);
  gaxpy(1.0, r, p);
  *red_s = 0.0;
  Timer total;
  Timer t0;
  double rs = gdot(r, r);
  *red_s += t0.seconds();
  for (int it = 0; it < iters; ++it) {
    gmatvec(p, ap);
    Timer t1;
    const double pap = gdot(p, ap);
    *red_s += t1.seconds();
    const double alpha = rs / pap;
    gaxpy(alpha, p, x);
    gaxpy(-alpha, ap, r);
    Timer t2;
    const double rs_new = gdot(r, r);
    *red_s += t2.seconds();
    // p = r + beta p, via scale + axpy like the Communicator version.
    auto pv = p.read(whole);
    const auto rv = r.read(whole);
    const double beta = rs_new / rs;
    for (std::size_t i = 0; i < un; ++i) pv[i] = rv[i] + beta * pv[i];
    p.write(pv, whole);
    rs = rs_new;
  }
  return total.seconds();
}

int run(bool smoke) {
  bench::headline("E17 solver: CG on coll::Communicator",
                  "tree-reduced dots move 8 bytes per member; gather-BLAS "
                  "hauls whole vectors through the master every iteration");

  net::InProcFabric* fabric = nullptr;
  Cluster::Options opts;
  opts.machines = kDevices;
  opts.fabric_factory = [&](std::size_t m) {
    auto f = std::make_unique<net::InProcFabric>(m);  // free during setup
    fabric = f.get();
    return f;
  };
  Cluster cluster(opts);

  // The E11 finite-egress NIC: 10 B/us injection AND drain.  The master's
  // port is the scarce resource, which is exactly what gather-BLAS burns.
  const net::CostModel model{.latency_ns = 20'000,
                             .bytes_per_us = 5'000.0,
                             .per_message_ns = 200,
                             .egress_bytes_per_us = 10.0,
                             .egress_per_message_ns = 1'000,
                             .ingress_bytes_per_us = 10.0,
                             .ingress_per_message_ns = 1'000};
  bench::describe_cost(model);
  bench::note("NIC model: 10 B/us egress AND ingress (the E11 model); "
              "fixture built over a free network, model dialed in for the "
              "measured sections");

  bench::ScratchDir scratch("e17");
  std::vector<arr::BlockStorage> storages;
  std::vector<std::pair<std::string, double>> fields;
  Xoshiro256 rng(1717);

  // -- part 1: the reduction in isolation ---------------------------------
  const index_t vn = smoke ? 65'536 : 262'144;
  {
    arr::Array vx = make_blocked(cluster, scratch.file("dot-x"), vn, 1,
                                 vn / 8, {}, storages);
    arr::Array vy = make_blocked(cluster, scratch.file("dot-y"), vn, 1,
                                 vn / 8, {}, storages);
    const arr::Domain whole(0, vn, 0, 1, 0, 1);
    const auto xs = random_vec(static_cast<std::size_t>(vn), rng, -1.0, 1.0);
    const auto ys = random_vec(static_cast<std::size_t>(vn), rng, -1.0, 1.0);
    vx.write(xs, whole);
    vy.write(ys, whole);
    double ref = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) ref += xs[i] * ys[i];

    auto comm = coll::Communicator::over(vx.storage(),
                                         coll::CommunicatorOptions{model});
    fabric->set_cost_model(model);
    double tree_val = 0.0;
    const double tree_ms = bench::median_seconds(3, [&] {
                             tree_val = comm.dot(vx, vy);
                           }) * 1e3;
    double gather_val = 0.0;
    const double gather_ms = bench::median_seconds(3, [&] {
                               const auto gx = vx.read(whole);
                               const auto gy = vy.read(whole);
                               double acc = 0.0;
                               for (std::size_t i = 0; i < gx.size(); ++i)
                                 acc += gx[i] * gy[i];
                               gather_val = acc;
                             }) * 1e3;
    fabric->set_cost_model(net::CostModel::zero());
    comm.destroy();

    const double scale = std::fabs(ref) + 1.0;
    if (std::fabs(tree_val - ref) > 1e-9 * scale ||
        std::fabs(gather_val - ref) > 1e-9 * scale) {
      std::printf("FAIL: dot mismatch (tree %.17g gather %.17g ref %.17g)\n",
                  tree_val, gather_val, ref);
      return 1;
    }
    std::printf("\ndot, %lld doubles, %d members:\n",
                static_cast<long long>(vn), kDevices);
    std::printf("  tree-reduced: %8.2f ms   gather-to-master: %8.2f ms   "
                "(%.1fx)\n",
                tree_ms, gather_ms, gather_ms / tree_ms);
    fields.emplace_back("dot_tree_ms", tree_ms);
    fields.emplace_back("dot_gather_ms", gather_ms);
    fields.emplace_back("dot_speedup", gather_ms / tree_ms);
  }

  // -- part 2: the full solver --------------------------------------------
  const index_t n = smoke ? 2'048 : 3'072;
  const index_t rb = n / 16;
  const int kIters = 25;  // fixed count: both solvers do identical work
  const std::string tmp = scratch.file("cg");
  arr::Array A = make_blocked(cluster, tmp + "-A", n, n, rb, {}, storages);
  arr::Array b = make_blocked(cluster, tmp + "-b", n, 1, rb, {}, storages);
  arr::Array x = make_blocked(cluster, tmp + "-x", n, 1, rb, {}, storages);
  arr::Array r = make_blocked(cluster, tmp + "-r", n, 1, rb, {}, storages);
  arr::Array p = make_blocked(cluster, tmp + "-p", n, 1, rb, {}, storages);
  arr::Array ap = make_blocked(cluster, tmp + "-ap", n, 1, rb, {}, storages);

  // SPD system A = n*I + (M + M^T)/2, M uniform [0, 1): the dominant
  // diagonal bounds the condition number so 25 iterations converge far
  // past the 1e-8 gate.
  const auto un = static_cast<std::size_t>(n);
  std::vector<double> M = random_vec(un * un, rng, 0.0, 1.0);
  std::vector<double> A_local(un * un);
  for (std::size_t i = 0; i < un; ++i)
    for (std::size_t j = 0; j < un; ++j)
      A_local[i * un + j] = 0.5 * (M[i * un + j] + M[j * un + i]) +
                            (i == j ? static_cast<double>(n) : 0.0);
  const arr::Domain whole(0, n, 0, 1, 0, 1);
  A.write(A_local, arr::Domain(0, n, 0, n, 0, 1));
  const auto bv = random_vec(un, rng, -1.0, 1.0);
  b.write(bv, whole);

  auto comm = coll::Communicator::over(A.storage(),
                                       coll::CommunicatorOptions{model});

  fabric->set_cost_model(model);
  double comm_red_s = 0.0;
  const double comm_total_s =
      comm_cg(comm, A, b, x, r, p, ap, n, kIters, &comm_red_s);
  fabric->set_cost_model(net::CostModel::zero());
  comm.matvec(A, x, ap, /*reuse_matrix=*/true);
  comm.axpy(-1.0, b, ap);
  const double comm_rel = comm.norm2(ap) / comm.norm2(b);

  fabric->set_cost_model(model);
  double gather_red_s = 0.0;
  const double gather_total_s =
      gather_cg(A_local, b, x, r, p, ap, n, kIters, &gather_red_s);
  fabric->set_cost_model(net::CostModel::zero());
  double gather_rel = 0.0;
  {
    const auto xv = x.read(whole);
    double rr = 0.0, bb = 0.0;
    for (std::size_t i = 0; i < un; ++i) {
      double acc = -bv[i];
      const double* row = A_local.data() + i * un;
      for (std::size_t j = 0; j < un; ++j) acc += row[j] * xv[j];
      rr += acc * acc;
      bb += bv[i] * bv[i];
    }
    gather_rel = std::sqrt(rr / bb);
  }

  const double comm_iter_ms = comm_total_s * 1e3 / kIters;
  const double gather_iter_ms = gather_total_s * 1e3 / kIters;
  const double comm_red_ms = comm_red_s * 1e3 / kIters;
  const double gather_red_ms = gather_red_s * 1e3 / kIters;
  std::printf("\nCG, dense %lld x %lld SPD, %d members, %d iterations:\n",
              static_cast<long long>(n), static_cast<long long>(n),
              kDevices, kIters);
  std::printf("  %-22s %10s %14s %12s\n", "", "iter ms", "reduction ms",
              "residual");
  std::printf("  %-22s %10.2f %14.3f %12.3e\n", "Communicator",
              comm_iter_ms, comm_red_ms, comm_rel);
  std::printf("  %-22s %10.2f %14.3f %12.3e\n", "gather-to-master",
              gather_iter_ms, gather_red_ms, gather_rel);
  fields.emplace_back("comm_iter_ms", comm_iter_ms);
  fields.emplace_back("gather_iter_ms", gather_iter_ms);
  fields.emplace_back("comm_red_ms", comm_red_ms);
  fields.emplace_back("gather_red_ms", gather_red_ms);
  fields.emplace_back("red_speedup", gather_red_ms / comm_red_ms);
  fields.emplace_back("comm_rel", comm_rel);
  fields.emplace_back("gather_rel", gather_rel);

  // -- part 3: the same solver out of core --------------------------------
  // Devices charge a simulated seek per contiguous batch; the slab
  // kernels issue one batched read/write per device per primitive, so an
  // iteration pays a bounded number of seeks no matter the vector size.
  {
    const storage::DeviceOptions ooc{.service_us = smoke ? 200u : 500u};
    const std::string otmp = scratch.file("ooc");
    arr::Array A2 =
        make_blocked(cluster, otmp + "-A", n, n, rb, ooc, storages);
    arr::Array b2 =
        make_blocked(cluster, otmp + "-b", n, 1, rb, ooc, storages);
    arr::Array x2 =
        make_blocked(cluster, otmp + "-x", n, 1, rb, ooc, storages);
    arr::Array r2 =
        make_blocked(cluster, otmp + "-r", n, 1, rb, ooc, storages);
    arr::Array p2 =
        make_blocked(cluster, otmp + "-p", n, 1, rb, ooc, storages);
    arr::Array ap2 =
        make_blocked(cluster, otmp + "-ap", n, 1, rb, ooc, storages);
    A2.write(A_local, arr::Domain(0, n, 0, n, 0, 1));
    b2.write(bv, whole);
    auto comm2 = coll::Communicator::over(A2.storage(),
                                          coll::CommunicatorOptions{model});
    fabric->set_cost_model(model);
    double ooc_red_s = 0.0;
    const double ooc_total_s =
        comm_cg(comm2, A2, b2, x2, r2, p2, ap2, n, kIters, &ooc_red_s);
    fabric->set_cost_model(net::CostModel::zero());
    comm2.matvec(A2, x2, ap2, /*reuse_matrix=*/true);
    comm2.axpy(-1.0, b2, ap2);
    const double ooc_rel = comm2.norm2(ap2) / comm2.norm2(b2);
    comm2.destroy();
    const double ooc_iter_ms = ooc_total_s * 1e3 / kIters;
    std::printf("  %-22s %10.2f %14s %12.3e  (service %u us)\n",
                "Communicator (OOC)", ooc_iter_ms, "-", ooc_rel,
                ooc.service_us);
    fields.emplace_back("ooc_iter_ms", ooc_iter_ms);
    fields.emplace_back("ooc_rel", ooc_rel);
  }

  comm.destroy();
  for (auto& s : storages) arr::destroy_block_storage(s);

  bench::note("reduction time is the two dots per iteration; the "
              "Communicator's scalar tree makes it size-independent");
  bench::emit_json_fields("e17", fields);

  const bool ok = comm_rel < 1e-8 && gather_rel < 1e-8;
  std::printf(ok ? "\nresiduals agree; done.\n" : "\nBAD residuals!\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return run(smoke);
}
