// E4 — compiler-split loop over N storage devices (paper §4).
//
// Claim: a loop of N page reads, one per device, executed with sequential
// semantics costs ~N * t_dev; split into a send-loop and a receive-loop
// ("easily parallelized by the compiler") the device service times overlap
// and the loop costs ~t_dev — "the processes will carry out disk I/O in
// parallel".
//
// Each ArrayPageDevice simulates a dedicated spindle with a fixed service
// time; devices are spread across machines.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "storage/array_page_device.hpp"

using namespace oopp;
using bench::ScratchDir;

int main() {
  bench::headline("E4  sequential vs split read loop (paper §4)",
                  "splitting the loop overlaps the devices' service times: "
                  "~N x speedup until client-side costs dominate");

  constexpr std::uint32_t kServiceUs = 2000;  // per-op spindle service time
  constexpr int kPage = 16;                   // 16^3 doubles = 32 KiB

  Cluster cluster(4);
  ScratchDir dir("e4");
  bench::note("device service time: %u us, page: %d^3 doubles", kServiceUs,
              kPage);

  std::printf("\n%4s | %14s %14s | %10s %12s\n", "N", "sequential ms",
              "split ms", "speedup", "ideal");
  std::printf("-----+-------------------------------+-----------------------\n");

  for (int n_devices : {1, 2, 4, 8, 16, 32}) {
    std::vector<remote_ptr<storage::ArrayPageDevice>> device;
    device.reserve(n_devices);
    for (int i = 0; i < n_devices; ++i) {
      device.push_back(cluster.make_remote<storage::ArrayPageDevice>(
          static_cast<net::MachineId>(i % cluster.size()),
          dir.file("d" + std::to_string(n_devices) + "_" + std::to_string(i)),
          2, kPage, kPage, kPage,
          storage::DeviceOptions{.service_us = kServiceUs}));
    }

    // The paper's original loop: each read completes before the next.
    const double seq = bench::median_seconds(3, [&] {
      for (int i = 0; i < n_devices; ++i)
        (void)device[i].call<&storage::ArrayPageDevice::read_array>(0);
    });

    // The compiler-split version: all sends, then all receives.
    const double split = bench::median_seconds(3, [&] {
      std::vector<Future<storage::ArrayPage>> futs;
      futs.reserve(n_devices);
      for (int i = 0; i < n_devices; ++i)
        futs.push_back(
            device[i].async<&storage::ArrayPageDevice::read_array>(0));
      for (auto& f : futs) (void)f.get();
    });

    std::printf("%4d | %14.2f %14.2f | %9.1fx %11dx\n", n_devices, seq * 1e3,
                split * 1e3, seq / split, n_devices);

    for (auto& d : device) d.destroy();
  }

  std::printf("\nshape checks:\n");
  bench::note("sequential grows ~linearly with N");
  bench::note("split stays ~flat: speedup tracks N (paper's claim)");
  return 0;
}
