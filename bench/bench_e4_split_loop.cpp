// E4 — compiler-split loop over N storage devices (paper §4).
//
// Claim: a loop of N page reads, one per device, executed with sequential
// semantics costs ~N * t_dev; split into a send-loop and a receive-loop
// ("easily parallelized by the compiler") the device service times overlap
// and the loop costs ~t_dev — "the processes will carry out disk I/O in
// parallel".
//
// Each ArrayPageDevice simulates a dedicated spindle with a fixed service
// time; devices are spread across machines.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "storage/array_page_device.hpp"

using namespace oopp;
using bench::ScratchDir;

namespace {

// CI smoke: the split loop the batch frames are for — a fan-out of tiny
// element gets across several machines over real TCP, batching off vs
// on.  Emits BENCH_e4.json; CI fails the job if batching does not lower
// the per-call overhead.
double split_loop_per_call_ns(bool batching, int rounds) {
  Cluster::Options opts;
  opts.machines = 4;
  opts.fabric = Cluster::FabricKind::kTcp;
  opts.transport.batch = {.enabled = batching};
  Cluster cluster(opts);

  std::vector<remote_data<double>> data;
  for (net::MachineId m = 1; m < 4; ++m)
    data.push_back(cluster.make_remote_array<double>(m, 256));
  for (auto& d : data)  // warm-up: links + dispatch
    (void)d.async_get(0).get_for(std::chrono::seconds(10));

  const int per_round = static_cast<int>(data.size()) * 64;
  std::vector<Future<double>> futs;
  futs.reserve(static_cast<std::size_t>(per_round));
  const std::int64_t t0 = now_ns();
  for (int r = 0; r < rounds; ++r) {
    futs.clear();
    // The compiler-split loop: all sends first, then all receives.
    for (int i = 0; i < per_round; ++i)
      futs.push_back(data[static_cast<std::size_t>(i) % data.size()]
                         .async_get(static_cast<std::uint64_t>(i) % 256));
    for (auto& f : futs) (void)f.get_for(std::chrono::seconds(30));
  }
  const std::int64_t t1 = now_ns();
  for (auto& d : data) d.destroy();
  return static_cast<double>(t1 - t0) / (rounds * per_round);
}

int run_smoke() {
  bench::headline("E4  split loop over TCP, batching off vs on (smoke)",
                  "per-peer coalescing amortizes the per-frame syscall of "
                  "a small-call fan-out");
  const int rounds = 10;
  const double off_ns = split_loop_per_call_ns(false, rounds);
  const double on_ns = split_loop_per_call_ns(true, rounds);
  const double speedup = off_ns / on_ns;
  bench::note("3 remote arrays, %d rounds x 192 async gets:", rounds);
  bench::note("  batching off: %8.1f ns/call", off_ns);
  bench::note("  batching on : %8.1f ns/call  (%.2fx)", on_ns, speedup);
  bench::emit_json_fields("e4",
                          {{"rounds", static_cast<double>(rounds)},
                           {"unbatched_per_call_ns", off_ns},
                           {"batched_per_call_ns", on_ns},
                           {"batch_speedup", speedup}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  bench::headline("E4  sequential vs split read loop (paper §4)",
                  "splitting the loop overlaps the devices' service times: "
                  "~N x speedup until client-side costs dominate");

  constexpr std::uint32_t kServiceUs = 2000;  // per-op spindle service time
  constexpr int kPage = 16;                   // 16^3 doubles = 32 KiB

  Cluster cluster(4);
  ScratchDir dir("e4");
  bench::note("device service time: %u us, page: %d^3 doubles", kServiceUs,
              kPage);

  std::printf("\n%4s | %14s %14s | %10s %12s\n", "N", "sequential ms",
              "split ms", "speedup", "ideal");
  std::printf("-----+-------------------------------+-----------------------\n");

  for (int n_devices : {1, 2, 4, 8, 16, 32}) {
    std::vector<remote_ptr<storage::ArrayPageDevice>> device;
    device.reserve(n_devices);
    for (int i = 0; i < n_devices; ++i) {
      device.push_back(cluster.make_remote<storage::ArrayPageDevice>(
          static_cast<net::MachineId>(i % cluster.size()),
          dir.file("d" + std::to_string(n_devices) + "_" + std::to_string(i)),
          2, kPage, kPage, kPage,
          storage::DeviceOptions{.service_us = kServiceUs}));
    }

    // The paper's original loop: each read completes before the next.
    const double seq = bench::median_seconds(3, [&] {
      for (int i = 0; i < n_devices; ++i)
        (void)device[i].call<&storage::ArrayPageDevice::read_array>(0);
    });

    // The compiler-split version: all sends, then all receives.
    const double split = bench::median_seconds(3, [&] {
      std::vector<Future<storage::ArrayPage>> futs;
      futs.reserve(n_devices);
      for (int i = 0; i < n_devices; ++i)
        futs.push_back(
            device[i].async<&storage::ArrayPageDevice::read_array>(0));
      for (auto& f : futs) (void)f.get();
    });

    std::printf("%4d | %14.2f %14.2f | %9.1fx %11dx\n", n_devices, seq * 1e3,
                split * 1e3, seq / split, n_devices);

    for (auto& d : device) d.destroy();
  }

  std::printf("\nshape checks:\n");
  bench::note("sequential grows ~linearly with N");
  bench::note("split stays ~flat: speedup tracks N (paper's claim)");
  return 0;
}
