// E1 — remote method execution cost (paper §2).
//
// Claim: a remote method call is a well-defined client/server exchange;
// its cost = framework overhead + interconnect alpha-beta cost, growing
// linearly in the bytes moved.
//
// Measures a PageDevice::write + read round trip per page size on:
//   local      — the object called directly, no framework;
//   inproc/0   — simulated machines, zero-cost fabric (pure overhead);
//   inproc/hpc — simulated HPC fabric (2 us, 10 GB/s);
//   inproc/eth — simulated commodity cluster (25 us, 1.2 GB/s);
//   tcp        — real loopback sockets.
//
// `--smoke` runs a seconds-long variant for CI: one TCP cluster, a small
// page, tracing forced on, and it leaves BENCH_e1.json, e1_metrics.json
// and e1_trace/trace_node*.json behind as artifacts.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/oopp.hpp"
#include "storage/page_device.hpp"
#include "telemetry/telemetry.hpp"

using namespace oopp;
using bench::ScratchDir;

namespace {

storage::Page make_page(int size) {
  storage::Page p(static_cast<std::size_t>(size));
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::uint8_t>(i);
  return p;
}

double time_local(const ScratchDir& dir, int page_size, int reps) {
  storage::PageDevice dev(dir.file("local" + std::to_string(page_size)), 4,
                          page_size);
  const auto page = make_page(page_size);
  return bench::median_seconds(reps, [&] {
    dev.write(page, 1);
    (void)dev.read(1);
  });
}

double time_cluster(Cluster& cluster, const ScratchDir& dir,
                    const std::string& tag, int page_size, int reps) {
  auto dev = cluster.make_remote<storage::PageDevice>(
      1, dir.file(tag + std::to_string(page_size)), 4, page_size);
  const auto page = make_page(page_size);
  // warm-up
  dev.call<&storage::PageDevice::write>(page, 1);
  const double s = bench::median_seconds(reps, [&] {
    dev.call<&storage::PageDevice::write>(page, 1);
    (void)dev.call<&storage::PageDevice::read>(1);
  });
  dev.destroy();
  return s;
}

// Small-call async burst over TCP loopback: per-call wall-clock of
// `calls` pipelined element gets, with per-peer batching off or on.
// This is the workload the batch frames exist for — a §4 split loop of
// tiny calls where the syscall per frame dominates.
double burst_per_call_ns(bool batching, int calls) {
  Cluster::Options opts;
  opts.machines = 2;
  opts.fabric = Cluster::FabricKind::kTcp;
  opts.transport.batch = {.enabled = batching};
  Cluster cluster(opts);

  auto data = cluster.make_remote_array<double>(1, 1024);
  for (std::uint64_t i = 0; i < 64; ++i)  // warm-up: links + dispatch
    (void)data.async_get(i).get_for(std::chrono::seconds(10));

  std::vector<Future<double>> futs;
  futs.reserve(static_cast<std::size_t>(calls));
  const std::int64_t t0 = now_ns();
  for (int i = 0; i < calls; ++i)
    futs.push_back(data.async_get(static_cast<std::uint64_t>(i) % 1024));
  for (auto& f : futs) (void)f.get_for(std::chrono::seconds(30));
  const std::int64_t t1 = now_ns();
  data.destroy();
  return static_cast<double>(t1 - t0) / calls;
}

// CI smoke: a short traced run that leaves machine-readable artifacts,
// plus the batching off/on comparison CI gates on.
int run_smoke() {
  bench::headline("E1  remote method call cost (smoke)",
                  "short traced run; emits BENCH_e1.json + trace/metrics");
  telemetry::set_enabled(true);
  ScratchDir dir("e1s");

  int iters = 200;
  std::vector<std::int64_t> samples;
  {
    Cluster::Options tcp;
    tcp.machines = 2;
    tcp.fabric = Cluster::FabricKind::kTcp;
    Cluster cluster(tcp);

    auto dev = cluster.make_remote<storage::PageDevice>(1, dir.file("smoke"),
                                                        4, 4096);
    const auto page = make_page(4096);
    dev.call<&storage::PageDevice::write>(page, 1);  // warm-up

    samples = bench::timed_samples(iters, [&] {
      dev.call<&storage::PageDevice::write>(page, 1);
      (void)dev.call<&storage::PageDevice::read>(1);
    });

    dev.destroy();

    const auto traces = cluster.dump_trace("e1_trace");
    std::printf("  wrote %zu trace files under e1_trace/\n", traces);
    if (std::FILE* f = std::fopen("e1_metrics.json", "w")) {
      std::fprintf(f, "%s\n", cluster.metrics_report().c_str());
      std::fclose(f);
      bench::note("wrote e1_metrics.json");
    }
  }

  // Small-call burst, batching off vs on.  Tracing off so the numbers
  // measure the wire path, not span recording.  Best of 5 clusters per
  // setting: min is the usual estimator for the structural per-call cost
  // on a shared CI runner — scheduler noise only ever adds time.
  telemetry::set_enabled(false);
  const int calls = 8000;
  auto best_burst = [calls](bool batching) {
    double best = burst_per_call_ns(batching, calls);
    for (int r = 1; r < 5; ++r)
      best = std::min(best, burst_per_call_ns(batching, calls));
    return best;
  };
  const double off_ns = best_burst(false);
  const double on_ns = best_burst(true);
  const double speedup = off_ns / on_ns;
  bench::note("async small-call burst (%d calls, TCP loopback):", calls);
  bench::note("  batching off: %8.1f ns/call", off_ns);
  bench::note("  batching on : %8.1f ns/call  (%.2fx)", on_ns, speedup);

  bench::emit_json_fields(
      "e1", {{"iters", static_cast<double>(iters)},
             {"p50_ns", static_cast<double>(bench::percentile_ns(samples, 0.50))},
             {"p95_ns", static_cast<double>(bench::percentile_ns(samples, 0.95))},
             {"p99_ns", static_cast<double>(bench::percentile_ns(samples, 0.99))},
             {"burst_calls", static_cast<double>(calls)},
             {"unbatched_per_call_ns", off_ns},
             {"batched_per_call_ns", on_ns},
             {"batch_speedup", speedup}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  bench::headline("E1  remote method call cost (paper §2)",
                  "remote execution = overhead + alpha + bytes/beta; "
                  "sequential semantics preserved");

  ScratchDir dir("e1");

  Cluster::Options zero;
  zero.machines = 2;
  Cluster c_zero(zero);

  Cluster::Options hpc;
  hpc.machines = 2;
  hpc.cost = net::CostModel::hpc_fabric();

  Cluster::Options eth;
  eth.machines = 2;
  eth.cost = net::CostModel::commodity_cluster();

  Cluster::Options tcp;
  tcp.machines = 2;
  tcp.fabric = Cluster::FabricKind::kTcp;

  bench::describe_cost(hpc.cost);
  bench::describe_cost(eth.cost);

  std::printf(
      "\n%10s | %12s %12s %12s %12s %12s\n", "page", "local us",
      "inproc/0 us", "inproc/hpc", "inproc/eth", "tcp us");
  std::printf("-----------+-----------------------------------------------"
              "-----------------\n");

  for (int page_size : {256, 4096, 65536, 1 << 20, 4 << 20}) {
    const int reps = page_size >= (1 << 20) ? 9 : 31;
    const double local = time_local(dir, page_size, reps) * 1e6;
    const double in0 =
        time_cluster(c_zero, dir, "in0", page_size, reps) * 1e6;

    double inh, ine, intcp;
    {
      Cluster c(hpc);
      inh = time_cluster(c, dir, "inh", page_size, reps) * 1e6;
    }
    {
      Cluster c(eth);
      ine = time_cluster(c, dir, "ine", page_size, reps) * 1e6;
    }
    {
      Cluster c(tcp);
      intcp = time_cluster(c, dir, "tcp", page_size, reps) * 1e6;
    }

    std::printf("%9dB | %12.1f %12.1f %12.1f %12.1f %12.1f\n", page_size,
                local, in0, inh, ine, intcp);
  }

  // Machine-readable summary for CI: remote 4 KiB round trip on the
  // zero-cost fabric.
  {
    auto dev = c_zero.make_remote<storage::PageDevice>(1, dir.file("json"),
                                                       4, 4096);
    const auto page = make_page(4096);
    dev.call<&storage::PageDevice::write>(page, 1);  // warm-up
    const int iters = 300;
    const auto samples = bench::timed_samples(iters, [&] {
      dev.call<&storage::PageDevice::write>(page, 1);
      (void)dev.call<&storage::PageDevice::read>(1);
    });
    bench::emit_json("e1", iters, samples);
    dev.destroy();
  }

  std::printf("\nshape checks:\n");
  bench::note("small pages: cost ordering local < inproc/0 < hpc < eth "
              "follows the latency term");
  bench::note("large pages: every remote column grows linearly in bytes "
              "(serialization copies + beta term); eth's slope is steepest");
  bench::note("tcp pays real kernel/socket cost on top of overhead");
  return 0;
}
