// Shared helpers for the experiment harnesses (E1–E9).
//
// Each bench binary regenerates one experiment from DESIGN.md §3 and
// prints a self-contained, paper-style table: the workload, the cost
// model, the measured rows, and the shape statement being tested.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "net/cost_model.hpp"
#include "util/clock.hpp"

namespace oopp::bench {

inline void headline(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline void describe_cost(const net::CostModel& c) {
  note("cost model: latency=%.1f us, bandwidth=%s, per-msg=%.2f us",
       c.latency_ns / 1e3,
       c.bytes_per_us > 0
           ? (std::to_string(c.bytes_per_us / 1e3) + " GB/s").c_str()
           : "infinite",
       c.per_message_ns / 1e3);
}

/// Median wall-clock seconds of `reps` runs of fn().
template <class Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Per-iteration latency samples of `iters` runs of fn(), in nanoseconds,
/// sorted ascending — ready for percentile slicing.
template <class Fn>
std::vector<std::int64_t> timed_samples(int iters, Fn&& fn) {
  std::vector<std::int64_t> ns;
  ns.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    const std::int64_t t0 = now_ns();
    fn();
    ns.push_back(now_ns() - t0);
  }
  std::sort(ns.begin(), ns.end());
  return ns;
}

inline std::int64_t percentile_ns(const std::vector<std::int64_t>& sorted,
                                  double p) {
  if (sorted.empty()) return 0;
  auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

/// Emit one benchmark result as a single JSON line and mirror it into
/// BENCH_<name>.json in the current directory, so CI can collect the file
/// as an artifact without scraping stdout.
inline void emit_json(const std::string& name, int iters,
                      const std::vector<std::int64_t>& sorted_ns) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"%s\",\"iters\":%d,\"p50_ns\":%lld,"
                "\"p95_ns\":%lld,\"p99_ns\":%lld}",
                name.c_str(), iters,
                static_cast<long long>(percentile_ns(sorted_ns, 0.50)),
                static_cast<long long>(percentile_ns(sorted_ns, 0.95)),
                static_cast<long long>(percentile_ns(sorted_ns, 0.99)));
  std::printf("BENCH_JSON %s\n", line);
  if (std::FILE* f = std::fopen(("BENCH_" + name + ".json").c_str(), "w")) {
    std::fprintf(f, "%s\n", line);
    std::fclose(f);
  }
}

/// Emit one benchmark result with arbitrary numeric fields as a single
/// JSON line, mirrored into BENCH_<name>.json — for benches whose result
/// is a comparison (e.g. batching off vs on) rather than a percentile
/// set.  Integral-valued fields print without a fraction.
inline void emit_json_fields(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::string line = "{\"bench\":\"" + name + "\"";
  char buf[64];
  for (const auto& [key, value] : fields) {
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f", value);
    }
    line += ",\"" + key + "\":" + buf;
  }
  line += "}";
  std::printf("BENCH_JSON %s\n", line.c_str());
  if (std::FILE* f = std::fopen(("BENCH_" + name + ".json").c_str(), "w")) {
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
  }
}

/// Scratch directory for device backing files; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = std::filesystem::temp_directory_path() /
           ("oopp-bench-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

}  // namespace oopp::bench
