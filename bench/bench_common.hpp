// Shared helpers for the experiment harnesses (E1–E9).
//
// Each bench binary regenerates one experiment from DESIGN.md §3 and
// prints a self-contained, paper-style table: the workload, the cost
// model, the measured rows, and the shape statement being tested.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "net/cost_model.hpp"
#include "util/clock.hpp"

namespace oopp::bench {

inline void headline(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

inline void describe_cost(const net::CostModel& c) {
  note("cost model: latency=%.1f us, bandwidth=%s, per-msg=%.2f us",
       c.latency_ns / 1e3,
       c.bytes_per_us > 0
           ? (std::to_string(c.bytes_per_us / 1e3) + " GB/s").c_str()
           : "infinite",
       c.per_message_ns / 1e3);
}

/// Median wall-clock seconds of `reps` runs of fn().
template <class Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Scratch directory for device backing files; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = std::filesystem::temp_directory_path() /
           ("oopp-bench-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

}  // namespace oopp::bench
