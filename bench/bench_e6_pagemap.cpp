// E6 — the PageMap determines the degree of I/O parallelism (paper §5).
//
// Claim: "The PageMap describes the array data layout and is crucial in
// determining the I/O patterns of the computation."
//
// The same Array, same devices (each simulating a spindle with a fixed
// service time), same bulk read — under three layouts:
//   single-device — every page on one spindle: no overlap;
//   blocked       — contiguous page runs per device: partial overlap for
//                   domain-shaped reads;
//   round-robin   — adjacent pages on different spindles: maximal overlap.
#include <cstdio>
#include <cstring>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "bench_common.hpp"
#include "core/oopp.hpp"

using namespace oopp;
namespace arr = oopp::array;
using bench::ScratchDir;

namespace {

// CI smoke: online redistribution must not degrade steady-state reads.
// An array laid out round-robin is migrated to blocked while live; the
// bulk-read time afterwards is compared against an array *created*
// blocked on identical spindles.  Emits BENCH_e6.json; CI fails the job
// if the migrated layout serves reads at under 0.9x the fresh layout.
int run_smoke() {
  bench::headline("E6  read throughput after online redistribution (smoke)",
                  "a migrated blocked layout must read like a fresh one");
  Cluster cluster(4);
  ScratchDir dir("e6s");

  constexpr std::uint32_t kServiceUs = 300;
  const Extents3 N{32, 32, 32};
  const Extents3 n{8, 8, 8};  // page grid 4x4x4 = 64 pages
  const Extents3 grid{4, 4, 4};
  constexpr int kDevices = 4;
  const arr::Domain whole = arr::Domain::whole(N);

  auto make_storage = [&](arr::PageMapKind kind, const std::string& tag) {
    const arr::PageMapSpec spec{kind};
    arr::BlockStorageConfig cfg;
    cfg.file_prefix = dir.file(tag);
    cfg.devices = kDevices;
    cfg.pages_per_device =
        static_cast<std::int32_t>(spec.pages_per_device(grid, kDevices));
    cfg.n1 = static_cast<int>(n.n1);
    cfg.n2 = static_cast<int>(n.n2);
    cfg.n3 = static_cast<int>(n.n3);
    cfg.device_options.service_us = kServiceUs;
    return arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<net::MachineId>(i % cluster.size());
    });
  };
  auto read_ms = [&](arr::Array& a) {
    return bench::median_seconds(3, [&] { (void)a.read(whole); }) * 1e3;
  };

  // Baseline: an array born with the target layout.
  auto fresh_storage =
      make_storage(arr::PageMapKind::kBlocked, "fresh");
  arr::Array fresh(N.n1, N.n2, N.n3, n.n1, n.n2, n.n3, fresh_storage,
                   arr::PageMapSpec{arr::PageMapKind::kBlocked});
  fresh.fill(1.0, whole);
  const double fresh_ms = read_ms(fresh);

  // The same layout reached by live migration from round-robin.
  auto moved_storage =
      make_storage(arr::PageMapKind::kRoundRobin, "moved");
  arr::Array moved(N.n1, N.n2, N.n3, n.n1, n.n2, n.n3, moved_storage,
                   arr::PageMapSpec{arr::PageMapKind::kRoundRobin});
  moved.fill(1.0, whole);
  Timer t;
  const auto st =
      moved.redistribute(arr::PageMapSpec{arr::PageMapKind::kBlocked});
  const double migrate_ms = t.seconds() * 1e3;
  const double post_ms = read_ms(moved);
  const double ratio = fresh_ms / post_ms;  // post throughput vs fresh

  bench::note("64 pages of 8^3 over %d spindles, %u us service:", kDevices,
              kServiceUs);
  bench::note("  fresh blocked read : %8.1f ms", fresh_ms);
  bench::note("  migration          : %8.1f ms (%llu pages)", migrate_ms,
              static_cast<unsigned long long>(st.pages_migrated));
  bench::note("  post-migration read: %8.1f ms  (%.2fx of fresh)", post_ms,
              ratio);
  bench::emit_json_fields(
      "e6", {{"fresh_read_ms", fresh_ms},
             {"redistribute_ms", migrate_ms},
             {"post_read_ms", post_ms},
             {"post_vs_fresh", ratio},
             {"pages_migrated", static_cast<double>(st.pages_migrated)}});
  arr::destroy_block_storage(fresh_storage);
  arr::destroy_block_storage(moved_storage);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  bench::headline("E6  PageMap layout vs I/O parallelism (paper §5)",
                  "round-robin spreads a bulk read over all spindles; "
                  "single-device serializes it");

  constexpr std::uint32_t kServiceUs = 1500;
  const Extents3 N{32, 32, 32};
  const Extents3 n{8, 8, 8};  // page grid 4x4x4 = 64 pages
  const Extents3 grid{4, 4, 4};

  Cluster cluster(4);
  ScratchDir dir("e6");
  bench::note("array %lldx%lldx%lld, 64 pages of 8^3; device service %u us",
              static_cast<long long>(N.n1), static_cast<long long>(N.n2),
              static_cast<long long>(N.n3), kServiceUs);

  std::printf("\n%8s %14s | %12s %12s %12s | %10s\n", "devices", "layout",
              "read ms", "sum ms", "window ms", "vs single");
  std::printf("------------------------+----------------------------------"
              "--------+----------\n");

  const arr::Domain whole = arr::Domain::whole(N);
  // A locality-shaped workload: a 16^3 corner window covering 8 adjacent
  // pages — these land on 8 different spindles under round-robin but on
  // 1–2 spindles under the blocked layout.
  const arr::Domain window(0, 16, 0, 16, 0, 16);
  for (int devices : {1, 2, 4, 8, 16}) {
    double single_ms = 0.0;
    for (auto kind :
         {arr::PageMapKind::kSingleDevice, arr::PageMapKind::kBlocked,
          arr::PageMapKind::kRoundRobin}) {
      const arr::PageMapSpec spec{kind};
      arr::BlockStorageConfig cfg;
      cfg.file_prefix = dir.file("d" + std::to_string(devices) +
                                 std::string(spec.name()));
      cfg.devices = devices;
      cfg.pages_per_device =
          static_cast<std::int32_t>(spec.pages_per_device(grid, devices));
      cfg.n1 = static_cast<int>(n.n1);
      cfg.n2 = static_cast<int>(n.n2);
      cfg.n3 = static_cast<int>(n.n3);
      cfg.device_options.service_us = kServiceUs;
      auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
        return static_cast<net::MachineId>(i % cluster.size());
      });

      arr::Array a(N.n1, N.n2, N.n3, n.n1, n.n2, n.n3, storage, spec);

      const double read_ms =
          bench::median_seconds(3, [&] { (void)a.read(whole); }) * 1e3;
      const double sum_ms =
          bench::median_seconds(3, [&] { (void)a.sum(whole); }) * 1e3;
      const double window_ms =
          bench::median_seconds(3, [&] { (void)a.read(window); }) * 1e3;

      if (kind == arr::PageMapKind::kSingleDevice) single_ms = read_ms;
      std::printf("%8d %14s | %12.1f %12.1f %12.1f | %9.1fx\n", devices,
                  spec.name(), read_ms, sum_ms, window_ms,
                  single_ms / read_ms);

      arr::destroy_block_storage(storage);
    }
    std::printf("------------------------+----------------------------------"
                "--------+----------\n");
  }

  std::printf("\nshape checks:\n");
  bench::note("single-device is flat in D (one spindle serializes)");
  bench::note("round-robin approaches D x for a whole-array read");
  bench::note("the 8-page window separates blocked (1-2 spindles) from "
              "round-robin (8 spindles) once D >= 8");
  return 0;
}
