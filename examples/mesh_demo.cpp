// mesh_demo: the framework across real OS processes.
//
// Usage:  mesh_demo [path-to-oopp_noded]
//         (default: ./build/tools/oopp_noded, i.e. run from the repo root)
//
// The demo forks two oopp_noded daemons (machines 1 and 2), becomes
// machine 0 itself, and then runs the paper's §2 flow against objects
// that live in the other processes — construction, method execution,
// exceptions, persistence migration between daemons, and clean shutdown.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/oopp.hpp"

using namespace oopp;

namespace {

std::uint16_t grab_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return 0;
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const auto port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string noded =
      argc > 1 ? argv[1] : "./build/tools/oopp_noded";
  if (::access(noded.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "cannot execute '%s' — pass the oopp_noded path as argv[1] "
                 "or run from the repo root after building\n",
                 noded.c_str());
    return 2;
  }

  // Write the shared endpoints file: three machines on loopback.
  const std::string endpoints =
      "/tmp/oopp-mesh-demo-" + std::to_string(::getpid()) + ".endpoints";
  {
    std::ofstream out(endpoints);
    for (int m = 0; m < 3; ++m)
      out << "127.0.0.1 " << grab_free_port() << "\n";
  }

  // Launch the two daemon machines.
  std::vector<pid_t> daemons;
  for (int m = 1; m <= 2; ++m) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      const std::string id = std::to_string(m);
      ::execl(noded.c_str(), "oopp_noded", id.c_str(), endpoints.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    daemons.push_back(pid);
    std::printf("launched machine %d as pid %d\n", m, pid);
  }

  {
    // This process is machine 0, the driver.
    Cluster::Options opts;
    opts.mesh_endpoints = net::load_endpoints(endpoints);
    opts.local_machine = 0;
    Cluster cluster(opts);
    std::printf("driver up; cluster spans %zu OS processes\n",
                cluster.size());

    // new(machine 1) double[512] — in another process.
    auto data = cluster.make_remote_array<double>(1, 512);
    data[7] = 3.1415;
    std::printf("data[7] in pid %d reads back %.4f\n", daemons[0],
                static_cast<double>(data[7]));

    // Persist in machine 1's process, re-activate in machine 2's.
    cluster.passivate(data.ptr(), "oopp://demo/block");
    auto moved = cluster.lookup<RemoteVector<double>>("oopp://demo/block", 2);
    std::printf("block migrated to machine %u; data[7] = %.4f\n",
                moved.machine(),
                moved.call<&RemoteVector<double>::get>(7));
    moved.destroy();

    for (int m = 1; m <= 2; ++m) cluster.request_shutdown(m);
  }

  for (pid_t pid : daemons) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    std::printf("pid %d exited with %d\n", pid, WEXITSTATUS(status));
  }
  ::unlink(endpoints.c_str());
  std::printf("done.\n");
  return 0;
}
