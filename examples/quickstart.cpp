// Quickstart: the paper's §2 example, end to end.
//
//   PageDevice* PageStore = new(machine 1) PageDevice("pagefile", 10, 1024);
//   Page* page = GenerateDataPage();
//   PageStore->write(page, PageAddress);
//
// plus remote plain data:
//
//   double* data = new(machine 2) double[1024];
//   data[7] = 3.1415;
//   double x = data[2];
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <cstdio>
#include <filesystem>

#include "core/oopp.hpp"
#include "storage/page_device.hpp"

using namespace oopp;

storage::Page GenerateDataPage(int page_size) {
  storage::Page page(static_cast<std::size_t>(page_size));
  for (std::size_t i = 0; i < page.size(); ++i)
    page[i] = static_cast<std::uint8_t>(i % 251);
  return page;
}

int main() {
  // A cluster of four machines; this thread drives from machine 0.
  Cluster cluster(4);
  const auto dir = std::filesystem::temp_directory_path() / "oopp-quickstart";
  std::filesystem::create_directories(dir);

  // --- remote object construction: new(machine 1) PageDevice(...) --------
  const int NumberOfPages = 10;
  const int PageSize = 1024;  // bytes
  auto PageStore = cluster.make_remote<storage::PageDevice>(
      1, (dir / "pagefile").string(), NumberOfPages, PageSize);
  std::printf("created a PageDevice process on machine %u\n",
              PageStore.machine());

  // --- remote method execution -------------------------------------------
  storage::Page page = GenerateDataPage(PageSize);
  const int PageAddress = 7;
  PageStore.call<&storage::PageDevice::write>(page, PageAddress);
  std::printf("wrote page %d (%d bytes) through the remote process\n",
              PageAddress, PageSize);

  storage::Page back = PageStore.call<&storage::PageDevice::read>(PageAddress);
  std::printf("read it back: %s\n",
              back == page ? "identical" : "MISMATCH!");

  // --- remote plain data: new(machine 2) double[1024] ---------------------
  auto data = cluster.make_remote_array<double>(2, 1024);
  data[7] = 3.1415;                  // one client/server round trip
  const double x = data[7];          // another round trip
  std::printf("data[7] on machine 2 reads back %.4f\n", x);

  // --- destruction terminates the remote process --------------------------
  PageStore.destroy();
  data.destroy();
  std::printf("remote processes terminated; done.\n");

  std::filesystem::remove_all(dir);
  return 0;
}
