// kv_session_store: a replicated session store — the paper's
// "client-server applications" claim as a running program.
//
// Four shard processes (each with a backup on a *different* machine) hold
// user sessions.  The demo ingests sessions with a split-loop multi-put,
// serves point and prefix queries, then kills a primary shard process
// outright and shows the store absorbing the failure: promote the backup,
// keep serving, re-establish redundancy with a state transfer.
#include <cstdio>
#include <string>

#include "core/oopp.hpp"
#include "kv/kv_store.hpp"
#include "util/clock.hpp"

using namespace oopp;
using kv::KvStore;

int main() {
  Cluster cluster(4);

  auto store = KvStore::create(
      KvStore::Config{.shards = 4, .replicate = true},
      [&](int s) { return static_cast<net::MachineId>(s % cluster.size()); },
      [&](int s) {
        return static_cast<net::MachineId>((s + 1) % cluster.size());
      });
  std::printf("session store: %d shards, each replicated on the next "
              "machine over\n",
              store.shards());

  // Ingest 1000 sessions in one split loop.
  std::vector<std::pair<std::string, std::string>> sessions;
  for (int u = 0; u < 1000; ++u)
    sessions.emplace_back("session:" + std::to_string(u),
                          "user" + std::to_string(u) + ":token" +
                              std::to_string(u * 7919));
  Timer t;
  store.multi_put(sessions);
  std::printf("ingested %zu sessions in %.1f ms (%zu pairs stored)\n",
              sessions.size(), t.millis(),
              static_cast<std::size_t>(store.size()));

  std::printf("session:42 -> %s\n",
              store.get("session:42").value_or("<missing>").c_str());
  const auto sample = store.scan("session:99", 20);
  std::printf("prefix scan 'session:99' -> %zu sessions\n", sample.size());

  // Disaster: shard 2's primary process dies without warning.
  std::printf("\nkilling shard 2's primary process...\n");
  store.primary(2).destroy();
  try {
    (void)store.primary(2).call<&kv::KvShard::size>();
  } catch (const rpc::ObjectNotFound&) {
    std::printf("primary is gone (ObjectNotFound), promoting backup\n");
  }
  store.promote_backup(2);

  // Nothing was lost, service continues.
  std::size_t intact = 0;
  for (int u = 0; u < 1000; ++u)
    if (store.get("session:" + std::to_string(u)).has_value()) ++intact;
  std::printf("after failover: %zu/1000 sessions intact\n", intact);
  store.put("session:new", "post-failover");

  // Restore redundancy: fresh backup, bootstrapped by state transfer.
  store.add_backup(2, 1);
  std::printf("re-backed shard 2; primary and backup hold %llu / %llu "
              "pairs\n",
              static_cast<unsigned long long>(
                  store.primary(2).call<&kv::KvShard::size>()),
              static_cast<unsigned long long>(
                  store.backup(2).call<&kv::KvShard::size>()));

  store.destroy();
  std::printf(intact == 1000 ? "no sessions lost; done.\n"
                             : "DATA LOSS!\n");
  return intact == 1000 ? 0 : 1;
}
