// map_reduce: the paper's conclusion claims the framework "is rich enough
// to include ... other programming models (client-server applications,
// map-reduce, etc.)".  This example shows a distributed word count written
// purely as objects-as-processes:
//
//   * TextShard processes hold partitions of the corpus on different
//     machines ("close to the data");
//   * the map phase runs word_count() on every shard — computation moves
//     to the data, only the per-shard histograms move back;
//   * Reducer processes each own a slice of the key space; shards could
//     push to them directly, but here the driver demonstrates both a
//     driver-side reduce and remote reducer processes.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/oopp.hpp"

using namespace oopp;

using Histogram = std::map<std::string, std::uint64_t>;

/// A partition of the corpus, living where the data lives.
class TextShard {
 public:
  explicit TextShard(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}

  /// The map task: runs on the shard's machine.
  Histogram word_count() const {
    Histogram h;
    for (const auto& line : lines_) {
      std::istringstream in(line);
      std::string word;
      while (in >> word) ++h[word];
    }
    return h;
  }

  std::uint64_t lines() const { return lines_.size(); }

 private:
  std::vector<std::string> lines_;
};

/// A reducer owning one slice of the key space.
class Reducer {
 public:
  Reducer() = default;

  void absorb(const Histogram& partial) {
    for (const auto& [word, n] : partial) totals_[word] += n;
  }
  Histogram totals() const { return totals_; }

 private:
  Histogram totals_;
};

template <>
struct oopp::rpc::class_def<TextShard> {
  static std::string name() { return "example.TextShard"; }
  using ctors = ctor_list<ctor<std::vector<std::string>>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&TextShard::word_count>("word_count");
    b.template method<&TextShard::lines>("lines");
  }
};

template <>
struct oopp::rpc::class_def<Reducer> {
  static std::string name() { return "example.Reducer"; }
  using ctors = ctor_list<ctor<>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&Reducer::absorb>("absorb");
    b.template method<&Reducer::totals>("totals");
  }
};

int main() {
  Cluster cluster(4);

  // A small corpus, partitioned across machines 0..3.
  const std::vector<std::vector<std::string>> partitions = {
      {"objects are processes", "processes exchange information"},
      {"by executing methods on remote objects",
       "rather than by passing messages"},
      {"the framework is rich enough to include",
       "shared memory and distributed memory programming"},
      {"as well as other programming models",
       "client server applications map reduce etc"},
  };

  ProcessGroup<TextShard> shards;
  for (std::size_t m = 0; m < partitions.size(); ++m)
    shards.push_back(cluster.make_remote<TextShard>(
        static_cast<net::MachineId>(m % cluster.size()), partitions[m]));
  std::printf("corpus: %zu shards across %zu machines\n", shards.size(),
              cluster.size());

  // --- map phase: a split loop; histograms come back in parallel ----------
  auto partials = shards.gather<&TextShard::word_count>();

  // --- shuffle + reduce via remote reducer processes -----------------------
  const int R = 2;
  ProcessGroup<Reducer> reducers;
  for (int r = 0; r < R; ++r)
    reducers.push_back(cluster.make_remote<Reducer>(
        static_cast<net::MachineId>(r % cluster.size())));

  std::vector<Future<void>> sends;
  for (const auto& partial : partials) {
    // Partition each shard's histogram by key-space owner.
    std::vector<Histogram> slices(R);
    for (const auto& [word, n] : partial)
      slices[std::hash<std::string>()(word) % R][word] = n;
    for (int r = 0; r < R; ++r)
      if (!slices[r].empty())
        sends.push_back(reducers[r].async<&Reducer::absorb>(slices[r]));
  }
  for (auto& f : sends) f.get();

  // --- gather results ------------------------------------------------------
  Histogram result;
  for (auto& totals : reducers.gather<&Reducer::totals>())
    result.merge(totals);

  std::uint64_t total_words = 0;
  for (const auto& [word, n] : result) total_words += n;
  std::printf("%zu distinct words, %llu total\n", result.size(),
              static_cast<unsigned long long>(total_words));
  for (const auto& [word, n] : result)
    if (n > 1)
      std::printf("  %-12s %llu\n", word.c_str(),
                  static_cast<unsigned long long>(n));

  shards.destroy_all();
  reducers.destroy_all();
  std::printf("done.\n");
  return result["objects"] == 2 && result["processes"] == 2 ? 0 : 1;
}
