// page_store: the paper's §3 example — process inheritance and the choice
// between "moving the data to the computation" and "moving the computation
// to the data".
//
// An ArrayPageDevice (a derived process) stores 3-D blocks of doubles.
// The sum of a block can be computed by shipping the whole page to the
// client, or by running sum() on the device's machine and shipping one
// double.  With a realistic interconnect model the difference is dramatic;
// this example prints both timings.
#include <cstdio>
#include <filesystem>

#include "core/oopp.hpp"
#include "storage/array_page_device.hpp"
#include "util/clock.hpp"
#include "util/prng.hpp"

using namespace oopp;

int main() {
  // Simulate a commodity cluster: ~25 us latency, ~1.2 GB/s links.
  Cluster::Options opts;
  opts.machines = 4;
  opts.cost = net::CostModel::commodity_cluster();
  Cluster cluster(opts);

  const auto dir = std::filesystem::temp_directory_path() / "oopp-pagestore";
  std::filesystem::create_directories(dir);

  const int NumberOfPages = 4;
  const int n1 = 64, n2 = 64, n3 = 64;  // 2 MiB per page
  auto blocks = cluster.make_remote<storage::ArrayPageDevice>(
      3, (dir / "array_blocks").string(), NumberOfPages, n1, n2, n3);
  std::printf("ArrayPageDevice process on machine %u, %dx%dx%d blocks\n",
              blocks.machine(), n1, n2, n3);

  // Fill page 2 with random values (written remotely).
  storage::ArrayPage page(n1, n2, n3);
  Xoshiro256 rng(7);
  for (index_t i = 0; i < page.elements(); ++i)
    page.values()[i] = rng.uniform(0.0, 1.0);
  blocks.call<&storage::ArrayPageDevice::write_array>(page, 2);

  // Alternative A (paper §3): copy the entire page to the local machine.
  Timer t;
  auto local_copy = blocks.call<&storage::ArrayPageDevice::read_array>(2);
  const double sum_a = local_copy.sum();
  const double ms_a = t.millis();

  // Alternative B: compute on the remote machine, copy only the result.
  t.reset();
  const double sum_b = blocks.call<&storage::ArrayPageDevice::sum>(2);
  const double ms_b = t.millis();

  std::printf("move data to computation: sum=%.6f in %7.2f ms (%.1f MiB moved)\n",
              sum_a, ms_a,
              double(page.size()) / (1024.0 * 1024.0));
  std::printf("move computation to data: sum=%.6f in %7.2f ms (8 bytes moved)\n",
              sum_b, ms_b);
  std::printf("agreement: %s, computation-shipping speedup: %.1fx\n",
              sum_a == sum_b ? "exact" : "DIFFERS", ms_a / ms_b);

  // Process inheritance (§3): the derived device serves the base protocol.
  remote_ptr<storage::PageDevice> as_base = blocks;
  std::printf("via inherited protocol: page_size = %d bytes\n",
              as_base.call<&storage::PageDevice::page_size>());

  blocks.destroy();
  std::filesystem::remove_all(dir);
  return 0;
}
