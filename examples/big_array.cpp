// big_array: the paper's §5 example — a large 3-D array stored as page
// blocks across many ArrayPageDevice processes, accessed through Array
// clients by subdomain, with the PageMap controlling the layout.
//
// Shows: building BlockStorage across machines, domain reads and writes
// (including unaligned ones), device-side reductions, and multiple Array
// client processes summing the array in parallel.
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "core/oopp.hpp"
#include "util/clock.hpp"

using namespace oopp;
namespace arr = oopp::array;

int main() {
  Cluster cluster(4);
  const auto dir = std::filesystem::temp_directory_path() / "oopp-bigarray";
  std::filesystem::create_directories(dir);

  // A 64^3 array of doubles broken into 16^3 pages: a 4x4x4 page grid of
  // 32 KiB pages on 8 devices spread over 4 machines.
  const Extents3 N{64, 64, 64};
  const Extents3 n{16, 16, 16};
  const Extents3 grid{4, 4, 4};
  const int devices = 8;
  const arr::PageMapSpec layout{arr::PageMapKind::kRoundRobin};

  arr::BlockStorageConfig cfg;
  cfg.file_prefix = (dir / "blocks").string();
  cfg.devices = devices;
  cfg.pages_per_device =
      static_cast<std::int32_t>(layout.pages_per_device(grid, devices));
  cfg.n1 = 16;
  cfg.n2 = 16;
  cfg.n3 = 16;
  auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % cluster.size());
  });
  std::printf("block storage: %d devices across %zu machines (%s layout)\n",
              devices, cluster.size(), layout.name());

  arr::Array a(N.n1, N.n2, N.n3, n.n1, n.n2, n.n3, storage, layout);

  // Fill the whole array: value = linear index.
  const auto whole = arr::Domain::whole(N);
  std::vector<double> buf(static_cast<std::size_t>(whole.volume()));
  std::iota(buf.begin(), buf.end(), 0.0);
  Timer t;
  a.write(buf, whole);
  std::printf("wrote %lld doubles (%lld pages) in %.1f ms\n",
              static_cast<long long>(whole.volume()),
              static_cast<long long>(grid.volume()), t.millis());

  // Read an unaligned subdomain back.
  const arr::Domain window(5, 23, 10, 50, 3, 61);
  t.reset();
  const auto sub = a.read(window);
  std::printf("read %lld-element window in %.1f ms\n",
              static_cast<long long>(window.volume()), t.millis());
  const double window_sum = std::accumulate(sub.begin(), sub.end(), 0.0);

  // Device-side reduction over the same window.
  t.reset();
  const double remote_sum = a.sum(window);
  std::printf("device-side sum over the window: %.0f (local: %.0f) in %.1f ms\n",
              remote_sum, window_sum, t.millis());

  // Multiple Array client processes summing disjoint slabs in parallel.
  ProcessGroup<arr::Array> clients;
  for (std::size_t m = 0; m < cluster.size(); ++m)
    clients.push_back(cluster.make_remote<arr::Array>(
        m, N.n1, N.n2, N.n3, n.n1, n.n2, n.n3, storage, layout));

  t.reset();
  std::vector<Future<double>> futs;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const index_t lo = static_cast<index_t>(c) * N.n1 / clients.size();
    const index_t hi = static_cast<index_t>(c + 1) * N.n1 / clients.size();
    futs.push_back(clients[c].async<&arr::Array::sum>(
        arr::Domain(lo, hi, 0, N.n2, 0, N.n3)));
  }
  double total = 0.0;
  for (auto& f : futs) total += f.get();
  const double expect = std::accumulate(buf.begin(), buf.end(), 0.0);
  std::printf("%zu parallel Array clients: total=%.0f (expect %.0f) in %.1f ms\n",
              clients.size(), total, expect, t.millis());

  clients.destroy_all();
  arr::destroy_block_storage(storage);
  std::filesystem::remove_all(dir);
  std::printf("done.\n");
  return total == expect ? 0 : 1;
}
