// conjugate_gradient: a distributed Krylov solver in the paper's model —
// solving the 3-D Poisson problem  A u = b  (7-point Laplacian, Dirichlet
// boundary) by conjugate gradients, slab-decomposed over worker processes.
//
// Each iteration exercises the full scientific-code idiom set:
//   * halo exchange: workers execute a reentrant deposit on neighbours
//     before applying the operator;
//   * global reductions (p·Ap, r·r): per-worker partials collected by the
//     master with a split loop;
//   * master-driven control flow: alpha/beta are scalars broadcast as
//     ordinary method arguments.
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "core/oopp.hpp"
#include "util/clock.hpp"
#include "util/ndindex.hpp"

using namespace oopp;

namespace {

class CgWorker {
 public:
  explicit CgWorker(int id) : id_(id) {}

  void set_group(int n, const ProcessGroup<CgWorker>& group) {
    n_ = n;
    group_ = group;
  }

  /// b's slab for rows [N*id/n, N*(id+1)/n); x starts at 0, r = b, p = r.
  void init(index_t N, const std::vector<double>& b_slab) {
    N_ = N;
    lo_ = N * id_ / n_;
    hi_ = N * (id_ + 1) / n_;
    const auto plane = static_cast<std::size_t>(N * N);
    const auto inner = static_cast<std::size_t>((hi_ - lo_)) * plane;
    b_ = b_slab;
    OOPP_CHECK(b_.size() == inner);
    x_.assign(inner, 0.0);
    r_ = b_;
    // p carries ghost planes (needed by the operator).
    p_.assign(inner + 2 * plane, 0.0);
    std::copy(r_.begin(), r_.end(), p_.begin() + plane);
    ap_.assign(inner, 0.0);
  }

  double r_dot_r() const {
    double acc = 0.0;
    for (double v : r_) acc += v * v;
    return acc;
  }

  /// Halo-exchange p, apply the operator, return the local p·Ap.
  double apply_operator() {
    exchange_p_halos();
    const index_t plane = N_ * N_;
    double pap = 0.0;
    for (index_t g = lo_; g < hi_; ++g) {
      const index_t z = g - lo_ + 1;  // ghosted row index
      for (index_t y = 0; y < N_; ++y) {
        for (index_t x = 0; x < N_; ++x) {
          const index_t c = z * plane + y * N_ + x;
          // 7-point Laplacian with Dirichlet zero outside the cube; the
          // global boundary ghosts are zero by construction.
          double lap = 6.0 * p_[c];
          lap -= (g > 0 ? p_[c - plane] : 0.0);
          lap -= (g < N_ - 1 ? p_[c + plane] : 0.0);
          lap -= (y > 0 ? p_[c - N_] : 0.0);
          lap -= (y < N_ - 1 ? p_[c + N_] : 0.0);
          lap -= (x > 0 ? p_[c - 1] : 0.0);
          lap -= (x < N_ - 1 ? p_[c + 1] : 0.0);
          const index_t i = (z - 1) * plane + y * N_ + x;
          ap_[i] = lap;
          pap += p_[c] * lap;
        }
      }
    }
    return pap;
  }

  /// x += alpha p, r -= alpha Ap; returns the local new r·r.
  double update_solution(double alpha) {
    const index_t plane = N_ * N_;
    double rr = 0.0;
    for (std::size_t i = 0; i < x_.size(); ++i) {
      x_[i] += alpha * p_[i + static_cast<std::size_t>(plane)];
      r_[i] -= alpha * ap_[i];
      rr += r_[i] * r_[i];
    }
    return rr;
  }

  /// p = r + beta p.
  void update_direction(double beta) {
    const index_t plane = N_ * N_;
    for (std::size_t i = 0; i < x_.size(); ++i) {
      auto& pi = p_[i + static_cast<std::size_t>(plane)];
      pi = r_[i] + beta * pi;
    }
  }

  std::vector<double> solution() const { return x_; }

  /// REENTRANT halo delivery.
  void deposit_plane(int from, std::uint64_t epoch,
                     const std::vector<double>& plane) {
    {
      std::lock_guard lock(mu_);
      staging_[{epoch, from}] = plane;
    }
    cv_.notify_all();
  }

 private:
  void exchange_p_halos() {
    const std::uint64_t epoch = ++epoch_;
    const index_t plane = N_ * N_;
    const index_t rows = hi_ - lo_;
    int expected = 0;
    std::vector<Future<void>> sends;
    if (id_ > 0) {
      std::vector<double> top(p_.begin() + plane, p_.begin() + 2 * plane);
      sends.push_back(
          group_[id_ - 1].async<&CgWorker::deposit_plane>(id_, epoch, top));
      ++expected;
    }
    if (id_ < n_ - 1) {
      std::vector<double> bottom(p_.end() - 2 * plane, p_.end() - plane);
      sends.push_back(group_[id_ + 1].async<&CgWorker::deposit_plane>(
          id_, epoch, bottom));
      ++expected;
    }
    for (auto& f : sends) f.get();

    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] {
      int have = 0;
      if (id_ > 0 && staging_.contains({epoch, id_ - 1})) ++have;
      if (id_ < n_ - 1 && staging_.contains({epoch, id_ + 1})) ++have;
      return have == expected;
    });
    if (id_ > 0) {
      auto it = staging_.find({epoch, id_ - 1});
      std::copy(it->second.begin(), it->second.end(), p_.begin());
      staging_.erase(it);
    }
    if (id_ < n_ - 1) {
      auto it = staging_.find({epoch, id_ + 1});
      std::copy(it->second.begin(), it->second.end(),
                p_.begin() + (rows + 1) * plane);
      staging_.erase(it);
    }
  }

  int id_ = 0, n_ = 0;
  ProcessGroup<CgWorker> group_;
  index_t N_ = 0, lo_ = 0, hi_ = 0;
  std::vector<double> b_, x_, r_, p_, ap_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<std::uint64_t, int>, std::vector<double>> staging_;
  std::uint64_t epoch_ = 0;
};

}  // namespace

template <>
struct oopp::rpc::class_def<CgWorker> {
  static std::string name() { return "example.CgWorker"; }
  using ctors = ctor_list<ctor<int>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&CgWorker::set_group>("set_group");
    b.template method<&CgWorker::init>("init");
    b.template method<&CgWorker::r_dot_r>("r_dot_r");
    b.template method<&CgWorker::apply_operator>("apply_operator");
    b.template method<&CgWorker::update_solution>("update_solution");
    b.template method<&CgWorker::update_direction>("update_direction");
    b.template method<&CgWorker::solution>("solution");
    b.template method<&CgWorker::deposit_plane>("deposit_plane", reentrant);
  }
};

int main() {
  Cluster cluster(4);
  const index_t N = 24;
  const int W = 4;

  ProcessGroup<CgWorker> workers;
  for (int w = 0; w < W; ++w)
    workers.push_back(cluster.make_remote<CgWorker>(
        static_cast<net::MachineId>(w % cluster.size()), w));
  for (int w = 0; w < W; ++w)
    workers[w].call<&CgWorker::set_group>(W, workers);

  // Right-hand side: a couple of point charges.
  const Extents3 e{N, N, N};
  std::vector<double> b(static_cast<std::size_t>(e.volume()), 0.0);
  b[e.linear(N / 3, N / 3, N / 3)] = 1.0;
  b[e.linear(2 * N / 3, 2 * N / 3, N / 2)] = -0.5;
  for (int w = 0; w < W; ++w) {
    const index_t lo = N * w / W, hi = N * (w + 1) / W;
    workers[w].call<&CgWorker::init>(
        N, std::vector<double>(b.begin() + lo * N * N,
                               b.begin() + hi * N * N));
  }

  auto global_sum = [&](auto&& futs) {
    double acc = 0.0;
    for (auto& f : futs) acc += f.get();
    return acc;
  };

  double rs = global_sum(workers.async<&CgWorker::r_dot_r>());
  const double rs0 = rs;
  std::printf("CG on %lld^3 Poisson, %d worker processes, |r0|^2 = %.3e\n",
              static_cast<long long>(N), W, rs0);

  Timer t;
  int it = 0;
  for (; it < 500 && rs > 1e-16 * rs0; ++it) {
    const double pap =
        global_sum(workers.async<&CgWorker::apply_operator>());
    const double alpha = rs / pap;
    const double rs_new =
        global_sum(workers.async<&CgWorker::update_solution>(alpha));
    workers.gather<&CgWorker::update_direction>(rs_new / rs);
    rs = rs_new;
    if (it % 20 == 0)
      std::printf("  iter %3d  |r|^2 = %.3e\n", it, rs);
  }
  std::printf("converged in %d iterations, %.0f ms, |r|^2 = %.3e\n", it,
              t.millis(), rs);

  // Verify against the operator applied to the gathered solution.
  std::vector<double> u;
  u.reserve(b.size());
  for (int w = 0; w < W; ++w) {
    auto slab = workers[w].call<&CgWorker::solution>();
    u.insert(u.end(), slab.begin(), slab.end());
  }
  double res_norm = 0.0, b_norm = 0.0;
  for (index_t i1 = 0; i1 < N; ++i1)
    for (index_t i2 = 0; i2 < N; ++i2)
      for (index_t i3 = 0; i3 < N; ++i3) {
        auto at = [&](index_t a, index_t bb, index_t c) {
          return (a < 0 || a >= N || bb < 0 || bb >= N || c < 0 || c >= N)
                     ? 0.0
                     : u[e.linear(a, bb, c)];
        };
        const double Au = 6.0 * at(i1, i2, i3) - at(i1 - 1, i2, i3) -
                          at(i1 + 1, i2, i3) - at(i1, i2 - 1, i3) -
                          at(i1, i2 + 1, i3) - at(i1, i2, i3 - 1) -
                          at(i1, i2, i3 + 1);
        const double d = Au - b[e.linear(i1, i2, i3)];
        res_norm += d * d;
        b_norm += b[e.linear(i1, i2, i3)] * b[e.linear(i1, i2, i3)];
      }
  const double rel = std::sqrt(res_norm / b_norm);
  std::printf("verified: ||Au - b|| / ||b|| = %.3e\n", rel);

  workers.destroy_all();
  std::printf(rel < 1e-6 ? "solution verified; done.\n" : "BAD solution!\n");
  return rel < 1e-6 ? 0 : 1;
}
