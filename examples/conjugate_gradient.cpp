// conjugate_gradient: a distributed Krylov solver in the paper's model,
// rebuilt on coll::Communicator — the collectives library's BLAS layer.
//
// The earlier version of this example hand-rolled everything: workers
// kept slabs in member fields, the master collected p·Ap and r·r partials
// with a split loop (a gather to one process per iteration), and the
// operator needed a bespoke halo-exchange protocol.  With the
// Communicator the same solver is a dozen lines of BLAS:
//
//   * vectors live in distributed Arrays (pages on storage devices);
//   * dot / norm2 / axpy / scale / matvec run *on the devices that own
//     the pages* (paper §3: move the computation to the data);
//   * the scalar reductions under dot/norm2 combine member-to-member
//     through a binomial tree — 8 bytes per member per reduction, and
//     the master never sees a vector at all.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "array/page_map.hpp"
#include "coll/communicator.hpp"
#include "core/oopp.hpp"
#include "util/clock.hpp"
#include "util/prng.hpp"

using namespace oopp;
namespace arr = oopp::array;

namespace {

/// A kBlocked (N1, N2, 1) array over `devices` storage processes: each
/// device owns one contiguous run of row-slab pages — the layout the
/// Communicator's slab kernels partition by.
arr::Array make_blocked(Cluster& cluster, const std::string& prefix,
                        index_t N1, index_t N2, index_t b1, int devices,
                        std::vector<arr::BlockStorage>& keep) {
  const Extents3 grid{oopp::ceil_div(N1, b1), 1, 1};
  arr::BlockStorageConfig cfg;
  cfg.file_prefix = prefix;
  cfg.devices = devices;
  cfg.pages_per_device = static_cast<std::int32_t>(
      arr::PageMapSpec{arr::PageMapKind::kBlocked}.pages_per_device(grid,
                                                                    devices));
  cfg.n1 = static_cast<int>(b1);
  cfg.n2 = static_cast<int>(N2);
  keep.push_back(arr::create_block_storage(cfg, [&](std::int32_t i) {
    return static_cast<net::MachineId>(i % cluster.size());
  }));
  return arr::Array(N1, N2, 1, b1, N2, 1, keep.back(),
                    arr::PageMapSpec{arr::PageMapKind::kBlocked});
}

}  // namespace

int main() {
  Cluster cluster(4);
  const index_t n = 192;     // unknowns
  const index_t rb = 16;     // rows per page
  const int W = 4;           // storage devices == collective members

  std::vector<arr::BlockStorage> storages;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("oopp-cg-" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  const std::string tmp = dir + "/pages";
  arr::Array A = make_blocked(cluster, tmp + "-A", n, n, rb, W, storages);
  arr::Array x = make_blocked(cluster, tmp + "-x", n, 1, rb, W, storages);
  arr::Array b = make_blocked(cluster, tmp + "-b", n, 1, rb, W, storages);
  arr::Array r = make_blocked(cluster, tmp + "-r", n, 1, rb, W, storages);
  arr::Array p = make_blocked(cluster, tmp + "-p", n, 1, rb, W, storages);
  arr::Array ap = make_blocked(cluster, tmp + "-ap", n, 1, rb, W, storages);

  // SPD test system: A = n·I + (M + Mᵀ)/2 with M uniform [0, 1) — the
  // dominant diagonal bounds the condition number, so CG converges in a
  // few dozen iterations regardless of the random draw.
  Xoshiro256 rng(4242);
  std::vector<double> M(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(n));
  for (auto& v : M) v = rng.uniform(0.0, 1.0);
  std::vector<double> row(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const auto ij = static_cast<std::size_t>(i * n + j);
      const auto ji = static_cast<std::size_t>(j * n + i);
      row[static_cast<std::size_t>(j)] =
          0.5 * (M[ij] + M[ji]) + (i == j ? double(n) : 0.0);
    }
    A.write(row, arr::Domain(i, i + 1, 0, n, 0, 1));
  }
  std::vector<double> bv(static_cast<std::size_t>(n));
  for (auto& v : bv) v = rng.uniform(-1.0, 1.0);
  b.write(bv, arr::Domain(0, n, 0, 1, 0, 1));

  // One Peer per device, colocated, tree-wired in one master message.
  auto comm = coll::Communicator::over(A.storage());

  // CG, every line a Communicator BLAS call:
  //   x0 = 0, r = b, p = r.
  x.fill(0.0, arr::Domain(0, n, 0, 1, 0, 1));
  r.fill(0.0, arr::Domain(0, n, 0, 1, 0, 1));
  comm.axpy(1.0, b, r);
  p.fill(0.0, arr::Domain(0, n, 0, 1, 0, 1));
  comm.axpy(1.0, r, p);

  double rs = comm.dot(r, r);
  const double rs0 = rs;
  std::printf("CG on a dense %lld x %lld SPD system, %d members, "
              "|r0|^2 = %.3e\n",
              static_cast<long long>(n), static_cast<long long>(n), W, rs0);

  Timer t;
  int it = 0;
  for (; it < 200 && rs > 1e-24 * rs0; ++it) {
    // Ap = A·p: ring allgather of p; A's slab stays resident in each
    // Peer across iterations (reuse_matrix — the operator never changes).
    comm.matvec(A, p, ap, /*reuse_matrix=*/true);
    const double pap = comm.dot(p, ap); // tree-reduced scalar
    const double alpha = rs / pap;
    comm.axpy(alpha, p, x);             // x += alpha p
    comm.axpy(-alpha, ap, r);           // r -= alpha Ap
    const double rs_new = comm.dot(r, r);
    comm.scale(rs_new / rs, p);         // p = r + beta p, in two
    comm.axpy(1.0, r, p);               // device-local sweeps
    rs = rs_new;
    if (it % 5 == 0) std::printf("  iter %3d  |r|^2 = %.3e\n", it, rs);
  }
  std::printf("converged in %d iterations, %.0f ms\n", it, t.millis());

  // Verify with the same kernels: ||A x - b|| / ||b||.
  comm.matvec(A, x, ap, /*reuse_matrix=*/true);
  comm.axpy(-1.0, b, ap);
  const double rel = comm.norm2(ap) / comm.norm2(b);
  std::printf("verified: ||Ax - b|| / ||b|| = %.3e\n", rel);

  comm.destroy();
  for (auto& s : storages) arr::destroy_block_storage(s);
  std::filesystem::remove_all(dir);
  std::printf(rel < 1e-8 ? "solution verified; done.\n" : "BAD solution!\n");
  return rel < 1e-8 ? 0 : 1;
}
