// heat_diffusion: a scientific application written in the paper's model —
// explicit 3-D heat diffusion (Jacobi iteration) on a slab-decomposed
// grid, with halo exchange between neighbouring worker processes.
//
// The paper's conclusion: processes "should be useful in computations
// with large data sets, operating system design and scientific
// applications."  This example shows the idioms scientific codes need:
//
//   * SPMD worker group wired with deep-copied remote pointers (§4);
//   * per-iteration halo exchange by executing a reentrant method on the
//     neighbour (one-sided deposit, like the FFT transpose);
//   * master-driven time stepping with a split loop + group barrier.
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "core/oopp.hpp"
#include "util/clock.hpp"
#include "util/ndindex.hpp"

using namespace oopp;

namespace {

/// One worker's share of the grid: rows [lo, hi) of the N x N x N domain,
/// stored with one ghost plane on each side.
class HeatWorker {
 public:
  explicit HeatWorker(int id) : id_(id) {}

  void set_group(int n, const ProcessGroup<HeatWorker>& group) {
    n_ = n;
    group_ = group;
  }

  void init(index_t N, const std::vector<double>& slab_data) {
    N_ = N;
    lo_ = N * id_ / n_;
    hi_ = N * (id_ + 1) / n_;
    const index_t rows = hi_ - lo_;
    OOPP_CHECK(static_cast<index_t>(slab_data.size()) == rows * N * N);
    // Interior slab + 2 ghost planes (outer boundary ghosts stay 0 —
    // Dirichlet condition).
    u_.assign(static_cast<std::size_t>((rows + 2) * N * N), 0.0);
    std::copy(slab_data.begin(), slab_data.end(), u_.begin() + N * N);
  }

  /// One-sided halo delivery from a neighbour.  REENTRANT: lands while
  /// this worker is blocked inside step_many's exchange.
  void deposit_plane(int from, std::uint64_t epoch,
                     const std::vector<double>& plane) {
    {
      std::lock_guard lock(mu_);
      staging_[{epoch, from}] = plane;
    }
    cv_.notify_all();
  }

  /// Run `steps` Jacobi iterations with coefficient alpha, exchanging
  /// halos with the neighbour processes before each update.
  void step_many(int steps, double alpha) {
    const index_t rows = hi_ - lo_;
    const index_t plane = N_ * N_;
    std::vector<double> next(u_.size(), 0.0);
    for (int s = 0; s < steps; ++s) {
      exchange_halos();
      // Jacobi update on the interior (global Dirichlet boundary: the
      // outermost planes of the global cube stay fixed at 0).
      for (index_t r = 0; r < rows; ++r) {
        const index_t g = lo_ + r;           // global row index
        const index_t z = r + 1;             // row in the ghosted slab
        if (g == 0 || g == N_ - 1) continue;  // boundary plane: stays 0
        for (index_t y = 1; y < N_ - 1; ++y) {
          for (index_t x = 1; x < N_ - 1; ++x) {
            const index_t c = z * plane + y * N_ + x;
            const double lap = u_[c - plane] + u_[c + plane] +
                               u_[c - N_] + u_[c + N_] + u_[c - 1] +
                               u_[c + 1] - 6.0 * u_[c];
            next[c] = u_[c] + alpha * lap;
          }
        }
      }
      std::swap(u_, next);
    }
  }

  double total_heat() const {
    const index_t plane = N_ * N_;
    double acc = 0.0;
    for (index_t i = plane; i < static_cast<index_t>(u_.size()) - plane; ++i)
      acc += u_[i];
    return acc;
  }

  std::vector<double> slab() const {
    const index_t plane = N_ * N_;
    return std::vector<double>(u_.begin() + plane, u_.end() - plane);
  }

 private:
  void exchange_halos() {
    const std::uint64_t epoch = ++epoch_;
    const index_t rows = hi_ - lo_;
    const index_t plane = N_ * N_;
    int expected = 0;

    std::vector<Future<void>> sends;
    if (id_ > 0) {
      // Send my first interior plane down; expect their top plane.
      std::vector<double> p(u_.begin() + plane, u_.begin() + 2 * plane);
      sends.push_back(
          group_[id_ - 1].async<&HeatWorker::deposit_plane>(id_, epoch, p));
      ++expected;
    }
    if (id_ < n_ - 1) {
      std::vector<double> p(u_.end() - 2 * plane, u_.end() - plane);
      sends.push_back(
          group_[id_ + 1].async<&HeatWorker::deposit_plane>(id_, epoch, p));
      ++expected;
    }
    for (auto& f : sends) f.get();

    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] {
      int have = 0;
      if (id_ > 0 && staging_.contains({epoch, id_ - 1})) ++have;
      if (id_ < n_ - 1 && staging_.contains({epoch, id_ + 1})) ++have;
      return have == expected;
    });
    if (id_ > 0) {
      auto it = staging_.find({epoch, id_ - 1});
      std::copy(it->second.begin(), it->second.end(), u_.begin());
      staging_.erase(it);
    }
    if (id_ < n_ - 1) {
      auto it = staging_.find({epoch, id_ + 1});
      std::copy(it->second.begin(), it->second.end(),
                u_.begin() + (rows + 1) * plane);
      staging_.erase(it);
    }
  }

  int id_ = 0;
  int n_ = 0;
  ProcessGroup<HeatWorker> group_;
  index_t N_ = 0, lo_ = 0, hi_ = 0;
  std::vector<double> u_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<std::uint64_t, int>, std::vector<double>> staging_;
  std::uint64_t epoch_ = 0;
};

}  // namespace

template <>
struct oopp::rpc::class_def<HeatWorker> {
  static std::string name() { return "example.HeatWorker"; }
  using ctors = ctor_list<ctor<int>>;
  template <class B>
  static void bind(B& b) {
    b.template method<&HeatWorker::set_group>("set_group");
    b.template method<&HeatWorker::init>("init");
    b.template method<&HeatWorker::step_many>("step_many");
    b.template method<&HeatWorker::deposit_plane>("deposit_plane",
                                                  reentrant);
    b.template method<&HeatWorker::total_heat>("total_heat");
    b.template method<&HeatWorker::slab>("slab");
  }
};

int main() {
  Cluster cluster(4);
  const index_t N = 32;
  const int W = 4;
  const double alpha = 0.1;

  // SPMD group, wired as in §4.
  ProcessGroup<HeatWorker> workers;
  for (int w = 0; w < W; ++w)
    workers.push_back(cluster.make_remote<HeatWorker>(
        static_cast<net::MachineId>(w % cluster.size()), w));
  for (int w = 0; w < W; ++w)
    workers[w].call<&HeatWorker::set_group>(W, workers);

  // Initial condition: a hot cube in the centre.
  auto initial = [&](index_t g, index_t y, index_t x) {
    const bool hot = g > N / 2 - 4 && g < N / 2 + 4 && y > N / 2 - 4 &&
                     y < N / 2 + 4 && x > N / 2 - 4 && x < N / 2 + 4;
    return hot ? 100.0 : 0.0;
  };
  for (int w = 0; w < W; ++w) {
    const index_t lo = N * w / W, hi = N * (w + 1) / W;
    std::vector<double> slab(static_cast<std::size_t>((hi - lo) * N * N));
    for (index_t g = lo; g < hi; ++g)
      for (index_t y = 0; y < N; ++y)
        for (index_t x = 0; x < N; ++x)
          slab[((g - lo) * N + y) * N + x] = initial(g, y, x);
    workers[w].call<&HeatWorker::init>(N, slab);
  }

  auto heat = [&] {
    double total = 0.0;
    for (auto h : workers.gather<&HeatWorker::total_heat>()) total += h;
    return total;
  };
  const double heat0 = heat();
  std::printf("grid %lld^3, %d worker processes, initial heat %.1f\n",
              static_cast<long long>(N), W, heat0);

  // Time stepping: the master drives rounds of steps with a split loop;
  // workers halo-exchange among themselves inside step_many.
  Timer t;
  constexpr int kRounds = 5, kStepsPerRound = 10;
  for (int round = 0; round < kRounds; ++round) {
    workers.gather<&HeatWorker::step_many>(kStepsPerRound, alpha);
    std::printf("after %3d steps: total heat %10.2f  (%.0f ms)\n",
                (round + 1) * kStepsPerRound, heat(), t.millis());
  }

  // Diffusion sanity: heat decreased (absorbed at the cold boundary)
  // but is still positive, and the centre is warmer than the edge.
  const double heat_end = heat();
  auto slab0 = workers[W / 2].call<&HeatWorker::slab>();
  const double centre = slab0[(0 * N + N / 2) * N + N / 2];
  const double edge = slab0[(0 * N + 1) * N + 1];
  std::printf("centre %.3f vs edge %.6f; heat %.1f -> %.1f\n", centre, edge,
              heat0, heat_end);

  workers.destroy_all();
  const bool ok = heat_end > 0 && heat_end <= heat0 && centre > edge;
  std::printf(ok ? "diffusion looks physical; done.\n"
                 : "UNEXPECTED physics!\n");
  return ok ? 0 : 1;
}
