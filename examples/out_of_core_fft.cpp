// out_of_core_fft: the paper's §1 motivating computation as a demo —
// a 3-D Fourier transform over an array stored across many page-device
// processes, computed within a memory budget far smaller than the array.
//
// A pure tone is written into the distributed array; the out-of-core
// transform must concentrate all energy in a single spectral bin, and the
// inverse must restore the tone — all while the client never holds more
// than the budget.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numbers>

#include "array/array.hpp"
#include "array/block_storage.hpp"
#include "core/oopp.hpp"
#include "fft/out_of_core.hpp"
#include "util/clock.hpp"

using namespace oopp;
namespace arr = oopp::array;

int main() {
  Cluster cluster(4);
  const auto dir = std::filesystem::temp_directory_path() / "oopp-ooc-demo";
  std::filesystem::create_directories(dir);

  const Extents3 N{32, 32, 32};
  const Extents3 b{8, 8, 8};
  const int devices = 8;
  const arr::PageMapSpec layout{arr::PageMapKind::kRoundRobin};
  const Extents3 grid{4, 4, 4};

  auto make_array = [&](const std::string& tag) {
    arr::BlockStorageConfig cfg;
    cfg.file_prefix = (dir / tag).string();
    cfg.devices = devices;
    cfg.pages_per_device =
        static_cast<std::int32_t>(layout.pages_per_device(grid, devices));
    cfg.n1 = static_cast<int>(b.n1);
    cfg.n2 = static_cast<int>(b.n2);
    cfg.n3 = static_cast<int>(b.n3);
    auto storage = arr::create_block_storage(cfg, [&](std::int32_t i) {
      return static_cast<net::MachineId>(i % cluster.size());
    });
    return arr::Array(N.n1, N.n2, N.n3, b.n1, b.n2, b.n3, storage, layout);
  };
  auto re = make_array("re");
  auto im = make_array("im");
  std::printf("distributed complex field %lld^3 on %d devices (%s layout)\n",
              static_cast<long long>(N.n1), devices, layout.name());

  // A pure 3-D tone with wave vector k = (3, 5, 7).
  const index_t k1 = 3, k2 = 5, k3 = 7;
  const auto whole = arr::Domain::whole(N);
  std::vector<double> re0(static_cast<std::size_t>(N.volume()));
  std::vector<double> im0(re0.size());
  for (index_t i1 = 0; i1 < N.n1; ++i1)
    for (index_t i2 = 0; i2 < N.n2; ++i2)
      for (index_t i3 = 0; i3 < N.n3; ++i3) {
        const double phase =
            2.0 * std::numbers::pi *
            (double(k1 * i1) / double(N.n1) + double(k2 * i2) / double(N.n2) +
             double(k3 * i3) / double(N.n3));
        re0[N.linear(i1, i2, i3)] = std::cos(phase);
        im0[N.linear(i1, i2, i3)] = std::sin(phase);
      }
  re.write(re0, whole);
  im.write(im0, whole);

  // Forward transform with a budget of one page layer (~128 KiB) — the
  // array itself is 512 KiB complex and the paper has petabytes in mind.
  const fft::OutOfCoreOptions budget{.max_bytes = std::size_t{128} << 10};
  Timer t;
  const auto stats = fft::fft3d_out_of_core(re, im, -1, budget);
  std::printf("forward out-of-core FFT: %.1f ms, %lld + %lld slabs, "
              "%.2f MiB moved (budget %.0f KiB)\n",
              t.millis(), static_cast<long long>(stats.pass1.slabs),
              static_cast<long long>(stats.pass2.slabs),
              double(stats.elements_moved()) * sizeof(fft::cplx) / (1 << 20),
              double(budget.max_bytes) / 1024.0);

  // All spectral energy must sit in bin (k1, k2, k3).
  const double spike_re = re.get(k1, k2, k3);
  const double elsewhere = re.get(0, 0, 0);
  std::printf("spectrum: bin(%lld,%lld,%lld) = %.1f (expect %lld), "
              "bin(0,0,0) = %.2e\n",
              static_cast<long long>(k1), static_cast<long long>(k2),
              static_cast<long long>(k3), spike_re,
              static_cast<long long>(N.volume()), elsewhere);

  // Inverse + normalize, and check the tone survived the disk round trip.
  fft::fft3d_out_of_core(re, im, +1, budget);
  re.scale(1.0 / double(N.volume()), whole);
  im.scale(1.0 / double(N.volume()), whole);
  const auto re_back = re.read(whole);
  double err = 0.0;
  for (std::size_t i = 0; i < re_back.size(); ++i)
    err = std::max(err, std::abs(re_back[i] - re0[i]));
  std::printf("round-trip error after inverse: %.2e\n", err);

  std::filesystem::remove_all(dir);
  const bool ok =
      std::abs(spike_re - double(N.volume())) < 1e-6 && err < 1e-10;
  std::printf(ok ? "out-of-core transform verified; done.\n"
                 : "UNEXPECTED spectrum!\n");
  return ok ? 0 : 1;
}
