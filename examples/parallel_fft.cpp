// parallel_fft: the paper's §4 example — a group of FFT processes jointly
// computing a three-dimensional Fourier transform.
//
//   FFT* fft[N];
//   for (id...) fft[id] = new(machine id) FFT(id);
//   for (id...) fft[id]->SetGroup(N, fft);      // deep copy of the group
//   for (id...) fft[id]->transform(sign, a);    // split loop
//
// The result is verified against the node-local 3-D FFT, and a forward +
// inverse round trip restores the input.
#include <cmath>
#include <cstdio>

#include "core/oopp.hpp"
#include "fft/fft3d.hpp"
#include "fft/fft_worker.hpp"
#include "util/clock.hpp"
#include "util/prng.hpp"

using namespace oopp;
using fft::cplx;

int main() {
  Cluster cluster(4);
  const Extents3 extents{32, 32, 32};
  const int N = 4;  // worker processes

  // Master creates N parallel processes and wires the group (SetGroup).
  fft::DistributedFFT3D dfft(extents, N, [&](int w) {
    return static_cast<net::MachineId>(w % cluster.size());
  });
  std::printf("created %d FFT processes across %zu machines\n", N,
              cluster.size());

  // A random complex field.
  Xoshiro256 rng(42);
  std::vector<cplx> a(static_cast<std::size_t>(extents.volume()));
  for (auto& v : a) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));

  dfft.scatter(a);
  Timer t;
  dfft.forward();
  std::printf("distributed forward transform of %lldx%lldx%lld: %.1f ms\n",
              static_cast<long long>(extents.n1),
              static_cast<long long>(extents.n2),
              static_cast<long long>(extents.n3), t.millis());

  // Verify against the single-machine transform.
  auto expect = a;
  t.reset();
  fft::fft3d_inplace(expect, extents, -1);
  std::printf("single-machine transform:                  %.1f ms\n",
              t.millis());

  auto got = dfft.gather();
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i)
    err = std::max(err, std::abs(got[i] - expect[i]));
  std::printf("max |distributed - local| = %.3e\n", err);

  // Inverse round trip.
  dfft.inverse();
  auto back = dfft.gather();
  double rt = 0.0;
  for (std::size_t i = 0; i < back.size(); ++i)
    rt = std::max(rt, std::abs(back[i] - a[i]));
  std::printf("round-trip error = %.3e\n", rt);

  dfft.shutdown();
  std::printf("done.\n");
  return err < 1e-8 && rt < 1e-9 ? 0 : 1;
}
