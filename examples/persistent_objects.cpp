// persistent_objects: the paper's §5 persistent processes.
//
// "Persistent processes are objects that can be destroyed only by
// explicitly calling the destructor.  The runtime system is responsible
// for storing process representation, and activating and de-activating
// processes, as needed.  Processes can be accessed using a symbolic
// object address."
//
// This example creates device processes, checkpoints them under symbolic
// addresses, passivates one (terminating the live process), and looks it
// up again — the runtime re-activates it from its stored image, on a
// different machine.
#include <cstdio>
#include <filesystem>

#include "core/oopp.hpp"
#include "storage/page_device.hpp"

using namespace oopp;

int main() {
  Cluster cluster(4);
  const auto dir = std::filesystem::temp_directory_path() / "oopp-persist";
  std::filesystem::create_directories(dir);

  // A device process with some data.
  auto dev = cluster.make_remote<storage::PageDevice>(
      1, (dir / "store").string(), 8, 512);
  storage::Page page(512);
  for (std::size_t i = 0; i < page.size(); ++i)
    page[i] = static_cast<std::uint8_t>(i);
  dev.call<&storage::PageDevice::write>(page, 3);

  // Checkpoint under a symbolic address (the process keeps running).
  const std::string uri = "oopp://data/set/PageDevice/34";
  cluster.persist(dev, uri);
  std::printf("persisted live process as %s\n", uri.c_str());

  // Symbolic lookup finds the live process.
  auto same = cluster.lookup<storage::PageDevice>(uri);
  std::printf("lookup → machine %u, object %llu (live)\n", same.machine(),
              static_cast<unsigned long long>(same.id()));

  // Passivate: checkpoint + terminate.  Only the symbolic address remains.
  cluster.passivate(dev, uri);
  std::printf("passivated: live process terminated\n");
  try {
    dev.call<&storage::PageDevice::page_size>();
  } catch (const rpc::ObjectNotFound&) {
    std::printf("direct pointer now dangles, as expected\n");
  }

  // Re-activate on a different machine; the data survived.
  auto revived = cluster.lookup<storage::PageDevice>(uri, 3);
  std::printf("re-activated on machine %u\n", revived.machine());
  auto back = revived.call<&storage::PageDevice::read>(3);
  std::printf("page 3 after reactivation: %s\n",
              back == page ? "intact" : "CORRUPT");

  // The registry lists everything persisted.
  for (const auto& u : cluster.persisted_uris())
    std::printf("registry: %s\n", u.c_str());

  // Destruction remains explicit (the paper's rule).
  revived.destroy();
  cluster.forget(uri);
  std::filesystem::remove_all(dir);
  std::printf("done.\n");
  return back == page ? 0 : 1;
}
