file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_fft.dir/out_of_core_fft.cpp.o"
  "CMakeFiles/out_of_core_fft.dir/out_of_core_fft.cpp.o.d"
  "out_of_core_fft"
  "out_of_core_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
