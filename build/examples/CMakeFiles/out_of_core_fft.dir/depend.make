# Empty dependencies file for out_of_core_fft.
# This may be replaced when dependencies are built.
