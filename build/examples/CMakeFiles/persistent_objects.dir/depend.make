# Empty dependencies file for persistent_objects.
# This may be replaced when dependencies are built.
