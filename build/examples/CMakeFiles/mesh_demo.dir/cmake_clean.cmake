file(REMOVE_RECURSE
  "CMakeFiles/mesh_demo.dir/mesh_demo.cpp.o"
  "CMakeFiles/mesh_demo.dir/mesh_demo.cpp.o.d"
  "mesh_demo"
  "mesh_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
