# Empty compiler generated dependencies file for mesh_demo.
# This may be replaced when dependencies are built.
