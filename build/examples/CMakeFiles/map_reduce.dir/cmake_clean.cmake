file(REMOVE_RECURSE
  "CMakeFiles/map_reduce.dir/map_reduce.cpp.o"
  "CMakeFiles/map_reduce.dir/map_reduce.cpp.o.d"
  "map_reduce"
  "map_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
