# Empty dependencies file for map_reduce.
# This may be replaced when dependencies are built.
